//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the `criterion 0.5` API its six bench targets use:
//! [`Criterion`], [`BenchmarkGroup`] (with `sample_size`,
//! `measurement_time`, `warm_up_time`, `throughput`), [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — median of `sample_size` samples,
//! each sample timing a batch of iterations sized to fill
//! `measurement_time / sample_size` of wall clock — and results print as
//! one line per benchmark:
//!
//! ```text
//! consensus_latency/token_alg1/4   time: 812.3 µs/iter   thrpt: …
//! ```
//!
//! Good enough for honest relative numbers on one machine, which is what
//! the `BENCH_*.json` trajectory tracks; swap in real criterion when the
//! registry is reachable if statistical rigor is needed.

#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) =
            (self.default_sample_size, self.default_measurement_time);
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            measurement_time,
            warm_up_time: Duration::from_millis(50),
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, measurement_time) =
            (self.default_sample_size, self.default_measurement_time);
        run_benchmark(
            name,
            sample_size,
            measurement_time,
            Duration::from_millis(50),
            None,
            f,
        );
        self
    }
}

/// A named set of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total wall-clock budget for the timed samples of each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for untimed warm-up iterations.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Declare work-per-iteration so results also report a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmark `f` under `id`, passing `input` through by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (printing is already done per-benchmark).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter, e.g. `fine/8`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements (operations, messages, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    /// Duration of the sample recorded by the last `iter` call.
    sampled: Duration,
}

impl Bencher {
    /// Time `iters_per_sample` back-to-back calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.sampled = start.elapsed();
    }
}

fn run_benchmark<F>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up and calibration: one iteration at a time until the warm-up
    // budget is spent, to estimate the cost of a single iteration.
    let warm_up_start = Instant::now();
    let mut warm_up_iters: u64 = 0;
    let mut bencher = Bencher {
        iters_per_sample: 1,
        sampled: Duration::ZERO,
    };
    let mut per_iter_estimate = Duration::ZERO;
    while warm_up_start.elapsed() < warm_up_time || warm_up_iters == 0 {
        f(&mut bencher);
        per_iter_estimate = bencher.sampled;
        warm_up_iters += 1;
        if warm_up_iters >= 1000 {
            break;
        }
    }

    // Size each sample so that sample_size samples fill measurement_time.
    let sample_budget = measurement_time / (sample_size as u32);
    let iters_per_sample = if per_iter_estimate.is_zero() {
        1000
    } else {
        (sample_budget.as_nanos() / per_iter_estimate.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    bencher.iters_per_sample = iters_per_sample;
    for _ in 0..sample_size {
        f(&mut bencher);
        samples.push(bencher.sampled / (iters_per_sample as u32));
    }
    samples.sort();
    let median = samples[samples.len() / 2];

    let rate = throughput.map(|t| {
        let per_sec = |units: u64| units as f64 / median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!("{:.3e} elem/s", per_sec(n)),
            Throughput::Bytes(n) => format!("{:.3e} B/s", per_sec(n)),
        }
    });
    match rate {
        Some(rate) => println!("{name:<50} time: {median:>12.3?}/iter   thrpt: {rate}"),
        None => println!("{name:<50} time: {median:>12.3?}/iter"),
    }
}

/// Define a benchmark group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` to run the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| {
                calls += 1;
                (0..n).sum::<u64>()
            });
        });
        group.finish();
        assert!(calls > 0, "benchmark closure never ran");
    }
}

//! Offline stand-in for the `smallvec` crate (v2 const-generic API).
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of `smallvec 2.x` its hot paths use: a [`SmallVec<T, N>`]
//! that stores up to `N` elements inline and spills the overflow to a
//! heap vector. Unlike the real crate this shim is written entirely in
//! safe Rust (inline slots are `Option<T>`), trading a few bytes of
//! padding for zero `unsafe` — the property that matters to its users
//! here is the *allocation profile*: pushing within the inline capacity
//! never allocates, and [`clear`](SmallVec::clear) keeps both the inline
//! slots and any spill capacity, so a reused buffer is allocation-free in
//! steady state no matter how it was filled.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]

/// A vector with `N` inline slots and heap spill-over.
///
/// Elements `0..min(len, N)` live inline; elements `N..len` (if any)
/// live in the spill vector. All operations preserve insertion order.
///
/// # Examples
///
/// ```
/// let mut v: smallvec::SmallVec<u32, 4> = smallvec::SmallVec::new();
/// for i in 0..6 {
///     v.push(i); // 4 inline, 2 spilled — same observable behavior
/// }
/// assert_eq!(v.len(), 6);
/// assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
/// v.clear();
/// assert!(v.is_empty());
/// ```
#[derive(Clone)]
pub struct SmallVec<T, const N: usize> {
    inline: [Option<T>; N],
    spill: Vec<T>,
    len: usize,
}

impl<T, const N: usize> SmallVec<T, N> {
    /// An empty vector; allocates nothing.
    pub const fn new() -> Self {
        Self {
            inline: [const { None }; N],
            spill: Vec::new(),
            len: 0,
        }
    }

    /// Number of elements.
    pub const fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no elements.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether elements have overflowed the inline capacity.
    pub const fn spilled(&self) -> bool {
        self.len > N
    }

    /// Appends an element; allocates only past the inline capacity.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = Some(value);
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        if self.len < N {
            self.inline[self.len].take()
        } else {
            self.spill.pop()
        }
    }

    /// Drops every element, keeping the spill allocation (so a reused
    /// buffer never re-allocates in steady state).
    pub fn clear(&mut self) {
        for slot in &mut self.inline[..self.len.min(N)] {
            *slot = None;
        }
        self.spill.clear();
        self.len = 0;
    }

    /// Iterates the elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.inline[..self.len.min(N)]
            .iter()
            .map(|slot| slot.as_ref().expect("slot below len is filled"))
            .chain(self.spill.iter())
    }
}

impl<T, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: std::fmt::Debug, const N: usize> std::fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for value in iter {
            self.push(value);
        }
    }
}

impl<T, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Self::new();
        out.extend(iter);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_then_spill_round_trips() {
        let mut v: SmallVec<usize, 3> = SmallVec::new();
        assert!(v.is_empty() && !v.spilled());
        for i in 0..7 {
            v.push(i);
        }
        assert_eq!(v.len(), 7);
        assert!(v.spilled());
        assert_eq!(
            v.iter().copied().collect::<Vec<_>>(),
            (0..7).collect::<Vec<_>>()
        );
        assert_eq!(v.pop(), Some(6));
        assert_eq!(v.pop(), Some(5));
        assert_eq!(v.pop(), Some(4));
        assert_eq!(v.pop(), Some(3)); // back inside the inline region
        assert_eq!(v.len(), 3);
        assert!(!v.spilled());
        v.clear();
        assert_eq!(v.pop(), None);
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn clear_keeps_working_after_spill() {
        let mut v: SmallVec<String, 2> = SmallVec::new();
        for round in 0..3 {
            v.clear();
            for i in 0..5 {
                v.push(format!("{round}:{i}"));
            }
            assert_eq!(v.len(), 5);
            assert_eq!(
                v.iter().next().map(String::as_str),
                Some(format!("{round}:0").as_str())
            );
        }
    }

    #[test]
    fn equality_and_collect() {
        let a: SmallVec<u8, 2> = (0..4).collect();
        let b: SmallVec<u8, 2> = (0..4).collect();
        let c: SmallVec<u8, 2> = (0..3).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(format!("{a:?}"), "[0, 1, 2, 3]");
    }
}

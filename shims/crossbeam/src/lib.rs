//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the one entry point its members use: [`scope`], crossbeam's scoped
//! threads, implemented over `std::thread::scope` (stable since Rust
//! 1.63, which is why the real dependency is no longer needed).
//!
//! Matching crossbeam's contract:
//!
//! * `scope` returns `Err` (instead of unwinding) when a spawned thread
//!   panics, so call sites keep their `.expect("…")` handling;
//! * the closure passed to [`Scope::spawn`] receives a `&Scope` argument
//!   (call sites write `|_|`), allowing nested spawns.

#![deny(rustdoc::broken_intra_doc_links)]

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result of [`scope`]: `Err` carries the payload of a panicking thread.
pub type ScopeResult<R> = std::thread::Result<R>;

/// Run `f` with a [`Scope`] whose spawned threads are all joined before
/// `scope` returns.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// Handle for spawning threads that may borrow from the enclosing scope.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread joined at scope exit. The closure receives this
    /// scope again so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_see_borrows_and_join() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn panic_becomes_err() {
        let result = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_closure_arg() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}

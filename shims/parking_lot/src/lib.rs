//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the `parking_lot 0.12` API its members use: [`Mutex`],
//! [`MutexGuard`], [`RwLock`] and its guards, with `parking_lot`'s
//! non-poisoning semantics. A panicking critical section simply releases
//! the lock, which matches what the concurrent-token implementations in
//! `tokensync-core` assume.
//!
//! Like the real `parking_lot`, [`Mutex`] is *not* a wrapper over
//! `std::sync::Mutex`: it is a word-sized test-and-test-and-set lock with
//! an inline uncontended fast path (one `compare_exchange` to lock, one
//! store to unlock), a short bounded spin for the
//! released-a-few-cycles-ago case, and an OS yield once spinning stops
//! paying. Critical sections in this workspace are a few nanoseconds (a
//! balance update, an allowance-row edit), so the fast path is the whole
//! story and the heavyweight futex/poison machinery of `std` is
//! measurable overhead — the shim exists to keep lock cost out of the
//! benchmark signal, exactly like its upstream.

#![deny(rustdoc::broken_intra_doc_links)]

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()`.
pub struct Mutex<T: ?Sized> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// Safety: the lock protocol guarantees at most one `MutexGuard` exists at
// a time, so handing `&mut T` across threads is exclusive; `T: Send` is
// required exactly as for `std::sync::Mutex`.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Consume the mutex and return the guarded value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.lock_contended();
        }
        MutexGuard {
            lock: self,
            _not_auto_send_sync: PhantomData,
        }
    }

    /// The slow path: spin briefly on a relaxed read (test-and-test-and-
    /// set keeps the cache line shared while the lock is held), then
    /// yield to the scheduler — on an oversubscribed core the holder
    /// cannot progress until we do.
    #[cold]
    fn lock_contended(&self) {
        let mut spins = 0u32;
        loop {
            if !self.locked.load(Ordering::Relaxed)
                && self
                    .locked
                    .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Acquire the lock if it is free, without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        // NOT `then_some`: its argument is built eagerly, and a guard
        // constructed on the failure path would unlock the mutex (for the
        // thread that actually holds it) when dropped.
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(MutexGuard {
                lock: self,
                _not_auto_send_sync: PhantomData,
            })
        } else {
            None
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// Suppresses the auto `Send`/`Sync` impls (the raw-pointer marker is
    /// neither): without this, `&Mutex<T>` being `Sync` for every
    /// `T: Send` would leak an auto-`Sync` guard over non-`Sync` payloads
    /// like `Cell`, letting safe code alias them across threads. The
    /// explicit impl below restores `Sync` exactly when `T: Sync`,
    /// matching `std` and real `parking_lot`.
    _not_auto_send_sync: PhantomData<*const ()>,
}

// Safety: a shared guard only hands out `&T`, which is safe to share
// across threads precisely when `T: Sync`.
unsafe impl<T: ?Sized + Sync> Sync for MutexGuard<'_, T> {}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // Release on drop — including unwinds: a panicking critical
        // section frees the lock (parking_lot semantics, no poisoning).
        self.lock.locked.store(false, Ordering::Release);
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // Safety: constructing a guard requires winning the lock, so
        // access is exclusive until `drop`.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as for `deref`.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning accessors.
///
/// Reader-writer state is not on any benchmark's hot path, so this one
/// stays a thin layer over `std::sync::RwLock` (poison swallowed via
/// [`PoisonError::into_inner`]).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_mutual_exclusion_under_threads() {
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *counter.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 40_000);
    }

    #[test]
    fn mutex_released_on_panic() {
        let lock = Arc::new(Mutex::new(5));
        let inner = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = inner.lock();
            panic!("poisoning should not stick");
        })
        .join();
        // parking_lot semantics: the lock is free again, value intact.
        assert_eq!(*lock.lock(), 5);
    }

    #[test]
    fn try_lock_reports_contention() {
        let lock = Mutex::new(1);
        let guard = lock.lock();
        assert!(lock.try_lock().is_none());
        // The failed attempt must not have released the held lock.
        assert!(lock.try_lock().is_none());
        drop(guard);
        assert_eq!(*lock.try_lock().unwrap(), 1);
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut lock = Mutex::new(7);
        *lock.get_mut() += 1;
        assert_eq!(lock.into_inner(), 8);
    }

    #[test]
    fn rwlock_roundtrip() {
        let lock = RwLock::new(3);
        {
            let r1 = lock.read();
            let r2 = lock.read(); // concurrent readers allowed
            assert_eq!(*r1 + *r2, 6);
        }
        *lock.write() += 1;
        assert_eq!(*lock.read(), 4);
        let mut second = RwLock::new(1);
        *second.get_mut() += 1;
        assert_eq!(second.into_inner(), 2);
    }
}

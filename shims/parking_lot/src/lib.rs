//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the `parking_lot 0.12` API its members use: [`Mutex`],
//! [`MutexGuard`], [`RwLock`] and its guards, with `parking_lot`'s
//! non-poisoning semantics layered over `std::sync`. A panicking critical
//! section simply releases the lock (poison is swallowed via
//! `PoisonError::into_inner`), which matches what the concurrent-token
//! implementations in `tokensync-core` assume.

#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire the lock if it is free, without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning accessors.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poison, the next lock() succeeds.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

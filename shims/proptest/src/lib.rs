//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the `proptest 1.x` API its property suites use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` and `boxed`,
//! * integer-range and tuple strategies, [`strategy::Just`], and
//!   [`strategy::Union`] (backing [`prop_oneof!`]),
//! * [`collection::vec`] with exact, half-open, or inclusive size ranges,
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], and [`prop_assert_ne!`] macros.
//!
//! Differences from real proptest: generation is purely random (no
//! shrinking on failure), and each `proptest!` test runs a fixed number of
//! cases (default 64, override with `PROPTEST_CASES`) from a seed derived
//! from the test name, so failures reproduce deterministically.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Run each contained `#[test]` function over many generated cases.
///
/// Supports the `fn name(pattern in strategy, ...) { body }` form used
/// throughout this workspace.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                let mut __rng =
                    $crate::test_runner::rng_for_test(stringify!($name));
                // Build each strategy once (bound to its arg name, then
                // shadowed per case by the generated value).
                let ($($arg,)+) = ($($strat,)+);
                for __case in 0..cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&$arg, &mut __rng);
                    )+
                    // One closure per case so `prop_assume!` can skip the
                    // case with a plain `return`.
                    (move || { $body })();
                }
            }
        )*
    };
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Skip the current case unless `cond` holds (no rejection accounting;
/// the case simply counts as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

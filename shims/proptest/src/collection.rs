//! Collection strategies (`vec` with exact or ranged sizes).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A number of elements: exact (`3`), half-open (`0..60`), or inclusive
/// (`1..=5`).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for a `Vec` whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`](fn@vec).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::vec;
    use crate::strategy::Strategy;
    use crate::test_runner::rng_for_test;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = rng_for_test("sizes");
        let exact = vec(0u64..4, 3);
        let ranged = vec(0u64..4, 0..60);
        for _ in 0..100 {
            assert_eq!(exact.generate(&mut rng).len(), 3);
            assert!(ranged.generate(&mut rng).len() < 60);
        }
    }
}

//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::rc::Rc;

/// A recipe for generating values of an associated type.
///
/// Unlike real proptest there is no shrinking: `generate` draws one value
/// from the strategy using the supplied deterministic RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Erase the concrete strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Object-safe mirror of [`Strategy`], backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Uniform choice among alternatives; the expansion of [`crate::prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let lo = self.start as u32;
        let hi = self.end as u32;
        loop {
            if let Some(c) = char::from_u32(rng.gen_range(lo..hi)) {
                return c;
            }
        }
    }
}

impl Strategy for bool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = rng_for_test("compose");
        let strat = (0usize..4, 10u64..20).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((10..24).contains(&v));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = rng_for_test("union");
        let strat = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }
}

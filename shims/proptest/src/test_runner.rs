//! Deterministic RNG plumbing for the [`crate::proptest!`] macro.

pub use rand::rngs::StdRng as TestRng;
use rand::SeedableRng;

/// Number of cases each `proptest!` test runs; override with the
/// `PROPTEST_CASES` environment variable.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A generator seeded from the test name (FNV-1a), so every run of a given
/// test sees the same case sequence.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

//! Deterministic RNG plumbing for the [`crate::proptest!`] macro.

pub use rand::rngs::StdRng as TestRng;
use rand::SeedableRng;

/// Number of cases each `proptest!` test runs; override with the
/// `PROPTEST_CASES` environment variable.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A generator seeded from the test name (FNV-1a), so every run of a given
/// test sees the same case sequence. The optional `PROPTEST_SEED_OFFSET`
/// environment variable (default 0, which reproduces the unoffset
/// sequence bit-for-bit) shifts every test onto a disjoint case
/// sequence — CI fault matrices set one offset per leg so the legs
/// explore different scenario slices, each still reproducible from its
/// `(test name, offset)` pair.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let offset = std::env::var("PROPTEST_SEED_OFFSET")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    TestRng::seed_from_u64(hash ^ offset.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

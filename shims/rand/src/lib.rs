//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *exact* subset of the `rand 0.8` API its members use:
//!
//! * [`SeedableRng::seed_from_u64`] / [`rngs::StdRng`] — a deterministic
//!   xoshiro256++ generator seeded through SplitMix64,
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges,
//! * [`Rng::gen_bool`].
//!
//! Determinism is a feature here, not a compromise: every simulation and
//! workload in the workspace seeds its generator explicitly so that
//! experiment tables are reproducible run-to-run.

#![deny(rustdoc::broken_intra_doc_links)]

/// A source of `u64` random words; the base trait [`Rng`] builds on.
pub trait RngCore {
    /// Produce the next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// Panics if the range is empty, matching `rand`'s contract.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (which must lie in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        // 53 high bits -> uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that [`Rng::gen_range`] can sample a `T` from.
///
/// Exactly two blanket impls exist (half-open and inclusive ranges over
/// [`SampleUniform`] element types) so that type inference unifies the
/// range's element type with the expected result type the way real
/// `rand` does.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// Uniform draw from `lo..hi` (or `lo..=hi` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as $wide) - (lo as $wide) + (inclusive as $wide);
                assert!(span > 0, "gen_range: empty range");
                let draw = (rng.next_u64() as u128) % (span as u128);
                (lo as $wide).wrapping_add(draw as $wide) as $t
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => i128, u16 => i128, u32 => i128, u64 => i128, usize => i128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128
);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (API-compatible with
    /// `rand::rngs::StdRng` for the subset this workspace uses).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn reversed_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(5u64..3);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

//! # tokensync
//!
//! A Rust reproduction of **“On the Synchronization Power of Token Smart
//! Contracts”** (Alpos, Cachin, Marson, Zanolini — ICDCS 2021): ERC20
//! tokens modelled as shared objects, their *state-dependent* consensus
//! number, the constructions that realize it (Algorithms 1 and 2), an
//! exhaustive model checker for the theorems, and message-passing
//! protocols that exploit the result.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`spec`] | `tokensync-spec` | object formalism, histories, linearizability checker |
//! | [`registers`] | `tokensync-registers` | atomic MRMW registers |
//! | [`consensus`] | `tokensync-consensus` | consensus objects, universal construction |
//! | [`kat`] | `tokensync-kat` | k-shared asset transfer (Definition 1) |
//! | [`core`] | `tokensync-core` | ERC20 object, Section 5 analysis, Algorithms 1 & 2, token standards |
//! | [`mc`] | `tokensync-mc` | explorer, valency analysis, commutativity sweep, census |
//! | [`net`] | `tokensync-net` | simulator, reliable broadcast, payment + dynamic token protocols |
//! | [`pipeline`] | `tokensync-pipeline` | standard-generic commutativity-aware batched execution engine (ERC20/721/1155) |
//! | [`store`] | `tokensync-store` | durable serving: write-ahead commit log, snapshots, crash recovery |
//! | [`replica`] | `tokensync-replica` | replicated serving: WAL shipping, fault injection, quorum acks, failover |
//! | [`obs`] | `tokensync-obs` | observability: counters/gauges, latency histograms, span ring, metrics exposition |
//! | [`server`] | `tokensync-server` | TCP serving: CRC-framed wire protocol, bounded admission, commit-resolved acks |
//!
//! ## Quickstart
//!
//! ```
//! use tokensync::core::analysis::consensus_number_bounds;
//! use tokensync::core::erc20::Erc20Token;
//! use tokensync::spec::{AccountId, ProcessId};
//!
//! let alice = ProcessId::new(0);
//! let mut token = Erc20Token::deploy(3, alice, 10);
//!
//! // Freshly deployed: consensus number 1, like a plain cryptocurrency.
//! assert_eq!(consensus_number_bounds(token.state()).exact(), Some(1));
//!
//! // One approve later the object is strictly stronger:
//! token.approve(alice, ProcessId::new(1), 6)?;
//! assert_eq!(consensus_number_bounds(token.state()).exact(), Some(2));
//! # Ok::<(), tokensync::core::TokenError>(())
//! ```
//!
//! ## Serving examples
//!
//! The pipeline executes commuting operations in parallel waves
//! (walkthrough: docs/pipeline.md in the repository):
//!
//! ```
//! use tokensync::core::erc20::{Erc20Op, Erc20Spec, Erc20State};
//! use tokensync::core::shared::{ConcurrentObject, ShardedErc20};
//! use tokensync::pipeline::{run_script, PipelineConfig};
//! use tokensync::spec::{AccountId, ProcessId};
//!
//! let initial = Erc20State::from_balances(vec![10; 16]);
//! let token = ShardedErc20::from_state(initial.clone());
//! // 8 owner-disjoint transfers: fully commuting, one wide wave.
//! let script: Vec<(ProcessId, Erc20Op)> = (0..8)
//!     .map(|i| (ProcessId::new(i), Erc20Op::Transfer {
//!         to: AccountId::new(8 + i),
//!         value: 1,
//!     }))
//!     .collect();
//! let run = run_script(&token, &script, &PipelineConfig::default());
//! assert!(run.stats.wave_parallelism() > 1.0);
//! // The commit log is a verified linearization: replaying it against
//! // the sequential oracle rebuilds exactly the served state.
//! assert_eq!(run.log.replay(&Erc20Spec::new(initial)).unwrap(), token.snapshot());
//! ```
//!
//! The identical engine serves ERC721 — the standard is a type
//! parameter, not a fork:
//!
//! ```
//! use tokensync::core::shared::ConcurrentObject;
//! use tokensync::core::standards::erc721::{Erc721Op, Erc721State, ShardedErc721, TokenId};
//! use tokensync::pipeline::{run_script, PipelineConfig};
//! use tokensync::spec::ProcessId;
//!
//! let nft = ShardedErc721::from_state(Erc721State::minted_round_robin(8, 1000, 8));
//! let script: Vec<(ProcessId, Erc721Op)> = (0..8)
//!     .map(|i| (ProcessId::new(i), Erc721Op::TransferFrom {
//!         from: ProcessId::new(i),
//!         to: ProcessId::new((i + 1) % 8),
//!         token: TokenId::new(i),
//!     }))
//!     .collect();
//! let run = run_script(&nft, &script, &PipelineConfig::default());
//! assert!(run.stats.wave_parallelism() > 1.0);
//! assert_eq!(nft.snapshot().owner_of(TokenId::new(0)), Some(ProcessId::new(1)));
//! ```
//!
//! ERC1155 batch transfers are atomic and footprint the union of their
//! rows:
//!
//! ```
//! use tokensync::core::shared::ConcurrentObject;
//! use tokensync::core::standards::erc1155::{Erc1155Op, Erc1155Resp, Erc1155State, ShardedErc1155, TypeId};
//! use tokensync::spec::{AccountId, ProcessId};
//!
//! let multi = ShardedErc1155::from_state(Erc1155State::deploy(4, ProcessId::new(0), &[10, 5]));
//! let resp = multi.apply(ProcessId::new(0), &Erc1155Op::BatchTransfer {
//!     from: AccountId::new(0),
//!     to: AccountId::new(1),
//!     entries: vec![(TypeId::new(0), 3), (TypeId::new(1), 4)],
//! });
//! assert_eq!(resp, Erc1155Resp::TRUE);
//! assert_eq!(multi.snapshot().balance_of(AccountId::new(1), TypeId::new(1)), 4);
//! assert_eq!(multi.total_supply(TypeId::new(0)), 10); // lock-free: supply is Δ-invariant
//! ```
//!
//! The conflict relation the scheduler uses is the paper's
//! commutativity analysis, reified as per-op cell footprints:
//!
//! ```
//! use tokensync::core::analysis::footprints_conflict;
//! use tokensync::core::erc20::Erc20Op;
//! use tokensync::spec::{AccountId, ProcessId};
//!
//! let w1 = (ProcessId::new(1), Erc20Op::TransferFrom {
//!     from: AccountId::new(0), to: AccountId::new(1), value: 1,
//! });
//! let w2 = (ProcessId::new(2), Erc20Op::TransferFrom {
//!     from: AccountId::new(0), to: AccountId::new(2), value: 1,
//! });
//! // Two withdrawals racing one source account must serialize…
//! assert!(footprints_conflict((w1.0, &w1.1), (w2.0, &w2.1)));
//! // …but a supply read commutes with everything (supply is invariant).
//! let read = (ProcessId::new(3), Erc20Op::TotalSupply);
//! assert!(!footprints_conflict((w1.0, &w1.1), (read.0, &read.1)));
//! ```
//!
//! Correctness is always arbitrated by the linearizability checker:
//!
//! ```
//! use tokensync::core::erc20::{Erc20Op, Erc20Resp, Erc20Spec, Erc20State};
//! use tokensync::spec::{check_linearizable, History, AccountId, ObjectType, ProcessId};
//!
//! let spec = Erc20Spec::new(Erc20State::with_deployer(2, ProcessId::new(0), 5));
//! let history = History::from_sequential(vec![
//!     (ProcessId::new(0), Erc20Op::Transfer { to: AccountId::new(1), value: 3 }, Erc20Resp::TRUE),
//!     (ProcessId::new(1), Erc20Op::BalanceOf { account: AccountId::new(1) }, Erc20Resp::Amount(3)),
//! ]);
//! check_linearizable(&spec, &spec.initial_state(), &history).expect("linearizes");
//! ```
//!
//! Since PR 5 the stack is durable: the commit stream write-ahead-logs
//! through a [`store::Store`] sink, and [`store::recover`] rebuilds a
//! live object from disk alone (formats in docs/persistence.md):
//!
//! ```
//! use tokensync::core::erc20::{Erc20Op, Erc20State};
//! use tokensync::core::shared::{ConcurrentObject, ShardedErc20};
//! use tokensync::pipeline::{run_script_with_sink, PipelineConfig};
//! use tokensync::spec::{AccountId, ProcessId};
//! use tokensync::store::{recover, Store, StoreConfig};
//!
//! let dir = std::env::temp_dir().join(format!("tokensync-facade-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let genesis = Erc20State::from_balances(vec![10; 4]);
//! let token = ShardedErc20::from_state(genesis.clone());
//! let mut store: Store<ShardedErc20> =
//!     Store::create(&dir, &genesis, StoreConfig::default()).unwrap();
//! let script = vec![(ProcessId::new(0), Erc20Op::Transfer {
//!     to: AccountId::new(1),
//!     value: 4,
//! })];
//! run_script_with_sink(&token, &script, &PipelineConfig::default(), &mut store);
//! store.close().unwrap();
//! // Crash. Recover from disk: snapshot + verified log replay.
//! let recovered = recover::<ShardedErc20>(&dir).unwrap();
//! assert_eq!(recovered.object.snapshot(), token.snapshot());
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! The persistence layer rides a canonical binary codec — encode →
//! decode is the identity and re-encoding is byte-identical:
//!
//! ```
//! use tokensync::core::codec::Codec;
//! use tokensync::core::erc20::Erc20State;
//! use tokensync::spec::ProcessId;
//!
//! let mut q = Erc20State::with_deployer(4, ProcessId::new(0), 100);
//! q.approve(ProcessId::new(0), ProcessId::new(2), 7).unwrap();
//! let bytes = q.encode();
//! let mut input = bytes.as_slice();
//! assert_eq!(Erc20State::decode(&mut input).unwrap(), q);
//! assert!(input.is_empty());
//! ```
//!
//! Sparse state is canonical — a revoked approval leaves no trace, so
//! derived equality is mathematical equality of `α` (the checker, the
//! model checker and the codec all rely on this):
//!
//! ```
//! use tokensync::core::erc20::SpenderMap;
//!
//! let mut row = SpenderMap::new();
//! row.set(3, 10);
//! row.set(3, 0); // revocation removes the entry entirely
//! assert_eq!(row, SpenderMap::new());
//! assert_eq!(row.get(3), 0); // absent reads as zero
//! ```
//!
//! And the consensus number is dynamic — revocation hands power back:
//!
//! ```
//! use tokensync::core::analysis::consensus_number_bounds;
//! use tokensync::core::erc20::Erc20Token;
//! use tokensync::spec::ProcessId;
//!
//! let alice = ProcessId::new(0);
//! let mut token = Erc20Token::deploy(3, alice, 10);
//! token.approve(alice, ProcessId::new(1), 6)?;
//! assert_eq!(consensus_number_bounds(token.state()).exact(), Some(2));
//! token.approve(alice, ProcessId::new(1), 0)?; // revoke
//! assert_eq!(consensus_number_bounds(token.state()).exact(), Some(1));
//! # Ok::<(), tokensync::core::TokenError>(())
//! ```
//!
//! ## Where to look
//!
//! * Consensus **from** a token: [`core::token_consensus::TokenConsensus`]
//!   (Algorithm 1 / Theorem 2).
//! * The restricted token **from** k-AT:
//!   [`core::emulation::RestrictedToken`] (Algorithm 2 / Theorem 4).
//! * Machine-checked impossibility boundaries: [`mc`] (Theorem 3).
//! * Consensus-free payments and the Section 7 dynamic protocol: [`net`].
//! * The analysis *exploited* as a serving path — batched, wave-parallel
//!   execution with a replayable commit log, one engine for every
//!   footprinted standard (ERC20, ERC721, ERC1155): [`pipeline`].
//! * The serving path made *restartable* — CRC-framed write-ahead
//!   logging of the commit stream, versioned snapshots, and verified
//!   crash recovery back to a live sharded object: [`store`] (see
//!   docs/persistence.md).
//! * The serving path made *replicated* — the WAL shipped
//!   byte-identically to followers over a fault-injecting simulated
//!   network, with epoch fencing, quorum acknowledgement and
//!   deterministic failover: [`replica`] (see docs/replication.md).
//! * The serving path put *on the network* — a TCP front end speaking a
//!   CRC-framed binary protocol over the same codec the WAL persists,
//!   with bounded admission and acks resolved at wave commit:
//!   [`server`] (see docs/server.md).
//! * Every table/figure of the evaluation: `cargo run -p
//!   tokensync-experiments --bin e1_lower_bound` … `e8_standards`, and
//!   `cargo bench -p tokensync-bench`; see README.md and ARCHITECTURE.md.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub use tokensync_consensus as consensus;
pub use tokensync_core as core;
pub use tokensync_kat as kat;
pub use tokensync_mc as mc;
pub use tokensync_net as net;
pub use tokensync_obs as obs;
pub use tokensync_pipeline as pipeline;
pub use tokensync_registers as registers;
pub use tokensync_replica as replica;
pub use tokensync_server as server;
pub use tokensync_spec as spec;
pub use tokensync_store as store;

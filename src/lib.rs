//! # tokensync
//!
//! A Rust reproduction of **“On the Synchronization Power of Token Smart
//! Contracts”** (Alpos, Cachin, Marson, Zanolini — ICDCS 2021): ERC20
//! tokens modelled as shared objects, their *state-dependent* consensus
//! number, the constructions that realize it (Algorithms 1 and 2), an
//! exhaustive model checker for the theorems, and message-passing
//! protocols that exploit the result.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`spec`] | `tokensync-spec` | object formalism, histories, linearizability checker |
//! | [`registers`] | `tokensync-registers` | atomic MRMW registers |
//! | [`consensus`] | `tokensync-consensus` | consensus objects, universal construction |
//! | [`kat`] | `tokensync-kat` | k-shared asset transfer (Definition 1) |
//! | [`core`] | `tokensync-core` | ERC20 object, Section 5 analysis, Algorithms 1 & 2, token standards |
//! | [`mc`] | `tokensync-mc` | explorer, valency analysis, commutativity sweep, census |
//! | [`net`] | `tokensync-net` | simulator, reliable broadcast, payment + dynamic token protocols |
//! | [`pipeline`] | `tokensync-pipeline` | standard-generic commutativity-aware batched execution engine (ERC20/721/1155) |
//!
//! ## Quickstart
//!
//! ```
//! use tokensync::core::analysis::consensus_number_bounds;
//! use tokensync::core::erc20::Erc20Token;
//! use tokensync::spec::{AccountId, ProcessId};
//!
//! let alice = ProcessId::new(0);
//! let mut token = Erc20Token::deploy(3, alice, 10);
//!
//! // Freshly deployed: consensus number 1, like a plain cryptocurrency.
//! assert_eq!(consensus_number_bounds(token.state()).exact(), Some(1));
//!
//! // One approve later the object is strictly stronger:
//! token.approve(alice, ProcessId::new(1), 6)?;
//! assert_eq!(consensus_number_bounds(token.state()).exact(), Some(2));
//! # Ok::<(), tokensync::core::TokenError>(())
//! ```
//!
//! ## Where to look
//!
//! * Consensus **from** a token: [`core::token_consensus::TokenConsensus`]
//!   (Algorithm 1 / Theorem 2).
//! * The restricted token **from** k-AT:
//!   [`core::emulation::RestrictedToken`] (Algorithm 2 / Theorem 4).
//! * Machine-checked impossibility boundaries: [`mc`] (Theorem 3).
//! * Consensus-free payments and the Section 7 dynamic protocol: [`net`].
//! * The analysis *exploited* as a serving path — batched, wave-parallel
//!   execution with a replayable commit log, one engine for every
//!   footprinted standard (ERC20, ERC721, ERC1155): [`pipeline`].
//! * Every table/figure of the evaluation: `cargo run -p
//!   tokensync-experiments --bin e1_lower_bound` … `e8_standards`, and
//!   `cargo bench -p tokensync-bench`; see README.md and ARCHITECTURE.md.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub use tokensync_consensus as consensus;
pub use tokensync_core as core;
pub use tokensync_kat as kat;
pub use tokensync_mc as mc;
pub use tokensync_net as net;
pub use tokensync_pipeline as pipeline;
pub use tokensync_registers as registers;
pub use tokensync_spec as spec;

//! End-to-end: ONE pipeline engine serving three token standards,
//! through the facade.
//!
//! The tentpole composition: the identical generic
//! ingest → analyze → schedule → execute → commit machinery — no
//! per-standard copies — drives an ERC20 `ShardedErc20`, an ERC721
//! `ShardedErc721` and an ERC1155 `ShardedErc1155`, each checked the
//! same way: wave parallelism above 1 on its owner-disjoint regime,
//! deterministic serialization on its contended regime, and a commit
//! log that replays against the standard's sequential oracle and
//! passes the Wing–Gong–Lowe checker.

use std::sync::Arc;
use std::time::Duration;

use tokensync::core::erc20::{Erc20Op, Erc20Spec, Erc20State};
use tokensync::core::shared::{ConcurrentObject, ShardedErc20};
use tokensync::core::standards::erc1155::{
    Erc1155Op, Erc1155Spec, Erc1155State, ShardedErc1155, TypeId,
};
use tokensync::core::standards::erc721::{
    Erc721Op, Erc721Resp, Erc721Spec, Erc721State, ShardedErc721, TokenId,
};
use tokensync::pipeline::{run_script, BatchConfig, Pipeline, PipelineConfig, ScheduleConfig};
use tokensync::spec::{check_linearizable, AccountId, ObjectType, ProcessId};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn a(i: usize) -> AccountId {
    AccountId::new(i)
}

/// The shared acceptance check: run the script, demand the expected
/// parallelism shape, and verify the commit log three ways.
fn run_and_verify<T, S>(
    object: &T,
    spec: &S,
    script: &[(ProcessId, T::Op)],
    batch: usize,
) -> tokensync::pipeline::PipelineStats
where
    T: ConcurrentObject,
    S: ObjectType<Op = T::Op, Resp = T::Resp, State = T::State>,
    T::State: Eq + std::hash::Hash,
{
    let cfg = PipelineConfig {
        batch: BatchConfig {
            max_ops: batch,
            ..BatchConfig::default()
        },
        schedule: ScheduleConfig {
            max_parallel_waves: 4,
        },
        ..PipelineConfig::default()
    };
    let run = run_script(object, script, &cfg);
    assert_eq!(run.stats.ops as usize, script.len());
    let committed = run.log.replay(spec).expect("responses consistent");
    assert_eq!(committed, object.snapshot(), "log diverged from object");
    check_linearizable(spec, &spec.initial_state(), &run.log.to_history())
        .expect("commit log linearizes");
    // The pipeline only reorders commuting ops: final state matches the
    // submission-order sequential replay exactly.
    let mut sequential = spec.initial_state();
    for (caller, op) in script {
        spec.apply(&mut sequential, *caller, op);
    }
    assert_eq!(committed, sequential);
    run.stats
}

#[test]
fn one_engine_serves_all_three_standards_with_wave_parallelism() {
    let n = 32;

    // ERC20: owner-disjoint transfers.
    let erc20_initial = Erc20State::from_balances(vec![100; n]);
    let erc20 = ShardedErc20::from_state(erc20_initial.clone());
    let erc20_script: Vec<(ProcessId, Erc20Op)> = (0..64)
        .map(|i| {
            let src = i % (n / 2);
            (
                p(src),
                Erc20Op::Transfer {
                    to: a(n / 2 + src),
                    value: 1,
                },
            )
        })
        .collect();
    let stats = run_and_verify(&erc20, &Erc20Spec::new(erc20_initial), &erc20_script, n / 2);
    assert!(stats.wave_parallelism() > 1.0, "erc20 waves too narrow");
    assert_eq!(stats.serial_ops, 0);

    // ERC721: owner-disjoint NFT transfers (distinct token ids).
    let nft_initial = Erc721State::minted_round_robin(n, 256, n);
    let nft = ShardedErc721::from_state(nft_initial.clone());
    let nft_script: Vec<(ProcessId, Erc721Op)> = (0..n)
        .map(|i| {
            (
                p(i),
                Erc721Op::TransferFrom {
                    from: p(i),
                    to: p((i + 1) % n),
                    token: TokenId::new(i),
                },
            )
        })
        .collect();
    let stats = run_and_verify(&nft, &Erc721Spec::new(nft_initial), &nft_script, n / 2);
    assert!(stats.wave_parallelism() > 1.0, "erc721 waves too narrow");
    assert_eq!(stats.serial_ops, 0);

    // ERC1155: batches with pairwise non-intersecting cell sets.
    let multi_initial = {
        let mut s = Erc1155State::deploy(n, p(0), &[0, 0, 0]);
        for i in 0..n {
            for t in 0..3 {
                s.set_balance(a(i), TypeId::new(t), 50);
            }
        }
        s
    };
    let multi = ShardedErc1155::from_state(multi_initial.clone());
    let multi_script: Vec<(ProcessId, Erc1155Op)> = (0..64)
        .map(|i| {
            let src = i % (n / 2);
            (
                p(src),
                Erc1155Op::BatchTransfer {
                    from: a(src),
                    to: a(n / 2 + src),
                    entries: vec![(TypeId::new(0), 1), (TypeId::new(1), 2)],
                },
            )
        })
        .collect();
    let stats = run_and_verify(
        &multi,
        &Erc1155Spec::new(multi_initial),
        &multi_script,
        n / 2,
    );
    assert!(stats.wave_parallelism() > 1.0, "erc1155 waves too narrow");
    assert_eq!(stats.serial_ops, 0);
}

#[test]
fn contended_nft_claims_serialize_but_stay_correct() {
    // The §6 race, served: every process claims the same two tokens.
    // The schedule must never let two claims share a wave, and the
    // outcome must match the sequential replay exactly — deterministic
    // winner, losers rejected.
    let n = 8;
    let mut initial = Erc721State::minted_round_robin(n, 16, 2);
    for i in 1..n {
        initial.set_operator(p(0), p(i), true);
    }
    let nft = ShardedErc721::from_state(initial.clone());
    let script: Vec<(ProcessId, Erc721Op)> = (0..24)
        .map(|i| {
            (
                p(i % n),
                Erc721Op::TransferFrom {
                    from: p(0),
                    to: p(i % n),
                    token: TokenId::new(i % 2),
                },
            )
        })
        .collect();
    let stats = run_and_verify(&nft, &Erc721Spec::new(initial), &script, 12);
    assert!(stats.serial_ops > 0, "hot tokens must spill serial");
    // Deterministic winners per the submission order: on token 0 the
    // i = 0 claim is the owner's self-transfer (ownership unchanged), so
    // the i = 2 claim by p2 captures it and every later claim fails; on
    // token 1 the claimed owner p0 never holds it, so it stays with p1.
    let snap = nft.snapshot();
    assert_eq!(snap.owner_of(TokenId::new(0)), Some(p(2)));
    assert_eq!(snap.owner_of(TokenId::new(1)), Some(p(1)));
}

#[test]
fn erc1155_hot_account_batches_serialize_but_stay_correct() {
    let n = 8;
    let mut initial = Erc1155State::deploy(n, p(0), &[0, 0]);
    initial.set_balance(a(0), TypeId::new(0), 10);
    initial.set_balance(a(0), TypeId::new(1), 10);
    for i in 1..n {
        initial.set_operator(a(0), p(i), true);
    }
    let multi = ShardedErc1155::from_state(initial.clone());
    // Everyone drains account 0 in overlapping batches: cell sets
    // intersect, so the engine serializes them; totals stay exact.
    let script: Vec<(ProcessId, Erc1155Op)> = (0..16)
        .map(|i| {
            (
                p(i % n),
                Erc1155Op::BatchTransfer {
                    from: a(0),
                    to: a(1 + (i % (n - 1))),
                    entries: vec![(TypeId::new(i % 2), 2)],
                },
            )
        })
        .collect();
    let stats = run_and_verify(&multi, &Erc1155Spec::new(initial), &script, 16);
    assert!(
        stats.serial_ops > 0 || stats.wave_parallelism() < 2.0,
        "hot-account batches must not run wide"
    );
    let snap = multi.snapshot();
    assert_eq!(snap.total_supply(TypeId::new(0)), 10);
    assert_eq!(snap.total_supply(TypeId::new(1)), 10);
}

#[test]
fn spawned_engine_serves_concurrent_nft_clients() {
    // The serving shape over a non-ERC20 standard: concurrent clients
    // submit through the bounded intake, the background engine batches
    // and commits, and the log is a checkable linearization.
    let n = 8;
    let initial = Erc721State::minted_round_robin(n, 64, 32);
    let nft = Arc::new(ShardedErc721::from_state(initial.clone()));
    let cfg = PipelineConfig {
        batch: BatchConfig {
            max_ops: 16,
            max_wait: Duration::from_millis(1),
            queue_depth: 64,
            ..BatchConfig::default()
        },
        ..PipelineConfig::default()
    };
    let (client, handle) = Pipeline::spawn(Arc::clone(&nft), cfg);
    crossbeam::scope(|s| {
        for t in 0..4usize {
            let client = client.clone();
            s.spawn(move |_| {
                for i in 0..10 {
                    // Each client moves its own tokens (t, t+8, …, t+24
                    // round-robin) — mostly commuting, occasionally
                    // racing reads.
                    let op = if i % 5 == 4 {
                        Erc721Op::OwnerOf {
                            token: TokenId::new(t),
                        }
                    } else {
                        Erc721Op::TransferFrom {
                            from: p(t),
                            to: p(t),
                            token: TokenId::new((t + 8 * (i % 4)) % 32),
                        }
                    };
                    client.submit(p(t), op).expect("engine alive");
                }
            });
        }
    })
    .expect("clients panicked");
    drop(client);
    let run = handle.finish();
    assert_eq!(run.stats.ops, 40);
    let spec = Erc721Spec::new(initial);
    let committed = run.log.replay(&spec).expect("responses consistent");
    assert_eq!(committed, nft.snapshot());
    check_linearizable(&spec, &spec.initial_state(), &run.log.to_history())
        .expect("commit log linearizes");
}

#[test]
fn erc721_self_transfer_keeps_ownership() {
    // Sanity on the spawned-engine fixture's op shape: a self-transfer
    // by the owner succeeds and leaves ownership unchanged (but clears
    // the single-use approval, per ERC721).
    let initial = Erc721State::minted_round_robin(4, 8, 4);
    let nft = ShardedErc721::from_state(initial);
    let ok = nft.apply(
        p(1),
        &Erc721Op::TransferFrom {
            from: p(1),
            to: p(1),
            token: TokenId::new(1),
        },
    );
    assert_eq!(ok, Erc721Resp::TRUE);
    assert_eq!(nft.snapshot().owner_of(TokenId::new(1)), Some(p(1)));
}

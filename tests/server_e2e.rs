//! End-to-end through the facade: the TCP server fronting the durable
//! pipeline stack, across all three standards. The headline lifecycle,
//! with durable acks on:
//!
//! 1. spawn a server over a `Store`-sinked pipeline on an ephemeral
//!    port, drive it with concurrent clients,
//! 2. crash mid-traffic (clients see their connections die; the store is
//!    abandoned without a clean close),
//! 3. recover from disk alone — every response that was **acked** must
//!    be covered by the recovered log (durable acks mean exactly that),
//! 4. re-serve on the recovered object and verify the continuation
//!    against the sequential oracle, response by response.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use tokensync::core::erc20::{Erc20Op, Erc20Spec, Erc20State};
use tokensync::core::shared::{ConcurrentObject, ShardedErc20};
use tokensync::core::standards::erc1155::{
    Erc1155Op, Erc1155Resp, Erc1155State, ShardedErc1155, TypeId,
};
use tokensync::core::standards::erc721::{Erc721Op, Erc721State, ShardedErc721, TokenId};
use tokensync::obs::Registry;
use tokensync::server::{Client, Reply, Server, ServerConfig};
use tokensync::spec::{AccountId, ObjectType, ProcessId};
use tokensync::store::{recover, Store, StoreConfig};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tokensync-server-e2e-{name}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn server_config(durable_acks: bool) -> ServerConfig {
    let mut cfg = ServerConfig::default();
    cfg.pipeline.batch.max_wait = Duration::from_micros(200);
    cfg.read_poll = Duration::from_millis(10);
    cfg.durable_acks = durable_acks;
    cfg
}

const ACCOUNTS: usize = 32;

#[test]
fn erc20_crash_mid_traffic_recover_reserve() {
    let dir = scratch("erc20");
    let genesis = Erc20State::from_balances(vec![1_000; ACCOUNTS]);
    let token = Arc::new(ShardedErc20::from_state(genesis.clone()));
    let store: Store<ShardedErc20> = Store::create(&dir, &genesis, StoreConfig::default()).unwrap();

    let handle = Server::spawn(
        Arc::clone(&token),
        store,
        server_config(true),
        &Registry::new(),
    )
    .unwrap();
    let addr = handle.addr();

    // Phase 1: four concurrent clients hammer the server until their
    // connections die under them (the crash). Each records how many Ok
    // acks it collected — with durable acks, every one of those is a
    // promise about the disk.
    let workers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let Ok(mut client) = Client::<ShardedErc20>::connect(addr) else {
                    return 0u64;
                };
                let _ = client.set_read_timeout(Some(Duration::from_secs(10)));
                let mut acked = 0u64;
                for i in 0..10_000u64 {
                    let caller = ProcessId::new((w * 7 + i as usize) % ACCOUNTS);
                    let op = match i % 3 {
                        0 => Erc20Op::Transfer {
                            to: AccountId::new((w + i as usize + 1) % ACCOUNTS),
                            value: 1,
                        },
                        1 => Erc20Op::BalanceOf {
                            account: AccountId::new(i as usize % ACCOUNTS),
                        },
                        _ => Erc20Op::Approve {
                            spender: ProcessId::new((i as usize + 3) % ACCOUNTS),
                            value: i % 5,
                        },
                    };
                    match client.call(caller, &op) {
                        Ok(Reply::Ok(_)) => acked += 1,
                        Ok(_) => {}      // Busy/Gone: not a durability promise
                        Err(_) => break, // the crash, as the client sees it
                    }
                }
                acked
            })
        })
        .collect();

    // Let real traffic build up, then crash: stop serving and abandon
    // the store without a clean close — recovery gets only what the
    // durability watermark actually covered.
    std::thread::sleep(Duration::from_millis(400));
    let (run, mut store) = handle.finish();
    store.abandon();
    let acked: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(acked > 0, "no traffic was acked before the crash");

    // Recover from disk alone.
    let recovered = recover::<ShardedErc20>(&dir).unwrap();
    // Durable acks: every acked op is in the recovered log. (Acked ops
    // have distinct sequence numbers, each below the recovered
    // next_seq.)
    assert!(
        acked <= recovered.next_seq,
        "{acked} acks but only {} ops recovered",
        recovered.next_seq
    );
    assert!(
        recovered.next_seq <= run.log.len() as u64,
        "recovered more than was committed"
    );
    // The recovered state is exactly the oracle replay of the committed
    // prefix the disk retained.
    let spec = Erc20Spec::new(genesis);
    let mut oracle = spec.initial_state();
    for entry in &run.log.entries()[..recovered.next_seq as usize] {
        let expected = spec.apply(&mut oracle, entry.caller, &entry.op);
        assert_eq!(expected, entry.resp, "divergence at seq {}", entry.seq);
    }
    assert_eq!(recovered.state, oracle);

    // Phase 2: re-serve on the recovered object, same directory. A
    // single sequential client makes the linearization deterministic, so
    // every response is checked against the oracle exactly.
    let token2 = Arc::new(recovered.object);
    let store2: Store<ShardedErc20> = Store::open(&dir, StoreConfig::default()).unwrap();
    let handle2 = Server::spawn(
        Arc::clone(&token2),
        store2,
        server_config(true),
        &Registry::new(),
    )
    .unwrap();
    let mut client = Client::<ShardedErc20>::connect(handle2.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let spec2 = Erc20Spec::new(recovered.state);
    let mut oracle = spec2.initial_state();
    let phase2_ops = 200u64;
    for i in 0..phase2_ops {
        let caller = ProcessId::new(i as usize % ACCOUNTS);
        let op = if i % 4 == 3 {
            Erc20Op::BalanceOf {
                account: AccountId::new(i as usize % ACCOUNTS),
            }
        } else {
            Erc20Op::Transfer {
                to: AccountId::new((i as usize + 9) % ACCOUNTS),
                value: i % 7,
            }
        };
        let expected = spec2.apply(&mut oracle, caller, &op);
        let reply = client.call(caller, &op).unwrap();
        assert_eq!(
            reply,
            Reply::Ok(expected),
            "op {i} diverged from the oracle"
        );
    }
    drop(client);
    let (run2, store2) = handle2.finish();
    assert_eq!(run2.log.len() as u64, phase2_ops);
    store2.close().unwrap();

    // A final recovery sees the whole continued history.
    let final_rec = recover::<ShardedErc20>(&dir).unwrap();
    assert_eq!(final_rec.next_seq, recovered.next_seq + phase2_ops);
    assert_eq!(final_rec.state, oracle);
    assert_eq!(final_rec.object.snapshot(), token2.snapshot());

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn erc721_served_traffic_survives_restart() {
    let dir = scratch("erc721");
    let genesis = Erc721State::minted_round_robin(16, 512, 64);
    let token = Arc::new(ShardedErc721::from_state(genesis.clone()));
    let store: Store<ShardedErc721> =
        Store::create(&dir, &genesis, StoreConfig::default()).unwrap();
    let handle = Server::spawn(
        Arc::clone(&token),
        store,
        server_config(false),
        &Registry::new(),
    )
    .unwrap();

    // Two concurrent clients: owner-ring transfers (disjoint tokens, so
    // both streams commit in full) and reads.
    let addr = handle.addr();
    let movers: Vec<_> = (0..2)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = Client::<ShardedErc721>::connect(addr).unwrap();
                c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                let mut ok = 0u64;
                for i in 0..32u64 {
                    // Token t is owned by process t % 16; transfer it
                    // onward. Worker w owns the tokens with t % 2 == w,
                    // so the workers never contend.
                    let t = (2 * i + w) % 64;
                    let owner = ProcessId::new(t as usize % 16);
                    let op = Erc721Op::TransferFrom {
                        from: owner,
                        to: owner, // self-transfer: repeatable, always valid
                        token: TokenId::new(t as usize),
                    };
                    match c.call(owner, &op).unwrap() {
                        Reply::Ok(_) => ok += 1,
                        other => panic!("transfer {t} answered {other:?}"),
                    }
                }
                ok
            })
        })
        .collect();
    let committed: u64 = movers.into_iter().map(|m| m.join().unwrap()).sum();
    assert_eq!(committed, 64);

    let (run, store) = handle.finish();
    assert_eq!(run.log.len() as u64, committed);
    store.close().unwrap();

    let recovered = recover::<ShardedErc721>(&dir).unwrap();
    assert_eq!(recovered.next_seq, committed);
    assert_eq!(recovered.object.snapshot(), token.snapshot());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn erc1155_batches_stay_atomic_across_restart() {
    let dir = scratch("erc1155");
    let genesis = Erc1155State::deploy(16, ProcessId::new(0), &[10_000; 4]);
    let token = Arc::new(ShardedErc1155::from_state(genesis.clone()));
    let store: Store<ShardedErc1155> =
        Store::create(&dir, &genesis, StoreConfig::default()).unwrap();
    let handle = Server::spawn(
        Arc::clone(&token),
        store,
        server_config(false),
        &Registry::new(),
    )
    .unwrap();

    let mut c = Client::<ShardedErc1155>::connect(handle.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    // Deployer fans out multi-type batches; some must fail atomically
    // (insufficient balance in one row rolls back the whole batch).
    let deployer = ProcessId::new(0);
    let mut oks = 0u64;
    for i in 0..40usize {
        let op = Erc1155Op::BatchTransfer {
            from: AccountId::new(0),
            to: AccountId::new(1 + i % 15),
            entries: vec![
                (TypeId::new(i % 4), 50),
                (
                    TypeId::new((i + 1) % 4),
                    if i % 5 == 4 { u64::MAX / 2 } else { 25 },
                ),
            ],
        };
        match c.call(deployer, &op).unwrap() {
            Reply::Ok(Erc1155Resp::Bool(true)) => oks += 1,
            Reply::Ok(Erc1155Resp::Bool(false)) => {} // atomic rollback
            other => panic!("batch {i} answered {other:?}"),
        }
    }
    assert!(oks > 0);
    drop(c);
    let (run, store) = handle.finish();
    assert_eq!(run.log.len(), 40);
    store.close().unwrap();

    let recovered = recover::<ShardedErc1155>(&dir).unwrap();
    assert_eq!(recovered.next_seq, 40);
    let state = recovered.object.snapshot();
    assert_eq!(state, token.snapshot());
    // Supply conservation: atomicity means no partial rows ever leaked.
    for t in 0..4 {
        assert_eq!(state.total_supply(TypeId::new(t)), 10_000);
    }
    fs::remove_dir_all(&dir).unwrap();
}

//! End-to-end checks of the replicated-token protocols: the dynamic
//! (Section 7) protocol and the totally ordered baseline must both
//! converge, conserve supply, and — on conflict-free workloads — agree
//! with each other exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tokensync::core::erc20::Erc20State;
use tokensync::net::cmd::TokenCmd;
use tokensync::net::dynamic::DynamicNetwork;
use tokensync::net::ordered::OrderedNetwork;
use tokensync::net::payments::PaymentNetwork;
use tokensync::spec::{AccountId, ProcessId};

const N: usize = 5;

fn initial() -> Erc20State {
    Erc20State::from_balances(vec![1000; N])
}

/// Transfers small enough that every one succeeds: the ops all commute up
/// to per-account FIFO, so both protocols must reach the *same* state.
fn conflict_free_workload(seed: u64) -> Vec<(usize, TokenCmd)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..60)
        .map(|_| {
            let caller = rng.gen_range(0..N);
            (
                caller,
                TokenCmd::Transfer {
                    to: rng.gen_range(0..N),
                    value: rng.gen_range(0..3),
                },
            )
        })
        .collect()
}

#[test]
fn conflict_free_workloads_yield_identical_states() {
    for seed in 0..8 {
        let workload = conflict_free_workload(seed);
        let mut ordered = OrderedNetwork::new(N, initial(), seed);
        let mut dynamic = DynamicNetwork::new(N, initial(), seed.wrapping_add(100));
        for (caller, cmd) in &workload {
            ordered.submit(*caller, *cmd);
            dynamic.submit(*caller, *cmd);
        }
        ordered.run_to_quiescence();
        dynamic.run_to_quiescence();
        assert!(ordered.converged(), "seed {seed}");
        assert!(dynamic.converged(), "seed {seed}");
        assert_eq!(
            ordered.state_at(0),
            dynamic.state_at(0),
            "seed {seed}: commuting workloads must produce identical states"
        );
        assert_eq!(ordered.failed_ops(), 0, "seed {seed}");
    }
}

#[test]
fn mixed_workloads_converge_and_conserve() {
    let mut rng = StdRng::seed_from_u64(7);
    for seed in 0..6 {
        let mut dynamic = DynamicNetwork::new(N, initial(), seed);
        let mut ordered = OrderedNetwork::new(N, initial(), seed);
        for _ in 0..50 {
            let caller = rng.gen_range(0..N);
            let cmd = match rng.gen_range(0..3) {
                0 => TokenCmd::Transfer {
                    to: rng.gen_range(0..N),
                    value: rng.gen_range(0..5),
                },
                1 => TokenCmd::Approve {
                    spender: rng.gen_range(0..N),
                    value: rng.gen_range(0..10),
                },
                _ => TokenCmd::TransferFrom {
                    from: rng.gen_range(0..N),
                    to: rng.gen_range(0..N),
                    value: rng.gen_range(0..5),
                },
            };
            dynamic.submit(caller, cmd);
            ordered.submit(caller, cmd);
        }
        dynamic.run_to_quiescence();
        ordered.run_to_quiescence();
        assert!(dynamic.converged(), "seed {seed}");
        assert!(ordered.converged(), "seed {seed}");
        assert_eq!(dynamic.total_supply(), 1000 * N as u64);
        assert_eq!(ordered.total_supply(), 1000 * N as u64);
    }
}

#[test]
fn dynamic_protocol_spends_allowances_exactly_once() {
    // Two spenders race for the same allowance-constrained funds through
    // the spender group; across many delivery schedules exactly one wins.
    for seed in 0..12 {
        let mut q = initial();
        q.set_balance(AccountId::new(0), 2);
        q.set_allowance(AccountId::new(0), ProcessId::new(1), 2);
        q.set_allowance(AccountId::new(0), ProcessId::new(2), 2);
        let mut net = DynamicNetwork::new(N, q, seed);
        net.submit(
            1,
            TokenCmd::TransferFrom {
                from: 0,
                to: 1,
                value: 2,
            },
        );
        net.submit(
            2,
            TokenCmd::TransferFrom {
                from: 0,
                to: 2,
                value: 2,
            },
        );
        net.run_to_quiescence();
        assert!(net.converged(), "seed {seed}");
        assert_eq!(net.rejected(), 1, "seed {seed}");
        assert_eq!(net.state_at(0).balance(AccountId::new(0)), 0, "seed {seed}");
    }
}

#[test]
fn payment_network_equals_transfer_only_dynamic_run() {
    // The broadcast payment system and the dynamic token agree on
    // transfer-only workloads (the CN = 1 fragment).
    let workload = conflict_free_workload(3);
    let mut pay = PaymentNetwork::new(N, vec![1000; N], 9);
    let mut dynamic = DynamicNetwork::new(N, initial(), 9);
    for (caller, cmd) in &workload {
        if let TokenCmd::Transfer { to, value } = cmd {
            pay.submit_transfer(*caller, *to, *value);
        }
        dynamic.submit(*caller, *cmd);
    }
    pay.run_to_quiescence();
    dynamic.run_to_quiescence();
    assert!(pay.replicas_converged());
    assert!(dynamic.converged());
    let dyn_state = dynamic.state_at(0);
    let dyn_balances: Vec<u64> = (0..N)
        .map(|i| dyn_state.balance(AccountId::new(i)))
        .collect();
    assert_eq!(pay.balances_at(0), dyn_balances);
}

//! Property-based test suites (proptest) over the core invariants.

use proptest::collection::vec;
use proptest::prelude::*;
use tokensync::core::analysis::{
    consensus_number_bounds, enabled_spenders, partition_index, unique_transfers,
};
use tokensync::core::emulation::{within_restriction, RestrictedErc20Spec, RestrictedToken};
use tokensync::core::erc20::{Erc20Op, Erc20Spec, Erc20State};
use tokensync::core::shared::{CoarseErc20, ConcurrentObject, ConcurrentToken, SharedErc20};
use tokensync::spec::{check_linearizable, AccountId, History, ObjectType, ProcessId};

const N: usize = 4;

fn arb_op() -> impl Strategy<Value = Erc20Op> {
    prop_oneof![
        (0..N, 0u64..6).prop_map(|(to, value)| Erc20Op::Transfer {
            to: AccountId::new(to),
            value
        }),
        (0..N, 0..N, 0u64..6).prop_map(|(from, to, value)| Erc20Op::TransferFrom {
            from: AccountId::new(from),
            to: AccountId::new(to),
            value
        }),
        (0..N, 0u64..6).prop_map(|(spender, value)| Erc20Op::Approve {
            spender: ProcessId::new(spender),
            value
        }),
        (0..N).prop_map(|account| Erc20Op::BalanceOf {
            account: AccountId::new(account)
        }),
        (0..N, 0..N).prop_map(|(account, spender)| Erc20Op::Allowance {
            account: AccountId::new(account),
            spender: ProcessId::new(spender)
        }),
        Just(Erc20Op::TotalSupply),
    ]
}

fn arb_script() -> impl Strategy<Value = Vec<(usize, Erc20Op)>> {
    vec((0..N, arb_op()), 0..60)
}

proptest! {
    /// Supply conservation: no operation sequence mints or burns.
    #[test]
    fn supply_is_invariant(script in arb_script(), supply in 0u64..1000) {
        let spec = Erc20Spec::deployed(N, ProcessId::new(0), supply);
        let mut state = spec.initial_state();
        for (caller, op) in &script {
            spec.apply(&mut state, ProcessId::new(*caller), op);
            prop_assert_eq!(state.total_supply(), supply);
        }
    }

    /// σ_q invariants: the owner is always enabled; zero balance means
    /// owner-only; the partition index is the max spender count and the
    /// CN bounds bracket it.
    #[test]
    fn sigma_and_bounds_invariants(script in arb_script(), supply in 0u64..100) {
        let spec = Erc20Spec::deployed(N, ProcessId::new(0), supply);
        let mut state = spec.initial_state();
        for (caller, op) in &script {
            spec.apply(&mut state, ProcessId::new(*caller), op);
        }
        let mut max_sigma = 0;
        for i in 0..N {
            let account = AccountId::new(i);
            let sigma = enabled_spenders(&state, account);
            prop_assert!(sigma.contains(&account.owner()));
            if state.balance(account) == 0 {
                prop_assert_eq!(sigma.len(), 1);
            }
            max_sigma = max_sigma.max(sigma.len());
        }
        prop_assert_eq!(partition_index(&state), max_sigma.max(1));
        let bounds = consensus_number_bounds(&state);
        prop_assert!(1 <= bounds.lower && bounds.lower <= bounds.upper);
        prop_assert_eq!(bounds.upper, partition_index(&state));
    }

    /// U implies positive balance and pairwise-exceeding allowances.
    #[test]
    fn u_predicate_definition(script in arb_script(), supply in 1u64..100) {
        let spec = Erc20Spec::deployed(N, ProcessId::new(0), supply);
        let mut state = spec.initial_state();
        for (caller, op) in &script {
            spec.apply(&mut state, ProcessId::new(*caller), op);
        }
        for i in 0..N {
            let account = AccountId::new(i);
            if unique_transfers(&state, account) {
                let balance = state.balance(account);
                prop_assert!(balance > 0);
                let spenders: Vec<ProcessId> = enabled_spenders(&state, account)
                    .into_iter()
                    .filter(|p| *p != account.owner())
                    .collect();
                if spenders.len() >= 2 {
                    for (x, px) in spenders.iter().enumerate() {
                        for py in &spenders[x + 1..] {
                            prop_assert!(
                                state.allowance(account, *px)
                                    + state.allowance(account, *py)
                                    > balance
                            );
                        }
                    }
                }
            }
        }
    }

    /// Both concurrent implementations replay any script exactly like the
    /// sequential specification.
    #[test]
    fn concurrent_tokens_match_spec_sequentially(script in arb_script()) {
        let initial = Erc20State::from_balances(vec![25; N]);
        let spec = Erc20Spec::new(initial.clone());
        let coarse = CoarseErc20::from_state(initial.clone());
        let fine = SharedErc20::from_state(initial);
        let mut oracle = spec.initial_state();
        for (caller, op) in &script {
            let caller = ProcessId::new(*caller);
            let expected = spec.apply(&mut oracle, caller, op);
            prop_assert_eq!(coarse.apply(caller, op), expected);
            prop_assert_eq!(fine.apply(caller, op), expected);
        }
        prop_assert_eq!(coarse.state_snapshot(), oracle.clone());
        prop_assert_eq!(fine.state_snapshot(), oracle);
    }

    /// Algorithm 2: the emulation tracks its sequential spec on any
    /// script, and every reachable state stays within Q_k.
    #[test]
    fn restricted_token_matches_spec(script in arb_script(), k in 1usize..4) {
        let initial = Erc20State::from_balances(vec![25; N]);
        let spec = RestrictedErc20Spec::new(k, initial.clone());
        let token = RestrictedToken::new(k, initial);
        let mut oracle = spec.initial_state();
        for (caller, op) in &script {
            let caller = ProcessId::new(*caller);
            let expected = spec.apply(&mut oracle, caller, op);
            prop_assert_eq!(token.apply(caller, op), expected);
            prop_assert!(within_restriction(&oracle, k));
        }
        prop_assert_eq!(token.state_snapshot(), oracle);
    }

    /// The linearizability checker accepts every sequential history…
    #[test]
    fn checker_accepts_sequential_histories(script in arb_script()) {
        let script = &script[..script.len().min(30)];
        let spec = Erc20Spec::new(Erc20State::from_balances(vec![9; N]));
        let mut state = spec.initial_state();
        let mut history = History::new();
        for (caller, op) in script {
            let caller = ProcessId::new(*caller);
            let id = history.invoke(caller, op.clone());
            let resp = spec.apply(&mut state, caller, op);
            history.ret(id, resp);
        }
        prop_assert!(check_linearizable(&spec, &spec.initial_state(), &history).is_ok());
    }

    /// …and rejects a history whose recorded balance read was corrupted.
    #[test]
    fn checker_rejects_corrupted_reads(balance in 1u64..50, bogus in 51u64..99) {
        let spec = Erc20Spec::new(Erc20State::from_balances(vec![balance, 0]));
        let mut history = History::new();
        let id = history.invoke(
            ProcessId::new(0),
            Erc20Op::BalanceOf { account: AccountId::new(0) },
        );
        history.ret(id, tokensync::core::erc20::Erc20Resp::Amount(bogus));
        prop_assert!(check_linearizable(&spec, &spec.initial_state(), &history).is_err());
    }
}

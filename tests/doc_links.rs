//! The docs book's link integrity gate: every *relative* markdown link
//! in README.md, ARCHITECTURE.md and `docs/*.md` must point at a file
//! (or directory) that exists in the repository. CI runs this suite in
//! its docs job, so a renamed file or a typo'd path fails the build
//! instead of shipping a dangling link.

use std::fs;
use std::path::{Path, PathBuf};

/// Extracts the `(target)` of every inline markdown link `[text](target)`
/// in `source`. Good enough for this repo's hand-written markdown: no
/// reference-style links, no nested brackets in link text, and code
/// spans/fences containing `](` do not occur in the scanned files with
/// relative paths inside.
fn link_targets(source: &str) -> Vec<String> {
    let bytes = source.as_bytes();
    let mut targets = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(close) = source[i + 2..].find(')') {
                targets.push(source[i + 2..i + 2 + close].to_owned());
                i += 2 + close;
                continue;
            }
        }
        i += 1;
    }
    targets
}

/// Whether `target` is a relative filesystem link this test must check.
fn is_relative_file_link(target: &str) -> bool {
    !(target.is_empty()
        || target.starts_with('#')
        || target.contains("://")
        || target.starts_with("mailto:"))
}

fn check_file(path: &Path, failures: &mut Vec<String>) {
    let source =
        fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let base = path.parent().expect("markdown file has a parent dir");
    for target in link_targets(&source) {
        if !is_relative_file_link(&target) {
            continue;
        }
        // Strip an anchor suffix: `file.md#section` checks `file.md`.
        let file_part = target.split('#').next().expect("split yields at least one");
        if file_part.is_empty() {
            continue; // pure anchor
        }
        let resolved = base.join(file_part);
        if !resolved.exists() {
            failures.push(format!(
                "{}: dangling link `{}` (resolved to {})",
                path.display(),
                target,
                resolved.display()
            ));
        }
    }
}

#[test]
fn no_dangling_relative_links_in_readme_and_docs() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = vec![root.join("README.md"), root.join("ARCHITECTURE.md")];
    let docs = root.join("docs");
    assert!(docs.is_dir(), "docs/ book is missing");
    let mut doc_pages = 0;
    for entry in fs::read_dir(&docs).expect("read docs/") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            doc_pages += 1;
            files.push(path);
        }
    }
    assert!(
        doc_pages >= 3,
        "expected the docs book (paper-map, pipeline, persistence); found {doc_pages} pages"
    );

    let mut failures = Vec::new();
    for file in &files {
        check_file(file, &mut failures);
    }
    assert!(
        failures.is_empty(),
        "dangling relative links:\n{}",
        failures.join("\n")
    );
}

#[test]
fn readme_links_the_docs_book() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let readme = fs::read_to_string(root.join("README.md")).expect("read README");
    for page in [
        "docs/paper-map.md",
        "docs/pipeline.md",
        "docs/persistence.md",
    ] {
        assert!(
            readme.contains(page),
            "README.md must link the docs book page {page}"
        );
    }
}

//! Cross-crate integration: analysis fixtures feed the model checker.
//!
//! The `core::analysis` predicates claim which states support consensus
//! among how many processes; the `mc` explorer *checks* those claims
//! exhaustively. This test wires the two crates together so the
//! predicates and the checker can never drift apart.

use tokensync::core::analysis::{
    consensus_number_bounds, is_sync_state_for, partition_index, unique_transfers,
};
use tokensync::core::erc20::Erc20State;
use tokensync::mc::enumerate::enumerate_states;
use tokensync::mc::protocols::{Mode, TokenRace};
use tokensync::mc::{Explorer, Outcome};
use tokensync::spec::{AccountId, ProcessId};

fn a(i: usize) -> AccountId {
    AccountId::new(i)
}
fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Builds a race state on account 0 with the given balance and allowances
/// for p1.., plus a destination account.
fn race_state(balance: u64, allowances: &[u64]) -> Erc20State {
    let participants = allowances.len() + 1;
    let mut balances = vec![0; participants + 1];
    balances[0] = balance;
    let mut q = Erc20State::from_balances(balances);
    for (i, &al) in allowances.iter().enumerate() {
        q.set_allowance(a(0), p(i + 1), al);
    }
    q
}

#[test]
fn analysis_predicts_explorer_outcomes() {
    // (balance, allowances, U expected)
    let cases: &[(u64, &[u64], bool)] = &[
        (2, &[2, 2], true),  // classic S_3 fixture
        (2, &[1, 1], false), // 1 + 1 = 2 not > 2: U fails
        (3, &[2, 2], true),  // 2 + 2 > 3
        (4, &[2, 2], false), // 2 + 2 = 4 not > 4
        (1, &[1, 1], true),  // 1 + 1 > 1
    ];
    for &(balance, allowances, expect_u) in cases {
        let state = race_state(balance, allowances);
        let u = unique_transfers(&state, a(0));
        assert_eq!(u, expect_u, "U({balance}, {allowances:?})");

        let participants = allowances.len() + 1;
        let protocol = TokenRace::from_state(state.clone(), participants, Mode::Generalized);
        let report = Explorer::new(&protocol).run();
        if expect_u {
            assert!(
                matches!(report.outcome, Outcome::Verified),
                "U holds but the race failed: balance {balance}, {allowances:?}: {:?}",
                report.outcome
            );
        } else {
            assert!(
                report.violation().is_some(),
                "U fails but the race verified: balance {balance}, {allowances:?}"
            );
        }
    }
}

#[test]
fn exact_bound_states_sampled_from_enumeration_verify() {
    // Sample small enumerated states whose bounds are exact with k = 2 and
    // whose witness is account 0 with owner p0: the race must verify.
    let mut checked = 0;
    for state in enumerate_states(2, 2, 2) {
        let bounds = consensus_number_bounds(&state);
        if bounds.exact() != Some(2) || !unique_transfers(&state, a(0)) {
            continue;
        }
        if state.allowance(a(0), p(1)) == 0 {
            continue; // witness is the other account; the fixture below
                      // runs the race on account 0 only.
        }
        // Embed into a 3-account universe (destination account needed).
        let mut embedded =
            Erc20State::from_balances(vec![state.balance(a(0)), state.balance(a(1)), 0]);
        embedded.set_allowance(a(0), p(1), state.allowance(a(0), p(1)));
        let protocol = TokenRace::from_state(embedded, 2, Mode::Generalized);
        let report = Explorer::new(&protocol).run();
        assert!(
            matches!(report.outcome, Outcome::Verified),
            "state {state:?} claimed CN = 2 but the race failed: {:?}",
            report.outcome
        );
        checked += 1;
        if checked >= 40 {
            break;
        }
    }
    assert!(checked >= 10, "enumeration produced too few usable states");
}

#[test]
fn partition_index_matches_sync_state_membership() {
    for state in enumerate_states(2, 2, 2) {
        let k = partition_index(&state);
        assert!((1..=2).contains(&k));
        // S_j membership needs an account with exactly j spenders.
        for j in 1..=2 {
            if is_sync_state_for(&state, j) {
                assert!(k >= j);
            }
        }
        let bounds = consensus_number_bounds(&state);
        assert!(bounds.lower >= 1 && bounds.lower <= bounds.upper && bounds.upper == k);
    }
}

#[test]
fn preparing_sync_state_changes_explorer_verdict() {
    // From q0 (CN = 1), running Algorithm 1 among 2 processes fails; after
    // the owner's approve (equation (12)), it verifies — the dynamic jump
    // the paper is about, observed end to end.
    let mut state = Erc20State::from_balances(vec![2, 0, 0]);
    let before = TokenRace::from_state(state.clone(), 2, Mode::Generalized);
    assert!(
        Explorer::new(&before).run().violation().is_some(),
        "2-process race from a Q_1 state must fail"
    );

    state.approve(p(0), p(1), 2).unwrap(); // the approve of equation (12)
    assert_eq!(partition_index(&state), 2);
    let after = TokenRace::from_state(state, 2, Mode::Generalized);
    assert!(matches!(
        Explorer::new(&after).run().outcome,
        Outcome::Verified
    ));
}

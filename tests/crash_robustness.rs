//! Failure injection: where each protocol's availability breaks.
//!
//! The paper's systems motivation (Sections 1 and 7) is precisely about
//! this: a globally sequenced token dies with its sequencer, while the
//! dynamic protocol keeps every *unaffected* account's operations live —
//! only work that genuinely needs the crashed participant stalls. The
//! broadcast payment system additionally tolerates `f < n/3` crashes for
//! everything.

use tokensync::core::erc20::Erc20State;
use tokensync::net::cmd::TokenCmd;
use tokensync::net::dynamic::DynamicNetwork;
use tokensync::net::ordered::OrderedNetwork;
use tokensync::net::payments::PaymentNetwork;
use tokensync::spec::AccountId;

const N: usize = 7; // tolerates f = 2 in Bracha's broadcast

fn initial() -> Erc20State {
    Erc20State::from_balances(vec![100; N])
}

/// A network facade that lets the test crash a node before submitting.
trait Crashable {
    fn crash_node(&mut self, node: usize);
}

#[test]
fn ordered_token_stalls_entirely_when_the_sequencer_dies() {
    let mut net = OrderedNetwork::new(N, initial(), 4);
    net.crash_node(0); // node 0 is the global sequencer
    net.submit(3, TokenCmd::Transfer { to: 4, value: 5 });
    net.run_to_quiescence();
    // Nothing commits anywhere — a transfer between two healthy nodes is
    // blocked by an unrelated node's failure.
    assert_eq!(net.state_at(3).balance(AccountId::new(4)), 100);
    assert_eq!(net.state_at(4).balance(AccountId::new(4)), 100);
}

#[test]
fn dynamic_token_keeps_unrelated_accounts_live() {
    let mut net = DynamicNetwork::new(N, initial(), 4);
    net.crash_node(0); // same crash: but node 0 only sequences account 0
    net.submit(3, TokenCmd::Transfer { to: 4, value: 5 });
    net.submit(
        5,
        TokenCmd::Approve {
            spender: 6,
            value: 10,
        },
    );
    net.submit(
        6,
        TokenCmd::TransferFrom {
            from: 5,
            to: 6,
            value: 10,
        },
    );
    net.run_to_quiescence();
    // Every correct replica commits the healthy accounts' operations.
    for i in 1..N {
        let state = net.state_at(i);
        assert_eq!(state.balance(AccountId::new(4)), 105, "replica {i}");
        assert_eq!(state.balance(AccountId::new(6)), 110, "replica {i}");
    }
}

#[test]
fn dynamic_token_stalls_only_the_crashed_spender_group() {
    let mut net = DynamicNetwork::new(N, initial(), 9);
    net.crash_node(2);
    // transferFrom on the crashed owner's account cannot be sequenced…
    net.submit(
        3,
        TokenCmd::TransferFrom {
            from: 2,
            to: 3,
            value: 1,
        },
    );
    // …but everything else proceeds.
    net.submit(1, TokenCmd::Transfer { to: 5, value: 7 });
    net.run_to_quiescence();
    let state = net.state_at(4);
    assert_eq!(
        state.balance(AccountId::new(2)),
        100,
        "frozen account untouched"
    );
    assert_eq!(
        state.balance(AccountId::new(5)),
        107,
        "healthy traffic committed"
    );
}

#[test]
fn broadcast_payments_tolerate_up_to_f_crashes() {
    let mut net = PaymentNetwork::new(N, vec![50; N], 12);
    net.crash(5);
    net.crash(6); // f = 2 = ⌊(7-1)/3⌋
    net.submit_transfer(0, 1, 20);
    net.submit_transfer(1, 2, 5);
    net.run_to_quiescence();
    // All correct replicas agree.
    let view = net.balances_at(0);
    assert_eq!(view[0], 30);
    assert_eq!(view[2], 55);
    for i in 1..5 {
        assert_eq!(net.balances_at(i), view, "replica {i}");
    }
}

#[test]
fn broadcast_payments_do_not_survive_beyond_f() {
    // With f + 1 = 3 crashes the Ready quorum (2f+1 = 5) is unreachable:
    // deliveries stop. This is the expected boundary, asserted so the
    // threshold arithmetic cannot silently regress.
    let mut net = PaymentNetwork::new(N, vec![50; N], 12);
    net.crash(4);
    net.crash(5);
    net.crash(6);
    net.submit_transfer(0, 1, 20);
    net.run_to_quiescence();
    assert_eq!(net.balances_at(0)[1], 50, "no delivery without a quorum");
}

// -- plumbing ---------------------------------------------------------------

impl Crashable for OrderedNetwork {
    fn crash_node(&mut self, node: usize) {
        self.crash(node);
    }
}

impl Crashable for DynamicNetwork {
    fn crash_node(&mut self, node: usize) {
        self.crash(node);
    }
}

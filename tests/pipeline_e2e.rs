//! End-to-end: the batched pipeline as a serving path, through the
//! facade.
//!
//! Exercises the full composition the tentpole is about: operations flow
//! through the bounded intake into batches, the footprint analyzer and
//! wave scheduler split each batch by the paper's commutativity rules,
//! waves execute in parallel over the sharded million-account token, and
//! the commit log is a *checkable* linearization — replayable against
//! the sequential spec and acceptable to the Wing–Gong–Lowe checker.

use std::sync::Arc;
use std::time::Duration;

use tokensync::core::erc20::{Erc20Op, Erc20Spec, Erc20State};
use tokensync::core::shared::{ConcurrentToken, ShardedErc20};
use tokensync::net::dynamic::DynamicNetwork;
use tokensync::pipeline::{
    drive_dynamic, run_script, BatchConfig, Pipeline, PipelineConfig, ScheduleConfig,
};
use tokensync::spec::{check_linearizable, AccountId, ObjectType, ProcessId};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn a(i: usize) -> AccountId {
    AccountId::new(i)
}

/// Submission-order sequential replay: the reference state.
fn sequential(initial: &Erc20State, script: &[(ProcessId, Erc20Op)]) -> Erc20State {
    let spec = Erc20Spec::new(Erc20State::new(0));
    let mut q = initial.clone();
    for (caller, op) in script {
        spec.apply(&mut q, *caller, op);
    }
    q
}

#[test]
fn owner_disjoint_traffic_executes_with_wave_parallelism() {
    // The acceptance criterion: an owner-disjoint transfer workload must
    // split into concurrent conflict-free waves — measured parallelism
    // strictly above 1 (here: the whole batch in one wave).
    let n = 64;
    let initial = Erc20State::from_balances(vec![100; n]);
    let token = ShardedErc20::from_state(initial.clone());
    let script: Vec<(ProcessId, Erc20Op)> = (0..256)
        .map(|i| {
            let src = i % (n / 2);
            (
                p(src),
                Erc20Op::Transfer {
                    to: a(n / 2 + src),
                    value: 1,
                },
            )
        })
        .collect();
    let cfg = PipelineConfig {
        batch: BatchConfig {
            max_ops: n / 2,
            ..BatchConfig::default()
        },
        ..PipelineConfig::default()
    };
    let run = run_script(&token, &script, &cfg);
    assert!(
        run.stats.wave_parallelism() > 1.0,
        "disjoint batches must run in wide waves, got {}",
        run.stats.wave_parallelism()
    );
    assert_eq!(run.stats.serial_ops, 0);
    assert_eq!(run.stats.conflicts, 0);
    // Fully commuting traffic engages the adaptive bypass: after the
    // first certified batch the conflict-density EWMA stays at zero.
    assert!(
        run.stats.bypassed_batches > 0,
        "disjoint traffic must ride the bypass, got {:?}",
        run.stats
    );
    let spec = Erc20Spec::new(initial.clone());
    assert_eq!(run.log.replay(&spec).unwrap(), token.state_snapshot());
    assert_eq!(token.state_snapshot(), sequential(&initial, &script));
}

#[test]
fn concurrent_clients_through_the_spawned_engine_linearize() {
    let n = 8;
    let initial = {
        let mut q = Erc20State::from_balances(vec![20; n]);
        q.set_allowance(a(0), p(2), 9);
        q.set_allowance(a(0), p(3), 9);
        q
    };
    let token = Arc::new(ShardedErc20::from_state(initial.clone()));
    let cfg = PipelineConfig {
        batch: BatchConfig {
            max_ops: 16,
            max_wait: Duration::from_millis(1),
            queue_depth: 64,
            ..BatchConfig::default()
        },
        ..PipelineConfig::default()
    };
    let (client, handle) = Pipeline::spawn(Arc::clone(&token), cfg);
    crossbeam::scope(|s| {
        for t in 0..4usize {
            let client = client.clone();
            s.spawn(move |_| {
                for i in 0..10 {
                    let op = if t >= 2 && i % 3 == 0 {
                        // Spenders racing the shared allowance row.
                        Erc20Op::TransferFrom {
                            from: a(0),
                            to: a(t),
                            value: 1,
                        }
                    } else {
                        Erc20Op::Transfer {
                            to: a((t + i) % n),
                            value: 1,
                        }
                    };
                    client.submit(p(t), op).expect("engine alive");
                }
            });
        }
    })
    .expect("clients panicked");
    drop(client);
    let run = handle.finish();
    assert_eq!(run.stats.ops, 40);
    // The commit log is a genuine linearization of what the token did.
    let spec = Erc20Spec::new(initial);
    let committed = run.log.replay(&spec).expect("responses consistent");
    assert_eq!(committed, token.state_snapshot());
    assert_eq!(committed.total_supply(), 160);
    check_linearizable(&spec, &spec.initial_state(), &run.log.to_history())
        .expect("commit log linearizes");
}

#[test]
fn hot_allowance_row_serializes_but_stays_correct() {
    // k spenders draining one allowance row: the schedule must not let
    // two of them share a wave, and the outcome must match the
    // sequential replay exactly (the Q_k regime needs synchronization;
    // the pipeline provides it via wave ordering + the serial lane).
    let n = 8;
    let k = 4;
    let initial = {
        let mut q = Erc20State::from_balances(vec![10; n]);
        for sp in 1..=k {
            q.set_allowance(a(0), p(sp), 4);
        }
        q
    };
    let token = ShardedErc20::from_state(initial.clone());
    let script: Vec<(ProcessId, Erc20Op)> = (0..24)
        .map(|i| {
            (
                p(1 + (i % k)),
                Erc20Op::TransferFrom {
                    from: a(0),
                    to: a(1 + (i % k)),
                    value: 2,
                },
            )
        })
        .collect();
    let cfg = PipelineConfig {
        batch: BatchConfig {
            max_ops: 12,
            ..BatchConfig::default()
        },
        schedule: ScheduleConfig {
            max_parallel_waves: 4,
        },
        ..PipelineConfig::default()
    };
    let run = run_script(&token, &script, &cfg);
    assert!(run.stats.serial_ops > 0, "hot row must spill serial");
    assert_eq!(token.state_snapshot(), sequential(&initial, &script));
    let spec = Erc20Spec::new(initial.clone());
    assert_eq!(run.log.replay(&spec).unwrap(), token.state_snapshot());
}

#[test]
fn scheduled_batches_drive_the_dynamic_protocol() {
    // The §7 composition: the pipeline's schedule feeds the dynamic
    // protocol's consensus-free lane one commuting wave per quiescence
    // barrier, and the replicated state converges to the same sequential
    // replay the local pipeline reaches.
    let n = 6;
    let initial = {
        let mut q = Erc20State::from_balances(vec![10; n]);
        q.set_allowance(a(0), p(4), 6);
        q
    };
    let script: Vec<(ProcessId, Erc20Op)> = vec![
        (p(0), Erc20Op::Transfer { to: a(3), value: 2 }),
        (p(1), Erc20Op::Transfer { to: a(5), value: 1 }),
        (p(2), Erc20Op::TotalSupply),
        (
            p(4),
            Erc20Op::TransferFrom {
                from: a(0),
                to: a(4),
                value: 5,
            },
        ),
        (
            p(0),
            Erc20Op::Approve {
                spender: p(4),
                value: 2,
            },
        ),
    ];
    let mut net = DynamicNetwork::new(n, initial.clone(), 11);
    let report = drive_dynamic(&mut net, &script, &ScheduleConfig::default());
    assert!(net.converged());
    assert_eq!(report.submitted, 4);
    assert_eq!(report.reads_local, 1);
    let expected = sequential(&initial, &script);
    for i in 0..n {
        assert_eq!(net.state_at(i), expected, "replica {i} diverged");
    }
    // The same script through the local pipeline reaches the same state.
    let token = ShardedErc20::from_state(initial);
    run_script(&token, &script, &PipelineConfig::default());
    assert_eq!(token.state_snapshot(), expected);
}

//! End-to-end: the durable serving stack through the facade — one
//! `Store` type persisting all three standards' pipelines, and
//! recovery rebuilding a live sharded object that serves again.
//!
//! The full lifecycle under test, per standard:
//!
//! 1. create a store with a genesis snapshot,
//! 2. serve a script through the commutativity-aware pipeline with the
//!    store as the commit sink (group-commit durability),
//! 3. "crash" (drop everything in memory),
//! 4. recover from disk alone — snapshot + verified log replay,
//! 5. assert the recovered object equals the pre-crash object, then
//!    **serve more traffic on top of the recovered object** and verify
//!    the continued log against the sequential oracle.

use std::fs;
use std::path::PathBuf;

use tokensync::core::erc20::{Erc20Op, Erc20Spec, Erc20State};
use tokensync::core::shared::{ConcurrentObject, ShardedErc20};
use tokensync::core::standards::erc1155::{Erc1155Op, Erc1155State, ShardedErc1155, TypeId};
use tokensync::core::standards::erc721::{Erc721Op, Erc721State, ShardedErc721, TokenId};
use tokensync::pipeline::{run_script_with_sink, BatchConfig, PipelineConfig};
use tokensync::spec::{AccountId, ProcessId};
use tokensync::store::{recover, Store, StoreConfig};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn a(i: usize) -> AccountId {
    AccountId::new(i)
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tokensync-e2e-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg(batch: usize) -> PipelineConfig {
    PipelineConfig {
        batch: BatchConfig {
            max_ops: batch,
            ..BatchConfig::default()
        },
        ..PipelineConfig::default()
    }
}

#[test]
fn erc20_durable_lifecycle_survives_a_restart() {
    let dir = scratch("erc20");
    let genesis = Erc20State::from_balances(vec![25; 16]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &dir,
        &genesis,
        StoreConfig {
            snapshot_every_ops: 32,
            ..StoreConfig::default()
        },
    )
    .unwrap();

    let script: Vec<(ProcessId, Erc20Op)> = (0..100)
        .map(|i| {
            (
                p(i % 16),
                Erc20Op::Transfer {
                    to: a((i + 5) % 16),
                    value: (i as u64) % 3,
                },
            )
        })
        .collect();
    let run = run_script_with_sink(&token, &script, &cfg(16), &mut store);
    assert_eq!(run.stats.ops, 100);
    store.close().unwrap();
    let pre_crash = token.snapshot();
    drop(token); // the crash: all in-memory state gone

    let recovered = recover::<ShardedErc20>(&dir).unwrap();
    assert_eq!(recovered.next_seq, 100);
    assert_eq!(recovered.state, pre_crash);

    // The recovered object serves again, durably, on the same store.
    let token = recovered.object;
    let mut store: Store<ShardedErc20> = Store::open(&dir, StoreConfig::default()).unwrap();
    let more: Vec<(ProcessId, Erc20Op)> = (0..40)
        .map(|i| {
            (
                p(i % 16),
                Erc20Op::Transfer {
                    to: a((i + 1) % 16),
                    value: 1,
                },
            )
        })
        .collect();
    let run2 = run_script_with_sink(&token, &more, &cfg(8), &mut store);
    store.close().unwrap();

    // The continuation's commit log replays against an oracle seeded
    // with the recovered state.
    let spec = Erc20Spec::new(recovered.state);
    let end_state = run2.log.replay(&spec).expect("no divergence");
    assert_eq!(end_state, token.snapshot());
    assert_eq!(end_state.total_supply(), 25 * 16);

    // And a second recovery sees the whole 140-op history.
    let final_rec = recover::<ShardedErc20>(&dir).unwrap();
    assert_eq!(final_rec.next_seq, 140);
    assert_eq!(final_rec.state, end_state);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn erc721_store_recovers_marketplace_traffic() {
    let dir = scratch("erc721");
    let genesis = Erc721State::minted_round_robin(8, 64, 24);
    let nft = ShardedErc721::from_state(genesis.clone());
    let mut store: Store<ShardedErc721> =
        Store::create(&dir, &genesis, StoreConfig::default()).unwrap();
    // Owners shuffle their own tokens; some approvals mixed in.
    let script: Vec<(ProcessId, Erc721Op)> = (0..48)
        .map(|i| {
            let token = TokenId::new(i % 24);
            let owner = p(i % 8);
            if i % 5 == 0 {
                (
                    owner,
                    Erc721Op::Approve {
                        approved: Some(p((i + 3) % 8)),
                        token,
                    },
                )
            } else {
                (
                    p(token.index() % 8),
                    Erc721Op::TransferFrom {
                        from: p(token.index() % 8),
                        to: p((token.index() + 1) % 8),
                        token,
                    },
                )
            }
        })
        .collect();
    run_script_with_sink(&nft, &script, &cfg(12), &mut store);
    store.close().unwrap();

    let recovered = recover::<ShardedErc721>(&dir).unwrap();
    assert_eq!(recovered.next_seq, 48);
    assert_eq!(recovered.object.snapshot(), nft.snapshot());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn erc1155_store_recovers_batch_traffic() {
    let dir = scratch("erc1155");
    let genesis = Erc1155State::deploy(8, p(0), &[100, 50, 10]);
    let multi = ShardedErc1155::from_state(genesis.clone());
    let mut store: Store<ShardedErc1155> =
        Store::create(&dir, &genesis, StoreConfig::default()).unwrap();
    let script: Vec<(ProcessId, Erc1155Op)> = (0..60)
        .map(|i| {
            (
                p(0),
                Erc1155Op::BatchTransfer {
                    from: a(0),
                    to: a(1 + (i % 7)),
                    entries: vec![(TypeId::new(i % 3), 1)],
                },
            )
        })
        .collect();
    run_script_with_sink(&multi, &script, &cfg(10), &mut store);
    store.close().unwrap();

    let recovered = recover::<ShardedErc1155>(&dir).unwrap();
    assert_eq!(recovered.next_seq, 60);
    let state = recovered.object.snapshot();
    assert_eq!(state, multi.snapshot());
    // Supply conservation across crash + recovery.
    for (t, &supply) in [100u64, 50, 10].iter().enumerate() {
        assert_eq!(state.total_supply(TypeId::new(t)), supply);
    }
    fs::remove_dir_all(&dir).unwrap();
}

//! End-to-end: the replicated serving stack through the facade — the
//! full machine-loss lifecycle the replication layer exists for.
//!
//! 1. build a 3-node cluster (one primary, two followers),
//! 2. serve traffic through the commutativity-aware pipeline and pump
//!    a replication round — both followers hold the records
//!    byte-identically and serve reads,
//! 3. crash the primary (machine loss),
//! 4. fail over: the longest-log follower is promoted into a new
//!    epoch; no quorum-acked wave is lost,
//! 5. serve more traffic on the promoted primary,
//! 6. restart the old primary: it rejoins **as a follower**, is fenced
//!    into the new epoch, and catches up on everything it missed —
//!    every live disk then replays to the same state against the
//!    sequential oracle.

use std::fs;
use std::path::PathBuf;

use tokensync::core::erc20::{Erc20Op, Erc20State};
use tokensync::core::shared::ShardedErc20;
use tokensync::net::FaultPlan;
use tokensync::replica::{AckMode, Cluster, ReplicaConfig};
use tokensync::spec::{AccountId, ProcessId};
use tokensync::store::recover;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tokensync-replica-e2e-{name}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn transfers(accounts: usize, count: usize, offset: usize) -> Vec<(ProcessId, Erc20Op)> {
    (0..count)
        .map(|i| {
            (
                ProcessId::new((offset + i) % accounts),
                Erc20Op::Transfer {
                    to: AccountId::new((offset + i + 1) % accounts),
                    value: 1,
                },
            )
        })
        .collect()
}

/// Everything a live node claims in memory must be re-derivable from
/// its disk alone, and identical across the cluster.
fn assert_cluster_in_sync(c: &Cluster<ShardedErc20>) {
    let lead = c.node(c.primary());
    for i in 0..c.n() {
        if c.is_crashed(i) {
            continue;
        }
        assert_eq!(c.node(i).epoch(), lead.epoch(), "node {i} epoch");
        assert_eq!(c.node(i).next_seq(), lead.next_seq(), "node {i} length");
        assert_eq!(c.node(i).state(), lead.state(), "node {i} state");
        let rec = recover::<ShardedErc20>(c.node(i).dir()).expect("node dir recovers");
        assert_eq!(rec.next_seq, lead.next_seq(), "node {i} durable length");
        assert_eq!(rec.state, lead.state(), "node {i} durable state");
    }
}

#[test]
fn machine_loss_lifecycle_through_the_facade() {
    let genesis = Erc20State::from_balances(vec![1_000; 8]);
    let mut cluster: Cluster<ShardedErc20> = Cluster::new(
        &scratch("lifecycle"),
        3,
        &genesis,
        ReplicaConfig::default(),
        4242,
    )
    .expect("build cluster");
    assert_eq!(cluster.primary(), 0);
    assert_eq!(cluster.epoch(), 0);

    // (2) Serve and replicate: both followers end up holding the log.
    cluster.serve(&transfers(8, 120, 0));
    cluster.pump();
    assert_eq!(cluster.durable_seq(), 120, "quorum acked the whole run");
    assert_cluster_in_sync(&cluster);

    // (3)+(4) Machine loss and deterministic failover.
    cluster.crash_primary();
    let winner = cluster.fail_over();
    assert_ne!(winner, 0, "a follower was promoted");
    assert!(cluster.node(winner).is_primary());
    assert_eq!(cluster.epoch(), 1, "failover opened a new epoch");
    assert!(
        cluster.node(winner).next_seq() >= 120,
        "no quorum-acked wave was lost"
    );

    // (5) The promoted primary serves; the surviving follower tracks it.
    cluster.serve(&transfers(8, 80, 3));
    cluster.pump();
    assert_eq!(cluster.durable_seq(), 200, "quorum of the survivors");
    assert_cluster_in_sync(&cluster);

    // (6) The lost machine returns from its old disk: it must rejoin as
    // a fenced follower of the new reign and catch up on both rounds.
    cluster.restart(0);
    cluster.pump();
    assert!(
        !cluster.node(0).is_primary(),
        "old primary rejoined as a follower"
    );
    assert_eq!(cluster.node(0).epoch(), 1, "fenced into the new epoch");
    assert_eq!(cluster.node(0).next_seq(), 200, "caught up on missed waves");
    assert_cluster_in_sync(&cluster);
}

#[test]
fn lifecycle_survives_a_lossy_network_in_async_mode() {
    // The same story under seeded message loss and duplication, with
    // asynchronous acks: convergence must still be exact once pumped.
    let genesis = Erc20State::from_balances(vec![1_000; 8]);
    let mut cluster: Cluster<ShardedErc20> = Cluster::new(
        &scratch("lossy"),
        3,
        &genesis,
        ReplicaConfig {
            ack_mode: AckMode::Async,
            ..ReplicaConfig::default()
        },
        99,
    )
    .expect("build cluster");
    cluster.set_fault_plan(
        FaultPlan::new(17)
            .drop_probability(0.2)
            .duplicate_probability(0.1),
    );

    cluster.serve(&transfers(8, 100, 0));
    cluster.pump();
    assert_cluster_in_sync(&cluster);

    cluster.crash_primary();
    let winner = cluster.fail_over();
    assert_eq!(
        cluster.node(winner).next_seq(),
        100,
        "the pumped prefix survived intact"
    );
    cluster.serve(&transfers(8, 60, 5));
    cluster.pump();
    cluster.restart(0);
    cluster.pump();
    assert_eq!(cluster.node(0).next_seq(), 160);
    assert_cluster_in_sync(&cluster);
}

//! Cross-crate integration: the full consensus stack.
//!
//! Wires `setup` → `SharedErc20` → `TokenConsensus` (Algorithm 1) and
//! cross-checks against the other consensus constructions in the
//! workspace (`AtConsensus`, `CasConsensus`) and against the universal
//! construction wrapping the ERC20 spec.

use std::collections::HashSet;
use std::sync::Arc;

use tokensync::consensus::{CasConsensus, Consensus, Universal};
use tokensync::core::erc20::{Erc20Op, Erc20Spec, Erc20Token};
use tokensync::core::setup::{pairwise_exceeding_allowances, prepare_sync_state};
use tokensync::core::shared::{ConcurrentToken, SharedErc20};
use tokensync::core::token_consensus::TokenConsensus;
use tokensync::kat::AtConsensus;
use tokensync::spec::{AccountId, ProcessId};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn a(i: usize) -> AccountId {
    AccountId::new(i)
}

/// Runs `k` threads through `propose` and asserts agreement + validity,
/// returning the decided value.
fn assert_consensus<F>(k: usize, propose: F) -> usize
where
    F: Fn(ProcessId, usize) -> usize + Sync,
{
    let mut decisions = Vec::new();
    crossbeam::scope(|s| {
        let handles: Vec<_> = (0..k)
            .map(|i| {
                let propose = &propose;
                s.spawn(move |_| propose(p(i), i))
            })
            .collect();
        for h in handles {
            decisions.push(h.join().expect("proposer panicked"));
        }
    })
    .expect("scope");
    let distinct: HashSet<_> = decisions.iter().copied().collect();
    assert_eq!(distinct.len(), 1, "disagreement: {decisions:?}");
    assert!(decisions[0] < k, "invalid decision {}", decisions[0]);
    decisions[0]
}

#[test]
fn live_token_prepared_and_raced_end_to_end() {
    for k in [2usize, 3, 5, 8] {
        let owner = p(0);
        let token = SharedErc20::deploy(k + 1, owner, 1000);
        // Move some funds around first: a real token with history.
        token.transfer(owner, a(1), 100).unwrap();
        token.transfer(p(1), a(0), 40).unwrap();

        let spenders: Vec<ProcessId> = (1..k).map(p).collect();
        let balance = token.balance_of(a(0));
        let allowances = pairwise_exceeding_allowances(k, balance);
        let witness = prepare_sync_state(&token, owner, &spenders, &allowances).unwrap();
        assert_eq!(witness.k(), k);

        let consensus: Arc<TokenConsensus<SharedErc20, usize>> =
            Arc::new(TokenConsensus::new(token, witness, a(k)));
        assert_consensus(k, |proc, v| consensus.propose(proc, v));
        // The race consumed the synchronization state: funds moved out.
        assert!(consensus.token().balance_of(a(0)) < balance);
    }
}

#[test]
fn all_constructions_agree_with_themselves() {
    for k in [2usize, 4, 8] {
        let kat: Arc<AtConsensus<usize>> = Arc::new(AtConsensus::new(k));
        assert_consensus(k, |proc, v| kat.propose(proc, v));

        let cas: Arc<CasConsensus<usize>> = Arc::new(CasConsensus::new(k));
        assert_consensus(k, |proc, v| cas.propose(proc, v));
    }
}

#[test]
fn token_consensus_is_a_consensus_object() {
    // TokenConsensus implements the Consensus trait: use it behind dyn.
    let (state, witness) = tokensync::core::setup::sync_state_fixture(3, 4, 12);
    let consensus: Arc<dyn Consensus<usize>> = Arc::new(TokenConsensus::new(
        SharedErc20::from_state(state),
        witness,
        a(3),
    ));
    assert_eq!(consensus.peek(), None);
    let d = consensus.propose(p(2), 2);
    assert_eq!(d, 2);
    assert_eq!(consensus.peek(), Some(2));
    assert_eq!(consensus.propose(p(0), 0), 2);
}

#[test]
fn universal_construction_hosts_the_token() {
    // Consensus is universal (Section 3.1): a token driven through the
    // universal construction behaves exactly like the sequential token.
    let n = 3;
    let spec = Erc20Spec::deployed(n, p(0), 30);
    let universal = Arc::new(Universal::new(spec, n));
    let mut oracle = Erc20Token::deploy(n, p(0), 30);

    let script: Vec<(ProcessId, Erc20Op)> = vec![
        (p(0), Erc20Op::Transfer { to: a(1), value: 9 }),
        (
            p(1),
            Erc20Op::Approve {
                spender: p(2),
                value: 6,
            },
        ),
        (
            p(2),
            Erc20Op::TransferFrom {
                from: a(1),
                to: a(2),
                value: 6,
            },
        ),
        (p(2), Erc20Op::BalanceOf { account: a(2) }),
        (p(0), Erc20Op::TotalSupply),
    ];
    for (caller, op) in script {
        let expected = oracle.apply(caller, &op);
        let got = universal.perform(caller, op);
        assert_eq!(got, expected);
    }
    assert_eq!(universal.state_snapshot(), *oracle.state());
}

#[test]
fn universal_token_is_consistent_under_contention() {
    let n = 4;
    let spec = Erc20Spec::new(tokensync::core::erc20::Erc20State::from_balances(vec![
        100;
        4
    ]));
    let universal = Arc::new(Universal::new(spec, n));
    crossbeam::scope(|s| {
        for t in 0..n {
            let universal = Arc::clone(&universal);
            s.spawn(move |_| {
                for i in 0..50 {
                    universal.perform(
                        p(t),
                        Erc20Op::Transfer {
                            to: a((t + i) % n),
                            value: 1,
                        },
                    );
                }
            });
        }
    })
    .expect("scope");
    assert_eq!(universal.state_snapshot().total_supply(), 400);
    assert_eq!(universal.log_len(), n * 50);
}

//! Thread harness shared by the bench targets and the `baseline` binary.
//!
//! One definition so the checked-in `BENCH_baseline.json` and the
//! criterion `scale` numbers always measure the same driving loop — a
//! fix to chunking or error handling here reaches every figure at once.

use std::sync::Arc;

use tokensync_core::shared::ConcurrentObject;
use tokensync_spec::ProcessId;

/// Splits `workload` into `threads` contiguous chunks and applies each
/// chunk on its own thread against `token` — any standard's object,
/// blocking until all finish.
///
/// # Panics
///
/// Panics (propagated) if a worker thread panics.
pub fn run_split<T: ConcurrentObject>(
    token: &Arc<T>,
    workload: &[(ProcessId, T::Op)],
    threads: usize,
) {
    let chunk = workload.len().div_ceil(threads.max(1)).max(1);
    crossbeam::scope(|s| {
        for part in workload.chunks(chunk) {
            let token = Arc::clone(token);
            s.spawn(move |_| {
                for (caller, op) in part {
                    token.apply(*caller, op);
                }
            });
        }
    })
    .expect("bench worker panicked");
}

/// The shared `"host"` object every `BENCH_*.json` artifact embeds —
/// one helper, so the CPU count and the single-core caveat are worded
/// (and updated) in exactly one place.
///
/// Emitted as a complete `"host": {...}` member (no trailing comma):
/// `cpus` is the host's available parallelism and `caveat` is either
/// the standard single-core warning — threads and wave workers
/// time-slice one CPU, so parallel-path ratios reflect overhead, not
/// the parallel win — or `null` on multi-core hosts.
pub fn host_json() -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |c| c.get());
    let caveat = if cpus == 1 {
        "\"single-core host: threads/wave workers time-slice one CPU, so \
         parallel-path ratios reflect scheduling overhead only; the \
         parallel win needs the multi-core CI artifact\""
            .to_owned()
    } else {
        "null".to_owned()
    };
    format!("\"host\": {{\"cpus\": {cpus}, \"caveat\": {caveat}}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{funded_state, mixed_ops};
    use tokensync_core::shared::{CoarseErc20, ConcurrentToken};

    #[test]
    fn applies_every_op_once() {
        let n = 4;
        let token = Arc::new(CoarseErc20::from_state(funded_state(n)));
        let workload = mixed_ops(n, 100, 9);
        run_split(&token, &workload, 3);
        // Supply conservation: each op applied atomically, none dropped
        // into a torn state.
        assert_eq!(token.total_supply(), (n as u64) * 1000);
    }

    #[test]
    fn degenerate_shapes_do_not_panic() {
        let token = Arc::new(CoarseErc20::from_state(funded_state(2)));
        run_split(&token, &[], 4); // empty workload
        let workload = mixed_ops(2, 3, 1);
        run_split(&token, &workload, 8); // more threads than ops
    }

    #[test]
    fn host_json_is_a_complete_member() {
        let host = host_json();
        assert!(host.starts_with("\"host\": {"));
        assert!(host.contains("\"cpus\": "));
        assert!(host.contains("\"caveat\": "));
        assert!(host.ends_with('}'));
    }
}

//! **`replica`** — the replication overhead artifact behind
//! `BENCH_replica.json`.
//!
//! Measures what shipping the WAL to followers costs on top of local
//! durability, and how fast a lagging follower catches back up, on the
//! same ERC20 Zipf workload the other artifacts use:
//!
//! * **ingest** — serve + one full replication round (3-node cluster,
//!   quorum acks) per durability policy (`off`, `group-commit`),
//!   against the unreplicated store-sink run as the baseline — the
//!   replication column divided by the unreplicated column is the
//!   price of surviving machine loss;
//! * **catch-up** — a follower of a large-state cluster (1M accounts
//!   full, 10k quick) is crashed, misses a stretch of traffic, then
//!   restarts: wall-clock until it is back in byte-identical sync from
//!   the log suffix.
//!
//! The replicated rows also carry the cluster's replication-health
//! telemetry — per-follower ack lag after the round plus the primary's
//! retransmission/down-mark/snapshot-ship/reinvite counters — and the
//! catch-up row records the lag the dead follower had accumulated
//! before rejoining.
//!
//! ```sh
//! cargo run --release -p tokensync-bench --bin replica             # full (includes n = 1M)
//! cargo run --release -p tokensync-bench --bin replica -- --quick  # CI smoke
//! cargo run --release -p tokensync-bench --bin replica -- --out path.json
//! ```

use std::path::{Path, PathBuf};
use std::time::Instant;

use tokensync_bench::harness::host_json;
use tokensync_bench::workloads::{funded_state, zipf_ops};
use tokensync_core::shared::ShardedErc20;
use tokensync_pipeline::{run_script_with_sink, BatchConfig, PipelineConfig};
use tokensync_replica::{Cluster, ReplicaConfig, ReplicationStats};
use tokensync_store::{Durability, Store, StoreConfig};

/// Zipf skew of the workload (the YCSB default the other benches use).
const THETA: f64 = 0.6;
/// Timed repetitions per cell (min taken).
const REPS: usize = 3;
/// Cluster size: one primary, two followers.
const NODES: usize = 3;

struct IngestCell {
    n: usize,
    mode: &'static str,
    policy: &'static str,
    ops: usize,
    run_ms: f64,
    ops_per_sec: f64,
    /// Replication-health counters + worst follower lag after the round
    /// (replicated rows only; a healthy round should show all zeros).
    repl: Option<(ReplicationStats, u64)>,
}

struct CatchUpCell {
    n: usize,
    missed_ops: u64,
    catch_up_ms: f64,
    ops_per_sec: f64,
    /// Ack lag the dead follower had accumulated before rejoining.
    lag_before: u64,
    /// Primary counters after the catch-up round: retransmissions spent
    /// probing the corpse, the down-mark, and the reinvite that healed it.
    stats: ReplicationStats,
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tokensync-bench-replica-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pipeline_cfg(n: usize) -> PipelineConfig {
    PipelineConfig {
        batch: BatchConfig {
            max_ops: (n / 2).clamp(1, 1024),
            ..BatchConfig::default()
        },
        ..PipelineConfig::default()
    }
}

fn replica_cfg(n: usize, durability: Durability) -> ReplicaConfig {
    ReplicaConfig {
        store: StoreConfig {
            durability,
            ..StoreConfig::default()
        },
        pipeline: pipeline_cfg(n),
        ..ReplicaConfig::default()
    }
}

fn push_ingest(
    out: &mut Vec<IngestCell>,
    n: usize,
    mode: &'static str,
    policy: &'static str,
    ops: usize,
    run_ms: f64,
    repl: Option<(ReplicationStats, u64)>,
) {
    let cell = IngestCell {
        n,
        mode,
        policy,
        ops,
        run_ms,
        ops_per_sec: ops as f64 / (run_ms / 1e3),
        repl,
    };
    eprint!(
        "  ingest n={:>9} {:>12}/{:>12} run={:>9.1}ms {:>12.0} ops/s",
        cell.n, cell.mode, cell.policy, cell.run_ms, cell.ops_per_sec
    );
    if let Some((stats, max_lag)) = cell.repl {
        eprint!(
            " retx={} down={} lag={max_lag}",
            stats.retransmissions, stats.down_marks
        );
    }
    eprintln!();
    out.push(cell);
}

fn measure_ingest(n: usize, ops: usize, ingest: &mut Vec<IngestCell>) {
    let initial = funded_state(n);
    let workload = zipf_ops(n, ops, 0x4E_7A, THETA);
    let cfg = pipeline_cfg(n);

    // Baselines: the same store sink on one machine, nothing shipped —
    // `off` is the engine + sink plumbing with no persistence at all,
    // `group-commit` is the local-durability serving mode replication
    // builds on.
    for (policy, durability) in [
        ("off", Durability::Off),
        ("group-commit", Durability::GroupCommit),
    ] {
        let mut best = f64::INFINITY;
        for rep in 0..REPS {
            let dir = scratch(&format!("solo-{policy}-{n}-{rep}"));
            let token = ShardedErc20::from_state(initial.clone());
            let mut store: Store<ShardedErc20> = Store::create(
                &dir,
                &initial,
                StoreConfig {
                    durability,
                    ..StoreConfig::default()
                },
            )
            .expect("create store");
            let start = Instant::now();
            let run = run_script_with_sink(&token, &workload, &cfg, &mut store);
            best = best.min(ms(start));
            assert_eq!(run.stats.ops as usize, workload.len());
            store.close().expect("store close");
            let _ = std::fs::remove_dir_all(dir);
        }
        push_ingest(ingest, n, "unreplicated", policy, ops, best, None);
    }

    // Replicated: serve on the primary, then drain one full replication
    // round so every follower holds and applied the records — the
    // measured window includes shipping, follower fsyncs and quorum
    // acks. (Replication tails the WAL, so it runs on group-commit.)
    let mut best = f64::INFINITY;
    let mut repl = None;
    for rep in 0..REPS {
        let base = scratch(&format!("cluster-{n}-{rep}"));
        let mut cluster: Cluster<ShardedErc20> = Cluster::new(
            &base,
            NODES,
            &initial,
            replica_cfg(n, Durability::GroupCommit),
            7,
        )
        .expect("build cluster");
        let start = Instant::now();
        let run = cluster.serve(&workload);
        cluster.pump();
        best = best.min(ms(start));
        assert_eq!(run.stats.ops as usize, workload.len());
        assert_eq!(cluster.durable_seq(), workload.len() as u64);
        let max_lag = cluster.follower_lags().into_iter().max().unwrap_or(0);
        repl = Some((cluster.replication_stats(), max_lag));
        let _ = std::fs::remove_dir_all(base);
    }
    push_ingest(ingest, n, "replicated", "group-commit", ops, best, repl);
}

fn measure_catch_up(n: usize, missed: usize, out: &mut Vec<CatchUpCell>) {
    let initial = funded_state(n);
    let workload = zipf_ops(n, missed, 0x11_B5, THETA);
    let base = scratch(&format!("catchup-{n}"));
    let mut cluster: Cluster<ShardedErc20> = Cluster::new(
        &base,
        NODES,
        &initial,
        replica_cfg(n, Durability::GroupCommit),
        13,
    )
    .expect("build cluster");

    // The follower goes dark, misses the whole stretch, and returns.
    cluster.crash(2);
    cluster.serve(&workload);
    cluster.pump();
    let lag_before = cluster.follower_lags()[2];
    let start = Instant::now();
    cluster.restart(2);
    cluster.pump();
    let catch_up_ms = ms(start);
    assert_eq!(cluster.node(2).next_seq(), missed as u64, "caught up");
    assert!(cluster.node(2).state() == cluster.node(0).state());
    let stats = cluster.replication_stats();
    let _ = std::fs::remove_dir_all(base);

    let cell = CatchUpCell {
        n,
        missed_ops: missed as u64,
        catch_up_ms,
        ops_per_sec: missed as f64 / (catch_up_ms / 1e3),
        lag_before,
        stats,
    };
    eprintln!(
        "  catch-up n={:>9} missed={:>8} {:>9.1}ms {:>12.0} ops/s \
         lag-before={} retx={} reinvites={}",
        cell.n,
        cell.missed_ops,
        cell.catch_up_ms,
        cell.ops_per_sec,
        cell.lag_before,
        cell.stats.retransmissions,
        cell.stats.reinvites
    );
    out.push(cell);
}

fn write_json(path: &Path, quick: bool, ingest: &[IngestCell], catch_up: &[CatchUpCell]) {
    let stats_json = |s: &ReplicationStats| {
        format!(
            "\"retransmissions\": {}, \"down_marks\": {}, \
             \"snapshot_ships\": {}, \"reinvites\": {}",
            s.retransmissions, s.down_marks, s.snapshot_ships, s.reinvites
        )
    };
    let mut rows = String::new();
    for (i, c) in ingest.iter().enumerate() {
        let sep = if i + 1 < ingest.len() { "," } else { "" };
        let repl = match &c.repl {
            Some((stats, max_lag)) => {
                format!(", {}, \"max_follower_lag\": {max_lag}", stats_json(stats))
            }
            None => String::new(),
        };
        rows.push_str(&format!(
            "    {{\"n\": {}, \"mode\": \"{}\", \"policy\": \"{}\", \"ops\": {}, \
             \"run_ms\": {:.3}, \"ops_per_sec\": {:.0}{repl}}}{sep}\n",
            c.n, c.mode, c.policy, c.ops, c.run_ms, c.ops_per_sec
        ));
    }
    let mut catches = String::new();
    for (i, c) in catch_up.iter().enumerate() {
        let sep = if i + 1 < catch_up.len() { "," } else { "" };
        catches.push_str(&format!(
            "    {{\"n\": {}, \"missed_ops\": {}, \"catch_up_ms\": {:.3}, \
             \"ops_per_sec\": {:.0}, \"lag_before\": {}, {}}}{sep}\n",
            c.n,
            c.missed_ops,
            c.catch_up_ms,
            c.ops_per_sec,
            c.lag_before,
            stats_json(&c.stats)
        ));
    }
    // Summary: replication throughput relative to each unreplicated
    // durability baseline, per n.
    let mut summary = String::new();
    let mut ns: Vec<usize> = ingest.iter().map(|c| c.n).collect();
    ns.dedup();
    for (i, &n) in ns.iter().enumerate() {
        let find = |mode: &str, policy: &str| {
            ingest
                .iter()
                .find(|c| c.n == n && c.policy == policy && c.mode == mode)
                .expect("ingest grid complete")
        };
        let replicated = find("replicated", "group-commit").ops_per_sec;
        let sep = if i + 1 < ns.len() { "," } else { "" };
        summary.push_str(&format!(
            "    {{\"n\": {n}, \"replicated_over_off\": {:.3}, \
             \"replicated_over_group_commit\": {:.3}}}{sep}\n",
            replicated / find("unreplicated", "off").ops_per_sec,
            replicated / find("unreplicated", "group-commit").ops_per_sec
        ));
    }
    let host = host_json();
    let json = format!(
        "{{\n  \"bench\": \"replica\",\n  {host},\n  \"config\": {{\"quick\": {quick}, \
         \"theta\": {THETA}, \"nodes\": {NODES}, \"ack_mode\": \"quorum\", \
         \"durabilities\": [\"off\", \"group-commit\"]}},\n  \
         \"runs\": [\n{rows}  ],\n  \"catch_up\": [\n{catches}  ],\n  \
         \"summary\": [\n{summary}  ]\n}}\n"
    );
    std::fs::write(path, json).expect("write benchmark JSON");
    eprintln!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_replica.json")
        .to_owned();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: replica [--quick] [--out PATH]");
        return;
    }

    let sizes: &[(usize, usize)] = if quick {
        &[(64, 20_000), (1_000, 50_000)]
    } else {
        &[(1_000, 200_000), (1_000_000, 200_000)]
    };
    let catch_up_sizes: &[(usize, usize)] = if quick {
        &[(10_000, 20_000)]
    } else {
        &[(1_000_000, 100_000)]
    };

    let mut ingest = Vec::new();
    let mut catch_up = Vec::new();
    for &(n, ops) in sizes {
        eprintln!("n={n}, ops={ops}");
        measure_ingest(n, ops, &mut ingest);
    }
    for &(n, missed) in catch_up_sizes {
        eprintln!("catch-up n={n}, missed={missed}");
        measure_catch_up(n, missed, &mut catch_up);
    }
    write_json(Path::new(&out), quick, &ingest, &catch_up);
}

//! **`baseline`** — the reproducible scaling baseline behind
//! `BENCH_baseline.json`.
//!
//! Runs the three concurrent token implementations (`coarse` — one global
//! lock, `fine` — one lock per account, `sharded` — `min(n, 4 × cores)`
//! lock stripes) over a Zipfian-skewed mixed workload at n = 16, 1 000 and
//! 1 000 000 accounts, single- and multi-threaded, and writes one JSON
//! datapoint per (n, implementation, threads) cell. Every future perf PR
//! appends a comparable file, so the trajectory of the engine is a diff of
//! checked-in JSON, not folklore.
//!
//! The n = 1M rows exist *because of* the sparse state representation:
//! with the dense `n × n` allowance matrix the deployment alone would need
//! terabytes. Deploy + 1M ops completing in seconds is the acceptance
//! criterion this binary demonstrates.
//!
//! ```sh
//! cargo run --release -p tokensync-bench --bin baseline             # full (includes n = 1M)
//! cargo run --release -p tokensync-bench --bin baseline -- --quick  # CI smoke: n <= 1k
//! cargo run --release -p tokensync-bench --bin baseline -- --out path.json
//! ```

use std::sync::Arc;
use std::time::Instant;

use tokensync_bench::harness::run_split;
use tokensync_bench::workloads::{funded_state, zipf_ops};
use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_core::shared::{CoarseErc20, ConcurrentToken, ShardedErc20, SharedErc20};
use tokensync_spec::ProcessId;

/// Zipf skew of the workload (the YCSB hot-spot default).
const THETA: f64 = 0.99;
/// Thread counts measured per cell.
const THREADS: [usize; 2] = [1, 4];

struct Cell {
    n: usize,
    implementation: &'static str,
    threads: usize,
    ops: usize,
    deploy_ms: f64,
    run_ms: f64,
    ops_per_sec: f64,
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

/// Runs the shared chunk-per-thread harness and returns wall-clock
/// milliseconds.
fn run_workload<T: ConcurrentToken>(
    token: &Arc<T>,
    workload: &[(ProcessId, Erc20Op)],
    threads: usize,
) -> f64 {
    let start = Instant::now();
    run_split(token, workload, threads);
    ms(start)
}

fn measure<T: ConcurrentToken>(
    label: &'static str,
    build: impl Fn(Erc20State) -> T,
    initial: &Erc20State,
    workload: &[(ProcessId, Erc20Op)],
    out: &mut Vec<Cell>,
) {
    let n = initial.accounts();
    let supply = initial.total_supply();
    for threads in THREADS {
        // Best of three timed repetitions (each on a freshly deployed
        // token, so state drift cannot flatter later reps): the container
        // this runs in shares its core, and min-of-k is the standard way
        // to strip scheduler noise from a throughput baseline.
        let mut deploy_ms = f64::INFINITY;
        let mut run_ms = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            let token = Arc::new(build(initial.clone()));
            deploy_ms = deploy_ms.min(ms(start));
            run_ms = run_ms.min(run_workload(&token, workload, threads));
            // Supply conservation as the full-engine sanity check. The
            // snapshot walks the real cells — essential for the sharded
            // token, whose `total_supply()` serves a constructor-time
            // cached atomic and would compare a constant to itself.
            assert_eq!(
                token.state_snapshot().total_supply(),
                supply,
                "{label}/n={n} lost tokens"
            );
            assert_eq!(
                token.total_supply(),
                supply,
                "{label}/n={n} stale supply cache"
            );
        }
        let cell = Cell {
            n,
            implementation: label,
            threads,
            ops: workload.len(),
            deploy_ms,
            run_ms,
            ops_per_sec: workload.len() as f64 / (run_ms / 1e3),
        };
        eprintln!(
            "  n={:>9} {:>8} threads={} deploy={:>9.1}ms run={:>9.1}ms {:>12.0} ops/s",
            cell.n,
            cell.implementation,
            cell.threads,
            cell.deploy_ms,
            cell.run_ms,
            cell.ops_per_sec
        );
        out.push(cell);
    }
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains(['"', '\\']), "labels stay escape-free");
    s
}

fn write_json(path: &str, quick: bool, cells: &[Cell]) {
    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 < cells.len() { "," } else { "" };
        rows.push_str(&format!(
            "    {{\"n\": {}, \"impl\": \"{}\", \"threads\": {}, \"ops\": {}, \
             \"deploy_ms\": {:.3}, \"run_ms\": {:.3}, \"ops_per_sec\": {:.0}}}{}\n",
            c.n,
            json_escape_free(c.implementation),
            c.threads,
            c.ops,
            c.deploy_ms,
            c.run_ms,
            c.ops_per_sec,
            sep
        ));
    }
    // Speedup of sharded over coarse at the highest measured thread count.
    let mt = THREADS[THREADS.len() - 1];
    let mut speedups = String::new();
    let sizes: Vec<usize> = {
        let mut s: Vec<usize> = cells.iter().map(|c| c.n).collect();
        s.dedup();
        s
    };
    for (i, &n) in sizes.iter().enumerate() {
        let find = |label: &str| {
            cells
                .iter()
                .find(|c| c.n == n && c.implementation == label && c.threads == mt)
                .expect("cell grid is complete")
        };
        let ratio = find("sharded").ops_per_sec / find("coarse").ops_per_sec;
        let sep = if i + 1 < sizes.len() { "," } else { "" };
        speedups.push_str(&format!(
            "    {{\"n\": {n}, \"threads\": {mt}, \"sharded_over_coarse\": {ratio:.3}}}{sep}\n"
        ));
    }
    // Lock striping trades per-op overhead (a second shard lock on
    // cross-shard transfers) for parallel critical sections. A host
    // without parallel cores can only express the cost side of that
    // trade; the shared host object flags that right in the artifact —
    // the CI bench-smoke job reproduces this file on multi-core runners.
    let host = tokensync_bench::harness::host_json();
    let json = format!(
        "{{\n  \"bench\": \"baseline\",\n  {host},\n  \"config\": {{\"quick\": {quick}, \
         \"theta\": {THETA}, \"threads\": {THREADS:?}}},\n  \
         \"runs\": [\n{rows}  ],\n  \"summary\": [\n{speedups}  ]\n}}\n"
    );
    std::fs::write(path, json).expect("write benchmark JSON");
    eprintln!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_baseline.json")
        .to_owned();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: baseline [--quick] [--out PATH]");
        return;
    }

    let sizes: &[(usize, usize)] = if quick {
        // CI smoke: seconds, not minutes; n <= 1k.
        &[(16, 50_000), (1_000, 50_000)]
    } else {
        &[(16, 1_000_000), (1_000, 1_000_000), (1_000_000, 1_000_000)]
    };

    let mut cells = Vec::new();
    for &(n, ops) in sizes {
        eprintln!("generating zipf workload: n={n}, ops={ops}, theta={THETA}");
        let initial = funded_state(n);
        let workload = zipf_ops(n, ops, 0xBA5E, THETA);
        measure(
            "coarse",
            CoarseErc20::from_state,
            &initial,
            &workload,
            &mut cells,
        );
        measure(
            "fine",
            SharedErc20::from_state,
            &initial,
            &workload,
            &mut cells,
        );
        measure(
            "sharded",
            ShardedErc20::from_state,
            &initial,
            &workload,
            &mut cells,
        );
    }
    write_json(&out, quick, &cells);
}

//! **`store`** — the durability baseline behind `BENCH_store.json`.
//!
//! Measures what crash-safety costs and what recovery buys, on the same
//! ERC20 Zipf workload the other artifacts use, at n ∈ {1k, 1M}:
//!
//! * **ingest** — pipeline throughput per durability policy:
//!   `volatile` (no sink at all), `off` (store sink wired, nothing
//!   persisted — the sink-plumbing overhead), `group-commit` (append
//!   every wave, one *inline* fsync per batch — the pre-pipelining
//!   serving mode), `group-commit-pipelined` (appends return at commit,
//!   a dedicated fsync thread batches syncs behind an explicit
//!   `durable_seq()` watermark), `group-commit-incremental` (pipelined
//!   fsyncs plus copy-on-write delta snapshots published off the hot
//!   path — the intended serving mode) and `per-wave` (fsync every
//!   wave — the paranoid bound). Durable rows time run **plus
//!   `flush()`**, so every number is "all ops durable", not
//!   "acknowledged but in flight";
//! * **recovery** — wall-clock to rebuild a live `ShardedErc20` from
//!   the incremental run's directory, split into `snapshot_load_ms`
//!   (chain resolution: full snapshot + delta links) and `replay_ms`
//!   (verified WAL replay), in both `parallel` (footprint-partitioned
//!   waves across a worker pool — the default) and `sequential`
//!   (the oracle) modes, with the recovered state asserted equal to
//!   the pre-crash object on every invocation.
//!
//! Every durable run carries a live `StoreObs` recorder, so each policy
//! row also reports the WAL I/O it actually did — fsyncs, bytes,
//! records, segment rolls, full + delta snapshots — and the
//! append/fsync latency percentiles (p50/p99/p999).
//!
//! ```sh
//! cargo run --release -p tokensync-bench --bin store             # full (includes n = 1M)
//! cargo run --release -p tokensync-bench --bin store -- --quick  # CI smoke: n <= 1k
//! cargo run --release -p tokensync-bench --bin store -- --out path.json
//! cargo run --release -p tokensync-bench --bin store -- --quick --assert-recovery-rate 100000
//! ```
//!
//! `--assert-recovery-rate RATE` turns the bench into a CI gate: it
//! exits nonzero unless every parallel-recovery row rebuilt at or above
//! `RATE` operations per second.

use std::path::{Path, PathBuf};
use std::time::Instant;

use tokensync_bench::harness::host_json;
use tokensync_bench::workloads::{funded_state, zipf_ops};
use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_core::shared::{ConcurrentObject, ShardedErc20};
use tokensync_obs::{HistogramSnapshot, Registry};
use tokensync_pipeline::{
    run_script, run_script_with_sink, BatchConfig, PipelineConfig, PipelineRun,
};
use tokensync_spec::ProcessId;
use tokensync_store::{
    recover, recover_sequential, Durability, Recovered, Store, StoreConfig, StoreObs,
};

/// Zipf skew of the workload (the YCSB default the other benches use).
const THETA: f64 = 0.6;
/// Timed repetitions per cell (min taken).
const REPS: usize = 3;

/// One durable policy column: its name and the store knobs behind it.
struct Policy {
    name: &'static str,
    durability: Durability,
    pipeline_fsync: bool,
    incremental_snapshots: bool,
    /// Keep the last run's directory for the recovery measurement.
    keep_for_recovery: bool,
}

const POLICIES: &[Policy] = &[
    Policy {
        name: "off",
        durability: Durability::Off,
        pipeline_fsync: false,
        incremental_snapshots: false,
        keep_for_recovery: false,
    },
    Policy {
        name: "group-commit",
        durability: Durability::GroupCommit,
        pipeline_fsync: false,
        incremental_snapshots: false,
        keep_for_recovery: false,
    },
    Policy {
        name: "group-commit-pipelined",
        durability: Durability::GroupCommit,
        pipeline_fsync: true,
        incremental_snapshots: false,
        keep_for_recovery: false,
    },
    Policy {
        name: "group-commit-incremental",
        durability: Durability::GroupCommit,
        pipeline_fsync: true,
        incremental_snapshots: true,
        keep_for_recovery: true,
    },
    Policy {
        name: "per-wave",
        durability: Durability::PerWave,
        pipeline_fsync: false,
        incremental_snapshots: false,
        keep_for_recovery: false,
    },
];

/// WAL/snapshot I/O a durable run performed, read off its [`StoreObs`].
struct IoStats {
    fsyncs: u64,
    bytes_appended: u64,
    records_appended: u64,
    segments_created: u64,
    snapshots: u64,
    delta_snapshots: u64,
    append: HistogramSnapshot,
    fsync: HistogramSnapshot,
}

impl IoStats {
    fn read(obs: &StoreObs) -> Self {
        Self {
            fsyncs: obs.fsyncs(),
            bytes_appended: obs.bytes_appended(),
            records_appended: obs.records_appended(),
            segments_created: obs.segments_created(),
            snapshots: obs.snapshots_taken(),
            delta_snapshots: obs.delta_snapshots_taken(),
            append: obs.append_latency().expect("recorder enabled"),
            fsync: obs.fsync_latency().expect("recorder enabled"),
        }
    }
}

struct IngestCell {
    n: usize,
    policy: &'static str,
    ops: usize,
    run_ms: f64,
    ops_per_sec: f64,
    wal_bytes: u64,
    /// I/O counters + latency percentiles (None for the volatile row).
    io: Option<IoStats>,
}

struct RecoveryCell {
    n: usize,
    ops: usize,
    mode: &'static str,
    recover_ms: f64,
    snapshot_load_ms: f64,
    replay_ms: f64,
    replayed: u64,
    snapshot_watermark: u64,
    delta_links: u64,
    wal_bytes: u64,
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tokensync-bench-store-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pipeline_cfg(n: usize) -> PipelineConfig {
    PipelineConfig {
        batch: BatchConfig {
            max_ops: (n / 2).clamp(1, 1024),
            ..BatchConfig::default()
        },
        ..PipelineConfig::default()
    }
}

fn store_cfg(policy: &Policy, ops: usize) -> StoreConfig {
    StoreConfig {
        durability: policy.durability,
        // A handful of snapshots per run: recovery loads the last one
        // and replays the tail, like a long-lived server would. The odd
        // offset keeps the last snapshot off the exact end of the run,
        // so the recovery measurement always includes real replay.
        snapshot_every_ops: (ops as u64 / 4 + 137).max(1),
        pipeline_fsync: policy.pipeline_fsync,
        incremental_snapshots: policy.incremental_snapshots,
        ..StoreConfig::default()
    }
}

/// One durable ingest run; returns the run, the durable wall time
/// (run + `flush()`, excluding store creation — the genesis snapshot
/// is a one-time deploy cost, not ingest), the store dir (kept for
/// recovery) and the WAL size.
fn durable_run(
    tag: &str,
    initial: &Erc20State,
    workload: &[(ProcessId, Erc20Op)],
    cfg: &PipelineConfig,
    policy: &Policy,
) -> (
    PipelineRun<Erc20Op, tokensync_core::erc20::Erc20Resp>,
    f64,
    PathBuf,
    u64,
    IoStats,
) {
    let dir = scratch(tag);
    let token = ShardedErc20::from_state(initial.clone());
    let mut store: Store<ShardedErc20> =
        Store::create(&dir, initial, store_cfg(policy, workload.len())).expect("create store");
    store.set_obs(StoreObs::new(&Registry::new()));
    let start = Instant::now();
    let run = run_script_with_sink(&token, workload, cfg, &mut store);
    store.flush().expect("all committed ops reach disk");
    let run_ms = ms(start);
    let wal_bytes = store.wal_bytes().expect("wal size");
    let io = IoStats::read(store.obs());
    store.close().expect("store close");
    (run, run_ms, dir, wal_bytes, io)
}

fn push_ingest(
    out: &mut Vec<IngestCell>,
    n: usize,
    policy: &'static str,
    ops: usize,
    run_ms: f64,
    wal_bytes: u64,
    io: Option<IoStats>,
) {
    let cell = IngestCell {
        n,
        policy,
        ops,
        run_ms,
        ops_per_sec: ops as f64 / (run_ms / 1e3),
        wal_bytes,
        io,
    };
    let extra = cell
        .io
        .as_ref()
        .map(|io| {
            format!(
                " fsyncs={} snaps={}+{}d fsync-p99={}ns append-p99={}ns",
                io.fsyncs, io.snapshots, io.delta_snapshots, io.fsync.p99, io.append.p99
            )
        })
        .unwrap_or_default();
    eprintln!(
        "  ingest n={:>9} {:>24} run={:>9.1}ms {:>12.0} ops/s wal={:>10} B{}",
        cell.n, cell.policy, cell.run_ms, cell.ops_per_sec, cell.wal_bytes, extra
    );
    out.push(cell);
}

/// The best (minimum-total) rep of one recovery mode, with the
/// load/replay split taken from that same rep.
struct RecMeasure {
    recover_ms: f64,
    snapshot_load_ms: f64,
    replay_ms: f64,
    replayed: u64,
    snapshot_watermark: u64,
    delta_links: u64,
}

/// One timed recovery, asserted against the oracle. Returns the
/// condensed measurement so the (large) recovered object drops before
/// the next rep runs.
fn timed_recovery(
    dir: &Path,
    expected_state: &Erc20State,
    workload_len: usize,
    mode: &'static str,
) -> RecMeasure {
    let start = Instant::now();
    let recovered: Recovered<ShardedErc20> = match mode {
        "parallel" => recover::<ShardedErc20>(dir).expect("recovery succeeds"),
        _ => recover_sequential::<ShardedErc20>(dir).expect("recovery succeeds"),
    };
    let took = ms(start);
    // Acceptance: the recovered state is exactly the pre-crash state
    // (the full prefix — nothing was torn here).
    assert_eq!(recovered.next_seq as usize, workload_len);
    assert_eq!(&recovered.state, expected_state);
    assert_eq!(&recovered.object.snapshot(), expected_state);
    RecMeasure {
        recover_ms: took,
        snapshot_load_ms: recovered.snapshot_load.as_secs_f64() * 1e3,
        replay_ms: recovered.replay.as_secs_f64() * 1e3,
        replayed: recovered.replayed,
        snapshot_watermark: recovered.snapshot_watermark,
        delta_links: recovered.delta_links,
    }
}

fn measure(n: usize, ops: usize, ingest: &mut Vec<IngestCell>, recovery: &mut Vec<RecoveryCell>) {
    let initial = funded_state(n);
    let workload = zipf_ops(n, ops, 0x57_0E, THETA);
    let cfg = pipeline_cfg(n);

    // Volatile reference: the engine with no sink at all.
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let token = ShardedErc20::from_state(initial.clone());
        let start = Instant::now();
        let run = run_script(&token, &workload, &cfg);
        best = best.min(ms(start));
        assert_eq!(run.stats.ops as usize, workload.len());
    }
    push_ingest(ingest, n, "volatile", ops, best, 0, None);

    // Store sink per policy.
    for policy in POLICIES {
        let mut best = f64::INFINITY;
        let mut wal_bytes = 0;
        let mut io = None;
        let mut keep: Option<(PathBuf, Erc20State)> = None;
        for rep in 0..REPS {
            let (run, run_ms, dir, bytes, rep_io) = durable_run(
                &format!("{}-{n}-{rep}", policy.name),
                &initial,
                &workload,
                &cfg,
                policy,
            );
            best = best.min(run_ms);
            wal_bytes = bytes;
            io = Some(rep_io);
            assert_eq!(run.stats.ops as usize, workload.len());
            // Keep the last incremental directory for the recovery
            // measurement; drop the others.
            if policy.keep_for_recovery {
                let token_state = run
                    .log
                    .replay(&tokensync_core::erc20::Erc20Spec::new(initial.clone()))
                    .expect("commit log replays");
                if let Some((old, _)) = keep.replace((dir, token_state)) {
                    let _ = std::fs::remove_dir_all(old);
                }
            } else {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
        push_ingest(ingest, n, policy.name, ops, best, wal_bytes, io);

        if let Some((dir, expected_state)) = keep {
            // Recovery: rebuild the live object from disk alone, with
            // the footprint-parallel default and the sequential oracle.
            // One untimed warm-up first, so the two timed modes see the
            // same page-cache and allocator state instead of the first
            // mode paying the cold-read cost alone.
            drop(recover_sequential::<ShardedErc20>(&dir).expect("warm-up recovery"));
            // Interleave the reps of the two modes so environmental
            // drift (page-cache eviction, allocator growth) lands on
            // both equally instead of skewing whichever ran second;
            // keep the best rep per mode.
            const MODES: [&str; 2] = ["parallel", "sequential"];
            let mut best: [Option<RecMeasure>; 2] = [None, None];
            for _ in 0..REPS {
                for (slot, &mode) in MODES.iter().enumerate() {
                    let m = timed_recovery(&dir, &expected_state, workload.len(), mode);
                    if best[slot]
                        .as_ref()
                        .map_or(true, |b| m.recover_ms < b.recover_ms)
                    {
                        best[slot] = Some(m);
                    }
                }
            }
            for (slot, &mode) in MODES.iter().enumerate() {
                let m = best[slot].take().expect("at least one rep");
                let cell = RecoveryCell {
                    n,
                    ops,
                    mode,
                    recover_ms: m.recover_ms,
                    snapshot_load_ms: m.snapshot_load_ms,
                    replay_ms: m.replay_ms,
                    replayed: m.replayed,
                    snapshot_watermark: m.snapshot_watermark,
                    delta_links: m.delta_links,
                    wal_bytes,
                };
                eprintln!(
                    "  recover n={:>8} {:>10} {:>9.1}ms (chain@{} +{}d load={:.1}ms, {} replayed in {:.1}ms)",
                    cell.n,
                    cell.mode,
                    cell.recover_ms,
                    cell.snapshot_watermark,
                    cell.delta_links,
                    cell.snapshot_load_ms,
                    cell.replayed,
                    cell.replay_ms,
                );
                recovery.push(cell);
            }
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// The pre-pipelining baseline (inline group commit, monolithic
/// snapshots, sequential-only recovery), kept verbatim from the last
/// artifact regenerated before this redesign so the delta is visible in
/// the JSON itself.
const PRIOR: &str = r#"{
    "note": "pre-pipelining baseline: inline group commit, monolithic snapshots, sequential recovery (conflated recover_ms)",
    "ingest_ops_per_sec": [
      {"n": 1000, "volatile": 7681499, "group_commit": 1168126, "per_wave": 1296237},
      {"n": 1000000, "volatile": 3794026, "group_commit": 165013, "per_wave": 156380}
    ],
    "recovery": [
      {"n": 1000, "recover_ms": 40.996},
      {"n": 1000000, "recover_ms": 797.851}
    ]
  }"#;

fn write_json(path: &Path, quick: bool, ingest: &[IngestCell], recovery: &[RecoveryCell]) {
    let mut rows = String::new();
    for (i, c) in ingest.iter().enumerate() {
        let sep = if i + 1 < ingest.len() { "," } else { "" };
        let io =
            c.io.as_ref()
                .map(|io| {
                    format!(
                        ", \"fsyncs\": {}, \"bytes_appended\": {}, \"records_appended\": {}, \
                     \"segments_created\": {}, \"snapshots\": {}, \"delta_snapshots\": {}, \
                     \"append_p50_ns\": {}, \"append_p99_ns\": {}, \"append_p999_ns\": {}, \
                     \"fsync_p50_ns\": {}, \"fsync_p99_ns\": {}, \"fsync_p999_ns\": {}",
                        io.fsyncs,
                        io.bytes_appended,
                        io.records_appended,
                        io.segments_created,
                        io.snapshots,
                        io.delta_snapshots,
                        io.append.p50,
                        io.append.p99,
                        io.append.p999,
                        io.fsync.p50,
                        io.fsync.p99,
                        io.fsync.p999
                    )
                })
                .unwrap_or_default();
        rows.push_str(&format!(
            "    {{\"n\": {}, \"policy\": \"{}\", \"ops\": {}, \"run_ms\": {:.3}, \
             \"ops_per_sec\": {:.0}, \"wal_bytes\": {}{io}}}{sep}\n",
            c.n, c.policy, c.ops, c.run_ms, c.ops_per_sec, c.wal_bytes
        ));
    }
    let mut recs = String::new();
    for (i, c) in recovery.iter().enumerate() {
        let sep = if i + 1 < recovery.len() { "," } else { "" };
        recs.push_str(&format!(
            "    {{\"n\": {}, \"ops\": {}, \"mode\": \"{}\", \"recover_ms\": {:.3}, \
             \"snapshot_load_ms\": {:.3}, \"replay_ms\": {:.3}, \"replayed\": {}, \
             \"snapshot_watermark\": {}, \"delta_links\": {}, \"wal_bytes\": {}}}{sep}\n",
            c.n,
            c.ops,
            c.mode,
            c.recover_ms,
            c.snapshot_load_ms,
            c.replay_ms,
            c.replayed,
            c.snapshot_watermark,
            c.delta_links,
            c.wal_bytes
        ));
    }
    // Summary: the price of durability (each policy over volatile), the
    // pipelining win over the inline baseline, and recovery throughput,
    // per n.
    let mut summary = String::new();
    let ns: Vec<usize> = {
        let mut ns: Vec<usize> = ingest.iter().map(|c| c.n).collect();
        ns.dedup();
        ns
    };
    for (i, &n) in ns.iter().enumerate() {
        let find = |policy: &str| {
            ingest
                .iter()
                .find(|c| c.n == n && c.policy == policy)
                .expect("ingest grid complete")
        };
        let rec = |mode: &str| {
            recovery
                .iter()
                .find(|c| c.n == n && c.mode == mode)
                .expect("recovery cell")
        };
        let par = rec("parallel");
        let seq = rec("sequential");
        let sep = if i + 1 < ns.len() { "," } else { "" };
        summary.push_str(&format!(
            "    {{\"n\": {n}, \"group_commit_over_volatile\": {:.3}, \
             \"pipelined_over_inline\": {:.3}, \"incremental_over_inline\": {:.3}, \
             \"per_wave_over_group_commit\": {:.3}, \"recover_ms\": {:.3}, \
             \"sequential_recover_ms\": {:.3}, \"parallel_replay_speedup\": {:.3}, \
             \"recovered_ops_per_sec\": {:.0}}}{sep}\n",
            find("group-commit").ops_per_sec / find("volatile").ops_per_sec,
            find("group-commit-pipelined").ops_per_sec / find("group-commit").ops_per_sec,
            find("group-commit-incremental").ops_per_sec / find("group-commit").ops_per_sec,
            find("per-wave").ops_per_sec / find("group-commit").ops_per_sec,
            par.recover_ms,
            seq.recover_ms,
            seq.replay_ms / par.replay_ms.max(1e-9),
            par.ops as f64 / (par.recover_ms / 1e3),
        ));
    }
    let host = host_json();
    let json = format!(
        "{{\n  \"bench\": \"store\",\n  {host},\n  \"config\": {{\"quick\": {quick}, \
         \"theta\": {THETA}, \"durabilities\": [\"volatile\", \"off\", \"group-commit\", \
         \"group-commit-pipelined\", \"group-commit-incremental\", \"per-wave\"]}},\n  \
         \"prior\": {PRIOR},\n  \
         \"runs\": [\n{rows}  ],\n  \"recovery\": [\n{recs}  ],\n  \"summary\": [\n{summary}  ]\n}}\n"
    );
    std::fs::write(path, json).expect("write benchmark JSON");
    eprintln!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_store.json")
        .to_owned();
    let assert_rate = args
        .iter()
        .position(|a| a == "--assert-recovery-rate")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse::<f64>()
                .expect("--assert-recovery-rate takes ops/s")
        });
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: store [--quick] [--out PATH] [--assert-recovery-rate OPS_PER_SEC]");
        return;
    }

    let sizes: &[(usize, usize)] = if quick {
        &[(64, 20_000), (1_000, 50_000)]
    } else {
        &[(1_000, 200_000), (1_000_000, 200_000)]
    };

    let mut ingest = Vec::new();
    let mut recovery = Vec::new();
    for &(n, ops) in sizes {
        eprintln!("n={n}, ops={ops}");
        measure(n, ops, &mut ingest, &mut recovery);
    }
    write_json(Path::new(&out), quick, &ingest, &recovery);

    if let Some(rate) = assert_rate {
        let mut failed = false;
        for c in recovery.iter().filter(|c| c.mode == "parallel") {
            let got = c.ops as f64 / (c.recover_ms / 1e3);
            if got < rate {
                eprintln!(
                    "FAIL: recovery rate gate: n={} rebuilt {:.0} ops/s < required {rate:.0}",
                    c.n, got
                );
                failed = true;
            } else {
                eprintln!(
                    "recovery rate gate: n={} rebuilt {:.0} ops/s >= {rate:.0}",
                    c.n, got
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}

//! **`store`** — the durability baseline behind `BENCH_store.json`.
//!
//! Measures what crash-safety costs and what recovery buys, on the same
//! ERC20 Zipf workload the other artifacts use, at n ∈ {1k, 1M}:
//!
//! * **ingest** — pipeline throughput per durability policy:
//!   `volatile` (no sink at all), `off` (store sink wired, nothing
//!   persisted — the sink-plumbing overhead), `group-commit` (append
//!   every wave, one fsync per batch — the intended serving mode) and
//!   `per-wave` (fsync every wave — the paranoid bound);
//! * **recovery** — wall-clock to rebuild a live `ShardedErc20` from
//!   the group-commit run's directory (newest snapshot + verified
//!   replay of the log suffix), with the recovered state asserted equal
//!   to the pre-crash object (the acceptance criterion, run here on
//!   every invocation).
//!
//! Every durable run carries a live `StoreObs` recorder, so each policy
//! row also reports the WAL I/O it actually did — fsyncs, bytes,
//! records, segment rolls, snapshots — and the append/fsync latency
//! percentiles (p50/p99/p999) from the recorder's histograms.
//!
//! ```sh
//! cargo run --release -p tokensync-bench --bin store             # full (includes n = 1M)
//! cargo run --release -p tokensync-bench --bin store -- --quick  # CI smoke: n <= 1k
//! cargo run --release -p tokensync-bench --bin store -- --out path.json
//! ```

use std::path::{Path, PathBuf};
use std::time::Instant;

use tokensync_bench::harness::host_json;
use tokensync_bench::workloads::{funded_state, zipf_ops};
use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_core::shared::{ConcurrentObject, ShardedErc20};
use tokensync_obs::{HistogramSnapshot, Registry};
use tokensync_pipeline::{
    run_script, run_script_with_sink, BatchConfig, PipelineConfig, PipelineRun,
};
use tokensync_spec::ProcessId;
use tokensync_store::{recover, Durability, Store, StoreConfig, StoreObs};

/// Zipf skew of the workload (the YCSB default the other benches use).
const THETA: f64 = 0.6;
/// Timed repetitions per cell (min taken).
const REPS: usize = 3;

/// WAL/snapshot I/O a durable run performed, read off its [`StoreObs`].
struct IoStats {
    fsyncs: u64,
    bytes_appended: u64,
    records_appended: u64,
    segments_created: u64,
    snapshots: u64,
    append: HistogramSnapshot,
    fsync: HistogramSnapshot,
}

impl IoStats {
    fn read(obs: &StoreObs) -> Self {
        Self {
            fsyncs: obs.fsyncs(),
            bytes_appended: obs.bytes_appended(),
            records_appended: obs.records_appended(),
            segments_created: obs.segments_created(),
            snapshots: obs.snapshots_taken(),
            append: obs.append_latency().expect("recorder enabled"),
            fsync: obs.fsync_latency().expect("recorder enabled"),
        }
    }
}

struct IngestCell {
    n: usize,
    policy: &'static str,
    ops: usize,
    run_ms: f64,
    ops_per_sec: f64,
    wal_bytes: u64,
    /// I/O counters + latency percentiles (None for the volatile row).
    io: Option<IoStats>,
}

struct RecoveryCell {
    n: usize,
    ops: usize,
    recover_ms: f64,
    replayed: u64,
    snapshot_watermark: u64,
    wal_bytes: u64,
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tokensync-bench-store-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pipeline_cfg(n: usize) -> PipelineConfig {
    PipelineConfig {
        batch: BatchConfig {
            max_ops: (n / 2).clamp(1, 1024),
            ..BatchConfig::default()
        },
        ..PipelineConfig::default()
    }
}

fn store_cfg(durability: Durability, ops: usize) -> StoreConfig {
    StoreConfig {
        durability,
        // A handful of snapshots per run: recovery loads the last one
        // and replays the tail, like a long-lived server would. The odd
        // offset keeps the last snapshot off the exact end of the run,
        // so the recovery measurement always includes real replay.
        snapshot_every_ops: (ops as u64 / 4 + 137).max(1),
        ..StoreConfig::default()
    }
}

/// One durable ingest run; returns the run, the ingest wall time
/// (excluding store creation — the genesis snapshot is a one-time
/// deploy cost, not ingest), the store dir (kept for recovery) and the
/// WAL size.
fn durable_run(
    tag: &str,
    initial: &Erc20State,
    workload: &[(ProcessId, Erc20Op)],
    cfg: &PipelineConfig,
    durability: Durability,
) -> (
    PipelineRun<Erc20Op, tokensync_core::erc20::Erc20Resp>,
    f64,
    PathBuf,
    u64,
    IoStats,
) {
    let dir = scratch(tag);
    let token = ShardedErc20::from_state(initial.clone());
    let mut store: Store<ShardedErc20> =
        Store::create(&dir, initial, store_cfg(durability, workload.len())).expect("create store");
    store.set_obs(StoreObs::new(&Registry::new()));
    let start = Instant::now();
    let run = run_script_with_sink(&token, workload, cfg, &mut store);
    let wal_bytes = store.wal_bytes().expect("wal size");
    let io = IoStats::read(store.obs());
    store.close().expect("store close");
    (run, ms(start), dir, wal_bytes, io)
}

fn push_ingest(
    out: &mut Vec<IngestCell>,
    n: usize,
    policy: &'static str,
    ops: usize,
    run_ms: f64,
    wal_bytes: u64,
    io: Option<IoStats>,
) {
    let cell = IngestCell {
        n,
        policy,
        ops,
        run_ms,
        ops_per_sec: ops as f64 / (run_ms / 1e3),
        wal_bytes,
        io,
    };
    let extra = cell
        .io
        .as_ref()
        .map(|io| {
            format!(
                " fsyncs={} fsync-p99={}ns append-p99={}ns",
                io.fsyncs, io.fsync.p99, io.append.p99
            )
        })
        .unwrap_or_default();
    eprintln!(
        "  ingest n={:>9} {:>12} run={:>9.1}ms {:>12.0} ops/s wal={:>10} B{}",
        cell.n, cell.policy, cell.run_ms, cell.ops_per_sec, cell.wal_bytes, extra
    );
    out.push(cell);
}

fn measure(n: usize, ops: usize, ingest: &mut Vec<IngestCell>, recovery: &mut Vec<RecoveryCell>) {
    let initial = funded_state(n);
    let workload = zipf_ops(n, ops, 0x57_0E, THETA);
    let cfg = pipeline_cfg(n);

    // Volatile reference: the engine with no sink at all.
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let token = ShardedErc20::from_state(initial.clone());
        let start = Instant::now();
        let run = run_script(&token, &workload, &cfg);
        best = best.min(ms(start));
        assert_eq!(run.stats.ops as usize, workload.len());
    }
    push_ingest(ingest, n, "volatile", ops, best, 0, None);

    // Store sink per policy.
    for (policy, durability) in [
        ("off", Durability::Off),
        ("group-commit", Durability::GroupCommit),
        ("per-wave", Durability::PerWave),
    ] {
        let mut best = f64::INFINITY;
        let mut wal_bytes = 0;
        let mut io = None;
        let mut keep: Option<(PathBuf, Erc20State)> = None;
        for rep in 0..REPS {
            let (run, run_ms, dir, bytes, rep_io) = durable_run(
                &format!("{policy}-{n}-{rep}"),
                &initial,
                &workload,
                &cfg,
                durability,
            );
            best = best.min(run_ms);
            wal_bytes = bytes;
            io = Some(rep_io);
            assert_eq!(run.stats.ops as usize, workload.len());
            // Keep the last group-commit directory for the recovery
            // measurement; drop the others.
            if policy == "group-commit" {
                let token_state = run
                    .log
                    .replay(&tokensync_core::erc20::Erc20Spec::new(initial.clone()))
                    .expect("commit log replays");
                if let Some((old, _)) = keep.replace((dir, token_state)) {
                    let _ = std::fs::remove_dir_all(old);
                }
            } else {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
        push_ingest(ingest, n, policy, ops, best, wal_bytes, io);

        if let Some((dir, expected_state)) = keep {
            // Recovery: rebuild the live object from disk alone.
            let start = Instant::now();
            let recovered = recover::<ShardedErc20>(&dir).expect("recovery succeeds");
            let recover_ms = ms(start);
            // Acceptance: the recovered state is exactly the pre-crash
            // state (the full prefix — nothing was torn here).
            assert_eq!(recovered.next_seq as usize, workload.len());
            assert_eq!(recovered.state, expected_state);
            assert_eq!(recovered.object.snapshot(), expected_state);
            let cell = RecoveryCell {
                n,
                ops,
                recover_ms,
                replayed: recovered.replayed,
                snapshot_watermark: recovered.snapshot_watermark,
                wal_bytes,
            };
            eprintln!(
                "  recover n={:>8} {:>9.1}ms (snapshot@{} + {} replayed)",
                cell.n, cell.recover_ms, cell.snapshot_watermark, cell.replayed
            );
            recovery.push(cell);
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

fn write_json(path: &Path, quick: bool, ingest: &[IngestCell], recovery: &[RecoveryCell]) {
    let mut rows = String::new();
    for (i, c) in ingest.iter().enumerate() {
        let sep = if i + 1 < ingest.len() { "," } else { "" };
        let io =
            c.io.as_ref()
                .map(|io| {
                    format!(
                        ", \"fsyncs\": {}, \"bytes_appended\": {}, \"records_appended\": {}, \
                     \"segments_created\": {}, \"snapshots\": {}, \
                     \"append_p50_ns\": {}, \"append_p99_ns\": {}, \"append_p999_ns\": {}, \
                     \"fsync_p50_ns\": {}, \"fsync_p99_ns\": {}, \"fsync_p999_ns\": {}",
                        io.fsyncs,
                        io.bytes_appended,
                        io.records_appended,
                        io.segments_created,
                        io.snapshots,
                        io.append.p50,
                        io.append.p99,
                        io.append.p999,
                        io.fsync.p50,
                        io.fsync.p99,
                        io.fsync.p999
                    )
                })
                .unwrap_or_default();
        rows.push_str(&format!(
            "    {{\"n\": {}, \"policy\": \"{}\", \"ops\": {}, \"run_ms\": {:.3}, \
             \"ops_per_sec\": {:.0}, \"wal_bytes\": {}{io}}}{sep}\n",
            c.n, c.policy, c.ops, c.run_ms, c.ops_per_sec, c.wal_bytes
        ));
    }
    let mut recs = String::new();
    for (i, c) in recovery.iter().enumerate() {
        let sep = if i + 1 < recovery.len() { "," } else { "" };
        recs.push_str(&format!(
            "    {{\"n\": {}, \"ops\": {}, \"recover_ms\": {:.3}, \"replayed\": {}, \
             \"snapshot_watermark\": {}, \"wal_bytes\": {}}}{sep}\n",
            c.n, c.ops, c.recover_ms, c.replayed, c.snapshot_watermark, c.wal_bytes
        ));
    }
    // Summary: the price of durability (group-commit over volatile) and
    // recovery throughput, per n.
    let mut summary = String::new();
    let ns: Vec<usize> = {
        let mut ns: Vec<usize> = ingest.iter().map(|c| c.n).collect();
        ns.dedup();
        ns
    };
    for (i, &n) in ns.iter().enumerate() {
        let find = |policy: &str| {
            ingest
                .iter()
                .find(|c| c.n == n && c.policy == policy)
                .expect("ingest grid complete")
        };
        let rec = recovery.iter().find(|c| c.n == n).expect("recovery cell");
        let sep = if i + 1 < ns.len() { "," } else { "" };
        summary.push_str(&format!(
            "    {{\"n\": {n}, \"group_commit_over_volatile\": {:.3}, \
             \"per_wave_over_group_commit\": {:.3}, \"recover_ms\": {:.3}, \
             \"recovered_ops_per_sec\": {:.0}}}{sep}\n",
            find("group-commit").ops_per_sec / find("volatile").ops_per_sec,
            find("per-wave").ops_per_sec / find("group-commit").ops_per_sec,
            rec.recover_ms,
            rec.ops as f64 / (rec.recover_ms / 1e3),
        ));
    }
    let host = host_json();
    let json = format!(
        "{{\n  \"bench\": \"store\",\n  {host},\n  \"config\": {{\"quick\": {quick}, \
         \"theta\": {THETA}, \"durabilities\": [\"volatile\", \"off\", \"group-commit\", \
         \"per-wave\"]}},\n  \
         \"runs\": [\n{rows}  ],\n  \"recovery\": [\n{recs}  ],\n  \"summary\": [\n{summary}  ]\n}}\n"
    );
    std::fs::write(path, json).expect("write benchmark JSON");
    eprintln!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_store.json")
        .to_owned();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: store [--quick] [--out PATH]");
        return;
    }

    let sizes: &[(usize, usize)] = if quick {
        &[(64, 20_000), (1_000, 50_000)]
    } else {
        &[(1_000, 200_000), (1_000_000, 200_000)]
    };

    let mut ingest = Vec::new();
    let mut recovery = Vec::new();
    for &(n, ops) in sizes {
        eprintln!("n={n}, ops={ops}");
        measure(n, ops, &mut ingest, &mut recovery);
    }
    write_json(Path::new(&out), quick, &ingest, &recovery);
}

//! **`standards`** — the standard-generic pipeline baseline behind
//! `BENCH_standards.json`.
//!
//! One engine, three standards: the same schedule/execute/commit
//! machinery serves ERC20, ERC721 and ERC1155 objects, and this binary
//! measures it per standard against direct sharded execution over the
//! same workloads and initial states:
//!
//! * `direct` — threads hammer the standard's lock-striped object
//!   (`ShardedErc20` / `ShardedErc721` / `ShardedErc1155`) with no
//!   commutativity analysis;
//! * `pipeline` — the generic commutativity-aware engine over the same
//!   object: batches are footprint-analyzed, commuting ops execute in
//!   parallel waves, conflicting ops serialize deterministically.
//!
//! Two regimes per standard at n ∈ {1k, 1M}:
//!
//! * `disjoint` — the owner-disjoint fast path (distinct ERC20 sources,
//!   distinct NFT token ids, non-intersecting ERC1155 batch cell sets):
//!   the consensus-free regime of the paper, where the pipeline must
//!   report wave parallelism **> 1** (asserted, per the acceptance
//!   criterion);
//! * `contended` — hot rows: k spenders on one ERC20 allowance row, a
//!   Zipf-hot NFT collection, batches draining one ERC1155 account.
//!
//! ```sh
//! cargo run --release -p tokensync-bench --bin standards             # full (includes n = 1M)
//! cargo run --release -p tokensync-bench --bin standards -- --quick  # CI smoke: n <= 1k
//! cargo run --release -p tokensync-bench --bin standards -- --out path.json
//! ```

use std::sync::Arc;
use std::time::Instant;

use tokensync_bench::harness::run_split;
use tokensync_bench::workloads::{
    disjoint_transfers, erc1155_batch_ops, erc1155_funded_state, funded_state, hot_row_ops,
    hot_row_state, nft_market_state, nft_marketplace_ops,
};
use tokensync_core::shared::{ConcurrentObject, ShardedErc20};
use tokensync_core::standards::erc1155::ShardedErc1155;
use tokensync_core::standards::erc721::ShardedErc721;
use tokensync_pipeline::{run_script, BatchConfig, PipelineConfig, PipelineStats, ScheduleConfig};
use tokensync_spec::ProcessId;

/// Zipf skew of the hot NFT collection (the YCSB hot-spot default).
const THETA_HOT: f64 = 0.99;
/// Spenders contending on the hot ERC20 allowance row.
const HOT_SPENDERS: usize = 8;
/// Share (percent) of ERC1155 batches draining the hot account.
const HOT_BATCHES: usize = 80;
/// ERC1155 token types.
const TYPES: usize = 16;
/// Worker threads for the direct paths and the pipeline's wave pool.
const THREADS: usize = 4;
/// Timed repetitions per cell (min taken, scheduler noise stripped).
const REPS: usize = 3;

struct Cell {
    standard: &'static str,
    n: usize,
    regime: &'static str,
    path: &'static str,
    ops: usize,
    run_ms: f64,
    ops_per_sec: f64,
    pipeline: Option<PipelineStats>,
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

/// One (standard, regime, n) cell pair: direct then pipeline, sharing
/// the object constructor, the workload, and a per-run `verify` hook
/// (supply conservation or its per-standard analogue).
#[allow(clippy::too_many_arguments)]
fn measure<T, B, V>(
    standard: &'static str,
    regime: &'static str,
    n: usize,
    build: B,
    verify: V,
    workload: &[(ProcessId, T::Op)],
    batch: usize,
    out: &mut Vec<Cell>,
) where
    T: ConcurrentObject + 'static,
    B: Fn() -> T,
    V: Fn(&T),
{
    // Direct: threads split the stream, no analysis.
    let mut run_ms = f64::INFINITY;
    for _ in 0..REPS {
        let token = Arc::new(build());
        let start = Instant::now();
        run_split(&token, workload, THREADS);
        run_ms = run_ms.min(ms(start));
        verify(&token);
    }
    push_cell(
        out,
        standard,
        n,
        regime,
        "direct",
        workload.len(),
        run_ms,
        None,
    );

    // Pipeline: the generic engine over the same object.
    let cfg = PipelineConfig {
        batch: BatchConfig {
            max_ops: batch,
            ..BatchConfig::default()
        },
        schedule: ScheduleConfig::default(),
        exec: tokensync_pipeline::ExecConfig {
            workers: THREADS,
            ..tokensync_pipeline::ExecConfig::default()
        },
        ..PipelineConfig::default()
    };
    let mut run_ms = f64::INFINITY;
    let mut stats = PipelineStats::default();
    for _ in 0..REPS {
        let token = build();
        let start = Instant::now();
        let run = run_script(&token, workload, &cfg);
        run_ms = run_ms.min(ms(start));
        verify(&token);
        assert_eq!(run.stats.ops as usize, workload.len(), "ops dropped");
        stats = run.stats;
    }
    if regime == "disjoint" {
        // The acceptance criterion of the standard-generic stack: the
        // owner-disjoint regime exposes wave parallelism on every
        // standard.
        assert!(
            stats.wave_parallelism() > 1.0,
            "{standard}/{regime}: wave parallelism {:.2} <= 1",
            stats.wave_parallelism()
        );
    }
    push_cell(
        out,
        standard,
        n,
        regime,
        "pipeline",
        workload.len(),
        run_ms,
        Some(stats),
    );
}

#[allow(clippy::too_many_arguments)]
fn push_cell(
    out: &mut Vec<Cell>,
    standard: &'static str,
    n: usize,
    regime: &'static str,
    path: &'static str,
    ops: usize,
    run_ms: f64,
    pipeline: Option<PipelineStats>,
) {
    let cell = Cell {
        standard,
        n,
        regime,
        path,
        ops,
        run_ms,
        ops_per_sec: ops as f64 / (run_ms / 1e3),
        pipeline,
    };
    let extra = cell
        .pipeline
        .map(|s| {
            format!(
                " wave-par={:.1} serial={:.0}%",
                s.wave_parallelism(),
                100.0 * s.serial_fraction()
            )
        })
        .unwrap_or_default();
    eprintln!(
        "  {:>7} n={:>9} {:>9} {:>9} run={:>9.1}ms {:>12.0} ops/s{}",
        cell.standard, cell.n, cell.regime, cell.path, cell.run_ms, cell.ops_per_sec, extra
    );
    out.push(cell);
}

fn write_json(path: &str, quick: bool, cells: &[Cell]) {
    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 < cells.len() { "," } else { "" };
        let pipeline = c
            .pipeline
            .map(|s| {
                format!(
                    ", \"wave_parallelism\": {:.2}, \"serial_fraction\": {:.4}, \
                     \"waves\": {}, \"batches\": {}",
                    s.wave_parallelism(),
                    s.serial_fraction(),
                    s.waves,
                    s.batches
                )
            })
            .unwrap_or_default();
        rows.push_str(&format!(
            "    {{\"standard\": \"{}\", \"n\": {}, \"regime\": \"{}\", \"path\": \"{}\", \
             \"ops\": {}, \"run_ms\": {:.3}, \"ops_per_sec\": {:.0}{}}}{}\n",
            c.standard, c.n, c.regime, c.path, c.ops, c.run_ms, c.ops_per_sec, pipeline, sep
        ));
    }
    // Summary: pipeline vs direct, per (standard, n, regime).
    let mut summary = String::new();
    let mut keys: Vec<(&'static str, usize, &'static str)> =
        cells.iter().map(|c| (c.standard, c.n, c.regime)).collect();
    keys.dedup();
    for (i, &(standard, n, regime)) in keys.iter().enumerate() {
        let find = |path: &str| {
            cells
                .iter()
                .find(|c| {
                    c.standard == standard && c.n == n && c.regime == regime && c.path == path
                })
                .expect("cell grid is complete")
        };
        let p = find("pipeline");
        let sep = if i + 1 < keys.len() { "," } else { "" };
        summary.push_str(&format!(
            "    {{\"standard\": \"{standard}\", \"n\": {n}, \"regime\": \"{regime}\", \
             \"pipeline_over_direct\": {:.3}, \"wave_parallelism\": {:.2}, \
             \"serial_fraction\": {:.4}}}{sep}\n",
            p.ops_per_sec / find("direct").ops_per_sec,
            p.pipeline.map(|s| s.wave_parallelism()).unwrap_or(0.0),
            p.pipeline.map(|s| s.serial_fraction()).unwrap_or(0.0),
        ));
    }
    // The shared host object carries the single-core caveat (see
    // bench::harness::host_json): identical wording in every artifact.
    let host = tokensync_bench::harness::host_json();
    let json = format!(
        "{{\n  \"bench\": \"standards\",\n  {host},\n  \"config\": {{\"quick\": {quick}, \
         \"theta_hot\": {THETA_HOT}, \"hot_spenders\": {HOT_SPENDERS}, \
         \"hot_batches_percent\": {HOT_BATCHES}, \"types\": {TYPES}, \
         \"threads\": {THREADS}}},\n  \
         \"runs\": [\n{rows}  ],\n  \"summary\": [\n{summary}  ]\n}}\n"
    );
    std::fs::write(path, json).expect("write benchmark JSON");
    eprintln!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_standards.json")
        .to_owned();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: standards [--quick] [--out PATH]");
        return;
    }

    let sizes: &[(usize, usize)] = if quick {
        &[(64, 20_000), (1_000, 50_000)]
    } else {
        &[(1_000, 1_000_000), (1_000_000, 1_000_000)]
    };

    let mut cells = Vec::new();
    for &(n, ops) in sizes {
        // Batch bounded by n/2 so a disjoint-regime batch can be fully
        // conflict-free (the generators' window guarantee).
        let batch = (n / 2).clamp(1, 1024);
        eprintln!("generating workloads: n={n}, ops={ops}, batch={batch}");

        // ── ERC20 ───────────────────────────────────────────────────
        {
            let initial = funded_state(n);
            let supply = initial.total_supply();
            let workload = disjoint_transfers(n, ops, 0xD15);
            measure(
                "erc20",
                "disjoint",
                n,
                || ShardedErc20::from_state(initial.clone()),
                |t: &ShardedErc20| {
                    assert_eq!(t.snapshot().total_supply(), supply, "erc20 lost tokens")
                },
                &workload,
                batch,
                &mut cells,
            );
            let initial = hot_row_state(n, HOT_SPENDERS);
            let supply = initial.total_supply();
            let workload = hot_row_ops(n, ops, 0x407, HOT_SPENDERS);
            measure(
                "erc20",
                "contended",
                n,
                || ShardedErc20::from_state(initial.clone()),
                |t: &ShardedErc20| {
                    assert_eq!(t.snapshot().total_supply(), supply, "erc20 lost tokens")
                },
                &workload,
                batch,
                &mut cells,
            );
        }

        // ── ERC721 (n = token-id space; marketplace traffic) ────────
        {
            let initial = nft_market_state(n, n);
            let minted_floor = initial.minted();
            // theta = 0: uniform token ids — the owner-disjoint regime.
            let workload = nft_marketplace_ops(n, n, ops, 0x721, 0.0);
            measure(
                "erc721",
                "disjoint",
                n,
                || ShardedErc721::from_state(initial.clone()),
                |t: &ShardedErc721| {
                    assert!(t.snapshot().minted() >= minted_floor, "erc721 lost tokens")
                },
                &workload,
                batch,
                &mut cells,
            );
            // theta = 0.99: one hot collection head — conflict chains.
            let workload = nft_marketplace_ops(n, n, ops, 0x721F, THETA_HOT);
            measure(
                "erc721",
                "contended",
                n,
                || ShardedErc721::from_state(initial.clone()),
                |t: &ShardedErc721| {
                    assert!(t.snapshot().minted() >= minted_floor, "erc721 lost tokens")
                },
                &workload,
                batch,
                &mut cells,
            );
        }

        // ── ERC1155 (n accounts × TYPES types; batch transfers) ─────
        {
            let initial = erc1155_funded_state(n, TYPES);
            let supplies: Vec<u64> = (0..TYPES)
                .map(|t| initial.total_supply(tokensync_core::standards::erc1155::TypeId::new(t)))
                .collect();
            // Recount from the live balances — comparing the cached
            // constants against themselves would be vacuous.
            let check = move |t: &ShardedErc1155| {
                assert_eq!(t.audit_supplies(), supplies, "erc1155 lost tokens");
            };
            let workload = erc1155_batch_ops(n, TYPES, ops, 0x1155, 0);
            measure(
                "erc1155",
                "disjoint",
                n,
                || ShardedErc1155::from_state(initial.clone()),
                &check,
                &workload,
                batch,
                &mut cells,
            );
            let workload = erc1155_batch_ops(n, TYPES, ops, 0x1155F, HOT_BATCHES);
            measure(
                "erc1155",
                "contended",
                n,
                || ShardedErc1155::from_state(initial.clone()),
                &check,
                &workload,
                batch,
                &mut cells,
            );
        }
    }
    write_json(&out, quick, &cells);
}

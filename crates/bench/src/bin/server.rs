//! **`server`** — the end-to-end serving benchmark behind
//! `BENCH_server.json`.
//!
//! Drives the TCP front end (`tokensync-server`) with a fleet of
//! simulated client connections per standard — full mode holds ≥1k
//! concurrent connections, each with one request in flight (closed
//! loop) — and reports:
//!
//! * **req/s** end to end: framed request in, committed response out,
//!   across the whole fleet;
//! * **latency** from the server's own `tokensync-obs` histogram
//!   (`tokensync_server_request_ns`: frame decoded → response queued at
//!   commit), p50/p90/p99;
//! * the **in-process baseline**: the identical op stream pushed through
//!   `run_script` with no sockets, no framing, no per-connection
//!   threads — so the artifact quantifies exactly what the wire costs;
//! * admission pressure (`busy_retries`) and the commit == ack
//!   cross-check (`committed` must equal `ok`).
//!
//! Workloads are fully commuting per standard (disjoint footprints), so
//! the numbers measure the serving path, not scheduler serialization:
//! ERC20 transfers into a disjoint destination range, ERC721
//! self-transfers of per-connection tokens, ERC1155 transfers on
//! per-connection (type, account) cells.
//!
//! ```sh
//! cargo run --release -p tokensync-bench --bin server             # full: 1024 connections
//! cargo run --release -p tokensync-bench --bin server -- --quick  # CI smoke: 128 connections
//! cargo run --release -p tokensync-bench --bin server -- --out path.json
//! ```

use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tokensync_bench::harness::host_json;
use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_core::shared::{ConcurrentObject, ShardedErc20};
use tokensync_core::standards::erc1155::{Erc1155Op, Erc1155State, ShardedErc1155, TypeId};
use tokensync_core::standards::erc721::{Erc721Op, Erc721State, ShardedErc721, TokenId};
use tokensync_obs::Registry;
use tokensync_pipeline::{run_script, PipelineConfig};
use tokensync_server::{Client, Reply, Server, ServerConfig, WireStandard};
use tokensync_spec::{AccountId, ProcessId};

/// Client worker threads the connection fleet is spread over.
const WORKERS: usize = 8;

struct Cell {
    standard: &'static str,
    conns: usize,
    requests: u64,
    ok: u64,
    busy_retries: u64,
    committed: u64,
    run_ms: f64,
    req_per_sec: f64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    inproc_ops: u64,
    inproc_ms: f64,
    inproc_ops_per_sec: f64,
    wire_overhead: f64,
}

fn server_config() -> ServerConfig {
    let mut cfg = ServerConfig::default();
    // The fleet keeps one request per connection in flight; size the
    // intake so steady state never trips admission control, leaving
    // `busy_retries` to report genuine pressure only.
    cfg.pipeline.batch.queue_depth = 16 * 1024;
    cfg
}

/// Connects with retry: a fleet-sized connect burst can overflow the
/// listener backlog, which on Linux surfaces as refused/reset connects —
/// back off and retry rather than undercounting the fleet.
fn connect_with_retry<T>(addr: SocketAddr) -> Client<T>
where
    T: WireStandard,
    T::Op: tokensync_core::codec::Codec,
    T::Resp: tokensync_core::codec::Codec,
{
    let mut delay = Duration::from_millis(1);
    for _ in 0..200 {
        match Client::<T>::connect(addr) {
            Ok(c) => return c,
            Err(_) => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(100));
            }
        }
    }
    panic!("could not connect a fleet client to {addr}");
}

/// Drives `conns` closed-loop connections through `rounds` requests
/// each, multiplexed over [`WORKERS`] threads. `op_for(conn, round)`
/// names each request. Returns (ok, busy_retries, elapsed).
fn drive_fleet<T, F>(addr: SocketAddr, conns: usize, rounds: u64, op_for: F) -> (u64, u64, Duration)
where
    T: WireStandard,
    T::Op: tokensync_core::codec::Codec,
    T::Resp: tokensync_core::codec::Codec,
    F: Fn(usize, u64) -> (ProcessId, T::Op) + Send + Sync + 'static,
{
    let op_for = Arc::new(op_for);
    let start = Instant::now();
    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let op_for = Arc::clone(&op_for);
            std::thread::spawn(move || {
                // Worker w owns connections w, w+WORKERS, w+2·WORKERS, …
                let mine: Vec<usize> = (w..conns).step_by(WORKERS).collect();
                let mut clients: Vec<Client<T>> = mine
                    .iter()
                    .map(|_| {
                        let mut c = connect_with_retry::<T>(addr);
                        c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                        c
                    })
                    .collect();
                let (mut ok, mut busy) = (0u64, 0u64);
                for round in 0..rounds {
                    // Fan the round out: one send per connection first,
                    // so every connection has a request in flight…
                    for (slot, &conn) in mine.iter().enumerate() {
                        let (caller, op) = op_for(conn, round);
                        clients[slot].send(caller, &op).unwrap();
                    }
                    // …then collect, retrying admission rejections.
                    for (slot, &conn) in mine.iter().enumerate() {
                        loop {
                            let (_, reply) = clients[slot].recv().unwrap();
                            match reply {
                                Reply::Ok(_) => {
                                    ok += 1;
                                    break;
                                }
                                Reply::Busy => {
                                    busy += 1;
                                    let (caller, op) = op_for(conn, round);
                                    clients[slot].send(caller, &op).unwrap();
                                }
                                other => panic!("conn {conn} answered {other:?}"),
                            }
                        }
                    }
                }
                (ok, busy)
            })
        })
        .collect();
    let mut ok = 0;
    let mut busy = 0;
    for h in handles {
        let (o, b) = h.join().unwrap();
        ok += o;
        busy += b;
    }
    (ok, busy, start.elapsed())
}

/// One standard through the server fleet and through the in-process
/// baseline, on identical op streams.
fn measure<T, F>(
    standard: &'static str,
    token: Arc<T>,
    baseline_token: &T,
    conns: usize,
    rounds: u64,
    op_for: F,
) -> Cell
where
    T: WireStandard + 'static,
    T::Op: tokensync_core::codec::Codec + Clone,
    T::Resp: tokensync_core::codec::Codec,
    F: Fn(usize, u64) -> (ProcessId, T::Op) + Send + Sync + Clone + 'static,
{
    eprintln!("{standard}: {conns} connections x {rounds} rounds");
    let registry = Registry::new();
    let handle = Server::spawn(token, (), server_config(), &registry).unwrap();
    let addr = handle.addr();
    let (ok, busy_retries, elapsed) = drive_fleet::<T, F>(addr, conns, rounds, op_for.clone());
    let latency = handle.obs().request_ns.snapshot();
    let (run, ()) = handle.finish();
    let committed = run.log.len() as u64;
    assert_eq!(
        committed, ok,
        "ack/commit divergence: {ok} acks, {committed} commits"
    );

    // In-process baseline: the same ops, no sockets.
    let script: Vec<(ProcessId, T::Op)> = (0..rounds)
        .flat_map(|round| (0..conns).map(move |conn| (conn, round)))
        .map(|(conn, round)| op_for(conn, round))
        .collect();
    let base_start = Instant::now();
    let base_run = run_script(baseline_token, &script, &PipelineConfig::default());
    let base_elapsed = base_start.elapsed();
    assert_eq!(base_run.log.len(), script.len());

    let run_ms = elapsed.as_secs_f64() * 1e3;
    let inproc_ms = base_elapsed.as_secs_f64() * 1e3;
    let req_per_sec = ok as f64 / elapsed.as_secs_f64();
    let inproc_ops_per_sec = script.len() as f64 / base_elapsed.as_secs_f64();
    Cell {
        standard,
        conns,
        requests: ok + busy_retries,
        ok,
        busy_retries,
        committed,
        run_ms,
        req_per_sec,
        p50_ns: latency.p50,
        p90_ns: latency.p90,
        p99_ns: latency.p99,
        inproc_ops: script.len() as u64,
        inproc_ms,
        inproc_ops_per_sec,
        wire_overhead: inproc_ops_per_sec / req_per_sec,
    }
}

fn write_json(path: &Path, quick: bool, conns: usize, rounds: u64, cells: &[Cell]) {
    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 < cells.len() { "," } else { "" };
        rows.push_str(&format!(
            "    {{\"standard\": \"{}\", \"conns\": {}, \"requests\": {}, \"ok\": {}, \
             \"busy_retries\": {}, \"committed\": {}, \"run_ms\": {:.3}, \
             \"req_per_sec\": {:.0}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \
             \"inproc_ops\": {}, \"inproc_ms\": {:.3}, \"inproc_ops_per_sec\": {:.0}, \
             \"wire_overhead\": {:.3}}}{sep}\n",
            c.standard,
            c.conns,
            c.requests,
            c.ok,
            c.busy_retries,
            c.committed,
            c.run_ms,
            c.req_per_sec,
            c.p50_ns,
            c.p90_ns,
            c.p99_ns,
            c.inproc_ops,
            c.inproc_ms,
            c.inproc_ops_per_sec,
            c.wire_overhead,
        ));
    }
    let host = host_json();
    let json = format!(
        "{{\n  \"bench\": \"server\",\n  {host},\n  \"config\": {{\"quick\": {quick}, \
         \"conns\": {conns}, \"rounds_per_conn\": {rounds}, \"client_workers\": {WORKERS}, \
         \"sink\": \"volatile\", \"ack\": \"at-commit\", \
         \"latency_source\": \"tokensync_server_request_ns (decode -> response queued)\"}},\n  \
         \"runs\": [\n{rows}  ]\n}}\n"
    );
    std::fs::write(path, json).expect("write benchmark JSON");
    eprintln!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: server [--quick] [--out PATH]");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_server.json")
        .to_owned();

    // Full mode: ≥1k concurrent connections, as the artifact promises.
    let (conns, rounds): (usize, u64) = if quick { (128, 50) } else { (1024, 100) };

    let mut cells = Vec::new();

    // ERC20: caller c sends from its own account into a disjoint
    // destination range [conns, 2·conns) — no two footprints collide.
    {
        let accounts = 2 * conns;
        let state = Erc20State::from_balances(vec![1_000_000; accounts]);
        let token = Arc::new(ShardedErc20::from_state(state.clone()));
        let baseline = ShardedErc20::from_state(state);
        let op_for = move |conn: usize, _round: u64| {
            (
                ProcessId::new(conn),
                Erc20Op::Transfer {
                    to: AccountId::new(conns + conn),
                    value: 1,
                },
            )
        };
        cells.push(measure("erc20", token, &baseline, conns, rounds, op_for));
    }

    // ERC721: connection c self-transfers token c — one token cell per
    // connection, fully disjoint, infinitely repeatable.
    {
        let procs = conns.max(16);
        let state = Erc721State::minted_round_robin(procs, 2 * conns.max(16), conns.max(16));
        let token = Arc::new(ShardedErc721::from_state(state.clone()));
        let baseline = ShardedErc721::from_state(state);
        let op_for = move |conn: usize, _round: u64| {
            let owner = ProcessId::new(conn % procs);
            (
                owner,
                Erc721Op::TransferFrom {
                    from: owner,
                    to: owner,
                    token: TokenId::new(conn),
                },
            )
        };
        cells.push(measure("erc721", token, &baseline, conns, rounds, op_for));
    }

    // ERC1155: connection c moves value on type c % 8 between its own
    // account pair — (type, account) cells are per-connection, so all
    // transfers commute.
    {
        let types = 8;
        let accounts = 2 * conns;
        let state =
            Erc1155State::deploy(accounts, ProcessId::new(0), &vec![u32::MAX as u64; types]);
        let seed = ShardedErc1155::from_state(state);
        // Seed every connection's source account so its transfers
        // succeed; done in-process, before serving starts.
        for conn in 0..conns {
            let resp = seed.apply(
                ProcessId::new(0),
                &Erc1155Op::Transfer {
                    from: AccountId::new(0),
                    to: AccountId::new(conn),
                    type_id: TypeId::new(conn % types),
                    value: 1_000_000,
                },
            );
            assert_eq!(resp, tokensync_core::standards::erc1155::Erc1155Resp::TRUE);
        }
        let seeded = seed.snapshot();
        let token = Arc::new(ShardedErc1155::from_state(seeded.clone()));
        let baseline = ShardedErc1155::from_state(seeded);
        let op_for = move |conn: usize, _round: u64| {
            (
                ProcessId::new(conn % accounts),
                Erc1155Op::Transfer {
                    from: AccountId::new(conn),
                    to: AccountId::new(conns + conn),
                    type_id: TypeId::new(conn % types),
                    value: 1,
                },
            )
        };
        cells.push(measure("erc1155", token, &baseline, conns, rounds, op_for));
    }

    for c in &cells {
        eprintln!(
            "{}: {:.0} req/s over the wire vs {:.0} ops/s in-process \
             (overhead x{:.2}), p50 {} us, p99 {} us, {} busy retries",
            c.standard,
            c.req_per_sec,
            c.inproc_ops_per_sec,
            c.wire_overhead,
            c.p50_ns / 1_000,
            c.p99_ns / 1_000,
            c.busy_retries,
        );
    }
    write_json(Path::new(&out), quick, conns, rounds, &cells);
}

//! **`pipeline`** — the reproducible pipeline baseline behind
//! `BENCH_pipeline.json`.
//!
//! Compares three execution paths over the same workloads and initial
//! states:
//!
//! * `coarse-direct` — threads hammer the one-big-lock token directly;
//! * `sharded-direct` — threads hammer the lock-striped token directly
//!   (the PR-2 fast path: parallel, but blind to commutativity — every
//!   op still takes its shard locks, conflicts just collide there);
//! * `pipeline` — the commutativity-aware engine over the sharded token:
//!   batches are conflict-analyzed, commuting ops execute in parallel
//!   waves, conflicting ops serialize deterministically, and a commit
//!   log records the linearization.
//!
//! Three regimes at n ∈ {1k, 1M}: `disjoint` (owner-disjoint transfers —
//! the consensus-free fast path, where the pipeline should report wave
//! parallelism ≈ batch size), `zipf` (hot-account mixed traffic), and
//! `hotrow` (k spenders racing one shared allowance row — the `Q_k`
//! regime where almost nothing commutes and the serial lane dominates).
//! For the pipeline rows the JSON also records the measured wave
//! parallelism, serial fraction, and the adaptive-bypass counters, so
//! the conflict-dependence of the engine is visible in the artifact,
//! not just its throughput. The bench *asserts* the bypass contract:
//! disjoint traffic must ride the bypass on (nearly) every batch, and
//! the hot-row regime must never engage it. The `prior` object embeds
//! the previous PR's pipeline numbers (same host) so the before/after
//! is part of the artifact.
//!
//! Each pipeline cell is measured twice: with the recorder seam
//! **disabled** (path `pipeline` — comparable to history, the seam
//! costs one untaken branch per site) and **enabled** (path
//! `pipeline-obs` — per-stage and whole-batch latency histograms on).
//! The enabled rows carry the batch-latency percentiles
//! (`batch_p50_ns`/`p99`/`p999`), the summary carries the within-run
//! enabled/disabled throughput ratio (`obs_over_pipeline`), and
//! `--assert-obs-overhead PCT` gates that ratio — an in-run comparison,
//! so it holds on any host, unlike cross-run deltas.
//!
//! ```sh
//! cargo run --release -p tokensync-bench --bin pipeline             # full (includes n = 1M)
//! cargo run --release -p tokensync-bench --bin pipeline -- --quick  # CI smoke: n <= 1k
//! cargo run --release -p tokensync-bench --bin pipeline -- --out path.json
//! cargo run --release -p tokensync-bench --bin pipeline -- --quick --assert-min-ratio 0.1
//! cargo run --release -p tokensync-bench --bin pipeline -- --quick --assert-obs-overhead 5 \
//!     --metrics-out METRICS_pipeline.prom
//! ```

use std::sync::Arc;
use std::time::Instant;

use tokensync_bench::harness::run_split;
use tokensync_bench::workloads::{
    disjoint_transfers, funded_state, hot_row_ops, hot_row_state, zipf_ops,
};
use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_core::shared::{CoarseErc20, ConcurrentToken, ShardedErc20};
use tokensync_obs::{HistogramSnapshot, Registry};
use tokensync_pipeline::{
    run_script, run_script_observed, BatchConfig, PipelineConfig, PipelineObs, PipelineStats,
    ScheduleConfig,
};
use tokensync_spec::ProcessId;

/// Zipf skew of the mixed regime (the YCSB hot-spot default).
const THETA: f64 = 0.99;
/// Spenders contending on the hot allowance row.
const HOT_SPENDERS: usize = 8;
/// Worker threads for the direct paths and the pipeline's wave pool.
const THREADS: usize = 4;
/// Timed repetitions per cell (min taken, scheduler noise stripped).
const REPS: usize = 3;

/// Pipeline numbers from the previous full run of this bench on the
/// same host (engine as of the previous PR, before the observability
/// seam was threaded through). Embedded in the JSON so the artifact
/// carries its own before/after — `over_prior` near 1.0 demonstrates
/// the disabled recorder costs nothing measurable.
const PRIOR: &[(usize, &str, f64, f64)] = &[
    // (n, regime, pipeline ops/s, pipeline_over_sharded)
    (1_000, "disjoint", 12_834_435.0, 0.211),
    (1_000, "zipf", 6_271_348.0, 0.259),
    (1_000, "hotrow", 8_712_257.0, 0.208),
    (1_000_000, "disjoint", 9_734_687.0, 0.178),
    (1_000_000, "zipf", 3_693_438.0, 0.474),
    (1_000_000, "hotrow", 6_765_099.0, 0.342),
];

struct Cell {
    n: usize,
    regime: &'static str,
    path: &'static str,
    ops: usize,
    run_ms: f64,
    ops_per_sec: f64,
    /// Pipeline-only scheduling counters (None for the direct paths).
    pipeline: Option<PipelineStats>,
    /// Whole-batch latency distribution (recorder-enabled rows only).
    latency: Option<HistogramSnapshot>,
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

fn measure_direct<T: ConcurrentToken>(
    path: &'static str,
    regime: &'static str,
    build: impl Fn(Erc20State) -> T,
    initial: &Erc20State,
    workload: &[(ProcessId, Erc20Op)],
    out: &mut Vec<Cell>,
) {
    let supply = initial.total_supply();
    let mut run_ms = f64::INFINITY;
    for _ in 0..REPS {
        let token = Arc::new(build(initial.clone()));
        let start = Instant::now();
        run_split(&token, workload, THREADS);
        run_ms = run_ms.min(ms(start));
        assert_eq!(
            token.state_snapshot().total_supply(),
            supply,
            "{path}/{regime} lost tokens"
        );
    }
    push_cell(
        out,
        initial.accounts(),
        regime,
        path,
        workload.len(),
        run_ms,
        None,
        None,
    );
}

/// Measures the pipeline cell twice — recorder disabled (`pipeline`)
/// and enabled (`pipeline-obs`) — and returns the enabled run's
/// rendered metrics page.
fn measure_pipeline(
    regime: &'static str,
    initial: &Erc20State,
    workload: &[(ProcessId, Erc20Op)],
    batch: usize,
    out: &mut Vec<Cell>,
) -> String {
    let supply = initial.total_supply();
    let cfg = PipelineConfig {
        batch: BatchConfig {
            max_ops: batch,
            ..BatchConfig::default()
        },
        schedule: ScheduleConfig::default(),
        exec: tokensync_pipeline::ExecConfig {
            workers: THREADS
                .min(std::thread::available_parallelism().map_or(1, std::num::NonZero::get)),
            ..tokensync_pipeline::ExecConfig::default()
        },
        ..PipelineConfig::default()
    };
    let mut run_ms = f64::INFINITY;
    let mut stats = PipelineStats::default();
    for _ in 0..REPS {
        let token = ShardedErc20::from_state(initial.clone());
        let start = Instant::now();
        let run = run_script(&token, workload, &cfg);
        run_ms = run_ms.min(ms(start));
        assert_eq!(
            token.state_snapshot().total_supply(),
            supply,
            "pipeline/{regime} lost tokens"
        );
        assert_eq!(run.stats.ops as usize, workload.len(), "ops dropped");
        stats = run.stats;
    }
    // The adaptive-bypass contract is part of the measurement: disjoint
    // traffic must certify and bypass (nearly) every batch — the first
    // batch pays the probe, everything after rides the fast path — while
    // the hot-row regime must never slip a conflicting batch past the
    // commutativity probe.
    match regime {
        "disjoint" => assert!(
            stats.bypassed_batches >= stats.batches * 9 / 10,
            "disjoint regime must engage the bypass: {}/{} batches bypassed",
            stats.bypassed_batches,
            stats.batches
        ),
        "hotrow" => assert_eq!(
            stats.bypassed_batches, 0,
            "hotrow regime must never bypass, got {} batches",
            stats.bypassed_batches
        ),
        _ => {}
    }
    push_cell(
        out,
        initial.accounts(),
        regime,
        "pipeline",
        workload.len(),
        run_ms,
        Some(stats),
        None,
    );

    // The same cell with the recorder live: every batch records its
    // stage and whole-batch latency. The in-run delta against the row
    // above is the true cost of *enabled* observability.
    let mut obs_ms = f64::INFINITY;
    let mut page = String::new();
    let mut latency = None;
    for _ in 0..REPS {
        let token = ShardedErc20::from_state(initial.clone());
        let registry = Registry::new();
        let obs = PipelineObs::new(&registry, 0);
        let start = Instant::now();
        let run = run_script_observed(&token, workload, &cfg, &mut (), &obs);
        obs_ms = obs_ms.min(ms(start));
        assert_eq!(run.stats.ops as usize, workload.len(), "ops dropped");
        latency = obs.batch_latency();
        page = registry.render_text();
    }
    push_cell(
        out,
        initial.accounts(),
        regime,
        "pipeline-obs",
        workload.len(),
        obs_ms,
        None,
        latency,
    );
    page
}

#[allow(clippy::too_many_arguments)]
fn push_cell(
    out: &mut Vec<Cell>,
    n: usize,
    regime: &'static str,
    path: &'static str,
    ops: usize,
    run_ms: f64,
    pipeline: Option<PipelineStats>,
    latency: Option<HistogramSnapshot>,
) {
    let cell = Cell {
        n,
        regime,
        path,
        ops,
        run_ms,
        ops_per_sec: ops as f64 / (run_ms / 1e3),
        pipeline,
        latency,
    };
    let extra = cell
        .pipeline
        .map(|s| {
            format!(
                " waves/batch={:.1} wave-par={:.1} serial={:.0}% bypass={}/{}",
                s.waves as f64 / s.batches.max(1) as f64,
                s.wave_parallelism(),
                100.0 * s.serial_fraction(),
                s.bypassed_batches,
                s.batches
            )
        })
        .unwrap_or_default();
    let lat = cell
        .latency
        .as_ref()
        .map(|l| format!(" batch p50={}ns p99={}ns p999={}ns", l.p50, l.p99, l.p999))
        .unwrap_or_default();
    eprintln!(
        "  n={:>9} {:>8} {:>14} run={:>9.1}ms {:>12.0} ops/s{}{}",
        cell.n, cell.regime, cell.path, cell.run_ms, cell.ops_per_sec, extra, lat
    );
    out.push(cell);
}

fn write_json(path: &str, quick: bool, batch_1k: usize, cells: &[Cell]) {
    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 < cells.len() { "," } else { "" };
        let pipeline = c
            .pipeline
            .map(|s| {
                format!(
                    ", \"wave_parallelism\": {:.2}, \"serial_fraction\": {:.4}, \
                     \"waves\": {}, \"batches\": {}, \"bypassed_batches\": {}, \
                     \"bypass_aborts\": {}, \"bypass_rate\": {:.4}, \"commit_records\": {}",
                    s.wave_parallelism(),
                    s.serial_fraction(),
                    s.waves,
                    s.batches,
                    s.bypassed_batches,
                    s.bypass_aborts,
                    s.bypass_rate(),
                    s.commit_records
                )
            })
            .unwrap_or_default();
        let latency = c
            .latency
            .as_ref()
            .map(|l| {
                format!(
                    ", \"batch_p50_ns\": {}, \"batch_p90_ns\": {}, \"batch_p99_ns\": {}, \
                     \"batch_p999_ns\": {}, \"batch_max_ns\": {}, \"batches_observed\": {}",
                    l.p50, l.p90, l.p99, l.p999, l.max, l.count
                )
            })
            .unwrap_or_default();
        rows.push_str(&format!(
            "    {{\"n\": {}, \"regime\": \"{}\", \"path\": \"{}\", \"ops\": {}, \
             \"run_ms\": {:.3}, \"ops_per_sec\": {:.0}{}{}}}{}\n",
            c.n, c.regime, c.path, c.ops, c.run_ms, c.ops_per_sec, pipeline, latency, sep
        ));
    }
    // Summary: pipeline speedup over each direct path, per (n, regime).
    let mut summary = String::new();
    let mut keys: Vec<(usize, &'static str)> = cells.iter().map(|c| (c.n, c.regime)).collect();
    keys.dedup();
    for (i, &(n, regime)) in keys.iter().enumerate() {
        let find = |path: &str| {
            cells
                .iter()
                .find(|c| c.n == n && c.regime == regime && c.path == path)
                .expect("cell grid is complete")
        };
        let p = find("pipeline");
        let sep = if i + 1 < keys.len() { "," } else { "" };
        // Before/after against the embedded pre-bypass numbers, where
        // the grid cell matches a prior cell (full runs only).
        let over_prior = PRIOR
            .iter()
            .find(|&&(pn, pr, _, _)| pn == n && pr == regime)
            .map(|&(_, _, prior_ops, _)| {
                format!(", \"over_prior\": {:.2}", p.ops_per_sec / prior_ops)
            })
            .unwrap_or_default();
        summary.push_str(&format!(
            "    {{\"n\": {n}, \"regime\": \"{regime}\", \
             \"pipeline_over_coarse\": {:.3}, \"pipeline_over_sharded\": {:.3}, \
             \"obs_over_pipeline\": {:.3}, \
             \"wave_parallelism\": {:.2}, \"bypass_rate\": {:.4}{over_prior}}}{sep}\n",
            p.ops_per_sec / find("coarse-direct").ops_per_sec,
            p.ops_per_sec / find("sharded-direct").ops_per_sec,
            find("pipeline-obs").ops_per_sec / p.ops_per_sec,
            p.pipeline.map(|s| s.wave_parallelism()).unwrap_or(0.0),
            p.pipeline.map(|s| s.bypass_rate()).unwrap_or(0.0),
        ));
    }
    // The prior pipeline numbers this PR is measured against.
    let mut prior = String::new();
    for (i, &(n, regime, ops_per_sec, over_sharded)) in PRIOR.iter().enumerate() {
        let sep = if i + 1 < PRIOR.len() { "," } else { "" };
        prior.push_str(&format!(
            "    {{\"n\": {n}, \"regime\": \"{regime}\", \"ops_per_sec\": {ops_per_sec:.0}, \
             \"pipeline_over_sharded\": {over_sharded}}}{sep}\n"
        ));
    }
    // The shared host object carries the single-core caveat: without
    // parallel cores the pipeline rows can only show scheduling overhead
    // and the *measured* parallelism, not the wall-clock win.
    let host = tokensync_bench::harness::host_json();
    let json = format!(
        "{{\n  \"bench\": \"pipeline\",\n  {host},\n  \"config\": {{\"quick\": {quick}, \
         \"theta\": {THETA}, \"hot_spenders\": {HOT_SPENDERS}, \"threads\": {THREADS}, \
         \"batch_1k\": {batch_1k}}},\n  \
         \"prior\": {{\"note\": \"pipeline before the observability seam was threaded \
         through the engine (previous PR, same host)\", \
         \"runs\": [\n{prior}  ]}},\n  \
         \"runs\": [\n{rows}  ],\n  \"summary\": [\n{summary}  ]\n}}\n"
    );
    std::fs::write(path, json).expect("write benchmark JSON");
    eprintln!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_pipeline.json")
        .to_owned();
    let assert_min_ratio = args
        .iter()
        .position(|a| a == "--assert-min-ratio")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<f64>().expect("--assert-min-ratio takes a float"));
    let assert_obs_overhead = args
        .iter()
        .position(|a| a == "--assert-obs-overhead")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse::<f64>()
                .expect("--assert-obs-overhead takes a percentage")
        });
    let metrics_out = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: pipeline [--quick] [--out PATH] [--assert-min-ratio R] \
             [--assert-obs-overhead PCT] [--metrics-out PATH]"
        );
        return;
    }

    let sizes: &[(usize, usize)] = if quick {
        &[(64, 20_000), (1_000, 50_000)]
    } else {
        &[(1_000, 1_000_000), (1_000_000, 1_000_000)]
    };

    let mut cells = Vec::new();
    let mut batch_1k = 0usize;
    let mut metrics_page = String::new();
    for &(n, ops) in sizes {
        // Batch bounded by n/2 so a disjoint-regime batch can be fully
        // conflict-free (the generator's window guarantee).
        let batch = (n / 2).clamp(1, 1024);
        if n == 1_000 {
            batch_1k = batch;
        }
        eprintln!("generating workloads: n={n}, ops={ops}, batch={batch}");
        let regimes: [(&'static str, Erc20State, Vec<(ProcessId, Erc20Op)>); 3] = [
            (
                "disjoint",
                funded_state(n),
                disjoint_transfers(n, ops, 0xD15),
            ),
            ("zipf", funded_state(n), zipf_ops(n, ops, 0xBA5E, THETA)),
            (
                "hotrow",
                hot_row_state(n, HOT_SPENDERS),
                hot_row_ops(n, ops, 0x407, HOT_SPENDERS),
            ),
        ];
        for (regime, initial, workload) in regimes {
            measure_direct(
                "coarse-direct",
                regime,
                CoarseErc20::from_state,
                &initial,
                &workload,
                &mut cells,
            );
            measure_direct(
                "sharded-direct",
                regime,
                ShardedErc20::from_state,
                &initial,
                &workload,
                &mut cells,
            );
            metrics_page = measure_pipeline(regime, &initial, &workload, batch, &mut cells);
        }
    }
    write_json(&out, quick, batch_1k, &cells);
    if let Some(path) = metrics_out {
        // One representative exposition page (the last cell's enabled
        // run) — the CI artifact proving the text format renders.
        std::fs::write(&path, &metrics_page).expect("write metrics page");
        eprintln!("wrote {path}");
    }

    // CI gate: the disjoint pipeline/sharded-direct ratio at the largest
    // grid size must clear the floor — catches regressions that re-open
    // the throughput gap this PR closed.
    if let Some(floor) = assert_min_ratio {
        let n_max = cells.iter().map(|c| c.n).max().expect("grid nonempty");
        let find = |path: &str| {
            cells
                .iter()
                .find(|c| c.n == n_max && c.regime == "disjoint" && c.path == path)
                .expect("disjoint cells present")
        };
        let ratio = find("pipeline").ops_per_sec / find("sharded-direct").ops_per_sec;
        assert!(
            ratio >= floor,
            "disjoint pipeline/sharded ratio {ratio:.3} fell below the floor {floor}"
        );
        eprintln!("ratio gate passed: disjoint n={n_max} pipeline/sharded = {ratio:.3} >= {floor}");
    }

    // CI gate: recording latency histograms must not tax throughput by
    // more than PCT percent. Compared within this run (enabled vs
    // disabled rows of the largest grid size), so the gate holds on any
    // host — cross-run deltas would just measure the runner.
    if let Some(pct) = assert_obs_overhead {
        let n_max = cells.iter().map(|c| c.n).max().expect("grid nonempty");
        let floor = 1.0 - pct / 100.0;
        for regime in ["disjoint", "zipf", "hotrow"] {
            let find = |path: &str| {
                cells
                    .iter()
                    .find(|c| c.n == n_max && c.regime == regime && c.path == path)
                    .expect("cell grid is complete")
            };
            let ratio = find("pipeline-obs").ops_per_sec / find("pipeline").ops_per_sec;
            assert!(
                ratio >= floor,
                "enabled-recorder overhead gate: {regime} n={n_max} \
                 obs/pipeline = {ratio:.3} < {floor:.3} (--assert-obs-overhead {pct})"
            );
            eprintln!(
                "obs overhead gate passed: {regime} n={n_max} obs/pipeline = {ratio:.3} >= {floor:.3}"
            );
        }
    }
}

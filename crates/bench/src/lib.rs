//! Shared helpers for the tokensync benchmark harness.
//!
//! Each bench target under `benches/` regenerates one figure of
//! EXPERIMENTS.md (B1–B6). This crate hosts the workload generators they
//! share so numbers across figures are comparable.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod harness;
pub mod workloads;

//! Deterministic operation workloads shared by the bench targets —
//! ERC20 traffic plus the Section 6 standards (an NFT marketplace over
//! ERC721 and batch-transfer streams over ERC1155).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_core::standards::erc1155::{Erc1155Op, Erc1155State, TypeId};
use tokensync_core::standards::erc721::{Erc721Op, Erc721State, TokenId};
use tokensync_spec::{AccountId, ProcessId};

/// Uniform draw from `0..n` excluding `not` (requires `n >= 2`): sample
/// the `n - 1` admissible values and shift past the hole.
fn distinct_from(rng: &mut StdRng, n: usize, not: usize) -> usize {
    let raw = rng.gen_range(0..n - 1);
    if raw >= not {
        raw + 1
    } else {
        raw
    }
}

/// The shared op mix: ~60% transfers, ~20% approvals, ~20% transferFroms,
/// amounts 0..4, with accounts drawn by `pick`.
///
/// Degenerate pairs are excluded (for `n >= 2`): a `Transfer` never names
/// the caller's own account (a self-transfer is a no-op that flatters
/// throughput numbers) and a `TransferFrom` never has `from == to` (the
/// same no-op through the allowance path).
fn op_from_mix(
    rng: &mut StdRng,
    n: usize,
    caller: ProcessId,
    mut pick: impl FnMut(&mut StdRng) -> usize,
) -> Erc20Op {
    match rng.gen_range(0..10) {
        0..=5 => {
            let mut to = pick(rng);
            if n >= 2 && to == caller.index() {
                to = distinct_from(rng, n, caller.index());
            }
            Erc20Op::Transfer {
                to: AccountId::new(to),
                value: rng.gen_range(0..4),
            }
        }
        6..=7 => Erc20Op::Approve {
            spender: ProcessId::new(pick(rng)),
            value: rng.gen_range(0..8),
        },
        _ => {
            let from = pick(rng);
            let mut to = pick(rng);
            if n >= 2 && to == from {
                to = distinct_from(rng, n, from);
            }
            Erc20Op::TransferFrom {
                from: AccountId::new(from),
                to: AccountId::new(to),
                value: rng.gen_range(0..4),
            }
        }
    }
}

/// A deterministic mixed ERC20 workload over uniformly random accounts:
/// ~60% transfers, ~20% approvals, ~20% transferFroms, amounts 0..4.
pub fn mixed_ops(n: usize, ops: usize, seed: u64) -> Vec<(ProcessId, Erc20Op)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ops)
        .map(|_| {
            let caller = ProcessId::new(rng.gen_range(0..n));
            let op = op_from_mix(&mut rng, n, caller, |rng| rng.gen_range(0..n));
            (caller, op)
        })
        .collect()
}

/// The same op mix as [`mixed_ops`] with callers and accounts drawn from a
/// [`ZipfSampler`] — hot-account traffic, the contention profile real
/// token deployments exhibit (a few exchange/contract accounts absorb most
/// transfers). Account 0 is the hottest.
pub fn zipf_ops(n: usize, ops: usize, seed: u64, theta: f64) -> Vec<(ProcessId, Erc20Op)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = ZipfSampler::new(n, theta);
    (0..ops)
        .map(|_| {
            let caller = ProcessId::new(zipf.sample(&mut rng));
            let op = op_from_mix(&mut rng, n, caller, |rng| zipf.sample(rng));
            (caller, op)
        })
        .collect()
}

/// A Zipfian rank sampler over `0..n` (rank 0 most popular) with skew
/// `theta ∈ [0, 1)`; `theta = 0` degenerates to uniform and `theta ≈ 0.99`
/// is the classic hot-spot workload.
///
/// Uses the Gray–Sundstrom formula popularized by YCSB's
/// `ZipfianGenerator`: after an `O(n)` precomputation of the generalized
/// harmonic number `ζ(n, θ)`, each sample is `O(1)` — no CDF table, so a
/// million-account sampler costs three floats, not megabytes.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfSampler {
    /// Builds a sampler over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `[0, 1)`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf over an empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must lie in [0, 1)");
        let zeta =
            |count: usize| -> f64 { (1..=count).map(|i| 1.0 / (i as f64).powf(theta)).sum() };
        let zetan = zeta(n);
        let zeta2 = zeta(2.min(n));
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Draws one rank in `0..n`, rank 0 most probable.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        // 53 uniform bits -> f64 in [0, 1).
        let u = rng.gen_range(0..(1u64 << 53)) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1.min(self.n - 1);
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        rank.min(self.n - 1)
    }
}

/// A starting state with every account funded and a few allowances set.
pub fn funded_state(n: usize) -> Erc20State {
    let mut state = Erc20State::from_balances(vec![1000; n]);
    for i in 0..n {
        state.set_allowance(AccountId::new(i), ProcessId::new((i + 1) % n), 500);
    }
    state
}

/// Fully commuting traffic: each op is a `Transfer` whose caller is one
/// of the first `n/2` accounts and whose destination is the caller's
/// partner in the second half, so any window of up to `n/2` consecutive
/// ops has pairwise disjoint footprints (distinct sources, distinct
/// sinks, sources ∩ sinks = ∅). This is the owner-disjoint regime the
/// paper says needs no synchronization at all — the batched pipeline
/// should schedule an entire batch into one wave.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn disjoint_transfers(n: usize, ops: usize, seed: u64) -> Vec<(ProcessId, Erc20Op)> {
    assert!(n >= 2, "need at least one (source, sink) pair");
    let mut rng = StdRng::seed_from_u64(seed);
    let half = n / 2;
    (0..ops)
        .map(|i| {
            let src = i % half;
            (
                ProcessId::new(src),
                Erc20Op::Transfer {
                    to: AccountId::new(half + src),
                    value: rng.gen_range(0..3),
                },
            )
        })
        .collect()
}

/// A starting state for the hot-row regime: every account funded, and
/// spenders `1..=k` each holding a large allowance on account 0 — the
/// shared allowance row whose enabled-spender set `σ_q(0)` has size
/// `k + 1`, i.e. a state deep in the paper's partition class `Q_{k+1}`.
///
/// # Panics
///
/// Panics if `k >= n`.
pub fn hot_row_state(n: usize, k: usize) -> Erc20State {
    assert!(k < n, "need k contending spenders besides the owner");
    let mut state = funded_state(n);
    for sp in 1..=k {
        state.set_allowance(AccountId::new(0), ProcessId::new(sp), 1_000_000);
    }
    state
}

/// The high-conflict regime the commuting fast path cannot help with:
/// ~70% `transferFrom`s racing on account 0's allowance row issued by
/// its `k` contending spenders, ~10% re-`approve`s of that row by the
/// owner (the Theorem 3 Case 4 race), ~20% background owner-disjoint
/// transfers among the cold accounts. Start it from
/// [`hot_row_state`]`(n, k)` so the spenders are enabled.
///
/// # Panics
///
/// Panics if `k + 1 >= n` (need at least one cold account).
pub fn hot_row_ops(n: usize, ops: usize, seed: u64, k: usize) -> Vec<(ProcessId, Erc20Op)> {
    assert!(k >= 1, "need at least one contending spender");
    assert!(k + 1 < n, "need cold accounts behind the hot row");
    let mut rng = StdRng::seed_from_u64(seed);
    let spender = |rng: &mut StdRng| 1 + rng.gen_range(0..k);
    (0..ops)
        .map(|_| match rng.gen_range(0..10) {
            0..=6 => {
                let caller = spender(&mut rng);
                let mut to = rng.gen_range(0..n);
                if to == 0 {
                    to = 1 + rng.gen_range(0..n - 1);
                }
                (
                    ProcessId::new(caller),
                    Erc20Op::TransferFrom {
                        from: AccountId::new(0),
                        to: AccountId::new(to),
                        value: rng.gen_range(0..3),
                    },
                )
            }
            7 => (
                ProcessId::new(0),
                Erc20Op::Approve {
                    spender: ProcessId::new(spender(&mut rng)),
                    value: rng.gen_range(0..1_000_000),
                },
            ),
            _ => {
                // Cold background: transfers among accounts k+1..n, never
                // touching the hot row.
                let cold = n - k - 1;
                let src = k + 1 + rng.gen_range(0..cold);
                let mut to = k + 1 + rng.gen_range(0..cold);
                if cold >= 2 && to == src {
                    to = k + 1 + ((src - k) % cold);
                }
                (
                    ProcessId::new(src),
                    Erc20Op::Transfer {
                        to: AccountId::new(to),
                        value: rng.gen_range(0..3),
                    },
                )
            }
        })
        .collect()
}

/// The ERC721 marketplace starting grid behind [`nft_marketplace_ops`]:
/// the first half of the `tokens`-id space pre-minted round-robin over
/// the `n` processes, the second half left for lazy mints.
pub fn nft_market_state(n: usize, tokens: usize) -> Erc721State {
    Erc721State::minted_round_robin(n, tokens, tokens / 2)
}

/// An NFT-marketplace workload over [`nft_market_state`]`(n, tokens)`:
/// Zipf-skewed token ids (a few hot collections absorb most traffic),
/// ~70% owner `transferFrom`s, ~15% owner `approve`s, ~10% reads, ~5%
/// lazy mints of the unminted second half.
///
/// The generator tracks ownership while generating (the sequential
/// semantics), so transfers are issued *by the current owner* — the
/// owner-disjoint regime the paper says needs no synchronization: ops on
/// distinct token ids have disjoint footprints and the pipeline should
/// schedule them into wide waves, while the Zipf head creates genuine
/// same-token conflict chains.
///
/// # Panics
///
/// Panics if `n == 0` or `tokens < 2`.
pub fn nft_marketplace_ops(
    n: usize,
    tokens: usize,
    ops: usize,
    seed: u64,
    theta: f64,
) -> Vec<(ProcessId, Erc721Op)> {
    assert!(n > 0 && tokens >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = ZipfSampler::new(tokens / 2, theta);
    // Mirror of nft_market_state's ownership, maintained as we generate.
    let mut owner: Vec<Option<usize>> = (0..tokens)
        .map(|t| (t < tokens / 2).then_some(t % n))
        .collect();
    let mut next_mint = tokens / 2;
    (0..ops)
        .map(|_| {
            let hot = zipf.sample(&mut rng); // pre-minted half
            match rng.gen_range(0..20) {
                0..=13 => {
                    let from = owner[hot].expect("pre-minted");
                    let to = rng.gen_range(0..n);
                    owner[hot] = Some(to);
                    (
                        ProcessId::new(from),
                        Erc721Op::TransferFrom {
                            from: ProcessId::new(from),
                            to: ProcessId::new(to),
                            token: TokenId::new(hot),
                        },
                    )
                }
                14..=16 => {
                    let holder = owner[hot].expect("pre-minted");
                    (
                        ProcessId::new(holder),
                        Erc721Op::Approve {
                            approved: Some(ProcessId::new(rng.gen_range(0..n))),
                            token: TokenId::new(hot),
                        },
                    )
                }
                17..=18 => (
                    ProcessId::new(rng.gen_range(0..n)),
                    Erc721Op::OwnerOf {
                        token: TokenId::new(hot),
                    },
                ),
                _ => {
                    // Lazy mint of the next unminted id (wrapping into
                    // re-mint attempts — harmless FALSEs — once the
                    // space is exhausted).
                    let token = if next_mint < tokens {
                        let t = next_mint;
                        next_mint += 1;
                        t
                    } else {
                        tokens - 1
                    };
                    let to = rng.gen_range(0..n);
                    if owner[token].is_none() {
                        owner[token] = Some(to);
                    }
                    (
                        ProcessId::new(to),
                        Erc721Op::Mint {
                            to: ProcessId::new(to),
                            token: TokenId::new(token),
                        },
                    )
                }
            }
        })
        .collect()
}

/// The ERC1155 starting state behind [`erc1155_batch_ops`]: every
/// account holds 1000 of each of `types` token types.
pub fn erc1155_funded_state(n: usize, types: usize) -> Erc1155State {
    let mut state = Erc1155State::deploy(n, ProcessId::new(0), &vec![0; types]);
    for a in 0..n {
        for t in 0..types {
            state.set_balance(AccountId::new(a), TypeId::new(t), 1000);
        }
    }
    state
}

/// An ERC1155 batch-transfer workload over
/// [`erc1155_funded_state`]`(n, types)`: each op is a
/// `safeBatchTransferFrom` of 1–4 type rows issued by its source's
/// owner. Sources stripe over the first half of the accounts and sinks
/// over the second (the owner-disjoint regime — batch cell sets of
/// distinct sources never intersect on the update side), except a
/// `hot_fraction` (in percent) of batches that all drain **account 0**
/// — intersecting cell sets that must serialize.
///
/// # Panics
///
/// Panics if `n < 4`, `types == 0`, or `hot_percent > 100`.
pub fn erc1155_batch_ops(
    n: usize,
    types: usize,
    ops: usize,
    seed: u64,
    hot_percent: usize,
) -> Vec<(ProcessId, Erc1155Op)> {
    assert!(n >= 4 && types > 0 && hot_percent <= 100);
    let mut rng = StdRng::seed_from_u64(seed);
    let half = n / 2;
    (0..ops)
        .map(|i| {
            let hot = rng.gen_range(0..100) < hot_percent;
            let from = if hot { 0 } else { i % half };
            let to = half + rng.gen_range(0..n - half);
            let rows = rng.gen_range(1..=4.min(types));
            let start = rng.gen_range(0..types);
            let entries = (0..rows)
                .map(|r| (TypeId::new((start + r) % types), rng.gen_range(0..3)))
                .collect();
            (
                ProcessId::new(from),
                Erc1155Op::BatchTransfer {
                    from: AccountId::new(from),
                    to: AccountId::new(to),
                    entries,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(mixed_ops(4, 32, 5), mixed_ops(4, 32, 5));
        assert_eq!(zipf_ops(16, 64, 5, 0.9), zipf_ops(16, 64, 5, 0.9));
    }

    #[test]
    fn funded_state_has_allowances() {
        let s = funded_state(3);
        assert_eq!(s.total_supply(), 3000);
        assert_eq!(s.allowance(AccountId::new(2), ProcessId::new(0)), 500);
    }

    #[test]
    fn no_self_transfers_or_degenerate_transfer_froms() {
        for (caller, op) in mixed_ops(8, 4000, 11)
            .into_iter()
            .chain(zipf_ops(8, 4000, 11, 0.99))
        {
            match op {
                Erc20Op::Transfer { to, .. } => {
                    assert_ne!(to, caller.own_account(), "self-transfer generated");
                }
                Erc20Op::TransferFrom { from, to, .. } => {
                    assert_ne!(from, to, "degenerate transferFrom generated");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut rng = StdRng::seed_from_u64(3);
        let zipf = ZipfSampler::new(1000, 0.99);
        let mut counts = [0usize; 1000];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 dominates any cold rank by an order of magnitude, and the
        // top 1% of ranks absorbs over a third of a theta=0.99 stream.
        assert!(counts[0] > 20 * counts[500].max(1));
        let head: usize = counts[..10].iter().sum();
        assert!(head > 6_000, "head too cold: {head}");
        // Every sample stays in range (the formula clamps the tail).
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let zipf = ZipfSampler::new(4, 0.0);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1500..2500).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn single_account_workload_does_not_panic() {
        // n = 1 cannot avoid degenerate pairs; it must still generate.
        let ops = mixed_ops(1, 50, 2);
        assert_eq!(ops.len(), 50);
    }

    #[test]
    fn disjoint_transfers_are_pairwise_footprint_disjoint() {
        use tokensync_core::analysis::ops_conflict;
        let n = 16;
        let ops = disjoint_transfers(n, n / 2, 3);
        for (i, x) in ops.iter().enumerate() {
            for y in &ops[i + 1..] {
                assert!(
                    !ops_conflict((x.0, &x.1), (y.0, &y.1)),
                    "window of n/2 ops must be conflict-free"
                );
            }
        }
        assert_eq!(disjoint_transfers(n, 64, 3), disjoint_transfers(n, 64, 3));
    }

    #[test]
    fn nft_marketplace_transfers_are_issued_by_the_running_owner() {
        use tokensync_core::standards::erc721::{Erc721Resp, Erc721Spec};
        use tokensync_spec::ObjectType;
        let (n, tokens) = (8, 32);
        let ops = nft_marketplace_ops(n, tokens, 500, 9, 0.9);
        assert_eq!(ops, nft_marketplace_ops(n, tokens, 500, 9, 0.9));
        // Replaying sequentially, every transfer and approve must be
        // authorized (the generator tracks ownership), so the only FALSE
        // responses are re-mint attempts.
        let spec = Erc721Spec::new(nft_market_state(n, tokens));
        let mut q = spec.initial_state();
        for (caller, op) in &ops {
            let resp = spec.apply(&mut q, *caller, op);
            if resp == Erc721Resp::FALSE {
                assert!(
                    matches!(op, Erc721Op::Mint { .. }),
                    "unauthorized marketplace op: {op:?}"
                );
            }
        }
    }

    #[test]
    fn erc1155_disjoint_batches_have_disjoint_footprints() {
        use tokensync_core::analysis::FootprintedOp;
        let (n, types) = (16, 4);
        let ops = erc1155_batch_ops(n, types, n / 2, 5, 0);
        assert_eq!(ops, erc1155_batch_ops(n, types, n / 2, 5, 0));
        // A window of n/2 consecutive hot-free batches has pairwise
        // disjoint sources and only co-credits sinks: fully commuting.
        for (i, x) in ops.iter().enumerate() {
            for y in &ops[i + 1..] {
                assert!(
                    !x.1.footprint(x.0).conflicts_with(&y.1.footprint(y.0)),
                    "disjoint-regime batches must commute"
                );
            }
        }
        // The hot regime concentrates sources on account 0.
        let hot = erc1155_batch_ops(n, types, 100, 5, 100);
        for (caller, op) in &hot {
            assert_eq!(caller.index(), 0);
            match op {
                Erc1155Op::BatchTransfer { from, .. } => assert_eq!(from.index(), 0),
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    fn hot_row_ops_concentrate_on_the_shared_row() {
        let (n, k) = (32, 8);
        let state = hot_row_state(n, k);
        for sp in 1..=k {
            assert_eq!(
                state.allowance(AccountId::new(0), ProcessId::new(sp)),
                1_000_000
            );
        }
        let ops = hot_row_ops(n, 4000, 7, k);
        let mut hot = 0usize;
        for (caller, op) in &ops {
            match op {
                Erc20Op::TransferFrom { from, .. } => {
                    assert_eq!(from.index(), 0, "hot transferFrom must hit the row");
                    assert!((1..=k).contains(&caller.index()));
                    hot += 1;
                }
                Erc20Op::Approve { spender, .. } => {
                    assert_eq!(caller.index(), 0, "only the owner re-approves");
                    assert!((1..=k).contains(&spender.index()));
                    hot += 1;
                }
                Erc20Op::Transfer { to, .. } => {
                    assert!(caller.index() > k, "background stays cold");
                    assert!(to.index() > k);
                }
                other => panic!("unexpected op kind {other:?}"),
            }
        }
        // The stream is conflict-dominated: ~80% hits the hot row.
        assert!(hot * 10 > ops.len() * 7, "hot share too low: {hot}");
        assert_eq!(hot_row_ops(n, 64, 7, k), hot_row_ops(n, 64, 7, k));
    }
}

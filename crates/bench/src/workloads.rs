//! Deterministic operation workloads shared by the bench targets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_spec::{AccountId, ProcessId};

/// Uniform draw from `0..n` excluding `not` (requires `n >= 2`): sample
/// the `n - 1` admissible values and shift past the hole.
fn distinct_from(rng: &mut StdRng, n: usize, not: usize) -> usize {
    let raw = rng.gen_range(0..n - 1);
    if raw >= not {
        raw + 1
    } else {
        raw
    }
}

/// The shared op mix: ~60% transfers, ~20% approvals, ~20% transferFroms,
/// amounts 0..4, with accounts drawn by `pick`.
///
/// Degenerate pairs are excluded (for `n >= 2`): a `Transfer` never names
/// the caller's own account (a self-transfer is a no-op that flatters
/// throughput numbers) and a `TransferFrom` never has `from == to` (the
/// same no-op through the allowance path).
fn op_from_mix(
    rng: &mut StdRng,
    n: usize,
    caller: ProcessId,
    mut pick: impl FnMut(&mut StdRng) -> usize,
) -> Erc20Op {
    match rng.gen_range(0..10) {
        0..=5 => {
            let mut to = pick(rng);
            if n >= 2 && to == caller.index() {
                to = distinct_from(rng, n, caller.index());
            }
            Erc20Op::Transfer {
                to: AccountId::new(to),
                value: rng.gen_range(0..4),
            }
        }
        6..=7 => Erc20Op::Approve {
            spender: ProcessId::new(pick(rng)),
            value: rng.gen_range(0..8),
        },
        _ => {
            let from = pick(rng);
            let mut to = pick(rng);
            if n >= 2 && to == from {
                to = distinct_from(rng, n, from);
            }
            Erc20Op::TransferFrom {
                from: AccountId::new(from),
                to: AccountId::new(to),
                value: rng.gen_range(0..4),
            }
        }
    }
}

/// A deterministic mixed ERC20 workload over uniformly random accounts:
/// ~60% transfers, ~20% approvals, ~20% transferFroms, amounts 0..4.
pub fn mixed_ops(n: usize, ops: usize, seed: u64) -> Vec<(ProcessId, Erc20Op)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ops)
        .map(|_| {
            let caller = ProcessId::new(rng.gen_range(0..n));
            let op = op_from_mix(&mut rng, n, caller, |rng| rng.gen_range(0..n));
            (caller, op)
        })
        .collect()
}

/// The same op mix as [`mixed_ops`] with callers and accounts drawn from a
/// [`ZipfSampler`] — hot-account traffic, the contention profile real
/// token deployments exhibit (a few exchange/contract accounts absorb most
/// transfers). Account 0 is the hottest.
pub fn zipf_ops(n: usize, ops: usize, seed: u64, theta: f64) -> Vec<(ProcessId, Erc20Op)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = ZipfSampler::new(n, theta);
    (0..ops)
        .map(|_| {
            let caller = ProcessId::new(zipf.sample(&mut rng));
            let op = op_from_mix(&mut rng, n, caller, |rng| zipf.sample(rng));
            (caller, op)
        })
        .collect()
}

/// A Zipfian rank sampler over `0..n` (rank 0 most popular) with skew
/// `theta ∈ [0, 1)`; `theta = 0` degenerates to uniform and `theta ≈ 0.99`
/// is the classic hot-spot workload.
///
/// Uses the Gray–Sundstrom formula popularized by YCSB's
/// `ZipfianGenerator`: after an `O(n)` precomputation of the generalized
/// harmonic number `ζ(n, θ)`, each sample is `O(1)` — no CDF table, so a
/// million-account sampler costs three floats, not megabytes.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfSampler {
    /// Builds a sampler over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `[0, 1)`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf over an empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must lie in [0, 1)");
        let zeta =
            |count: usize| -> f64 { (1..=count).map(|i| 1.0 / (i as f64).powf(theta)).sum() };
        let zetan = zeta(n);
        let zeta2 = zeta(2.min(n));
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Draws one rank in `0..n`, rank 0 most probable.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        // 53 uniform bits -> f64 in [0, 1).
        let u = rng.gen_range(0..(1u64 << 53)) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1.min(self.n - 1);
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        rank.min(self.n - 1)
    }
}

/// A starting state with every account funded and a few allowances set.
pub fn funded_state(n: usize) -> Erc20State {
    let mut state = Erc20State::from_balances(vec![1000; n]);
    for i in 0..n {
        state.set_allowance(AccountId::new(i), ProcessId::new((i + 1) % n), 500);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(mixed_ops(4, 32, 5), mixed_ops(4, 32, 5));
        assert_eq!(zipf_ops(16, 64, 5, 0.9), zipf_ops(16, 64, 5, 0.9));
    }

    #[test]
    fn funded_state_has_allowances() {
        let s = funded_state(3);
        assert_eq!(s.total_supply(), 3000);
        assert_eq!(s.allowance(AccountId::new(2), ProcessId::new(0)), 500);
    }

    #[test]
    fn no_self_transfers_or_degenerate_transfer_froms() {
        for (caller, op) in mixed_ops(8, 4000, 11)
            .into_iter()
            .chain(zipf_ops(8, 4000, 11, 0.99))
        {
            match op {
                Erc20Op::Transfer { to, .. } => {
                    assert_ne!(to, caller.own_account(), "self-transfer generated");
                }
                Erc20Op::TransferFrom { from, to, .. } => {
                    assert_ne!(from, to, "degenerate transferFrom generated");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut rng = StdRng::seed_from_u64(3);
        let zipf = ZipfSampler::new(1000, 0.99);
        let mut counts = [0usize; 1000];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 dominates any cold rank by an order of magnitude, and the
        // top 1% of ranks absorbs over a third of a theta=0.99 stream.
        assert!(counts[0] > 20 * counts[500].max(1));
        let head: usize = counts[..10].iter().sum();
        assert!(head > 6_000, "head too cold: {head}");
        // Every sample stays in range (the formula clamps the tail).
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let zipf = ZipfSampler::new(4, 0.0);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1500..2500).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn single_account_workload_does_not_panic() {
        // n = 1 cannot avoid degenerate pairs; it must still generate.
        let ops = mixed_ops(1, 50, 2);
        assert_eq!(ops.len(), 50);
    }
}

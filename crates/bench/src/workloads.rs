//! Deterministic operation workloads shared by the bench targets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_spec::{AccountId, ProcessId};

/// A deterministic mixed ERC20 workload: ~60% transfers, ~20% approvals,
/// ~20% transferFroms, amounts 0..4.
pub fn mixed_ops(n: usize, ops: usize, seed: u64) -> Vec<(ProcessId, Erc20Op)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ops)
        .map(|_| {
            let caller = ProcessId::new(rng.gen_range(0..n));
            let op = match rng.gen_range(0..10) {
                0..=5 => Erc20Op::Transfer {
                    to: AccountId::new(rng.gen_range(0..n)),
                    value: rng.gen_range(0..4),
                },
                6..=7 => Erc20Op::Approve {
                    spender: ProcessId::new(rng.gen_range(0..n)),
                    value: rng.gen_range(0..8),
                },
                _ => Erc20Op::TransferFrom {
                    from: AccountId::new(rng.gen_range(0..n)),
                    to: AccountId::new(rng.gen_range(0..n)),
                    value: rng.gen_range(0..4),
                },
            };
            (caller, op)
        })
        .collect()
}

/// A starting state with every account funded and a few allowances set.
pub fn funded_state(n: usize) -> Erc20State {
    let mut state = Erc20State::from_balances(vec![1000; n]);
    for i in 0..n {
        state.set_allowance(AccountId::new(i), ProcessId::new((i + 1) % n), 500);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(mixed_ops(4, 32, 5), mixed_ops(4, 32, 5));
    }

    #[test]
    fn funded_state_has_allowances() {
        let s = funded_state(3);
        assert_eq!(s.total_supply(), 3000);
        assert_eq!(s.allowance(AccountId::new(2), ProcessId::new(0)), 500);
    }
}

//! **B2 — consensus-object latency vs k.**
//!
//! One full k-process decision (all proposers racing on threads) for each
//! construction: Algorithm 1 over an ERC20 token (`TokenConsensus`),
//! the k-AT race (`AtConsensus`), hardware CAS (`CasConsensus`), and the
//! ERC777/ERC721 adaptations. Expected shape: all scale gently with k
//! (one object op + a k-scan each); CAS is the floor.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tokensync_consensus::{CasConsensus, Consensus};
use tokensync_core::setup::sync_state_fixture;
use tokensync_core::shared::SharedErc20;
use tokensync_core::standards::erc721::Erc721Consensus;
use tokensync_core::standards::erc777::Erc777Consensus;
use tokensync_core::token_consensus::TokenConsensus;
use tokensync_kat::AtConsensus;
use tokensync_spec::{AccountId, ProcessId};

fn race<F: Fn(ProcessId) -> usize + Sync>(k: usize, propose: F) {
    crossbeam::scope(|s| {
        for i in 0..k {
            let propose = &propose;
            s.spawn(move |_| propose(ProcessId::new(i)));
        }
    })
    .expect("proposer panicked");
}

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_latency");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for k in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("token_alg1", k), &k, |b, &k| {
            b.iter(|| {
                let (state, witness) = sync_state_fixture(k, k + 1, 64);
                let cons: Arc<TokenConsensus<SharedErc20, usize>> = Arc::new(TokenConsensus::new(
                    SharedErc20::from_state(state),
                    witness,
                    AccountId::new(k),
                ));
                race(k, |p| cons.propose(p, p.index()));
            });
        });
        group.bench_with_input(BenchmarkId::new("kat", k), &k, |b, &k| {
            b.iter(|| {
                let cons: Arc<AtConsensus<usize>> = Arc::new(AtConsensus::new(k));
                race(k, |p| cons.propose(p, p.index()));
            });
        });
        group.bench_with_input(BenchmarkId::new("cas", k), &k, |b, &k| {
            b.iter(|| {
                let cons: Arc<CasConsensus<usize>> = Arc::new(CasConsensus::new(k));
                race(k, |p| cons.propose(p, p.index()));
            });
        });
        group.bench_with_input(BenchmarkId::new("erc777", k), &k, |b, &k| {
            b.iter(|| {
                let cons: Arc<Erc777Consensus<usize>> = Arc::new(Erc777Consensus::new(k, 64));
                race(k, |p| cons.propose(p, p.index()));
            });
        });
        group.bench_with_input(BenchmarkId::new("erc721", k), &k, |b, &k| {
            b.iter(|| {
                let cons: Arc<Erc721Consensus<usize>> = Arc::new(Erc721Consensus::new(k));
                race(k, |p| cons.propose(p, p.index()));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_consensus);
criterion_main!(benches);

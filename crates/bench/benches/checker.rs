//! **B6 — verification tooling scaling.**
//!
//! How the workspace's own oracles scale: the Wing–Gong–Lowe
//! linearizability checker vs history length, and the exhaustive explorer
//! vs process count on Algorithm 1 instances. Expected shape: both grow
//! steeply (they are exponential-worst-case tools) but stay interactive
//! at the sizes the test suite uses.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tokensync_bench::workloads::{funded_state, mixed_ops};
use tokensync_core::erc20::Erc20Spec;
use tokensync_mc::protocols::TokenRace;
use tokensync_mc::Explorer;
use tokensync_spec::{check_linearizable, History, ObjectType};

fn sequential_history(
    len: usize,
) -> History<tokensync_core::erc20::Erc20Op, tokensync_core::erc20::Erc20Resp> {
    let spec = Erc20Spec::new(funded_state(4));
    let mut state = spec.initial_state();
    let mut history = History::new();
    for (caller, op) in mixed_ops(4, len, 11) {
        let id = history.invoke(caller, op.clone());
        let resp = spec.apply(&mut state, caller, &op);
        history.ret(id, resp);
    }
    history
}

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("verification_tools");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for len in [8usize, 16, 32, 64] {
        let history = sequential_history(len);
        let spec = Erc20Spec::new(funded_state(4));
        group.bench_with_input(
            BenchmarkId::new("linearizability", len),
            &history,
            |b, history| {
                b.iter(|| {
                    check_linearizable(&spec, &spec.initial_state(), history)
                        .expect("sequential history must linearize")
                });
            },
        );
    }
    for k in [2usize, 3] {
        group.bench_with_input(BenchmarkId::new("explorer_alg1", k), &k, |b, &k| {
            b.iter(|| Explorer::new(&TokenRace::in_sync_state(k)).run());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);

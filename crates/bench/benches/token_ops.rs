//! **B1 — token implementation throughput.**
//!
//! Compares the three ways to host a linearizable ERC20 object: one global
//! lock (`CoarseErc20`), per-account locks (`SharedErc20`), and the
//! consensus-backed universal construction (`Universal<Erc20Spec>` — the
//! "run everything through consensus" blockchain baseline). Expected
//! shape: fine-grained ≥ coarse ≫ universal, with the gap widening as
//! threads are added — the parallelism the paper says total ordering
//! wastes.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tokensync_bench::workloads::{funded_state, mixed_ops};
use tokensync_consensus::Universal;
use tokensync_core::erc20::Erc20Spec;
use tokensync_core::shared::{CoarseErc20, ConcurrentObject, ConcurrentToken, SharedErc20};

const N_ACCOUNTS: usize = 16;
const OPS_PER_THREAD: usize = 256;

fn run_threads<T: ConcurrentToken>(token: &Arc<T>, threads: usize) {
    crossbeam::scope(|s| {
        for t in 0..threads {
            let token = Arc::clone(token);
            s.spawn(move |_| {
                for (caller, op) in mixed_ops(N_ACCOUNTS, OPS_PER_THREAD, t as u64) {
                    token.apply(caller, &op);
                }
            });
        }
    })
    .expect("worker panicked");
}

fn bench_token_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("token_ops");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
        group.bench_with_input(
            BenchmarkId::new("coarse", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let token = Arc::new(CoarseErc20::from_state(funded_state(N_ACCOUNTS)));
                    run_threads(&token, threads);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fine", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let token = Arc::new(SharedErc20::from_state(funded_state(N_ACCOUNTS)));
                    run_threads(&token, threads);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("universal", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let spec = Erc20Spec::new(funded_state(N_ACCOUNTS));
                    let obj = Arc::new(Universal::new(spec, threads.max(1)));
                    crossbeam::scope(|s| {
                        for t in 0..threads {
                            let obj = Arc::clone(&obj);
                            s.spawn(move |_| {
                                for (_, op) in mixed_ops(N_ACCOUNTS, OPS_PER_THREAD, t as u64) {
                                    obj.perform(tokensync_spec::ProcessId::new(t), op);
                                }
                            });
                        }
                    })
                    .expect("worker panicked");
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_token_ops);
criterion_main!(benches);

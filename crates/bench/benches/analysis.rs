//! **B4 — cost of reading the synchronization level off a state.**
//!
//! The Section 7 vision needs `σ_q` / `U` / CN-bounds computed *online*;
//! this bench shows the analysis is linear-ish in the account count and
//! cheap enough to run per operation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tokensync_core::analysis::{consensus_number_bounds, sync_level};
use tokensync_core::erc20::Erc20State;
use tokensync_spec::{AccountId, ProcessId};

/// A state with `n` accounts where every 8th account has a few spenders.
fn busy_state(n: usize) -> Erc20State {
    let mut state = Erc20State::from_balances(vec![100; n]);
    for i in (0..n).step_by(8) {
        for j in 1..=3 {
            state.set_allowance(
                AccountId::new(i),
                ProcessId::new((i + j) % n),
                60, // pairwise 60 + 60 > 100: sync states exist
            );
        }
    }
    state
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_analysis");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for n in [16usize, 64, 256, 1024] {
        let state = busy_state(n);
        group.bench_with_input(BenchmarkId::new("cn_bounds", n), &state, |b, state| {
            b.iter(|| consensus_number_bounds(state));
        });
        group.bench_with_input(BenchmarkId::new("sync_level", n), &state, |b, state| {
            b.iter(|| sync_level(state));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);

//! **B5 — simulated protocol cost: total order vs dynamic synchronization.**
//!
//! Full simulation runs (n = 8 replicas, 96 commands) measured as wall
//! time of the deterministic simulator; the message-count and latency
//! figures come from `e7_protocols`. Expected shape: the dynamic protocol
//! does less work overall and the gap narrows as the transferFrom share
//! grows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tokensync_core::erc20::Erc20State;
use tokensync_net::cmd::TokenCmd;
use tokensync_net::dynamic::DynamicNetwork;
use tokensync_net::ordered::OrderedNetwork;
use tokensync_net::payments::PaymentNetwork;

const N: usize = 8;
const OPS: usize = 96;

fn workload(transfer_from_ratio_pct: usize) -> Vec<(usize, TokenCmd)> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    (0..OPS)
        .map(|_| {
            let caller = rng.gen_range(0..N);
            let cmd = if rng.gen_range(0..100) < transfer_from_ratio_pct {
                TokenCmd::TransferFrom {
                    from: rng.gen_range(0..N),
                    to: rng.gen_range(0..N),
                    value: rng.gen_range(0..3),
                }
            } else {
                TokenCmd::Transfer {
                    to: rng.gen_range(0..N),
                    value: rng.gen_range(0..3),
                }
            };
            (caller, cmd)
        })
        .collect()
}

fn initial() -> Erc20State {
    let mut state = Erc20State::from_balances(vec![1000; N]);
    for i in 0..N {
        for j in 0..N {
            if i != j {
                state.set_allowance(
                    tokensync_spec::AccountId::new(i),
                    tokensync_spec::ProcessId::new(j),
                    500,
                );
            }
        }
    }
    state
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_simulation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for pct in [0usize, 50, 100] {
        let load = workload(pct);
        group.bench_with_input(BenchmarkId::new("ordered", pct), &load, |b, load| {
            b.iter(|| {
                let mut net = OrderedNetwork::new(N, initial(), 3);
                for (caller, cmd) in load {
                    net.submit(*caller, *cmd);
                }
                net.run_to_quiescence()
            });
        });
        group.bench_with_input(BenchmarkId::new("dynamic", pct), &load, |b, load| {
            b.iter(|| {
                let mut net = DynamicNetwork::new(N, initial(), 3);
                for (caller, cmd) in load {
                    net.submit(*caller, *cmd);
                }
                net.run_to_quiescence()
            });
        });
    }
    // The CN = 1 floor: plain broadcast payments on a transfer-only load.
    group.bench_function("broadcast_payments", |b| {
        let load = workload(0);
        b.iter(|| {
            let mut net = PaymentNetwork::new(N, vec![1000; N], 3);
            for (caller, cmd) in &load {
                if let TokenCmd::Transfer { to, value } = cmd {
                    net.submit_transfer(*caller, *to, *value);
                }
            }
            net.run_to_quiescence()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);

//! **B3 — the cost of Algorithm 2's indirection.**
//!
//! Per-operation latency of the `T|Q_k` emulation (`RestrictedToken`:
//! balances in a k-AT object, allowances in registers, gated approve)
//! against the direct `SharedErc20`, on identical workloads. Expected
//! shape: a small constant-factor overhead — the reduction is cheap,
//! which is the practical content of Theorem 4.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tokensync_bench::workloads::{funded_state, mixed_ops};
use tokensync_core::emulation::RestrictedToken;
use tokensync_core::shared::{ConcurrentObject, SharedErc20};

const OPS: usize = 2048;

fn bench_emulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("emulation_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for n in [4usize, 16, 64] {
        let workload = mixed_ops(n, OPS, 42);
        group.throughput(Throughput::Elements(OPS as u64));
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, &n| {
            b.iter(|| {
                let token = SharedErc20::from_state(funded_state(n));
                for (caller, op) in &workload {
                    token.apply(*caller, op);
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("restricted_k2", n), &n, |b, &n| {
            b.iter(|| {
                let token = RestrictedToken::new(2, funded_state(n));
                for (caller, op) in &workload {
                    token.apply(*caller, op);
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("restricted_kn", n), &n, |b, &n| {
            b.iter(|| {
                let token = RestrictedToken::new(n, funded_state(n));
                for (caller, op) in &workload {
                    token.apply(*caller, op);
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_emulation);
criterion_main!(benches);

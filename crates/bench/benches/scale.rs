//! **B7 — account-count scaling of the concurrent token implementations.**
//!
//! Sweeps the number of accounts under a Zipfian (hot-account) workload
//! and compares the three lock architectures: one global lock
//! (`CoarseErc20`), one lock per account (`SharedErc20`) and `min(n, 4 ×
//! cores)` lock stripes (`ShardedErc20`). Expected shape: coarse flat and
//! slow under threads (every op serializes), fine and sharded close at
//! small n, sharded ahead at large n where per-account locking pays a
//! mutex per account and `totalSupply`-style global reads pay `O(n)` lock
//! acquisitions. The `baseline` binary extends this sweep to n = 1M and
//! writes the checked-in `BENCH_baseline.json` trajectory.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tokensync_bench::harness::run_split;
use tokensync_bench::workloads::{funded_state, zipf_ops};
use tokensync_core::erc20::Erc20Op;
use tokensync_core::shared::{CoarseErc20, ConcurrentToken, ShardedErc20, SharedErc20};
use tokensync_spec::ProcessId;

const OPS: usize = 2048;
const THREADS: usize = 4;
const THETA: f64 = 0.99;

fn run_threads<T: ConcurrentToken>(token: &Arc<T>, workload: &[(ProcessId, Erc20Op)]) {
    run_split(token, workload, THREADS);
}

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for n in [16usize, 1024, 16384] {
        let initial = funded_state(n);
        let workload = zipf_ops(n, OPS, 7, THETA);
        group.throughput(Throughput::Elements(OPS as u64));
        group.bench_with_input(BenchmarkId::new("coarse", n), &n, |b, _| {
            b.iter(|| {
                let token = Arc::new(CoarseErc20::from_state(initial.clone()));
                run_threads(&token, &workload);
            });
        });
        group.bench_with_input(BenchmarkId::new("fine", n), &n, |b, _| {
            b.iter(|| {
                let token = Arc::new(SharedErc20::from_state(initial.clone()));
                run_threads(&token, &workload);
            });
        });
        group.bench_with_input(BenchmarkId::new("sharded", n), &n, |b, _| {
            b.iter(|| {
                let token = Arc::new(ShardedErc20::from_state(initial.clone()));
                run_threads(&token, &workload);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);

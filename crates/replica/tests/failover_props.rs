//! Property-based failover correctness, for all three served
//! standards. Each case builds a 3-node cluster, serves random traffic
//! with replication pumped at random points (possibly through a lossy
//! network), kills the primary at a random point, promotes the
//! longest-log follower, and checks the durability contract:
//!
//! - the survivor's state equals the **oracle replay** of its committed
//!   log prefix (recovery replays through the sequential spec verifying
//!   every recorded response — divergence fails the case),
//! - under [`AckMode::Quorum`], no wave the old primary claimed durable
//!   is lost,
//! - under [`AckMode::Async`], at most a suffix is lost — the survivor
//!   holds a gap-free committed prefix,
//! - the promoted cluster keeps serving and reconverges.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::collection::vec;
use proptest::prelude::*;
use tokensync_core::codec::{Codec, StateCodec};
use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_core::shared::ShardedErc20;
use tokensync_core::standards::erc1155::{Erc1155Op, Erc1155State, ShardedErc1155, TypeId};
use tokensync_core::standards::erc721::{Erc721Op, Erc721State, ShardedErc721, TokenId};
use tokensync_net::FaultPlan;
use tokensync_pipeline::{BatchConfig, PipelineConfig};
use tokensync_replica::{AckMode, Cluster, ReplicaConfig};
use tokensync_spec::{AccountId, ProcessId};
use tokensync_store::{recover, Restorable};

static NEXT: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tokensync-replica-prop-{name}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn a(i: usize) -> AccountId {
    AccountId::new(i)
}

const N: usize = 5;
const SPAN: usize = 8;
const TYPES: usize = 3;

/// One generated failover scenario: traffic rounds, which rounds get a
/// replication pump before the crash, ack mode and network weather.
struct Scenario<Op> {
    rounds: Vec<Vec<(ProcessId, Op)>>,
    pump_after: Vec<bool>,
    ack_mode: AckMode,
    seed: u64,
    fault_seed: u64,
    drop_p: f64,
}

/// Runs the scenario and checks the failover contract.
fn check_failover<T>(name: &str, genesis: &T::State, s: &Scenario<T::Op>)
where
    T: Restorable,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    let cfg = ReplicaConfig {
        ack_mode: s.ack_mode,
        pipeline: PipelineConfig {
            batch: BatchConfig {
                max_ops: 8,
                ..BatchConfig::default()
            },
            ..PipelineConfig::default()
        },
        ..ReplicaConfig::default()
    };
    let mut c: Cluster<T> =
        Cluster::new(&temp_dir(name), 3, genesis, cfg, s.seed).expect("build cluster");
    if s.drop_p > 0.0 {
        c.set_fault_plan(
            FaultPlan::new(s.fault_seed)
                .drop_probability(s.drop_p)
                .duplicate_probability(0.1),
        );
    }

    let mut served = 0u64;
    for (round, pump) in s.rounds.iter().zip(&s.pump_after) {
        if round.is_empty() {
            continue;
        }
        c.serve(round);
        served += round.len() as u64;
        if *pump {
            c.pump();
        }
    }

    // The kill point: whatever the old primary claimed durable under
    // its ack mode is the contract the survivor must honour.
    let claimed = c.durable_seq();
    c.crash_primary();
    let winner = c.fail_over();
    let survived = c.node(winner).next_seq();

    prop_assert!(survived <= served, "survivor cannot invent history");
    if s.ack_mode == AckMode::Quorum {
        prop_assert!(
            survived >= claimed,
            "quorum-acked wave lost: claimed {claimed}, survived {survived}"
        );
    }

    // Oracle replay: recovery replays the survivor's log through the
    // sequential spec, verifying every recorded response. A survivor
    // holding anything but a clean committed prefix fails here.
    let rec = recover::<T>(c.node(winner).dir()).expect("survivor log replays against the oracle");
    prop_assert_eq!(rec.next_seq, survived, "gap-free prefix");
    prop_assert!(
        rec.state == c.node(winner).state(),
        "served state equals the oracle replay of the committed prefix"
    );

    // Life goes on: the promoted primary serves and the cluster
    // reconverges under the new epoch.
    c.serve(&s.rounds[0]);
    c.pump();
    let lead = c.node(c.primary());
    for i in 0..c.n() {
        if c.is_crashed(i) {
            continue;
        }
        prop_assert_eq!(c.node(i).epoch(), lead.epoch());
        prop_assert_eq!(c.node(i).next_seq(), lead.next_seq());
        prop_assert!(c.node(i).state() == lead.state(), "node {i} reconverged");
    }
}

fn arb_20_op() -> impl Strategy<Value = Erc20Op> {
    prop_oneof![
        (0..N, 1u64..5).prop_map(|(to, value)| Erc20Op::Transfer { to: a(to), value }),
        (0..N, 0u64..5).prop_map(|(spender, value)| Erc20Op::Approve {
            spender: p(spender),
            value,
        }),
        (0..N, 0..N, 1u64..4).prop_map(|(from, to, value)| Erc20Op::TransferFrom {
            from: a(from),
            to: a(to),
            value,
        }),
        (0..N).prop_map(|account| Erc20Op::BalanceOf {
            account: a(account)
        }),
    ]
}

fn arb_721_op() -> impl Strategy<Value = Erc721Op> {
    prop_oneof![
        (0..N, 0..SPAN).prop_map(|(to, token)| Erc721Op::Mint {
            to: p(to),
            token: TokenId::new(token),
        }),
        (0..N, 0..N, 0..SPAN).prop_map(|(from, to, token)| Erc721Op::TransferFrom {
            from: p(from),
            to: p(to),
            token: TokenId::new(token),
        }),
        (0..=N, 0..SPAN).prop_map(|(ap, token)| Erc721Op::Approve {
            approved: (ap < N).then(|| p(ap)),
            token: TokenId::new(token),
        }),
        (0..SPAN).prop_map(|token| Erc721Op::OwnerOf {
            token: TokenId::new(token)
        }),
    ]
}

fn arb_1155_op() -> impl Strategy<Value = Erc1155Op> {
    prop_oneof![
        (0..N, 0..N, 0..TYPES, 0u64..4).prop_map(|(from, to, ty, value)| Erc1155Op::Transfer {
            from: a(from),
            to: a(to),
            type_id: TypeId::new(ty),
            value,
        }),
        (0..N, 0..N, vec((0..TYPES, 0u64..4), 0..3)).prop_map(|(from, to, rows)| {
            Erc1155Op::BatchTransfer {
                from: a(from),
                to: a(to),
                entries: rows
                    .into_iter()
                    .map(|(ty, v)| (TypeId::new(ty), v))
                    .collect(),
            }
        }),
        (0..N, 0..TYPES).prop_map(|(account, ty)| Erc1155Op::BalanceOf {
            account: a(account),
            type_id: TypeId::new(ty),
        }),
    ]
}

/// Builds the per-case scenario out of raw generated material.
fn scenario<Op: Clone>(
    callers: &[usize],
    ops: &[Op],
    round_cuts: (usize, usize),
    pumps: usize,
    quorum: bool,
    seed: u64,
    fault_seed: u64,
    lossy: bool,
) -> Scenario<Op> {
    let script: Vec<(ProcessId, Op)> = callers
        .iter()
        .zip(ops)
        .map(|(&c, op)| (p(c), op.clone()))
        .collect();
    // Cut the script into up to three rounds at two generated points.
    let (mut x, mut y) = round_cuts;
    x %= script.len() + 1;
    y %= script.len() + 1;
    if x > y {
        std::mem::swap(&mut x, &mut y);
    }
    let rounds = vec![
        script[..x].to_vec(),
        script[x..y].to_vec(),
        script[y..].to_vec(),
    ];
    // `pumps` encodes which of the three rounds replicate before the
    // crash — the random kill point in replication progress.
    let pump_after = (0..3).map(|i| pumps >> i & 1 == 1).collect();
    Scenario {
        rounds,
        pump_after,
        ack_mode: if quorum {
            AckMode::Quorum
        } else {
            AckMode::Async
        },
        seed,
        fault_seed,
        drop_p: if lossy { 0.2 } else { 0.0 },
    }
}

proptest! {
    /// ERC20: random transfer/approve traffic, random kill point.
    #[test]
    fn erc20_failover_preserves_the_committed_prefix(
        callers in vec(0..N, 4..40),
        ops in vec(arb_20_op(), 4..40),
        cuts in (0usize..64, 0usize..64),
        pumps in 0usize..8,
        mode in 0u8..4,
        seed in 0u64..1 << 32,
        fault_seed in 0u64..1 << 32,
    ) {
        // Two mode bits: ack mode × lossy network.
        let (quorum, lossy) = (mode & 1 == 1, mode & 2 == 2);
        let s = scenario(&callers, &ops, cuts, pumps, quorum, seed, fault_seed, lossy);
        let genesis = Erc20State::from_balances(vec![50; N]);
        check_failover::<ShardedErc20>("erc20", &genesis, &s);
    }

    /// ERC721: mints, claims and approvals; random kill point.
    #[test]
    fn erc721_failover_preserves_the_committed_prefix(
        callers in vec(0..N, 4..40),
        ops in vec(arb_721_op(), 4..40),
        cuts in (0usize..64, 0usize..64),
        pumps in 0usize..8,
        mode in 0u8..4,
        seed in 0u64..1 << 32,
        fault_seed in 0u64..1 << 32,
    ) {
        // Two mode bits: ack mode × lossy network.
        let (quorum, lossy) = (mode & 1 == 1, mode & 2 == 2);
        let s = scenario(&callers, &ops, cuts, pumps, quorum, seed, fault_seed, lossy);
        let genesis = Erc721State::minted_round_robin(N, SPAN, SPAN / 2);
        check_failover::<ShardedErc721>("erc721", &genesis, &s);
    }

    /// ERC1155: single and batched multi-token transfers; random kill
    /// point.
    #[test]
    fn erc1155_failover_preserves_the_committed_prefix(
        callers in vec(0..N, 4..40),
        ops in vec(arb_1155_op(), 4..40),
        cuts in (0usize..64, 0usize..64),
        pumps in 0usize..8,
        mode in 0u8..4,
        seed in 0u64..1 << 32,
        fault_seed in 0u64..1 << 32,
    ) {
        // Two mode bits: ack mode × lossy network.
        let (quorum, lossy) = (mode & 1 == 1, mode & 2 == 2);
        let s = scenario(&callers, &ops, cuts, pumps, quorum, seed, fault_seed, lossy);
        let mut genesis = Erc1155State::deploy(N, p(0), &[0; TYPES]);
        for acct in 0..N {
            for ty in 0..TYPES {
                genesis.set_balance(a(acct), TypeId::new(ty), 10);
            }
        }
        check_failover::<ShardedErc1155>("erc1155", &genesis, &s);
    }
}

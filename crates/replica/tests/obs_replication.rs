//! Replication observability: the primary's reign counters and
//! per-follower lag must reflect what the simulated network actually
//! did, and `Cluster::publish_obs` must expose them.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_core::shared::ShardedErc20;
use tokensync_obs::{Registry, SpanRing, Stage};
use tokensync_replica::{Cluster, ReplicaConfig, ReplicationStats};
use tokensync_spec::{AccountId, ProcessId};
use tokensync_store::StoreConfig;

static NEXT: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tokensync-replica-obs-{name}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn transfers(accounts: usize, count: usize) -> Vec<(ProcessId, Erc20Op)> {
    (0..count)
        .map(|i| {
            (
                ProcessId::new(i % accounts),
                Erc20Op::Transfer {
                    to: AccountId::new((i + 1) % accounts),
                    value: 1,
                },
            )
        })
        .collect()
}

fn cluster(name: &str, n: usize, cfg: ReplicaConfig, seed: u64) -> Cluster<ShardedErc20> {
    Cluster::new(
        &temp_dir(name),
        n,
        &Erc20State::from_balances(vec![1_000; 8]),
        cfg,
        seed,
    )
    .expect("build cluster")
}

#[test]
fn healthy_rounds_report_zero_lag_and_clean_stats() {
    let mut c = cluster("healthy", 3, ReplicaConfig::default(), 11);
    let ring = SpanRing::new(64);
    c.attach_span_ring(ring.clone());
    c.serve(&transfers(8, 100));
    c.pump();

    assert_eq!(c.replication_stats(), ReplicationStats::default());
    assert_eq!(c.follower_lags(), vec![0, 0, 0]);

    // One QuorumAck span per pump, keyed by the durable position.
    let events = ring.dump();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].stage, Stage::QuorumAck);
    assert_eq!(events[0].batch, 100);

    let registry = Registry::new();
    c.publish_obs(&registry);
    let page = registry.render_text();
    for name in [
        "tokensync_replica_retransmissions_total 0",
        "tokensync_replica_down_marks_total 0",
        "tokensync_replica_snapshot_ships_total 0",
        "tokensync_replica_reinvites_total 0",
        "tokensync_replica_durable_seq 100",
        "tokensync_replica_follower_lag{follower=\"1\"} 0",
        "tokensync_replica_follower_lag{follower=\"2\"} 0",
    ] {
        assert!(page.contains(name), "exposition lacks `{name}`:\n{page}");
    }
}

#[test]
fn a_silent_follower_is_counted_down_and_its_lag_shows() {
    let mut c = cluster("down", 3, ReplicaConfig::default(), 17);
    c.serve(&transfers(8, 50));
    c.pump();
    c.crash(2);
    c.serve(&transfers(8, 50));
    c.pump(); // retransmissions climb until node 2 is marked down

    let stats = c.replication_stats();
    assert!(
        stats.retransmissions > 0,
        "timeouts retransmitted: {stats:?}"
    );
    assert_eq!(stats.down_marks, 1, "node 2 marked down once: {stats:?}");
    let lags = c.follower_lags();
    assert_eq!(lags[0], 0, "the primary's own slot");
    assert_eq!(lags[1], 0, "live follower caught up");
    assert_eq!(lags[2], 50, "dead follower owes the second round");

    // Revival clears the lag but the reign counters keep their history.
    c.restart(2);
    c.pump();
    assert_eq!(c.follower_lags(), vec![0, 0, 0]);
    assert_eq!(c.replication_stats().down_marks, 1);
}

#[test]
fn snapshot_rebasing_is_counted() {
    let cfg = ReplicaConfig {
        max_retries: 3,
        store: StoreConfig {
            snapshot_every_ops: 32,
            segment_max_bytes: 512,
            snapshots_kept: 1,
            ..StoreConfig::default()
        },
        ..ReplicaConfig::default()
    };
    let mut c = cluster("snap-ship", 3, cfg, 29);
    c.serve(&transfers(8, 40));
    c.pump();
    c.crash(2);
    for _ in 0..6 {
        c.serve(&transfers(8, 40));
        c.pump();
    }
    c.restart(2);
    c.pump();
    assert_eq!(c.node(2).next_seq(), 280, "snapshot + suffix caught it up");
    let stats = c.replication_stats();
    assert!(
        stats.snapshot_ships >= 1,
        "catch-up required a snapshot ship: {stats:?}"
    );
}

#[test]
fn failover_resets_the_reign_counters() {
    let mut c = cluster("reign", 3, ReplicaConfig::default(), 55);
    c.serve(&transfers(8, 50));
    c.pump();
    c.crash(2);
    c.serve(&transfers(8, 50));
    c.pump();
    assert!(c.replication_stats().down_marks > 0);

    c.fail_over();
    // The new primary starts a clean reign; the dead node's debt shows
    // up as lag (or a fresh down-mark) under the *new* epoch's counters.
    assert_eq!(c.replication_stats().snapshot_ships, 0);
    let registry = Registry::new();
    c.publish_obs(&registry);
    assert!(registry.render_text().contains("tokensync_replica_epoch 1"));
}

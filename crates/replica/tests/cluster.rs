//! Cluster-level replication behaviour: byte-identical shipping, fault
//! tolerance, snapshot catch-up, failover and fencing — all on the
//! deterministic simulated network.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_core::shared::ShardedErc20;
use tokensync_net::{FaultPlan, SimNet};
use tokensync_pipeline::{BatchConfig, PipelineConfig};
use tokensync_replica::{AckMode, Cluster, ReplicaConfig, ReplicaMsg, ReplicaNode};
use tokensync_spec::{AccountId, ProcessId};
use tokensync_store::{recover, StoreConfig};

static NEXT: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tokensync-replica-{name}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn genesis(n: usize) -> Erc20State {
    Erc20State::from_balances(vec![1_000; n])
}

fn transfers(accounts: usize, count: usize) -> Vec<(ProcessId, Erc20Op)> {
    (0..count)
        .map(|i| {
            (
                ProcessId::new(i % accounts),
                Erc20Op::Transfer {
                    to: AccountId::new((i + 1) % accounts),
                    value: 1,
                },
            )
        })
        .collect()
}

fn cluster(name: &str, n: usize, cfg: ReplicaConfig, seed: u64) -> Cluster<ShardedErc20> {
    Cluster::new(&temp_dir(name), n, &genesis(8), cfg, seed).expect("build cluster")
}

fn assert_in_sync(c: &Cluster<ShardedErc20>) {
    let lead = c.node(c.primary());
    for i in 0..c.n() {
        if c.is_crashed(i) {
            continue;
        }
        let node = c.node(i);
        assert_eq!(node.next_seq(), lead.next_seq(), "node {i} log length");
        assert_eq!(node.epoch(), lead.epoch(), "node {i} epoch");
        assert_eq!(node.state(), lead.state(), "node {i} state");
        // The replicated log is byte-identical history: recovery from
        // the follower's directory alone rebuilds the same state.
        let rec = recover::<ShardedErc20>(node.dir()).expect("recover node dir");
        assert_eq!(rec.next_seq, lead.next_seq(), "node {i} durable length");
        assert_eq!(rec.state, lead.state(), "node {i} durable state");
    }
}

#[test]
fn replication_reaches_every_follower() {
    let mut c = cluster("basic", 3, ReplicaConfig::default(), 11);
    c.serve(&transfers(8, 100));
    c.pump();
    assert_eq!(c.node(0).next_seq(), 100);
    assert_eq!(c.durable_seq(), 100, "quorum acked everything");
    assert_in_sync(&c);
}

#[test]
fn repeated_serve_pump_rounds_stay_in_sync() {
    let mut c = cluster("rounds", 3, ReplicaConfig::default(), 7);
    for _ in 0..5 {
        c.serve(&transfers(8, 40));
        c.pump();
        assert_in_sync(&c);
    }
    assert_eq!(c.durable_seq(), 200);
}

#[test]
fn drops_duplicates_and_reordering_do_not_break_replication() {
    // Small batches → many records → many Append/Ack messages for the
    // fault plan to chew on.
    let cfg = ReplicaConfig {
        pipeline: PipelineConfig {
            batch: BatchConfig {
                max_ops: 8,
                ..BatchConfig::default()
            },
            ..PipelineConfig::default()
        },
        ..ReplicaConfig::default()
    };
    for fault_seed in [1u64, 2, 3] {
        let mut c = cluster("faulty", 3, cfg, 42 + fault_seed);
        c.set_fault_plan(
            FaultPlan::new(fault_seed)
                .drop_probability(0.25)
                .duplicate_probability(0.15),
        );
        c.serve(&transfers(8, 120));
        c.pump();
        assert!(
            c.metrics().dropped + c.metrics().duplicated > 0,
            "the plan actually fired"
        );
        assert_eq!(c.durable_seq(), 120, "retransmission closed every gap");
        assert_in_sync(&c);
    }
}

#[test]
fn identical_seeds_yield_identical_executions() {
    let run = |tag: &str| {
        let mut c = cluster(tag, 3, ReplicaConfig::default(), 99);
        c.set_fault_plan(
            FaultPlan::new(5)
                .drop_probability(0.2)
                .duplicate_probability(0.1),
        );
        c.serve(&transfers(8, 80));
        c.pump();
        (c.metrics().clone(), c.node(1).state(), c.node(2).state())
    };
    assert_eq!(run("det-a"), run("det-b"));
}

#[test]
fn quorum_failover_loses_no_acked_wave() {
    let mut c = cluster("quorum-failover", 3, ReplicaConfig::default(), 21);
    c.serve(&transfers(8, 90));
    c.pump();
    let claimed = c.durable_seq();
    assert_eq!(claimed, 90);

    c.crash_primary();
    let winner = c.fail_over();
    assert_ne!(winner, 0);
    assert!(c.node(winner).is_primary());
    assert_eq!(c.epoch(), 1);
    assert!(
        c.node(winner).next_seq() >= claimed,
        "every quorum-acked wave survived the primary loss"
    );
    // The promoted log serves further writes.
    c.serve(&transfers(8, 30));
    c.pump();
    assert_in_sync(&c);
    assert_eq!(c.node(winner).next_seq(), 120);
}

#[test]
fn async_mode_loses_at_most_an_unshipped_suffix() {
    let cfg = ReplicaConfig {
        ack_mode: AckMode::Async,
        ..ReplicaConfig::default()
    };
    let mut c = cluster("async-suffix", 3, cfg, 33);
    c.serve(&transfers(8, 60));
    c.pump();
    // A second batch is served but never pumped: the followers have
    // none of it when the primary dies.
    c.serve(&transfers(8, 40));
    assert_eq!(c.durable_seq(), 100, "async claims local seals");

    c.crash_primary();
    c.fail_over();
    let survived = c.node(c.primary()).next_seq();
    assert_eq!(
        survived, 60,
        "exactly the shipped prefix survived — a suffix was lost, never a gap"
    );
    assert_in_sync(&c);
}

#[test]
fn restarted_old_primary_rejoins_fenced_and_catches_up() {
    let mut c = cluster("rejoin", 3, ReplicaConfig::default(), 55);
    c.serve(&transfers(8, 80));
    c.pump();
    c.crash_primary();
    let winner = c.fail_over();
    c.serve(&transfers(8, 40));
    c.pump();

    // Machine 0 comes back from disk: it must come back a *follower*,
    // adopt the new epoch, and catch up on the waves it missed.
    c.restart(0);
    c.pump();
    assert!(!c.node(0).is_primary(), "old primary rejoined as follower");
    assert_eq!(c.node(0).epoch(), c.epoch(), "adopted the new reign");
    assert_eq!(c.node(0).next_seq(), c.node(winner).next_seq());
    assert_in_sync(&c);
}

#[test]
fn crashed_follower_restarts_and_catches_up_from_the_log() {
    let mut c = cluster("follower-catchup", 3, ReplicaConfig::default(), 17);
    c.serve(&transfers(8, 50));
    c.pump();
    c.crash(2);
    c.serve(&transfers(8, 50));
    c.pump(); // follower 2 misses this round (and is marked down)
    assert_eq!(c.node(1).next_seq(), 100);

    c.restart(2);
    c.pump();
    assert_eq!(c.node(2).next_seq(), 100, "caught up from the log suffix");
    assert_in_sync(&c);
}

#[test]
fn follower_past_retention_is_rebased_from_a_snapshot() {
    // Aggressive snapshotting + tiny segments: the log a dead follower
    // missed is garbage-collected, so catch-up must snapshot-ship.
    let cfg = ReplicaConfig {
        max_retries: 3,
        store: StoreConfig {
            snapshot_every_ops: 32,
            segment_max_bytes: 512,
            snapshots_kept: 1,
            ..StoreConfig::default()
        },
        ..ReplicaConfig::default()
    };
    let mut c = cluster("snapshot-rebase", 3, cfg, 29);
    c.serve(&transfers(8, 40));
    c.pump();
    c.crash(2);
    for _ in 0..6 {
        c.serve(&transfers(8, 40));
        c.pump();
    }
    let primary_rec = recover::<ShardedErc20>(c.node(0).dir()).expect("primary dir");
    assert!(
        primary_rec.snapshot_watermark > 40,
        "GC moved the retention floor past the dead follower's position"
    );

    c.restart(2);
    c.pump();
    assert_eq!(c.node(2).next_seq(), 280, "snapshot + suffix caught it up");
    assert_in_sync(&c);
    // The re-based follower's own disk must carry the shipped floor.
    let rec = recover::<ShardedErc20>(c.node(2).dir()).expect("rebased dir");
    assert!(rec.snapshot_watermark > 40, "rebased on a shipped snapshot");
}

#[test]
fn scheduled_crash_restart_faults_converge() {
    // The fault plan itself kills and revives a follower mid-round; the
    // protocol must converge without orchestrator help.
    let mut c = cluster("scheduled", 3, ReplicaConfig::default(), 61);
    c.set_fault_plan(
        FaultPlan::new(9)
            .drop_probability(0.1)
            .crash_at(40, 2)
            .restart_at(900, 2),
    );
    c.serve(&transfers(8, 120));
    c.pump();
    c.pump(); // one more round so the revived follower fully drains
    assert_eq!(c.durable_seq(), 120);
    assert_in_sync(&c);
}

/// The genuine split-brain: a follower is promoted while the old
/// primary is still alive and writing. The old primary must be fenced,
/// and the follower that accepted its divergent suffix must be wiped
/// and re-based onto the new reign's history.
#[test]
fn stale_primary_is_fenced_and_divergent_follower_rebased() {
    let base = temp_dir("split-brain");
    let cfg = ReplicaConfig::default();
    let g = genesis(8);
    let nodes = vec![
        ReplicaNode::<ShardedErc20>::create_primary(&base.join("node-0"), &g, cfg, 3).unwrap(),
        ReplicaNode::<ShardedErc20>::create_follower(&base.join("node-1"), &g, cfg, 3).unwrap(),
        ReplicaNode::<ShardedErc20>::create_follower(&base.join("node-2"), &g, cfg, 3).unwrap(),
    ];
    let mut net = SimNet::new(nodes, 77);
    net.run_to_quiescence();

    // Epoch 0: 50 waves reach everyone.
    net.node_mut(0).serve(&transfers(8, 50));
    net.post(0, 0, ReplicaMsg::Pump);
    net.run_to_quiescence();
    assert_eq!(net.node(2).next_seq(), 50);

    // A (wrongly suspected) failover promotes node 1 — node 0 is alive.
    let start_seq = net.node_mut(1).promote(1);
    assert_eq!(start_seq, 50);

    // The stale primary keeps writing: node 2 (still epoch 0) accepts
    // the divergent suffix; node 1 answers Fenced and node 0 demotes.
    net.node_mut(0).serve(&transfers(8, 20));
    net.post(0, 0, ReplicaMsg::Pump);
    net.run_to_quiescence();
    assert!(!net.node(0).is_primary(), "old primary was fenced");

    // The new reign announces; node 2's divergent log cannot adopt and
    // gets snapshot-shipped back onto committed history.
    net.post(
        1,
        0,
        ReplicaMsg::Announce {
            epoch: 1,
            start_seq,
        },
    );
    net.post(
        1,
        2,
        ReplicaMsg::Announce {
            epoch: 1,
            start_seq,
        },
    );
    net.run_to_quiescence();

    let lead = net.node(1);
    assert!(lead.is_primary());
    for i in [0usize, 2] {
        let node = net.node(i);
        assert!(!node.is_primary());
        assert_eq!(node.epoch(), 1, "node {i} adopted the reign");
        assert_eq!(
            node.next_seq(),
            50,
            "node {i}: the uncommitted divergent suffix was discarded"
        );
        assert_eq!(node.state(), lead.state(), "node {i} state");
    }
}

//! The replication wire alphabet and tuning knobs.

use tokensync_pipeline::PipelineConfig;
use tokensync_store::StoreConfig;

/// When the primary's durability claim ([`ReplicaNode::durable_seq`])
/// counts a sealed batch as durable.
///
/// [`ReplicaNode::durable_seq`]: crate::ReplicaNode::durable_seq
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AckMode {
    /// Durable once the primary's own WAL synced it (followers catch up
    /// in the background). A primary loss can lose acked-but-unshipped
    /// waves — at most a suffix, never a gap.
    Async,
    /// Durable once a quorum of the cluster (the primary plus
    /// acknowledged followers) holds it fsynced. Surviving any single
    /// machine loss, a quorum-durable wave is never lost by failover.
    #[default]
    Quorum,
}

/// Replication tuning.
#[derive(Clone, Copy, Debug)]
pub struct ReplicaConfig {
    /// The durability-claim policy.
    pub ack_mode: AckMode,
    /// Cluster quorum size counting the primary itself; `0` means a
    /// majority of the cluster (`n/2 + 1`).
    pub quorum: usize,
    /// Maximum unacknowledged [`Append`](crate::ReplicaMsg::Append)
    /// messages in flight per follower.
    pub window: usize,
    /// Base retransmission timeout in simulator ticks (doubles per
    /// retry, up to [`ReplicaConfig::max_backoff`]).
    pub retry_after: u64,
    /// Backoff ceiling in ticks.
    pub max_backoff: u64,
    /// Consecutive unanswered retransmissions before a follower is
    /// marked down (it revives on its next `Hello`/`Ack`). Bounds the
    /// pump loop, so a dead follower degrades service instead of
    /// wedging it.
    pub max_retries: u32,
    /// The primary's local store policy.
    pub store: StoreConfig,
    /// The primary's serving engine policy.
    pub pipeline: PipelineConfig,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            ack_mode: AckMode::Quorum,
            quorum: 0,
            window: 8,
            retry_after: 64,
            max_backoff: 1 << 12,
            max_retries: 10,
            store: StoreConfig::default(),
            pipeline: PipelineConfig::default(),
        }
    }
}

/// One replication message. `Append` frames are the store's on-disk WAL
/// record bytes, shipped **byte-identically** — a follower re-validates
/// the CRC framing and appends the same bytes, so primary and follower
/// logs are bit-equal over the shipped range.
#[derive(Clone, Debug)]
pub enum ReplicaMsg {
    /// One committed WAL record.
    Append {
        /// The sender's replication epoch (fencing token).
        epoch: u64,
        /// Global sequence number of the record's first operation.
        first_seq: u64,
        /// Operations in the record.
        count: u32,
        /// The on-disk frame bytes (`len · crc · payload`).
        frame: Vec<u8>,
    },
    /// Cumulative acknowledgement: the sender has durably (fsynced)
    /// appended every operation below `next_seq`.
    Ack {
        /// The acknowledging node's current epoch.
        epoch: u64,
        /// First sequence number it does **not** hold.
        next_seq: u64,
    },
    /// Full-state catch-up for a follower whose position fell out of log
    /// retention or whose log diverged: install this state, then resume
    /// streaming from `watermark`.
    Snapshot {
        /// The sender's replication epoch.
        epoch: u64,
        /// Log position the state corresponds to.
        watermark: u64,
        /// The encoded oracle state ([`StateCodec`] bytes).
        ///
        /// [`StateCodec`]: tokensync_core::codec::StateCodec
        state: Vec<u8>,
    },
    /// A node introducing itself (at start, on restart, or replying to
    /// an [`Announce`](ReplicaMsg::Announce)): its durable epoch and log
    /// end, from which the primary decides stream-from-here vs
    /// snapshot-ship.
    Hello {
        /// The sender's durable epoch **before** any adoption.
        epoch: u64,
        /// First sequence number the sender does not hold.
        next_seq: u64,
    },
    /// A freshly promoted primary announcing its reign: followers whose
    /// log is a prefix of `start_seq` adopt the epoch; longer (divergent)
    /// logs reply `Hello` and get snapshot-shipped.
    Announce {
        /// The new epoch.
        epoch: u64,
        /// Log position at which the new epoch begins.
        start_seq: u64,
    },
    /// Fencing rejection: the receiver's epoch was stale. A primary
    /// receiving this demotes itself to follower.
    Fenced {
        /// The rejecting node's (higher) epoch.
        epoch: u64,
    },
    /// Self-addressed retransmission timer of the primary.
    Pump,
}

//! One machine of the replicated cluster: a [`ReplicaNode`] is either
//! the **primary** (serves writes through the pipeline into its durable
//! [`Store`], tails its own WAL and ships the records) or a
//! **follower** (validates, appends, replays and acknowledges shipped
//! records into a live read-serving object).
//!
//! The protocol in one paragraph: every WAL segment is stamped with an
//! *epoch* (a fencing token that only grows). The primary streams
//! records per follower with a bounded in-flight window; followers send
//! cumulative `Ack`s after an fsync; timeouts trigger go-back-N
//! retransmission with exponential backoff, and a follower that stops
//! answering is marked down (service degrades, never wedges). A
//! follower whose position fell out of log retention — or whose log
//! diverged across a failover — is wiped and re-based from a shipped
//! snapshot, then caught up from the log suffix. Any message stamped
//! with a stale epoch is answered `Fenced`, and a fenced primary
//! demotes itself; [`Wal::set_epoch`] makes adoption durable *before*
//! anything of the new reign is acknowledged.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};

use tokensync_core::codec::{Codec, StateCodec};
use tokensync_net::{Context, Node};
use tokensync_pipeline::{run_script_with_sink, PipelineRun};
use tokensync_spec::ProcessId;
use tokensync_store::wal::{Wal, FRAME_LEN};
use tokensync_store::{
    decode_commits, install_snapshot, read_latest_snapshot, recover, Restorable, Store, StoreError,
    WalCursor,
};

use crate::msg::{AckMode, ReplicaConfig, ReplicaMsg};

/// Replication-health counters of a primary's reign (reset on
/// promotion — they describe the current epoch's leadership, the
/// natural scope: a new primary starts with a clean slate of peers).
///
/// [`Cluster::pump`](crate::Cluster::pump) publishes these into a
/// metrics [`Registry`](tokensync_obs::Registry) — see
/// [`Cluster::publish_obs`](crate::Cluster::publish_obs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Timed-out transmissions resent (go-back-N rewinds and snapshot
    /// resends alike).
    pub retransmissions: u64,
    /// Peers marked down after exhausting their retry budget.
    pub down_marks: u64,
    /// Snapshots shipped to re-base lagging or divergent followers.
    pub snapshot_ships: u64,
    /// Repeated `Announce` invitations to peers that never introduced
    /// themselves this reign.
    pub reinvites: u64,
}

/// Per-follower replication state on the primary.
struct Peer {
    /// Introduced itself (Hello/Ack) under a compatible epoch.
    active: bool,
    /// Exhausted its retries; revives on its next Hello/Ack.
    down: bool,
    /// Cumulative acknowledged position (fsynced on the follower).
    acked: u64,
    /// Tailing cursor positioned past the last shipped record.
    cursor: Option<WalCursor>,
    /// End sequence number of each unacknowledged `Append`, send order.
    inflight: VecDeque<u64>,
    /// Watermark of an unacknowledged shipped snapshot.
    snapshot_pending: Option<u64>,
    /// Time of the oldest outstanding transmission.
    sent_at: u64,
    /// Current retransmission timeout.
    backoff: u64,
    /// Consecutive unanswered retransmissions.
    retries: u32,
}

impl Peer {
    fn idle(backoff: u64) -> Self {
        Self {
            active: false,
            down: false,
            acked: 0,
            cursor: None,
            inflight: VecDeque::new(),
            snapshot_pending: None,
            sent_at: 0,
            backoff,
            retries: 0,
        }
    }

    /// Whether an unacknowledged transmission is outstanding.
    fn outstanding(&self) -> bool {
        self.snapshot_pending.is_some() || !self.inflight.is_empty()
    }
}

struct Primary<T: Restorable> {
    store: Store<T>,
    object: T,
    epoch: u64,
    /// Log position at which this epoch began — the fencing boundary:
    /// an old-epoch log longer than this has a divergent suffix.
    epoch_start_seq: u64,
    /// Highest locally sealed (batch-synced) position.
    sealed_seq: u64,
    peers: Vec<Peer>,
    /// Whether a self-addressed Pump timer is already in flight.
    pump_armed: bool,
    /// Replication-health counters of this reign.
    stats: ReplicationStats,
}

struct Follower<T> {
    wal: Wal,
    object: T,
    epoch: u64,
    next_seq: u64,
    leader: Option<usize>,
}

enum Role<T: Restorable> {
    Primary(Primary<T>),
    Follower(Follower<T>),
    /// Transient placeholder while files are being reopened; never
    /// observable between messages.
    Rebooting,
}

/// One replica: a [`Node`] owning a store directory. Create the initial
/// cluster with [`ReplicaNode::create_primary`] /
/// [`ReplicaNode::create_follower`] and drive it inside a
/// [`SimNet`](tokensync_net::SimNet) (or use
/// [`Cluster`](crate::Cluster), which wires all of this up).
pub struct ReplicaNode<T: Restorable> {
    dir: PathBuf,
    cfg: ReplicaConfig,
    /// Cluster size (fixed membership).
    n: usize,
    /// This node's id; set by `on_start`, kept across crashes.
    id: usize,
    role: Role<T>,
}

impl<T> ReplicaNode<T>
where
    T: Restorable,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    /// Initializes the founding primary of an `n`-node cluster in `dir`.
    ///
    /// # Errors
    ///
    /// As [`Store::create`].
    pub fn create_primary(
        dir: &Path,
        genesis: &T::State,
        cfg: ReplicaConfig,
        n: usize,
    ) -> Result<Self, StoreError> {
        let store = Store::create(dir, genesis, cfg.store)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            cfg,
            n,
            id: 0,
            role: Role::Primary(Primary {
                store,
                object: T::restore(genesis.clone()),
                epoch: 0,
                epoch_start_seq: 0,
                sealed_seq: 0,
                peers: (0..n).map(|_| Peer::idle(cfg.retry_after)).collect(),
                pump_armed: false,
                stats: ReplicationStats::default(),
            }),
        })
    }

    /// Initializes a follower of an `n`-node cluster in `dir` (genesis
    /// snapshot + empty log; it introduces itself with a `Hello` on
    /// start).
    ///
    /// # Errors
    ///
    /// I/O errors initializing the directory.
    pub fn create_follower(
        dir: &Path,
        genesis: &T::State,
        cfg: ReplicaConfig,
        n: usize,
    ) -> Result<Self, StoreError> {
        install_snapshot(dir, 0, genesis)?;
        let wal = Wal::open(
            dir,
            <T::State as StateCodec>::STANDARD,
            <T::State as StateCodec>::VERSION,
            cfg.store.segment_max_bytes,
            0,
        )?;
        Ok(Self {
            dir: dir.to_path_buf(),
            cfg,
            n,
            id: usize::MAX,
            role: Role::Follower(Follower {
                wal,
                object: T::restore(genesis.clone()),
                epoch: 0,
                next_seq: 0,
                leader: None,
            }),
        })
    }

    /// This node's store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether this node currently leads.
    pub fn is_primary(&self) -> bool {
        matches!(self.role, Role::Primary(_))
    }

    /// The node's current replication epoch.
    pub fn epoch(&self) -> u64 {
        match &self.role {
            Role::Primary(p) => p.epoch,
            Role::Follower(f) => f.epoch,
            Role::Rebooting => unreachable!("transient role observed"),
        }
    }

    /// First sequence number this node does not hold durably.
    pub fn next_seq(&self) -> u64 {
        match &self.role {
            Role::Primary(p) => p.store.next_seq(),
            Role::Follower(f) => f.next_seq,
            Role::Rebooting => unreachable!("transient role observed"),
        }
    }

    /// Snapshot of the live served object (read path — works on primary
    /// and follower alike; follower reads trail by replication lag).
    pub fn state(&self) -> T::State {
        self.object().snapshot()
    }

    /// The live served object.
    pub fn object(&self) -> &T {
        match &self.role {
            Role::Primary(p) => &p.object,
            Role::Follower(f) => &f.object,
            Role::Rebooting => unreachable!("transient role observed"),
        }
    }

    /// The cumulative position follower `i` has acknowledged (primary
    /// only; `None` on a follower).
    pub fn peer_acked(&self, i: usize) -> Option<u64> {
        match &self.role {
            Role::Primary(p) => Some(p.peers[i].acked),
            _ => None,
        }
    }

    /// This reign's replication-health counters (primary only).
    pub fn replication_stats(&self) -> Option<ReplicationStats> {
        match &self.role {
            Role::Primary(p) => Some(p.stats),
            _ => None,
        }
    }

    /// Per-peer acknowledgement lag, `primary next_seq − peer acked`
    /// (primary only; the primary's own slot reads 0). A peer that
    /// never introduced itself this reign shows the full log length —
    /// exactly the catch-up debt it owes.
    pub fn follower_lags(&self) -> Option<Vec<u64>> {
        match &self.role {
            Role::Primary(p) => {
                let head = p.store.next_seq();
                Some(
                    p.peers
                        .iter()
                        .enumerate()
                        .map(|(i, peer)| {
                            if i == self.id {
                                0
                            } else {
                                head.saturating_sub(peer.acked)
                            }
                        })
                        .collect(),
                )
            }
            _ => None,
        }
    }

    /// The highest position this primary **claims durable** under its
    /// [`AckMode`]: with `Async` the locally sealed position, with
    /// `Quorum` the largest sealed position a quorum of the cluster
    /// (counting the primary) has fsynced. On a follower: its own
    /// durable position.
    pub fn durable_seq(&self) -> u64 {
        match &self.role {
            Role::Primary(p) => match self.cfg.ack_mode {
                AckMode::Async => p.sealed_seq,
                AckMode::Quorum => {
                    let q = if self.cfg.quorum > 0 {
                        self.cfg.quorum
                    } else {
                        self.n / 2 + 1
                    };
                    if q <= 1 {
                        return p.sealed_seq;
                    }
                    let mut acked: Vec<u64> = (0..self.n)
                        .filter(|&i| i != self.id)
                        .map(|i| p.peers[i].acked)
                        .collect();
                    acked.sort_unstable_by(|a, b| b.cmp(a));
                    p.sealed_seq.min(acked.get(q - 2).copied().unwrap_or(0))
                }
            },
            Role::Follower(f) => f.next_seq,
            Role::Rebooting => unreachable!("transient role observed"),
        }
    }

    /// Serves a script through the pipeline into the durable store —
    /// the write path, callable only on the primary. Replication of the
    /// new records happens on the next `Pump`/`Ack` round
    /// ([`Cluster::pump`](crate::Cluster::pump) drives it).
    ///
    /// # Panics
    ///
    /// Panics when called on a follower, or if the store's write path
    /// failed (the commit-sink interface parks errors).
    pub fn serve(&mut self, script: &[(ProcessId, T::Op)]) -> PipelineRun<T::Op, T::Resp> {
        let Role::Primary(p) = &mut self.role else {
            panic!("serve() on a non-primary replica");
        };
        let run = run_script_with_sink(&p.object, script, &self.cfg.pipeline, &mut p.store);
        // The primary's durability claim is the store's own watermark
        // now: under pipelined group commit the run's final batch may
        // still be in the background fsync queue, so drain it before
        // claiming — replication acks must never outrun local
        // durability.
        if let Err(e) = p.store.flush() {
            panic!("primary store write path failed: {e}");
        }
        p.sealed_seq = p.sealed_seq.max(p.store.durable_seq());
        run
    }

    /// Promotes this follower to primary for `epoch` — the failover
    /// control-plane step. Durably fences the log at the new epoch and
    /// returns the epoch's start position (for the `Announce`
    /// broadcast). The caller picks *which* follower deterministically:
    /// the longest valid log, lowest id on ties.
    ///
    /// # Panics
    ///
    /// Panics when called on a node that is already primary.
    pub fn promote(&mut self, epoch: u64) -> u64 {
        let role = std::mem::replace(&mut self.role, Role::Rebooting);
        let Role::Follower(f) = role else {
            panic!("promote() on a non-follower replica");
        };
        let Follower { wal, object, .. } = f;
        drop(wal); // release the append handle before reopening as a store
        let mut store = Store::open(&self.dir, self.cfg.store).expect("reopen store on promotion");
        store
            .set_epoch(epoch)
            .expect("fence the log at the new epoch");
        let start = store.next_seq();
        self.role = Role::Primary(Primary {
            object,
            epoch,
            epoch_start_seq: start,
            // Everything on the promoted log is locally durable.
            sealed_seq: start,
            peers: (0..self.n)
                .map(|_| Peer::idle(self.cfg.retry_after))
                .collect(),
            pump_armed: false,
            stats: ReplicationStats::default(),
            store,
        });
        start
    }

    /// The epoch if this node is primary, else `None` — the handler
    /// dispatch test (followers and primaries answer most messages
    /// differently).
    fn primary_epoch(&self) -> Option<u64> {
        match &self.role {
            Role::Primary(p) => Some(p.epoch),
            _ => None,
        }
    }

    /// Discards all volatile state and rebuilds a follower from the
    /// directory alone — machine loss, and the demotion path of a
    /// fenced primary.
    fn reload_as_follower(&mut self) {
        self.role = Role::Rebooting; // drop open handles first
        let rec = recover::<T>(&self.dir).expect("recover replica from disk");
        let wal = Wal::open(
            &self.dir,
            <T::State as StateCodec>::STANDARD,
            <T::State as StateCodec>::VERSION,
            self.cfg.store.segment_max_bytes,
            rec.snapshot_watermark,
        )
        .expect("reopen wal after recovery");
        debug_assert_eq!(wal.next_seq(), rec.next_seq, "recovery/wal position skew");
        self.role = Role::Follower(Follower {
            next_seq: wal.next_seq(),
            wal,
            object: rec.object,
            epoch: rec.epoch,
            leader: None,
        });
    }

    /// Introduces this follower to every other node.
    fn say_hello(&self, ctx: &mut Context<ReplicaMsg>) {
        let Role::Follower(f) = &self.role else {
            return;
        };
        let msg = ReplicaMsg::Hello {
            epoch: f.epoch,
            next_seq: f.next_seq,
        };
        for dst in 0..ctx.n() {
            if dst != ctx.me() {
                ctx.send(dst, msg.clone());
            }
        }
    }

    /// A message stamped with a higher epoch reached this primary: the
    /// cluster moved on, so demote to follower and re-introduce.
    fn demote_and_hello(&mut self, ctx: &mut Context<ReplicaMsg>) {
        self.reload_as_follower();
        self.say_hello(ctx);
    }

    // ── primary message handlers ───────────────────────────────────────

    fn on_hello(&mut self, from: usize, epoch: u64, next_seq: u64, ctx: &mut Context<ReplicaMsg>) {
        let Some(my_epoch) = self.primary_epoch() else {
            return; // followers ignore introductions
        };
        if epoch > my_epoch {
            self.demote_and_hello(ctx);
            return;
        }
        let cfg = self.cfg;
        let now = ctx.time();
        let me = self.id;
        let Role::Primary(p) = &mut self.role else {
            unreachable!();
        };
        // The re-base decision. Same epoch, or an old-epoch log that is
        // a prefix of this epoch's start: its bytes are ours, stream
        // from where it stands. An old-epoch log *past* the epoch start
        // has a divergent suffix: wipe it with a snapshot.
        let prev_acked = p.peers[from].acked;
        let peer = &mut p.peers[from];
        *peer = Peer::idle(cfg.retry_after);
        peer.active = true;
        if epoch == p.epoch || next_seq <= p.epoch_start_seq {
            // Both positions are fsynced truths about the peer's log, so
            // the max keeps the durability claim monotone even if an old
            // duplicated Hello arrives late.
            peer.acked = prev_acked.max(next_seq);
            p.stream_to(&cfg, from, now, ctx);
        } else {
            p.ship_snapshot(&cfg, from, now, ctx);
        }
        p.arm_pump(&cfg, me, ctx);
    }

    fn on_ack(&mut self, from: usize, epoch: u64, next_seq: u64, ctx: &mut Context<ReplicaMsg>) {
        let Some(my_epoch) = self.primary_epoch() else {
            return; // followers ignore acks
        };
        if epoch > my_epoch {
            self.demote_and_hello(ctx);
            return;
        }
        if epoch < my_epoch {
            // A follower still acking its old reign: re-base it, same
            // decision as a Hello.
            self.on_hello(from, epoch, next_seq, ctx);
            return;
        }
        let cfg = self.cfg;
        let now = ctx.time();
        let me = self.id;
        let Role::Primary(p) = &mut self.role else {
            unreachable!();
        };
        let peer = &mut p.peers[from];
        peer.active = true;
        peer.down = false;
        if peer.snapshot_pending.is_some_and(|w| next_seq >= w) {
            peer.snapshot_pending = None;
        }
        if next_seq > peer.acked {
            peer.acked = next_seq;
            while peer.inflight.front().is_some_and(|&end| end <= next_seq) {
                peer.inflight.pop_front();
            }
            peer.retries = 0;
            peer.backoff = cfg.retry_after;
            peer.sent_at = now;
        }
        p.stream_to(&cfg, from, now, ctx);
        p.arm_pump(&cfg, me, ctx);
    }

    fn on_pump(&mut self, ctx: &mut Context<ReplicaMsg>) {
        let cfg = self.cfg;
        let now = ctx.time();
        let me = self.id;
        let Role::Primary(p) = &mut self.role else {
            return;
        };
        p.pump_armed = false;
        for dst in 0..p.peers.len() {
            if dst == me || p.peers[dst].down {
                continue;
            }
            if !p.peers[dst].active {
                // The peer never introduced itself this reign — its
                // Hello (or our Announce) was lost, or it is dead.
                // Re-invite with the same bounded retry/backoff budget
                // as retransmission, marking it down when exhausted.
                let peer = &mut p.peers[dst];
                if peer.retries > 0 && now.saturating_sub(peer.sent_at) < peer.backoff {
                    continue;
                }
                peer.retries += 1;
                if peer.retries > cfg.max_retries {
                    peer.down = true;
                    p.stats.down_marks += 1;
                    continue;
                }
                peer.backoff = (peer.backoff * 2).min(cfg.max_backoff);
                peer.sent_at = now;
                p.stats.reinvites += 1;
                ctx.send(
                    dst,
                    ReplicaMsg::Announce {
                        epoch: p.epoch,
                        start_seq: p.epoch_start_seq,
                    },
                );
                continue;
            }
            if p.peers[dst].outstanding() {
                if now.saturating_sub(p.peers[dst].sent_at) < p.peers[dst].backoff {
                    continue; // still within the timeout
                }
                let peer = &mut p.peers[dst];
                peer.retries += 1;
                if peer.retries > cfg.max_retries {
                    // Degrade: stop retransmitting to a silent follower;
                    // the primary keeps serving, the peer revives on its
                    // next Hello/Ack. Drop the cursor so a dead peer
                    // stops pinning old segments against GC.
                    peer.down = true;
                    peer.cursor = None;
                    peer.inflight.clear();
                    p.stats.down_marks += 1;
                    continue;
                }
                peer.backoff = (peer.backoff * 2).min(cfg.max_backoff);
                peer.sent_at = now;
                p.stats.retransmissions += 1;
                let resend_snapshot = peer.snapshot_pending.is_some();
                if resend_snapshot {
                    p.ship_snapshot(&cfg, dst, now, ctx);
                } else {
                    // Go-back-N: rewind to the cumulative ack.
                    p.peers[dst].cursor = None;
                    p.peers[dst].inflight.clear();
                    p.stream_to(&cfg, dst, now, ctx);
                }
            } else {
                p.stream_to(&cfg, dst, now, ctx);
            }
        }
        p.arm_pump(&cfg, me, ctx);
    }

    fn on_fenced(&mut self, _from: usize, epoch: u64, ctx: &mut Context<ReplicaMsg>) {
        if self.primary_epoch().is_some_and(|mine| epoch > mine) {
            self.demote_and_hello(ctx);
        }
    }

    // ── follower message handlers ──────────────────────────────────────

    fn on_append(
        &mut self,
        from: usize,
        epoch: u64,
        first_seq: u64,
        count: u32,
        frame: Vec<u8>,
        ctx: &mut Context<ReplicaMsg>,
    ) {
        if let Some(my_epoch) = self.primary_epoch() {
            // Two primaries: the lower-epoch one is stale and must yield.
            if epoch > my_epoch {
                self.demote_and_hello(ctx);
            } else {
                ctx.send(from, ReplicaMsg::Fenced { epoch: my_epoch });
            }
            return;
        }
        let Role::Follower(f) = &mut self.role else {
            unreachable!();
        };
        if epoch < f.epoch {
            ctx.send(from, ReplicaMsg::Fenced { epoch: f.epoch });
            return;
        }
        if epoch > f.epoch {
            if first_seq <= f.next_seq {
                // The new reign's log covers ours: our log is a prefix
                // of committed history, adoption is safe. Fence durably
                // before acknowledging anything of the new reign.
                f.wal.set_epoch(epoch).expect("adopt epoch");
                f.epoch = epoch;
            } else {
                // Cannot prove our log is a prefix; ask to be re-based
                // instead of guessing.
                ctx.send(
                    from,
                    ReplicaMsg::Hello {
                        epoch: f.epoch,
                        next_seq: f.next_seq,
                    },
                );
                return;
            }
        }
        f.leader = Some(from);
        if first_seq != f.next_seq {
            // Duplicate (behind us) or gap (ahead of us): either way,
            // re-ack our cumulative position; the primary rewinds to it
            // on timeout (go-back-N) or drops the duplicate range.
            ctx.send(
                from,
                ReplicaMsg::Ack {
                    epoch: f.epoch,
                    next_seq: f.next_seq,
                },
            );
            return;
        }
        // Exact continuation: decode for replay, append the raw bytes
        // (CRC + continuity re-validated there), replay through the
        // live object verifying every recorded response, fsync, ack.
        let Ok(entries) = decode_commits::<T::Op, T::Resp>(&frame[FRAME_LEN..]) else {
            return; // undecodable payload: no ack, sender retries
        };
        if f.wal.append_frames(&frame).is_err() {
            return; // invalid frame bytes: no ack
        }
        for entry in &entries {
            let resp = f.object.apply(entry.caller, &entry.op);
            assert!(
                resp == entry.resp,
                "replicated replay diverged at seq {}",
                entry.seq
            );
        }
        f.wal.sync().expect("follower fsync before ack");
        f.next_seq = first_seq + u64::from(count);
        ctx.send(
            from,
            ReplicaMsg::Ack {
                epoch: f.epoch,
                next_seq: f.next_seq,
            },
        );
    }

    fn on_snapshot(
        &mut self,
        from: usize,
        epoch: u64,
        watermark: u64,
        state: Vec<u8>,
        ctx: &mut Context<ReplicaMsg>,
    ) {
        if let Some(my_epoch) = self.primary_epoch() {
            if epoch > my_epoch {
                self.demote_and_hello(ctx);
            } else {
                ctx.send(from, ReplicaMsg::Fenced { epoch: my_epoch });
            }
            return;
        }
        {
            let Role::Follower(f) = &self.role else {
                unreachable!();
            };
            if epoch < f.epoch {
                ctx.send(from, ReplicaMsg::Fenced { epoch: f.epoch });
                return;
            }
            if epoch == f.epoch && watermark <= f.next_seq {
                // Stale duplicate: our same-epoch log already covers the
                // watermark; installing would discard progress.
                ctx.send(
                    from,
                    ReplicaMsg::Ack {
                        epoch: f.epoch,
                        next_seq: f.next_seq,
                    },
                );
                return;
            }
        }
        let mut input = state.as_slice();
        let Ok(decoded) = <T::State as Codec>::decode(&mut input) else {
            return; // undecodable state: no ack, sender retries
        };
        if !input.is_empty() {
            return; // trailing bytes: not a state we understand
        }
        // Wipe and re-base: delete the divergent/lagging store
        // wholesale, install the shipped state as the new log floor,
        // and fence the fresh log at the shipping epoch.
        self.role = Role::Rebooting; // close handles before the wipe
        std::fs::remove_dir_all(&self.dir).expect("wipe replica directory");
        install_snapshot(&self.dir, watermark, &decoded).expect("install shipped snapshot");
        let mut wal = Wal::open(
            &self.dir,
            <T::State as StateCodec>::STANDARD,
            <T::State as StateCodec>::VERSION,
            self.cfg.store.segment_max_bytes,
            watermark,
        )
        .expect("open wal at the shipped watermark");
        wal.set_epoch(epoch).expect("fence the re-based log");
        self.role = Role::Follower(Follower {
            wal,
            object: T::restore(decoded),
            epoch,
            next_seq: watermark,
            leader: Some(from),
        });
        ctx.send(
            from,
            ReplicaMsg::Ack {
                epoch,
                next_seq: watermark,
            },
        );
    }

    fn on_announce(
        &mut self,
        from: usize,
        epoch: u64,
        start_seq: u64,
        ctx: &mut Context<ReplicaMsg>,
    ) {
        if let Some(my_epoch) = self.primary_epoch() {
            if epoch > my_epoch {
                self.demote_and_hello(ctx);
            } else {
                ctx.send(from, ReplicaMsg::Fenced { epoch: my_epoch });
            }
            return;
        }
        let Role::Follower(f) = &mut self.role else {
            unreachable!();
        };
        if epoch < f.epoch {
            ctx.send(from, ReplicaMsg::Fenced { epoch: f.epoch });
            return;
        }
        if epoch > f.epoch && f.next_seq <= start_seq {
            // Our log is a prefix of the new reign: adopt it durably. (A
            // longer log keeps its old epoch; the Hello below carries it
            // and the new primary snapshot-ships us.)
            f.wal.set_epoch(epoch).expect("adopt announced epoch");
            f.epoch = epoch;
        }
        if epoch == f.epoch {
            f.leader = Some(from);
        }
        ctx.send(
            from,
            ReplicaMsg::Hello {
                epoch: f.epoch,
                next_seq: f.next_seq,
            },
        );
    }
}

impl<T> Primary<T>
where
    T: Restorable,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    /// Streams records to `dst` from its cumulative ack, up to the
    /// in-flight window; falls back to snapshot shipping when the
    /// peer's position fell out of log retention.
    fn stream_to(
        &mut self,
        cfg: &ReplicaConfig,
        dst: usize,
        now: u64,
        ctx: &mut Context<ReplicaMsg>,
    ) {
        {
            let peer = &self.peers[dst];
            if !peer.active || peer.down || peer.snapshot_pending.is_some() {
                return;
            }
        }
        if self.peers[dst].cursor.is_none() {
            let from_seq = self.peers[dst].acked;
            match self.store.cursor(from_seq) {
                Ok(cursor) => self.peers[dst].cursor = Some(cursor),
                Err(StoreError::OutOfRetention { .. }) => {
                    // GC outran this follower: re-base it from a snapshot
                    // instead of a log suffix we no longer hold.
                    self.ship_snapshot(cfg, dst, now, ctx);
                    return;
                }
                Err(e) => panic!("primary cursor open failed: {e}"),
            }
        }
        let epoch = self.epoch;
        let peer = &mut self.peers[dst];
        let Peer {
            cursor: Some(cursor),
            inflight,
            sent_at,
            ..
        } = peer
        else {
            return;
        };
        while inflight.len() < cfg.window {
            match cursor.next_record() {
                Ok(Some(record)) => {
                    if inflight.is_empty() {
                        *sent_at = now;
                    }
                    inflight.push_back(record.first_seq + u64::from(record.count));
                    ctx.send(
                        dst,
                        ReplicaMsg::Append {
                            epoch,
                            first_seq: record.first_seq,
                            count: record.count,
                            frame: record.frame,
                        },
                    );
                }
                Ok(None) => break, // caught up to the live tail
                Err(e) => panic!("primary cursor read failed: {e}"),
            }
        }
    }

    /// Publishes a snapshot at the current position and ships it to
    /// `dst` — graceful degradation for a follower that is too far
    /// behind (out of retention) or whose log diverged across a
    /// failover. The primary keeps serving throughout.
    fn ship_snapshot(
        &mut self,
        _cfg: &ReplicaConfig,
        dst: usize,
        now: u64,
        ctx: &mut Context<ReplicaMsg>,
    ) {
        self.stats.snapshot_ships += 1;
        self.store
            .publish_snapshot(&self.object.snapshot())
            .expect("publish snapshot for shipping");
        let (watermark, state) =
            read_latest_snapshot::<T::State>(self.store.dir()).expect("read back snapshot");
        let peer = &mut self.peers[dst];
        peer.active = true;
        peer.cursor = None;
        peer.inflight.clear();
        peer.snapshot_pending = Some(watermark);
        peer.sent_at = now;
        ctx.send(
            dst,
            ReplicaMsg::Snapshot {
                epoch: self.epoch,
                watermark,
                state: state.encode(),
            },
        );
    }

    /// Keeps exactly one retransmission timer in flight while any peer
    /// has outstanding unacknowledged work.
    fn arm_pump(&mut self, cfg: &ReplicaConfig, me: usize, ctx: &mut Context<ReplicaMsg>) {
        if self.pump_armed {
            return;
        }
        // Keep the (single) timer chain alive while any peer has
        // unacked traffic in flight *or* still owes us its introduction
        // — the invite itself needs retrying on a lossy network.
        if self
            .peers
            .iter()
            .enumerate()
            .any(|(i, p)| i != me && !p.down && (!p.active || p.outstanding()))
        {
            self.pump_armed = true;
            ctx.send_after(cfg.retry_after, ReplicaMsg::Pump);
        }
    }
}

impl<T> Node for ReplicaNode<T>
where
    T: Restorable,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    type Msg = ReplicaMsg;

    fn on_start(&mut self, ctx: &mut Context<ReplicaMsg>) {
        self.id = ctx.me();
        self.say_hello(ctx);
    }

    fn on_message(&mut self, from: usize, msg: ReplicaMsg, ctx: &mut Context<ReplicaMsg>) {
        match msg {
            ReplicaMsg::Pump => self.on_pump(ctx),
            ReplicaMsg::Append {
                epoch,
                first_seq,
                count,
                frame,
            } => self.on_append(from, epoch, first_seq, count, frame, ctx),
            ReplicaMsg::Ack { epoch, next_seq } => self.on_ack(from, epoch, next_seq, ctx),
            ReplicaMsg::Snapshot {
                epoch,
                watermark,
                state,
            } => self.on_snapshot(from, epoch, watermark, state, ctx),
            ReplicaMsg::Hello { epoch, next_seq } => self.on_hello(from, epoch, next_seq, ctx),
            ReplicaMsg::Announce { epoch, start_seq } => {
                self.on_announce(from, epoch, start_seq, ctx)
            }
            ReplicaMsg::Fenced { epoch } => self.on_fenced(from, epoch, ctx),
        }
    }

    /// Machine loss: everything volatile is gone; what disk holds is
    /// what the node is. Rebuild a follower by full recovery and rejoin.
    fn on_restart(&mut self, ctx: &mut Context<ReplicaMsg>) {
        self.reload_as_follower();
        self.say_hello(ctx);
    }
}

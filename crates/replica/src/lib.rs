//! Replicated serving: primary/follower WAL shipping over the
//! simulated network, with fault injection, quorum acknowledgement and
//! deterministic failover — machine loss becomes a survivable event.
//!
//! The layer-3 [`Store`](tokensync_store::Store) made one machine's
//! serving history durable; this crate makes it **replicated**. The
//! primary serves scripts through the pipeline exactly as before, then
//! tails its own WAL with a pinned
//! [`WalCursor`](tokensync_store::WalCursor) and ships the sealed
//! records to followers **byte-identically** — a follower appends the
//! same frame bytes the primary's disk holds, so the replicated log is
//! bit-equal by construction, and every follower keeps a live
//! [`ConcurrentObject`](tokensync_core::shared::ConcurrentObject)
//! serving reads that trail the primary only by replication lag.
//!
//! What the simulator is allowed to do to the protocol — drop,
//! duplicate and reorder messages, partition links, crash and restart
//! machines (seeded [`FaultPlan`](tokensync_net::FaultPlan)s, fully
//! deterministic) — and what the protocol guarantees in return:
//!
//! - **No acked wave is lost** under [`AckMode::Quorum`]: a position
//!   only enters [`ReplicaNode::durable_seq`] once a quorum holds it
//!   fsynced, so the failover winner always holds it.
//! - **At-most-prefix loss** under [`AckMode::Async`]: a primary loss
//!   can drop a suffix of unshipped waves, never a middle gap.
//! - **Fencing**: epochs are stamped into WAL segment headers
//!   durably; a deposed primary's appends are rejected (`Fenced`) and
//!   it demotes itself, so no split-brain write survives.
//! - **Graceful degradation**: a lagging or wiped follower is re-based
//!   from a shipped snapshot and caught up from the log suffix while
//!   the primary keeps serving; a silent follower is marked down after
//!   bounded retries instead of wedging the cluster.
//!
//! See `docs/replication.md` for the wire format, the epoch/adoption
//! rules and the failover algorithm.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod cluster;
pub mod msg;
pub mod node;

pub use cluster::Cluster;
pub use msg::{AckMode, ReplicaConfig, ReplicaMsg};
pub use node::{ReplicaNode, ReplicationStats};

//! The cluster harness: wires `n` [`ReplicaNode`]s into a fault-capable
//! [`SimNet`] and drives the control plane — serving, replication
//! rounds, crashes, restarts and deterministic failover. Tests and
//! benchmarks talk to this; the nodes only ever talk to each other.

use std::path::Path;
use std::time::Instant;

use tokensync_core::codec::{Codec, StateCodec};
use tokensync_net::{FaultPlan, Metrics, SimNet};
use tokensync_obs::{Registry, SpanEvent, SpanRing, Stage};
use tokensync_pipeline::PipelineRun;
use tokensync_spec::ProcessId;
use tokensync_store::{Restorable, StoreError};

use crate::msg::{ReplicaConfig, ReplicaMsg};
use crate::node::{ReplicaNode, ReplicationStats};

/// A replicated serving cluster over the simulated network.
///
/// Node 0 starts as primary; the rest start as followers of an empty
/// log. [`Cluster::serve`] runs a script on the primary,
/// [`Cluster::pump`] drains one replication round, and
/// [`Cluster::fail_over`] implements the deterministic promotion rule:
/// **the live follower with the longest log wins, lowest id on ties.**
pub struct Cluster<T: Restorable>
where
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    net: SimNet<ReplicaNode<T>>,
    primary: usize,
    epoch: u64,
    /// Optional span sink: each [`Cluster::pump`] round records its
    /// wall-clock duration as a `QuorumAck` event.
    spans: Option<(SpanRing, Instant)>,
}

impl<T> Cluster<T>
where
    T: Restorable,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    /// Builds an `n`-node cluster under `base` (one `node-<i>` store
    /// directory per replica) and runs the introduction round.
    ///
    /// # Errors
    ///
    /// Store initialization errors.
    pub fn new(
        base: &Path,
        n: usize,
        genesis: &T::State,
        cfg: ReplicaConfig,
        seed: u64,
    ) -> Result<Self, StoreError> {
        assert!(n >= 1, "a cluster needs at least one node");
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let dir = base.join(format!("node-{i}"));
            nodes.push(if i == 0 {
                ReplicaNode::create_primary(&dir, genesis, cfg, n)?
            } else {
                ReplicaNode::create_follower(&dir, genesis, cfg, n)?
            });
        }
        let mut net = SimNet::new(nodes, seed);
        net.run_to_quiescence(); // drain the Hello round
        Ok(Self {
            net,
            primary: 0,
            epoch: 0,
            spans: None,
        })
    }

    /// Attaches a span ring: every subsequent [`Cluster::pump`] pushes
    /// one [`Stage::QuorumAck`] event whose duration is the wall-clock
    /// time the replication round took to reach quiescence, keyed by
    /// the primary's durable position after the round. Offsets are
    /// relative to this call.
    pub fn attach_span_ring(&mut self, ring: SpanRing) {
        self.spans = Some((ring, Instant::now()));
    }

    /// Arms a seeded [`FaultPlan`] on the underlying network.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.net.set_fault_plan(plan);
    }

    /// Serves a script on the current primary (panics if it is
    /// crashed — crash detection is the orchestrator's job, exactly as
    /// in a real deployment). Returns the pipeline run; call
    /// [`Cluster::pump`] afterwards to replicate the new records.
    pub fn serve(&mut self, script: &[(ProcessId, T::Op)]) -> PipelineRun<T::Op, T::Resp> {
        assert!(
            !self.net.is_crashed(self.primary),
            "serve() while the primary is crashed"
        );
        self.net.node_mut(self.primary).serve(script)
    }

    /// Drives one replication round: kicks the primary's pump and runs
    /// the network to quiescence (streaming, acks, retransmissions and
    /// any scheduled faults all play out).
    pub fn pump(&mut self) {
        let started = self.spans.as_ref().map(|_| Instant::now());
        if !self.net.is_crashed(self.primary) {
            self.net.post(self.primary, self.primary, ReplicaMsg::Pump);
        }
        self.net.run_to_quiescence();
        if let (Some((ring, epoch)), Some(started)) = (&self.spans, started) {
            let ns = |d: std::time::Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
            ring.push(SpanEvent {
                batch: self.durable_seq(),
                stage: Stage::QuorumAck,
                start_ns: ns(started.duration_since(*epoch)),
                dur_ns: ns(started.elapsed()),
            });
        }
    }

    /// Crashes `node` (primary or follower): it stops sending and
    /// receiving until [`Cluster::restart`].
    pub fn crash(&mut self, node: usize) {
        self.net.crash(node);
    }

    /// Crashes the current primary — the machine-loss headline case.
    pub fn crash_primary(&mut self) {
        self.net.crash(self.primary);
    }

    /// Deterministic failover: crashes the primary if still up, promotes
    /// the live follower with the **longest durable log** (lowest id on
    /// ties) into a fresh epoch, announces the reign, and drains the
    /// resulting adoption/catch-up traffic. Returns the winner's id.
    ///
    /// # Panics
    ///
    /// Panics if no live node remains.
    pub fn fail_over(&mut self) -> usize {
        if !self.net.is_crashed(self.primary) {
            self.net.crash(self.primary);
        }
        let mut winner: Option<(u64, usize)> = None;
        for i in 0..self.net.n() {
            if self.net.is_crashed(i) {
                continue;
            }
            let len = self.net.node(i).next_seq();
            // Strictly-greater keeps the first (lowest-id) maximum.
            if winner.map_or(true, |(best, _)| len > best) {
                winner = Some((len, i));
            }
        }
        let (_, winner) = winner.expect("no live node to promote");
        self.epoch += 1;
        let start_seq = self.net.node_mut(winner).promote(self.epoch);
        self.primary = winner;
        for i in 0..self.net.n() {
            if i != winner && !self.net.is_crashed(i) {
                self.net.post(
                    winner,
                    i,
                    ReplicaMsg::Announce {
                        epoch: self.epoch,
                        start_seq,
                    },
                );
            }
        }
        self.net.run_to_quiescence();
        winner
    }

    /// Restarts a crashed node: it recovers from disk, rejoins as a
    /// follower and catches up (the round is drained before returning).
    pub fn restart(&mut self, node: usize) {
        self.net.restart(node);
        self.net.run_to_quiescence();
    }

    /// Id of the current primary.
    pub fn primary(&self) -> usize {
        self.primary
    }

    /// The current cluster epoch (bumped once per failover).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The position the current primary claims durable under its
    /// [`AckMode`](crate::AckMode).
    pub fn durable_seq(&self) -> u64 {
        self.net.node(self.primary).durable_seq()
    }

    /// Access to a node, for assertions.
    pub fn node(&self, i: usize) -> &ReplicaNode<T> {
        self.net.node(i)
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.net.n()
    }

    /// Whether `node` is currently crashed.
    pub fn is_crashed(&self, node: usize) -> bool {
        self.net.is_crashed(node)
    }

    /// Network metrics (drops, duplicates, partition discards, …).
    pub fn metrics(&self) -> &Metrics {
        self.net.metrics()
    }

    /// The current primary's reign counters (zeroed on failover).
    pub fn replication_stats(&self) -> ReplicationStats {
        self.net
            .node(self.primary)
            .replication_stats()
            .unwrap_or_default()
    }

    /// Per-node acknowledgement lag behind the primary's log head
    /// (`next_seq − acked`; the primary's own slot is 0). A node that
    /// never introduced itself this reign shows the full log length.
    pub fn follower_lags(&self) -> Vec<u64> {
        self.net
            .node(self.primary)
            .follower_lags()
            .unwrap_or_else(|| vec![0; self.net.n()])
    }

    /// Publishes the cluster's replication health into `registry`:
    /// reign counters (`tokensync_replica_retransmissions_total`,
    /// `…_down_marks_total`, `…_snapshot_ships_total`,
    /// `…_reinvites_total`), per-follower ack-lag gauges
    /// (`tokensync_replica_follower_lag{follower="i"}`), and the
    /// `tokensync_replica_epoch` / `tokensync_replica_durable_seq`
    /// gauges. Pull-style: call it after each [`Cluster::pump`]; the
    /// counters are overwritten with the current totals
    /// ([`Counter::set_total`](tokensync_obs::Counter::set_total)), so
    /// do not mix the same registry names with push-style `add`s.
    pub fn publish_obs(&self, registry: &Registry) {
        let stats = self.replication_stats();
        registry
            .counter(
                "tokensync_replica_retransmissions_total",
                &[],
                "Timed-out transmissions resent by the primary (go-back-N rewinds and snapshot resends).",
            )
            .set_total(stats.retransmissions);
        registry
            .counter(
                "tokensync_replica_down_marks_total",
                &[],
                "Followers marked down after exhausting their retry budget.",
            )
            .set_total(stats.down_marks);
        registry
            .counter(
                "tokensync_replica_snapshot_ships_total",
                &[],
                "Snapshots shipped to re-base lagging or divergent followers.",
            )
            .set_total(stats.snapshot_ships);
        registry
            .counter(
                "tokensync_replica_reinvites_total",
                &[],
                "Repeated Announce invitations to silent peers.",
            )
            .set_total(stats.reinvites);
        registry
            .gauge(
                "tokensync_replica_epoch",
                &[],
                "Current replication epoch (bumped once per failover).",
            )
            .set(i64::try_from(self.epoch).unwrap_or(i64::MAX));
        registry
            .gauge(
                "tokensync_replica_durable_seq",
                &[],
                "Position the primary claims durable under its ack mode.",
            )
            .set(i64::try_from(self.durable_seq()).unwrap_or(i64::MAX));
        for (i, lag) in self.follower_lags().into_iter().enumerate() {
            let follower = i.to_string();
            registry
                .gauge(
                    "tokensync_replica_follower_lag",
                    &[("follower", follower.as_str())],
                    "Acknowledgement lag behind the primary's log head, in records.",
                )
                .set(i64::try_from(lag).unwrap_or(i64::MAX));
        }
    }
}

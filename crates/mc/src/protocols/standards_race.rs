//! Section 6 adaptations as step machines: consensus races over ERC777
//! and ERC721 objects, exhaustively model-checked.
//!
//! These reuse the *actual* sequential token implementations from
//! `tokensync-core::standards` as the explicit shared state, so the model
//! checker exercises exactly the semantics the threaded constructions run
//! on.

use tokensync_core::standards::erc721::{Erc721Token, TokenId};
use tokensync_core::standards::erc777::Erc777Token;
use tokensync_spec::{AccountId, Amount, ProcessId};

use crate::protocol::{Protocol, Step};
use crate::protocols::alg1::BOTTOM;

/// The ERC777 consensus race (Section 6): `k` operators of account `a_0`
/// race `operatorSend(a_0, a_{i+1}, B)`; the unique destination holding
/// `B` names the winner. Because operator withdrawals are all-or-nothing,
/// no `U`-style side condition is needed — the paper's "immediate"
/// extension, verified here for every interleaving.
#[derive(Clone, Debug)]
pub struct Erc777Race {
    k: usize,
    balance: Amount,
    initial: Erc777Token,
}

impl Erc777Race {
    /// Creates the race for `k` movers with source balance `balance`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `balance == 0`.
    pub fn new(k: usize, balance: Amount) -> Self {
        assert!(k >= 1 && balance > 0);
        let mut balances = vec![0; k + 1];
        balances[0] = balance;
        let mut token = Erc777Token::from_balances(balances);
        for i in 0..k {
            token
                .authorize_operator(ProcessId::new(0), ProcessId::new(i))
                .expect("ids in range");
        }
        Self {
            k,
            balance,
            initial: token,
        }
    }
}

impl Protocol for Erc777Race {
    type Shared = (Erc777Token, Vec<Option<u64>>);
    type Local = u8;

    fn processes(&self) -> usize {
        self.k
    }

    fn initial_shared(&self) -> Self::Shared {
        (self.initial.clone(), vec![None; self.k])
    }

    fn initial_local(&self, _p: ProcessId) -> u8 {
        0
    }

    fn proposal(&self, p: ProcessId) -> u64 {
        p.index() as u64 + 1
    }

    fn step(&self, shared: &mut Self::Shared, pc: &mut u8, p: ProcessId) -> Step {
        let (token, regs) = shared;
        let i = p.index();
        match *pc {
            0 => {
                regs[i] = Some(self.proposal(p));
                *pc = 1;
                Step::Continue
            }
            1 => {
                let _ =
                    token.operator_send(p, AccountId::new(0), AccountId::new(i + 1), self.balance);
                *pc = 2;
                Step::Continue
            }
            pc_val => {
                let j = (pc_val - 2) as usize;
                if j < self.k {
                    if token.balance_of(AccountId::new(j + 1)) == self.balance {
                        return Step::Decided(regs[j].unwrap_or(BOTTOM));
                    }
                    *pc = pc_val + 1;
                    Step::Continue
                } else {
                    Step::Decided(BOTTOM) // unreachable in correct runs
                }
            }
        }
    }

    fn describe_step(&self, _shared: &Self::Shared, pc: &u8, p: ProcessId) -> String {
        match *pc {
            0 => format!("{p}: write R[{}]", p.index()),
            1 => format!("{p}: operatorSend(a0 → a{}, B)", p.index() + 1),
            pc_val => format!("{p}: read balance(a{})", (pc_val - 2) as usize + 1),
        }
    }

    fn step_bound(&self) -> usize {
        self.k + 3
    }
}

/// The ERC721 consensus race (Section 6): the `k` movers of one NFT race
/// `transferFrom`; ownership changes exactly once and `ownerOf` names the
/// winner (the owner parks the NFT at a sink process, see the fidelity
/// note in `core::standards::erc721`).
#[derive(Clone, Debug)]
pub struct Erc721Race {
    k: usize,
    initial: Erc721Token,
}

impl Erc721Race {
    /// Creates the race for `k` movers (owner `p_0`, sink `p_k`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        let owner = ProcessId::new(0);
        let mut token = Erc721Token::mint_to(k + 1, owner, 1);
        for i in 1..k {
            token.set_approval_for_all(owner, ProcessId::new(i), true);
        }
        Self { k, initial: token }
    }
}

impl Protocol for Erc721Race {
    type Shared = (Erc721Token, Vec<Option<u64>>);
    type Local = u8;

    fn processes(&self) -> usize {
        self.k
    }

    fn initial_shared(&self) -> Self::Shared {
        (self.initial.clone(), vec![None; self.k])
    }

    fn initial_local(&self, _p: ProcessId) -> u8 {
        0
    }

    fn proposal(&self, p: ProcessId) -> u64 {
        p.index() as u64 + 1
    }

    fn step(&self, shared: &mut Self::Shared, pc: &mut u8, p: ProcessId) -> Step {
        let (token, regs) = shared;
        let i = p.index();
        let nft = TokenId::new(0);
        let original = ProcessId::new(0);
        let sink = ProcessId::new(self.k);
        match *pc {
            0 => {
                regs[i] = Some(self.proposal(p));
                *pc = 1;
                Step::Continue
            }
            1 => {
                let target = if i == 0 { sink } else { p };
                let _ = token.transfer_from(p, original, target, nft);
                *pc = 2;
                Step::Continue
            }
            _ => {
                let current = token.owner_of(nft).expect("the NFT exists");
                // After my own attempt the owner cannot still be p0.
                let winner = if current == sink { 0 } else { current.index() };
                Step::Decided(regs.get(winner).copied().flatten().unwrap_or(BOTTOM))
            }
        }
    }

    fn describe_step(&self, _shared: &Self::Shared, pc: &u8, p: ProcessId) -> String {
        match *pc {
            0 => format!("{p}: write R[{}]", p.index()),
            1 => format!("{p}: transferFrom(nft0)"),
            _ => format!("{p}: read ownerOf(nft0) and decide"),
        }
    }

    fn step_bound(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{Explorer, Outcome};
    use crate::valence;

    #[test]
    fn erc777_race_verified_for_small_k() {
        for k in 1..=3 {
            let report = Explorer::new(&Erc777Race::new(k, 2)).run();
            assert!(
                matches!(report.outcome, Outcome::Verified),
                "k={k}: {:?}",
                report.outcome
            );
        }
    }

    #[test]
    fn erc721_race_verified_for_small_k() {
        for k in 1..=4 {
            let report = Explorer::new(&Erc721Race::new(k)).run();
            assert!(
                matches!(report.outcome, Outcome::Verified),
                "k={k}: {:?}",
                report.outcome
            );
        }
    }

    #[test]
    fn erc721_race_has_critical_configurations_on_the_nft_transfer() {
        let report = valence::analyze(&Erc721Race::new(2));
        assert!(!report.critical.is_empty());
        for critical in &report.critical {
            for (_, step, _) in &critical.pending {
                assert!(
                    step.contains("transferFrom"),
                    "decisive step should be the NFT transfer: {step}"
                );
            }
        }
    }

    #[test]
    fn erc777_balance_magnitude_is_irrelevant() {
        let report = Explorer::new(&Erc777Race::new(2, 9)).run();
        assert!(matches!(report.outcome, Outcome::Verified));
    }
}

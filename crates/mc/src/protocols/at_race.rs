//! Consensus from a `k`-shared asset transfer account, model-checked.

use tokensync_kat::{AtOp, AtSpec, OwnerMap};
use tokensync_spec::{AccountId, Amount, ObjectType, ProcessId};

use crate::protocol::{Protocol, Step};
use crate::protocols::alg1::BOTTOM;

/// The Guerraoui et al. lower-bound construction (`CN(k-AT) ≥ k`) as a step
/// machine: the `k` owners of account `a_0` (balance `B`) race to drain it
/// into per-process destination accounts `a_1 .. a_k`; the unique
/// destination holding `B` names the winner.
#[derive(Clone, Debug)]
pub struct AtRace {
    k: usize,
    spec: AtSpec,
    balance: Amount,
}

impl AtRace {
    /// Creates the race for `k` owners with shared balance `balance`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `balance == 0`.
    pub fn new(k: usize, balance: Amount) -> Self {
        assert!(k >= 1 && balance > 0);
        let mut owners = OwnerMap::new(k + 1);
        for i in 0..k {
            owners.add_owner(AccountId::new(0), ProcessId::new(i));
            owners.add_owner(AccountId::new(i + 1), ProcessId::new(i));
        }
        let mut balances = vec![0; k + 1];
        balances[0] = balance;
        Self {
            k,
            spec: AtSpec::new(owners, balances),
            balance,
        }
    }
}

/// Shared state: the AT balances plus the proposal registers.
pub type AtShared = (Vec<Amount>, Vec<Option<u64>>);

impl Protocol for AtRace {
    type Shared = AtShared;
    type Local = u8;

    fn processes(&self) -> usize {
        self.k
    }

    fn initial_shared(&self) -> AtShared {
        (self.spec.initial_state(), vec![None; self.k])
    }

    fn initial_local(&self, _p: ProcessId) -> u8 {
        0
    }

    fn proposal(&self, p: ProcessId) -> u64 {
        p.index() as u64 + 1
    }

    fn step(&self, shared: &mut AtShared, pc: &mut u8, p: ProcessId) -> Step {
        let (state, regs) = shared;
        let i = p.index();
        match *pc {
            0 => {
                regs[i] = Some(self.proposal(p));
                *pc = 1;
                Step::Continue
            }
            1 => {
                let op = AtOp::Transfer {
                    from: AccountId::new(0),
                    to: AccountId::new(i + 1),
                    value: self.balance,
                };
                let _ = self.spec.apply(state, p, &op);
                *pc = 2;
                Step::Continue
            }
            pc_val => {
                let j = (pc_val - 2) as usize;
                if j < self.k {
                    if state[j + 1] == self.balance {
                        return Step::Decided(regs[j].unwrap_or(BOTTOM));
                    }
                    *pc = pc_val + 1;
                    Step::Continue
                } else {
                    // Unreachable for correct runs: the scan always finds
                    // the winner because the scanner's own transfer attempt
                    // precedes it. Decide ⊥ so any gap is caught as an
                    // invalidity.
                    Step::Decided(BOTTOM)
                }
            }
        }
    }

    fn describe_step(&self, _shared: &AtShared, pc: &u8, p: ProcessId) -> String {
        match *pc {
            0 => format!("{p}: write R[{}]", p.index()),
            1 => format!("{p}: transfer(a0 → a{}, B)", p.index() + 1),
            pc_val => format!("{p}: read balance(a{})", (pc_val - 2) as usize + 1),
        }
    }

    fn step_bound(&self) -> usize {
        self.k + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{Explorer, Outcome};

    #[test]
    fn at_consensus_verified_for_small_k() {
        for k in 1..=3 {
            let report = Explorer::new(&AtRace::new(k, 2)).run();
            assert!(
                matches!(report.outcome, Outcome::Verified),
                "k={k}: {:?}",
                report.outcome
            );
        }
    }

    #[test]
    fn balance_magnitude_is_irrelevant() {
        let report = Explorer::new(&AtRace::new(2, 7)).run();
        assert!(matches!(report.outcome, Outcome::Verified));
    }
}

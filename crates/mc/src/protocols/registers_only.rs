//! A doomed register-only consensus attempt.
//!
//! Registers have consensus number 1 (FLP / Herlihy, recalled in
//! Section 3.1), so *every* register-only 2-process consensus protocol must
//! fail. The model checker cannot quantify over all protocols, but it can
//! refute representative attempts; [`MinRegisters`] is the classic
//! "write-then-scan, decide the minimum" attempt, and the explorer finds
//! its disagreement schedule instantly.

use tokensync_spec::ProcessId;

use crate::protocol::{Protocol, Step};

/// Write-then-scan register "consensus": each process publishes its
/// proposal in its own register, reads the other's, and decides the
/// minimum of what it saw. A solo-running process decides its own value;
/// a late process sees both and decides the minimum — disagreement.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinRegisters;

impl Protocol for MinRegisters {
    type Shared = [Option<u64>; 2];
    type Local = u8;

    fn processes(&self) -> usize {
        2
    }

    fn initial_shared(&self) -> [Option<u64>; 2] {
        [None, None]
    }

    fn initial_local(&self, _p: ProcessId) -> u8 {
        0
    }

    fn proposal(&self, p: ProcessId) -> u64 {
        p.index() as u64 + 1
    }

    fn step(&self, shared: &mut [Option<u64>; 2], pc: &mut u8, p: ProcessId) -> Step {
        let i = p.index();
        match *pc {
            0 => {
                shared[i] = Some(self.proposal(p));
                *pc = 1;
                Step::Continue
            }
            _ => {
                let mine = self.proposal(p);
                let other = shared[1 - i];
                Step::Decided(other.map_or(mine, |o| o.min(mine)))
            }
        }
    }

    fn describe_step(&self, _shared: &[Option<u64>; 2], pc: &u8, p: ProcessId) -> String {
        match *pc {
            0 => format!("{p}: write own register"),
            _ => format!("{p}: read peer register and decide"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{Explorer, Outcome, Violation};

    #[test]
    fn registers_cannot_solve_two_process_consensus() {
        let report = Explorer::new(&MinRegisters).run();
        match report.outcome {
            Outcome::Violated(Violation::Disagreement {
                ref values,
                ref schedule,
            }) => {
                assert_eq!(values, &vec![1, 2]);
                // The counterexample: p1 (proposal 2) runs solo and decides
                // 2; p0 then sees both and decides 1.
                assert!(!schedule.is_empty());
            }
            ref other => panic!("expected disagreement, got {other:?}"),
        }
    }
}

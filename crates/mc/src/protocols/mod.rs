//! Concrete protocols for the model checker.
//!
//! * [`TokenRace`] — Algorithm 1 of the paper as a step machine over an
//!   explicit ERC20 state, with constructors for every scenario of the
//!   evaluation: genuine synchronization states (verified), overreach
//!   beyond the state's level (violations found — the Theorem 3
//!   counterexamples), `U`-violated allowances (disagreement), and
//!   oversized allowances (the verbatim-algorithm validity gap).
//! * [`AtRace`] — consensus among the owners of a `k`-shared asset
//!   transfer account (Guerraoui et al.'s lower bound), verified on the
//!   same machinery.
//! * [`MinRegisters`] — a doomed register-only consensus attempt,
//!   exhibiting the FLP-grounded fact that registers cannot solve
//!   2-process consensus.

mod alg1;
mod at_race;
mod registers_only;
mod standards_race;

pub use alg1::{Mode, TokenRace};
pub use at_race::AtRace;
pub use registers_only::MinRegisters;
pub use standards_race::{Erc721Race, Erc777Race};

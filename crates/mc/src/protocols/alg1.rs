//! Algorithm 1 as a step machine for exhaustive checking.

use tokensync_core::erc20::Erc20State;
use tokensync_spec::{AccountId, Amount, ProcessId};

use crate::protocol::{Protocol, Step};

/// Sentinel decided when a register is read before being written (`⊥`):
/// the validity checker flags it because no process proposes it.
pub const BOTTOM: u64 = u64::MAX;

/// Race mode, mirroring
/// [`tokensync_core::token_consensus::RaceMode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Spenders transfer their full allowance; winners detected by zero
    /// allowance (the paper's pseudocode, verbatim).
    Verbatim,
    /// Spenders transfer `min(allowance, balance)`; winners detected by
    /// allowance decrease.
    Generalized,
}

/// Algorithm 1 over an explicit token state.
///
/// Participants are `p_0 .. p_{m-1}`; `p_0` owns the race account `a_0`.
/// The destination account is the extra account `a_m` (its owner takes no
/// steps). One atomic step = one shared-object operation, matching the
/// granularity of the paper's adversary.
#[derive(Clone, Debug)]
pub struct TokenRace {
    participants: usize,
    initial: Erc20State,
    account: AccountId,
    destination: AccountId,
    balance: Amount,
    /// `allowances[i]` is `A_{i+1}` of participant rank `i + 1`.
    allowances: Vec<Amount>,
    mode: Mode,
}

impl TokenRace {
    /// Builds the race over an explicit state for `participants` processes
    /// (rank 0 = owner of `a_0`).
    ///
    /// # Panics
    ///
    /// Panics if the state has fewer than `participants + 1` accounts (one
    /// extra account serves as the destination).
    pub fn from_state(initial: Erc20State, participants: usize, mode: Mode) -> Self {
        assert!(
            initial.accounts() > participants,
            "need an extra account as destination"
        );
        let account = AccountId::new(0);
        let destination = AccountId::new(participants);
        let balance = initial.balance(account);
        let allowances = (1..participants)
            .map(|i| initial.allowance(account, ProcessId::new(i)))
            .collect();
        Self {
            participants,
            initial,
            account,
            destination,
            balance,
            allowances,
            mode,
        }
    }

    /// A genuine `k`-synchronization state: balance 2 on `a_0`, spenders
    /// with allowance 2 each (pairwise `2 + 2 > 2`, and `A_i ≤ B`), in
    /// [`Mode::Generalized`]. Theorem 2 instance — the explorer verifies
    /// it.
    pub fn in_sync_state(k: usize) -> Self {
        Self::in_sync_state_with_mode(k, Mode::Generalized)
    }

    /// As [`TokenRace::in_sync_state`] with an explicit mode (the verbatim
    /// algorithm is also correct here because `A_i ≤ B`).
    pub fn in_sync_state_with_mode(k: usize, mode: Mode) -> Self {
        assert!(k >= 1);
        let n = k + 1;
        let mut balances = vec![0; n];
        balances[0] = 2;
        let mut q = Erc20State::from_balances(balances);
        for i in 1..k {
            q.set_allowance(AccountId::new(0), ProcessId::new(i), 2);
        }
        Self::from_state(q, k, mode)
    }

    /// Overreach: the state supports `k` spenders but `k + extra`
    /// processes run the (naively extended) algorithm — the extra
    /// participants have zero allowance. Theorem 3's boundary: the
    /// explorer finds agreement/validity violations.
    pub fn overreach(k: usize, extra: usize, mode: Mode) -> Self {
        assert!(k >= 1 && extra >= 1);
        let m = k + extra;
        let n = m + 1;
        let mut balances = vec![0; n];
        balances[0] = 2;
        let mut q = Erc20State::from_balances(balances);
        for i in 1..k {
            q.set_allowance(AccountId::new(0), ProcessId::new(i), 2);
        }
        Self::from_state(q, m, mode)
    }

    /// A `Q_3` state where predicate `U` fails: balance 2, two spenders
    /// with allowance 1 each (`1 + 1 = 2`, not `> 2`) — both withdrawals
    /// fit, two winners are possible, and the explorer finds the
    /// disagreement.
    pub fn with_u_violated() -> Self {
        let mut q = Erc20State::from_balances(vec![2, 0, 0, 0]);
        q.set_allowance(AccountId::new(0), ProcessId::new(1), 1);
        q.set_allowance(AccountId::new(0), ProcessId::new(2), 1);
        Self::from_state(q, 3, Mode::Generalized)
    }

    /// A literal `S_2` state (`U` holds: `|σ| = 2`, balance positive) whose
    /// spender allowance *exceeds* the balance: balance 1, allowance 3.
    /// The verbatim algorithm's `transferFrom(3)` can never succeed, and a
    /// spender scheduled first decides `⊥` — the validity gap the
    /// generalized mode closes.
    pub fn verbatim_oversized() -> Self {
        let mut q = Erc20State::from_balances(vec![1, 0, 0]);
        q.set_allowance(AccountId::new(0), ProcessId::new(1), 3);
        Self::from_state(q, 2, Mode::Verbatim)
    }

    /// Same state as [`TokenRace::verbatim_oversized`] but run in
    /// generalized mode — verified.
    pub fn generalized_oversized() -> Self {
        let mut q = Erc20State::from_balances(vec![1, 0, 0]);
        q.set_allowance(AccountId::new(0), ProcessId::new(1), 3);
        Self::from_state(q, 2, Mode::Generalized)
    }

    fn rank(&self, p: ProcessId) -> usize {
        debug_assert!(p.index() < self.participants);
        p.index()
    }
}

/// Shared state: the token plus the proposal registers `R[0..m)`.
pub type RaceShared = (Erc20State, Vec<Option<u64>>);

impl Protocol for TokenRace {
    type Shared = RaceShared;
    type Local = u8;

    fn processes(&self) -> usize {
        self.participants
    }

    fn initial_shared(&self) -> RaceShared {
        (self.initial.clone(), vec![None; self.participants])
    }

    fn initial_local(&self, _p: ProcessId) -> u8 {
        0
    }

    fn proposal(&self, p: ProcessId) -> u64 {
        p.index() as u64 + 1
    }

    fn step(&self, shared: &mut RaceShared, pc: &mut u8, p: ProcessId) -> Step {
        let (state, regs) = shared;
        let r = self.rank(p);
        match *pc {
            // Line 7: R[i].write(v).
            0 => {
                regs[r] = Some(self.proposal(p));
                *pc = 1;
                Step::Continue
            }
            // Lines 8–10: the race operation.
            1 => {
                if r == 0 {
                    let _ = state.transfer(p, self.destination, self.balance);
                } else {
                    let granted = self.allowances[r - 1];
                    let amount = match self.mode {
                        Mode::Verbatim => granted,
                        Mode::Generalized => granted.min(self.balance),
                    };
                    let _ = state.transfer_from(p, self.account, self.destination, amount);
                }
                *pc = 2;
                Step::Continue
            }
            // Lines 11–13: scan allowances of p_1 .. p_{m-1}; line 14:
            // fall through to R[0].
            pc_val => {
                let j = (pc_val - 2) as usize + 1;
                if j < self.participants {
                    let spender = ProcessId::new(j);
                    let current = state.allowance(self.account, spender);
                    let initial = self.allowances[j - 1];
                    let won = match self.mode {
                        Mode::Verbatim => current == 0,
                        Mode::Generalized => current < initial,
                    };
                    if won {
                        return Step::Decided(regs[j].unwrap_or(BOTTOM));
                    }
                    *pc = pc_val + 1;
                    Step::Continue
                } else {
                    Step::Decided(regs[0].unwrap_or(BOTTOM))
                }
            }
        }
    }

    fn describe_step(&self, _shared: &RaceShared, pc: &u8, p: ProcessId) -> String {
        let r = p.index();
        match *pc {
            0 => format!("{p}: write R[{r}]"),
            1 => {
                if r == 0 {
                    format!("{p}: transfer(a_dest, B) [owner race]")
                } else {
                    format!("{p}: transferFrom(a0, a_dest, A_{r}) [spender race]")
                }
            }
            pc_val => {
                let j = (pc_val - 2) as usize + 1;
                if j < self.participants {
                    format!("{p}: read allowance(a0, p{j})")
                } else {
                    format!("{p}: read R[0] and decide")
                }
            }
        }
    }

    fn step_bound(&self) -> usize {
        self.participants + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{Explorer, Outcome, Violation};

    #[test]
    fn sync_states_verified_exhaustively_generalized() {
        for k in 1..=3 {
            let report = Explorer::new(&TokenRace::in_sync_state(k)).run();
            assert!(
                matches!(report.outcome, Outcome::Verified),
                "k={k}: {:?}",
                report.outcome
            );
        }
    }

    #[test]
    fn sync_states_verified_exhaustively_verbatim() {
        for k in 1..=3 {
            let report =
                Explorer::new(&TokenRace::in_sync_state_with_mode(k, Mode::Verbatim)).run();
            assert!(
                matches!(report.outcome, Outcome::Verified),
                "k={k}: {:?}",
                report.outcome
            );
        }
    }

    #[test]
    fn overreach_violates() {
        // k = 2 spenders supported, 3 processes racing: some interleaving
        // breaks agreement or validity.
        let report = Explorer::new(&TokenRace::overreach(2, 1, Mode::Verbatim)).run();
        assert!(report.violation().is_some(), "{:?}", report.outcome);
        let report = Explorer::new(&TokenRace::overreach(2, 1, Mode::Generalized)).run();
        assert!(report.violation().is_some(), "{:?}", report.outcome);
    }

    #[test]
    fn u_violation_breaks_agreement() {
        let report = Explorer::new(&TokenRace::with_u_violated()).run();
        match report.outcome {
            Outcome::Violated(Violation::Disagreement { ref values, .. }) => {
                assert!(values.len() >= 2);
            }
            ref other => panic!("expected disagreement, got {other:?}"),
        }
    }

    #[test]
    fn verbatim_oversized_allowance_breaks_validity() {
        let report = Explorer::new(&TokenRace::verbatim_oversized()).run();
        match report.outcome {
            Outcome::Violated(Violation::Invalidity { value, .. }) => {
                assert_eq!(value, BOTTOM, "the spender reads an unwritten register");
            }
            ref other => panic!("expected invalidity, got {other:?}"),
        }
    }

    #[test]
    fn generalized_mode_closes_the_gap() {
        let report = Explorer::new(&TokenRace::generalized_oversized()).run();
        assert!(
            matches!(report.outcome, Outcome::Verified),
            "{:?}",
            report.outcome
        );
    }

    #[test]
    fn violation_schedules_replay() {
        // The reported schedule, replayed step by step, reproduces the
        // violation.
        let protocol = TokenRace::with_u_violated();
        let report = Explorer::new(&protocol).run();
        let violation = report.violation().expect("violation expected").clone();
        let mut config = crate::protocol::Config::initial(&protocol);
        for p in violation.schedule() {
            config.advance(&protocol, *p);
        }
        let decided: Vec<u64> = config.decided.iter().filter_map(|d| *d).collect();
        let mut distinct = decided.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() >= 2, "replay did not reproduce: {decided:?}");
    }
}

//! Mechanized commutativity analysis of ERC20 operation pairs — the case
//! analysis of the Theorem 3 proof, checked exhaustively over enumerated
//! states.
//!
//! The proof of Theorem 3 argues that at a critical configuration the two
//! decisive pending operations must (a) not commute and (b) not be
//! (semantically) read-only — and then enumerates which ERC20 operation
//! pairs can be in that position: only *withdrawals racing on the same
//! source account* and *approve racing a transferFrom of the approved
//! spender on the same account* (Cases 1–4, Figure 1a/1b). This module
//! verifies that catalog: it classifies **every** ordered pair of
//! operations by **every** pair of distinct processes on **every** state of
//! a small universe, and checks that each genuine conflict is explained by
//! one of the two paper cases.

use std::collections::BTreeMap;

use tokensync_core::erc20::{Erc20Op, Erc20Spec, Erc20State};
use tokensync_spec::{AccountId, ObjectType, ProcessId};

/// Classification of an ordered operation pair at a state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PairClass {
    /// Both orders yield identical states and identical responses — the
    /// commuting case of the proof (indistinguishable to every process).
    Commute,
    /// At least one operation leaves the state unchanged at `q` — the
    /// read-only case of the proof.
    ReadOnly,
    /// Neither commuting nor read-only: a genuine conflict, which must be
    /// one of the paper's catalogued cases.
    Conflict,
}

/// The paper's catalog of genuine conflicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictKind {
    /// Two withdrawing operations (`transfer`/`transferFrom`) with the same
    /// source account (Cases 1–3: the balance or an allowance only covers
    /// one of them, or the same allowance is consumed).
    SameSourceWithdrawal,
    /// An `approve` by an account owner racing a `transferFrom` of the
    /// *same spender* on the *same account* (Case 4: the allowance written
    /// by `approve` and consumed by `transferFrom` do not commute).
    ApproveSpenderRace,
}

/// Classifies the ordered pair `(p1 doing o1, p2 doing o2)` at `state`
/// for **any** sequential object type — the generic machinery behind the
/// ERC20 sweep, reused by the ERC721/ERC1155 footprint cross-checks
/// (`tests/standards_footprints.rs`).
pub fn classify_pair_for<S: ObjectType>(
    spec: &S,
    state: &S::State,
    (p1, o1): (ProcessId, &S::Op),
    (p2, o2): (ProcessId, &S::Op),
) -> PairClass {
    if spec.is_read_only(state, p1, o1) || spec.is_read_only(state, p2, o2) {
        return PairClass::ReadOnly;
    }
    // Order A: o1 then o2.
    let (s1, r1_a) = spec.applied(state, p1, o1);
    let (s_a, r2_a) = spec.applied(&s1, p2, o2);
    // Order B: o2 then o1.
    let (s2, r2_b) = spec.applied(state, p2, o2);
    let (s_b, r1_b) = spec.applied(&s2, p1, o1);
    if s_a == s_b && r1_a == r1_b && r2_a == r2_b {
        PairClass::Commute
    } else {
        PairClass::Conflict
    }
}

/// Classifies the ordered pair `(p1 doing o1, p2 doing o2)` at `state`.
pub fn classify_pair(
    spec: &Erc20Spec,
    state: &Erc20State,
    (p1, o1): (ProcessId, &Erc20Op),
    (p2, o2): (ProcessId, &Erc20Op),
) -> PairClass {
    classify_pair_for(spec, state, (p1, o1), (p2, o2))
}

/// The source account an operation withdraws from, if it is a withdrawal.
fn withdrawal_source(p: ProcessId, op: &Erc20Op) -> Option<AccountId> {
    match op {
        Erc20Op::Transfer { .. } => Some(p.own_account()),
        Erc20Op::TransferFrom { from, .. } => Some(*from),
        _ => None,
    }
}

/// Explains a conflict through the paper's catalog, or returns `None` if it
/// fits neither case (the completeness check asserts this never happens).
pub fn explain_conflict(
    (p1, o1): (ProcessId, &Erc20Op),
    (p2, o2): (ProcessId, &Erc20Op),
) -> Option<ConflictKind> {
    if let (Some(a1), Some(a2)) = (withdrawal_source(p1, o1), withdrawal_source(p2, o2)) {
        if a1 == a2 {
            return Some(ConflictKind::SameSourceWithdrawal);
        }
    }
    let approve_vs_spend = |(pa, oa): (ProcessId, &Erc20Op), (pb, ob): (ProcessId, &Erc20Op)| {
        if let (Erc20Op::Approve { spender, .. }, Erc20Op::TransferFrom { from, .. }) = (oa, ob) {
            *spender == pb && *from == pa.own_account()
        } else {
            false
        }
    };
    if approve_vs_spend((p1, o1), (p2, o2)) || approve_vs_spend((p2, o2), (p1, o1)) {
        return Some(ConflictKind::ApproveSpenderRace);
    }
    None
}

/// Aggregate counts for one pair of operation kinds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PairCounts {
    /// Instances examined.
    pub total: usize,
    /// Classified [`PairClass::Commute`].
    pub commute: usize,
    /// Classified [`PairClass::ReadOnly`].
    pub read_only: usize,
    /// Classified [`PairClass::Conflict`].
    pub conflict: usize,
}

/// Result of sweeping all pairs over a state universe.
#[derive(Clone, Debug, Default)]
pub struct CommuteReport {
    /// Counts keyed by `(kind(o1), kind(o2))` with kinds ordered, so the
    /// table is triangular.
    pub by_kind: BTreeMap<(&'static str, &'static str), PairCounts>,
    /// Conflicts not explained by the paper's catalog (must stay empty —
    /// this is the completeness of the Theorem 3 case analysis).
    pub unexplained: Vec<String>,
    /// States examined.
    pub states: usize,
}

/// Short kind tag of an operation (for the report table).
pub fn op_kind(op: &Erc20Op) -> &'static str {
    match op {
        Erc20Op::Transfer { .. } => "transfer",
        Erc20Op::TransferFrom { .. } => "transferFrom",
        Erc20Op::Approve { .. } => "approve",
        Erc20Op::BalanceOf { .. } => "balanceOf",
        Erc20Op::Allowance { .. } => "allowance",
        Erc20Op::TotalSupply => "totalSupply",
    }
}

/// All operations over `n` accounts with values drawn from `values`.
pub fn op_menu(n: usize, values: &[u64]) -> Vec<Erc20Op> {
    let mut ops = vec![Erc20Op::TotalSupply];
    for a in 0..n {
        ops.push(Erc20Op::BalanceOf {
            account: AccountId::new(a),
        });
        for p in 0..n {
            ops.push(Erc20Op::Allowance {
                account: AccountId::new(a),
                spender: ProcessId::new(p),
            });
        }
        for &v in values {
            ops.push(Erc20Op::Transfer {
                to: AccountId::new(a),
                value: v,
            });
            ops.push(Erc20Op::Approve {
                spender: ProcessId::new(a),
                value: v,
            });
            for b in 0..n {
                ops.push(Erc20Op::TransferFrom {
                    from: AccountId::new(a),
                    to: AccountId::new(b),
                    value: v,
                });
            }
        }
    }
    ops
}

/// Sweeps every ordered pair of operations by every ordered pair of
/// distinct processes over every state in `states`, classifying each
/// instance and validating the conflict catalog.
pub fn analyze_states<'a, I>(n: usize, states: I, values: &[u64]) -> CommuteReport
where
    I: IntoIterator<Item = &'a Erc20State>,
{
    let spec = Erc20Spec::new(Erc20State::new(0));
    let ops = op_menu(n, values);
    let mut report = CommuteReport::default();
    for state in states {
        report.states += 1;
        for p1 in 0..n {
            for p2 in 0..n {
                if p1 == p2 {
                    continue;
                }
                let (p1, p2) = (ProcessId::new(p1), ProcessId::new(p2));
                for o1 in &ops {
                    for o2 in &ops {
                        let class = classify_pair(&spec, state, (p1, o1), (p2, o2));
                        let key = ordered_kinds(o1, o2);
                        let counts = report.by_kind.entry(key).or_default();
                        counts.total += 1;
                        match class {
                            PairClass::Commute => counts.commute += 1,
                            PairClass::ReadOnly => counts.read_only += 1,
                            PairClass::Conflict => {
                                counts.conflict += 1;
                                if explain_conflict((p1, o1), (p2, o2)).is_none()
                                    && report.unexplained.len() < 16
                                {
                                    report.unexplained.push(format!(
                                        "state {state:?}: {p1}:{o1:?} vs {p2}:{o2:?}"
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    report
}

fn ordered_kinds(o1: &Erc20Op, o2: &Erc20Op) -> (&'static str, &'static str) {
    let (a, b) = (op_kind(o1), op_kind(o2));
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_states;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn reads_classified_read_only() {
        let spec = Erc20Spec::new(Erc20State::new(0));
        let q = Erc20State::from_balances(vec![3, 3]);
        let class = classify_pair(
            &spec,
            &q,
            (p(0), &Erc20Op::TotalSupply),
            (p(1), &Erc20Op::Transfer { to: a(0), value: 1 }),
        );
        assert_eq!(class, PairClass::ReadOnly);
    }

    #[test]
    fn disjoint_transfers_commute() {
        let spec = Erc20Spec::new(Erc20State::new(0));
        let q = Erc20State::from_balances(vec![3, 3]);
        let class = classify_pair(
            &spec,
            &q,
            (p(0), &Erc20Op::Transfer { to: a(1), value: 1 }),
            (p(1), &Erc20Op::Transfer { to: a(0), value: 1 }),
        );
        assert_eq!(class, PairClass::Commute);
    }

    #[test]
    fn tight_balance_transfer_from_race_conflicts() {
        // Case 2 of the proof: both spenders enabled, balance covers one.
        let spec = Erc20Spec::new(Erc20State::new(0));
        let mut q = Erc20State::from_balances(vec![2, 0, 0]);
        q.set_allowance(a(0), p(1), 2);
        q.set_allowance(a(0), p(2), 2);
        let o = |to: usize| Erc20Op::TransferFrom {
            from: a(0),
            to: a(to),
            value: 2,
        };
        let class = classify_pair(&spec, &q, (p(1), &o(1)), (p(2), &o(2)));
        assert_eq!(class, PairClass::Conflict);
        assert_eq!(
            explain_conflict((p(1), &o(1)), (p(2), &o(2))),
            Some(ConflictKind::SameSourceWithdrawal)
        );
    }

    #[test]
    fn approve_vs_enabled_transfer_from_conflicts() {
        // Case 4 of the proof, second sub-case: the spender is already
        // enabled; approve rewrites the allowance the transferFrom
        // consumes.
        let spec = Erc20Spec::new(Erc20State::new(0));
        let mut q = Erc20State::from_balances(vec![5, 0]);
        q.set_allowance(a(0), p(1), 3);
        let approve = Erc20Op::Approve {
            spender: p(1),
            value: 5,
        };
        let spend = Erc20Op::TransferFrom {
            from: a(0),
            to: a(1),
            value: 2,
        };
        let class = classify_pair(&spec, &q, (p(0), &approve), (p(1), &spend));
        assert_eq!(class, PairClass::Conflict);
        assert_eq!(
            explain_conflict((p(0), &approve), (p(1), &spend)),
            Some(ConflictKind::ApproveSpenderRace)
        );
    }

    #[test]
    fn approve_pairs_never_conflict_in_sweep() {
        let states: Vec<Erc20State> = enumerate_states(2, 2, 2).collect();
        let report = analyze_states(2, &states, &[0, 1, 2]);
        let counts = report.by_kind[&("approve", "approve")];
        assert_eq!(counts.conflict, 0, "approve/approve must always commute");
        let counts = report.by_kind[&("approve", "transfer")];
        assert_eq!(counts.conflict, 0, "approve/transfer must always commute");
    }

    #[test]
    fn conflict_catalog_is_complete_on_small_universe() {
        // The heart of Theorem 3's case analysis: every genuine conflict in
        // the swept universe is one of the two catalogued shapes.
        let states: Vec<Erc20State> = enumerate_states(2, 2, 2).collect();
        let report = analyze_states(2, &states, &[0, 1, 2]);
        assert!(
            report.unexplained.is_empty(),
            "unexplained conflicts: {:#?}",
            report.unexplained
        );
        // And conflicts do exist (the sweep is not vacuous).
        let total_conflicts: usize = report.by_kind.values().map(|c| c.conflict).sum();
        assert!(total_conflicts > 0);
    }
}

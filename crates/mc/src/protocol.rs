//! Protocols as step machines over explicit state.

use std::fmt::Debug;
use std::hash::Hash;

use tokensync_spec::ProcessId;

/// Result of one atomic step of a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// The process has more steps to take.
    Continue,
    /// The process decided `value` and halts.
    Decided(u64),
}

/// A distributed protocol whose every instruction is one atomic access to
/// the shared state — the granularity at which the adversarial scheduler of
/// the wait-free model interleaves processes.
///
/// Implementations must be deterministic: given the same shared and local
/// state, `step` must always produce the same successor. All
/// nondeterminism lives in the scheduler, which the [`Explorer`]
/// exhausts.
///
/// [`Explorer`]: crate::Explorer
pub trait Protocol {
    /// Shared-object state (e.g. a token state plus proposal registers).
    type Shared: Clone + Eq + Hash + Debug;
    /// Per-process local state (program counter and scratch).
    type Local: Clone + Eq + Hash + Debug;

    /// Number of participating processes.
    fn processes(&self) -> usize;

    /// Initial shared state.
    fn initial_shared(&self) -> Self::Shared;

    /// Initial local state of `p`.
    fn initial_local(&self, p: ProcessId) -> Self::Local;

    /// Executes one atomic step of `p`.
    fn step(&self, shared: &mut Self::Shared, local: &mut Self::Local, p: ProcessId) -> Step;

    /// The input (proposal) of process `p` — used for validity checking.
    fn proposal(&self, p: ProcessId) -> u64;

    /// Human-readable description of the *next* step `p` would take
    /// (for critical-configuration reports).
    fn describe_step(&self, _shared: &Self::Shared, _local: &Self::Local, p: ProcessId) -> String {
        format!("step of {p}")
    }

    /// Upper bound on the number of steps any process may take before
    /// deciding; exceeding it is reported as a wait-freedom violation.
    ///
    /// Default: 64 — generous for the bounded algorithms studied here.
    fn step_bound(&self) -> usize {
        64
    }
}

/// A global configuration: shared state, per-process local states, and the
/// decisions taken so far.
pub struct Config<P: Protocol> {
    /// Shared-object state.
    pub shared: P::Shared,
    /// Per-process local state.
    pub locals: Vec<P::Local>,
    /// Per-process decision (None = still running).
    pub decided: Vec<Option<u64>>,
    /// Per-process step counters (for the wait-freedom bound).
    pub steps: Vec<usize>,
}

// Manual impls: the derives would wrongly require `P` itself to satisfy
// the bounds rather than `P::Shared` / `P::Local`.
impl<P: Protocol> Clone for Config<P> {
    fn clone(&self) -> Self {
        Self {
            shared: self.shared.clone(),
            locals: self.locals.clone(),
            decided: self.decided.clone(),
            steps: self.steps.clone(),
        }
    }
}

impl<P: Protocol> PartialEq for Config<P> {
    fn eq(&self, other: &Self) -> bool {
        self.shared == other.shared
            && self.locals == other.locals
            && self.decided == other.decided
            && self.steps == other.steps
    }
}

impl<P: Protocol> Eq for Config<P> {}

impl<P: Protocol> std::hash::Hash for Config<P> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.shared.hash(state);
        self.locals.hash(state);
        self.decided.hash(state);
        self.steps.hash(state);
    }
}

impl<P: Protocol> Debug for Config<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Config")
            .field("shared", &self.shared)
            .field("locals", &self.locals)
            .field("decided", &self.decided)
            .finish()
    }
}

impl<P: Protocol> Config<P> {
    /// The initial configuration of `protocol`.
    pub fn initial(protocol: &P) -> Self {
        let n = protocol.processes();
        Self {
            shared: protocol.initial_shared(),
            locals: (0..n)
                .map(|i| protocol.initial_local(ProcessId::new(i)))
                .collect(),
            decided: vec![None; n],
            steps: vec![0; n],
        }
    }

    /// Processes that have not yet decided.
    pub fn live(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.decided
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(i, _)| ProcessId::new(i))
    }

    /// Whether every process has decided.
    pub fn all_decided(&self) -> bool {
        self.decided.iter().all(Option::is_some)
    }

    /// Advances `p` by one step, returning the decision if it decided.
    ///
    /// # Panics
    ///
    /// Panics if `p` already decided.
    pub fn advance(&mut self, protocol: &P, p: ProcessId) -> Option<u64> {
        assert!(
            self.decided[p.index()].is_none(),
            "{p} already decided; cannot step"
        );
        self.steps[p.index()] += 1;
        match protocol.step(&mut self.shared, &mut self.locals[p.index()], p) {
            Step::Continue => None,
            Step::Decided(v) => {
                self.decided[p.index()] = Some(v);
                Some(v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each process decides its own proposal after two steps — not a
    /// consensus protocol, but enough to exercise the plumbing.
    struct TwoStep {
        n: usize,
    }

    impl Protocol for TwoStep {
        type Shared = ();
        type Local = u8;
        fn processes(&self) -> usize {
            self.n
        }
        fn initial_shared(&self) {}
        fn initial_local(&self, _p: ProcessId) -> u8 {
            0
        }
        fn step(&self, _s: &mut (), local: &mut u8, p: ProcessId) -> Step {
            *local += 1;
            if *local == 2 {
                Step::Decided(self.proposal(p))
            } else {
                Step::Continue
            }
        }
        fn proposal(&self, p: ProcessId) -> u64 {
            p.index() as u64 + 10
        }
    }

    #[test]
    fn config_advance_tracks_decisions() {
        let protocol = TwoStep { n: 2 };
        let mut cfg = Config::initial(&protocol);
        assert_eq!(cfg.live().count(), 2);
        assert_eq!(cfg.advance(&protocol, ProcessId::new(0)), None);
        assert_eq!(cfg.advance(&protocol, ProcessId::new(0)), Some(10));
        assert!(!cfg.all_decided());
        assert_eq!(cfg.live().collect::<Vec<_>>(), vec![ProcessId::new(1)]);
        cfg.advance(&protocol, ProcessId::new(1));
        cfg.advance(&protocol, ProcessId::new(1));
        assert!(cfg.all_decided());
        assert_eq!(cfg.steps, vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "already decided")]
    fn stepping_decided_process_panics() {
        let protocol = TwoStep { n: 1 };
        let mut cfg = Config::initial(&protocol);
        let p = ProcessId::new(0);
        cfg.advance(&protocol, p);
        cfg.advance(&protocol, p);
        cfg.advance(&protocol, p);
    }
}

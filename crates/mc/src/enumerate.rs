//! Small-universe enumeration of the ERC20 state space and the census of
//! the partition `{Q_k}` and synchronization states `S_k`.

use tokensync_core::analysis::{consensus_number_bounds, is_sync_state_for, partition_index};
use tokensync_core::erc20::Erc20State;
use tokensync_spec::{AccountId, ProcessId};

/// Iterates over **every** ERC20 state with `n` accounts, balances in
/// `0..=max_balance` and allowances in `0..=max_allowance`.
///
/// The state space has `(max_balance+1)^n · (max_allowance+1)^(n²)`
/// elements — keep the parameters small (the census experiments use
/// `n ≤ 3` with bounds ≤ 2).
pub fn enumerate_states(
    n: usize,
    max_balance: u64,
    max_allowance: u64,
) -> impl Iterator<Item = Erc20State> {
    let balance_combos = (max_balance + 1).pow(n as u32);
    let allowance_cells = n * n;
    let allowance_combos = (max_allowance + 1).pow(allowance_cells as u32);
    (0..balance_combos).flat_map(move |b_index| {
        (0..allowance_combos).map(move |a_index| {
            let mut state = Erc20State::new(n);
            let mut b = b_index;
            for i in 0..n {
                state.set_balance(AccountId::new(i), b % (max_balance + 1));
                b /= max_balance + 1;
            }
            let mut a = a_index;
            for i in 0..n {
                for j in 0..n {
                    state.set_allowance(
                        AccountId::new(i),
                        ProcessId::new(j),
                        a % (max_allowance + 1),
                    );
                    a /= max_allowance + 1;
                }
            }
            state
        })
    })
}

/// One row of the census: statistics for partition class `Q_k`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CensusRow {
    /// The synchronization level `k`.
    pub k: usize,
    /// `|Q_k|`: states whose maximum enabled-spender count is exactly `k`.
    pub q_states: usize,
    /// States of `Q_k` whose consensus-number bounds are exact (lower =
    /// upper = k): the states where equation (17) pins `CN` precisely.
    pub exact_states: usize,
    /// States belonging to the paper's `S_k` (equation (14)) — some
    /// account has exactly `k` enabled spenders *and* satisfies `U`.
    pub s_states: usize,
}

/// Full census of the universe: per-`k` statistics plus totals.
#[derive(Clone, Debug, Default)]
pub struct Census {
    /// Rows indexed by `k - 1`.
    pub rows: Vec<CensusRow>,
    /// Total states enumerated.
    pub total: usize,
}

/// Sweeps the whole universe and classifies every state.
pub fn census(n: usize, max_balance: u64, max_allowance: u64) -> Census {
    let mut rows: Vec<CensusRow> = (1..=n)
        .map(|k| CensusRow {
            k,
            ..CensusRow::default()
        })
        .collect();
    let mut total = 0;
    for state in enumerate_states(n, max_balance, max_allowance) {
        total += 1;
        let k = partition_index(&state);
        let row = &mut rows[k - 1];
        row.q_states += 1;
        if consensus_number_bounds(&state).is_exact() {
            row.exact_states += 1;
        }
        for (ki, r) in rows.iter_mut().enumerate() {
            if is_sync_state_for(&state, ki + 1) {
                r.s_states += 1;
            }
        }
    }
    Census { rows, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_size_matches_formula() {
        let n = 2;
        let count = enumerate_states(n, 1, 1).count();
        // (1+1)^2 balances × (1+1)^4 allowances = 4 × 16.
        assert_eq!(count, 64);
    }

    #[test]
    fn enumeration_yields_distinct_states() {
        use std::collections::HashSet;
        let states: HashSet<Erc20State> = enumerate_states(2, 1, 1).collect();
        assert_eq!(states.len(), 64);
    }

    #[test]
    fn census_partitions_the_universe() {
        let c = census(2, 2, 2);
        assert_eq!(c.total, 9 * 81);
        let sum: usize = c.rows.iter().map(|r| r.q_states).sum();
        assert_eq!(sum, c.total, "Q_k classes must partition Q");
    }

    #[test]
    fn census_q1_contains_all_zero_balance_states() {
        // With all balances zero, every account has only its owner enabled.
        let c = census(2, 0, 2);
        assert_eq!(c.rows[0].q_states, c.total);
        assert_eq!(c.rows[1].q_states, 0);
        // And none is a (k ≥ 1) synchronization state: U needs balance > 0.
        assert_eq!(c.rows[0].s_states, 0);
    }

    #[test]
    fn sk_is_subset_of_union_of_lower_classes() {
        // S_k membership requires an account with exactly k spenders, which
        // forces partition index ≥ k.
        for state in enumerate_states(2, 2, 1) {
            for k in 1..=2 {
                if is_sync_state_for(&state, k) {
                    assert!(partition_index(&state) >= k);
                }
            }
        }
    }

    #[test]
    fn exact_states_subset_of_q_states() {
        let c = census(2, 2, 2);
        for row in &c.rows {
            assert!(row.exact_states <= row.q_states);
        }
        // There are exact states at every level in this universe.
        assert!(c.rows.iter().all(|r| r.q_states == 0 || r.exact_states > 0));
    }
}

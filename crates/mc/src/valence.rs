//! Valency analysis: bivalent and critical configurations.
//!
//! The proof of Theorem 3 is a valency argument: every wait-free consensus
//! protocol has a *critical* configuration — bivalent, but every single
//! step commits the outcome — and the case analysis of what the pending
//! operations at a critical configuration can be (Figure 1a/1b) yields the
//! contradiction. This module computes valencies exactly on concrete
//! protocol instances and reports their critical configurations, letting
//! us *see* the paper's argument on Algorithm 1 instances: the decisive
//! pending operations are precisely the token-mutating race operations on
//! the shared account.

use std::collections::{BTreeSet, HashMap};

use tokensync_spec::ProcessId;

use crate::protocol::{Config, Protocol};

/// Valency report for one protocol instance.
#[derive(Clone, Debug)]
pub struct ValenceReport {
    /// Total reachable configurations.
    pub configs: usize,
    /// Configurations from which at least two different decisions are
    /// reachable.
    pub bivalent: usize,
    /// Configurations committed to a single decision.
    pub univalent: usize,
    /// The critical configurations found.
    pub critical: Vec<CriticalConfig>,
}

/// A critical configuration: bivalent, with every enabled step leading to a
/// univalent successor.
#[derive(Clone, Debug)]
pub struct CriticalConfig {
    /// The decisions reachable from this configuration.
    pub valence: Vec<u64>,
    /// For each live process: a description of its pending operation and
    /// the unique decision its step commits to.
    pub pending: Vec<(ProcessId, String, u64)>,
    /// A schedule reaching this configuration from the initial one.
    pub schedule: Vec<ProcessId>,
}

/// Computes exact valencies of every reachable configuration of `protocol`
/// and extracts the critical configurations.
///
/// Assumes the protocol satisfies agreement and wait-freedom on this
/// instance (run the [`Explorer`](crate::Explorer) first); valencies are
/// then well defined.
///
/// # Panics
///
/// Panics if a configuration with no live processes has inconsistent
/// decisions (i.e. the protocol violates agreement).
pub fn analyze<P: Protocol>(protocol: &P) -> ValenceReport {
    let mut memo: HashMap<Config<P>, BTreeSet<u64>> = HashMap::new();
    let initial = Config::initial(protocol);
    valence_of(protocol, &initial, &mut memo);

    let mut report = ValenceReport {
        configs: 0,
        bivalent: 0,
        univalent: 0,
        critical: Vec::new(),
    };

    // Walk all reachable configs to classify them and find criticals with a
    // witness schedule; valencies are computed on demand (the first pass
    // shortcuts at configurations that already carry a decision).
    let mut schedule = Vec::new();
    let mut seen: std::collections::HashSet<Config<P>> = Default::default();
    walk(
        protocol,
        initial,
        &mut memo,
        &mut report,
        &mut schedule,
        &mut seen,
    );
    report.configs = report.bivalent + report.univalent;
    report
}

fn valence_of<P: Protocol>(
    protocol: &P,
    config: &Config<P>,
    memo: &mut HashMap<Config<P>, BTreeSet<u64>>,
) -> BTreeSet<u64> {
    if let Some(v) = memo.get(config) {
        return v.clone();
    }
    // Any decision already taken pins the valence (agreement assumed).
    if let Some(v) = config.decided.iter().flatten().next() {
        let set: BTreeSet<u64> = [*v].into();
        memo.insert(config.clone(), set.clone());
        return set;
    }
    // Seed the memo to guard against cycles (a cycle with no decisions
    // contributes nothing on its own).
    memo.insert(config.clone(), BTreeSet::new());
    let mut set = BTreeSet::new();
    for p in config.live().collect::<Vec<_>>() {
        let mut next = config.clone();
        next.advance(protocol, p);
        set.extend(valence_of(protocol, &next, memo));
    }
    memo.insert(config.clone(), set.clone());
    set
}

fn walk<P: Protocol>(
    protocol: &P,
    config: Config<P>,
    memo: &mut HashMap<Config<P>, BTreeSet<u64>>,
    report: &mut ValenceReport,
    schedule: &mut Vec<ProcessId>,
    seen: &mut std::collections::HashSet<Config<P>>,
) {
    if !seen.insert(config.clone()) {
        return;
    }
    let my_valence = valence_of(protocol, &config, memo);
    if my_valence.len() >= 2 {
        report.bivalent += 1;
    } else {
        report.univalent += 1;
    }

    let live: Vec<ProcessId> = config.live().collect();
    if my_valence.len() >= 2 && !live.is_empty() {
        let mut successors = Vec::new();
        let mut all_univalent = true;
        for p in &live {
            let mut next = config.clone();
            next.advance(protocol, *p);
            let v = valence_of(protocol, &next, memo);
            if v.len() != 1 {
                all_univalent = false;
                break;
            }
            let description = protocol.describe_step(&config.shared, &config.locals[p.index()], *p);
            successors.push((*p, description, *v.iter().next().expect("univalent")));
        }
        if all_univalent {
            report.critical.push(CriticalConfig {
                valence: my_valence.iter().copied().collect(),
                pending: successors,
                schedule: schedule.clone(),
            });
        }
    }

    for p in live {
        let mut next = config.clone();
        next.advance(protocol, p);
        schedule.push(p);
        walk(protocol, next, memo, report, schedule, seen);
        schedule.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{Mode, TokenRace};

    #[test]
    fn algorithm1_has_critical_configurations() {
        let protocol = TokenRace::in_sync_state(2);
        let report = analyze(&protocol);
        assert!(
            report.bivalent > 0,
            "initial configuration must be bivalent"
        );
        assert!(report.univalent > 0);
        assert!(
            !report.critical.is_empty(),
            "every wait-free consensus protocol has a critical configuration"
        );
        assert_eq!(report.configs, report.bivalent + report.univalent);
    }

    #[test]
    fn critical_steps_are_the_token_race_operations() {
        // The Figure 1 claim, observed: at every critical configuration of
        // Algorithm 1, the decisive pending operations are the mutating
        // token operations (transfer / transferFrom) on the shared
        // account — never register writes or reads.
        let protocol = TokenRace::in_sync_state(2);
        let report = analyze(&protocol);
        for critical in &report.critical {
            for (_, description, _) in &critical.pending {
                assert!(
                    description.contains("transfer"),
                    "critical step is not a token mutation: {description}"
                );
            }
            // The two committed outcomes must differ (that is what makes
            // the configuration critical).
            let outcomes: BTreeSet<u64> = critical.pending.iter().map(|(_, _, v)| *v).collect();
            assert!(outcomes.len() >= 2);
        }
    }

    #[test]
    fn verbatim_mode_shows_same_structure() {
        let protocol = TokenRace::in_sync_state_with_mode(2, Mode::Verbatim);
        let report = analyze(&protocol);
        assert!(!report.critical.is_empty());
    }

    #[test]
    fn k3_analysis_completes() {
        let protocol = TokenRace::in_sync_state(3);
        let report = analyze(&protocol);
        assert!(report.configs > 100);
        assert!(!report.critical.is_empty());
    }
}

//! Exhaustive exploration of every interleaving of a protocol.

use std::collections::HashSet;

use tokensync_spec::ProcessId;

use crate::protocol::{Config, Protocol};

/// A property violation found by the [`Explorer`], with the schedule that
/// produced it (the sequence of process ids stepped from the initial
/// configuration).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two processes decided different values.
    Disagreement {
        /// The distinct decided values observed.
        values: Vec<u64>,
        /// Schedule reproducing the violation.
        schedule: Vec<ProcessId>,
    },
    /// A process decided a value nobody proposed.
    Invalidity {
        /// The bogus decision.
        value: u64,
        /// Schedule reproducing the violation.
        schedule: Vec<ProcessId>,
    },
    /// A process exceeded the protocol's step bound without deciding —
    /// wait-freedom is violated.
    NonTermination {
        /// The starving process.
        process: ProcessId,
        /// Schedule reproducing the violation.
        schedule: Vec<ProcessId>,
    },
}

impl Violation {
    /// The schedule that exhibits the violation.
    pub fn schedule(&self) -> &[ProcessId] {
        match self {
            Violation::Disagreement { schedule, .. }
            | Violation::Invalidity { schedule, .. }
            | Violation::NonTermination { schedule, .. } => schedule,
        }
    }
}

/// Exploration statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Distinct configurations visited.
    pub configs: usize,
    /// Transitions (steps) executed.
    pub transitions: usize,
    /// Deepest schedule explored.
    pub max_depth: usize,
}

/// The overall result of an exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every interleaving satisfies agreement, validity and wait-freedom.
    Verified,
    /// A violation was found (exploration stops at the first one).
    Violated(Violation),
    /// The configuration budget was exhausted before completing the search.
    Exhausted,
}

/// Exploration result: outcome plus statistics.
#[derive(Clone, Debug)]
pub struct Report {
    /// Verification outcome.
    pub outcome: Outcome,
    /// Exploration statistics.
    pub stats: Stats,
}

impl Report {
    /// Convenience: the violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        match &self.outcome {
            Outcome::Violated(v) => Some(v),
            _ => None,
        }
    }
}

/// Exhaustive DFS over all interleavings of a [`Protocol`], checking the
/// three consensus properties.
///
/// Crash coverage: a crash in the wait-free model is indistinguishable from
/// never being scheduled again, so checking *solo termination* of every
/// live process from every reachable configuration — which the DFS does —
/// covers every crash pattern.
pub struct Explorer<'a, P: Protocol> {
    protocol: &'a P,
    max_configs: usize,
}

impl<'a, P: Protocol> Explorer<'a, P> {
    /// Creates an explorer with the default configuration budget (2^20).
    pub fn new(protocol: &'a P) -> Self {
        Self {
            protocol,
            max_configs: 1 << 20,
        }
    }

    /// Overrides the configuration budget.
    pub fn with_max_configs(mut self, max_configs: usize) -> Self {
        self.max_configs = max_configs;
        self
    }

    /// Runs the exploration.
    pub fn run(&self) -> Report {
        let mut visited: HashSet<Config<P>> = HashSet::new();
        let mut stats = Stats::default();
        let mut schedule: Vec<ProcessId> = Vec::new();
        let initial = Config::initial(self.protocol);
        let outcome = self.dfs(initial, &mut visited, &mut stats, &mut schedule);
        match outcome {
            DfsResult::Ok => Report {
                outcome: Outcome::Verified,
                stats,
            },
            DfsResult::Violation(v) => Report {
                outcome: Outcome::Violated(v),
                stats,
            },
            DfsResult::Exhausted => Report {
                outcome: Outcome::Exhausted,
                stats,
            },
        }
    }

    fn dfs(
        &self,
        config: Config<P>,
        visited: &mut HashSet<Config<P>>,
        stats: &mut Stats,
        schedule: &mut Vec<ProcessId>,
    ) -> DfsResult {
        if !visited.insert(config.clone()) {
            return DfsResult::Ok;
        }
        if visited.len() > self.max_configs {
            return DfsResult::Exhausted;
        }
        stats.configs += 1;
        stats.max_depth = stats.max_depth.max(schedule.len());

        if let Some(v) = self.check_decisions(&config, schedule) {
            return DfsResult::Violation(v);
        }

        for p in config.live().collect::<Vec<_>>() {
            if config.steps[p.index()] >= self.protocol.step_bound() {
                return DfsResult::Violation(Violation::NonTermination {
                    process: p,
                    schedule: schedule.clone(),
                });
            }
            let mut next = config.clone();
            next.advance(self.protocol, p);
            stats.transitions += 1;
            schedule.push(p);
            let result = self.dfs(next, visited, stats, schedule);
            schedule.pop();
            if !matches!(result, DfsResult::Ok) {
                return result;
            }
        }
        DfsResult::Ok
    }

    fn check_decisions(&self, config: &Config<P>, schedule: &[ProcessId]) -> Option<Violation> {
        let decided: Vec<u64> = config.decided.iter().filter_map(|d| *d).collect();
        if decided.is_empty() {
            return None;
        }
        let proposals: Vec<u64> = (0..self.protocol.processes())
            .map(|i| self.protocol.proposal(ProcessId::new(i)))
            .collect();
        for v in &decided {
            if !proposals.contains(v) {
                return Some(Violation::Invalidity {
                    value: *v,
                    schedule: schedule.to_vec(),
                });
            }
        }
        let first = decided[0];
        if decided.iter().any(|v| *v != first) {
            let mut values: Vec<u64> = decided.clone();
            values.sort_unstable();
            values.dedup();
            return Some(Violation::Disagreement {
                values,
                schedule: schedule.to_vec(),
            });
        }
        None
    }
}

enum DfsResult {
    Ok,
    Violation(Violation),
    Exhausted,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Step;

    /// Correct 2-process consensus from a test-and-set bit: the winner of
    /// the TAS imposes its value (needs the loser to read the winner's
    /// published proposal).
    struct TasConsensus;

    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct TasShared {
        taken: Option<ProcessId>,
        proposals: [Option<u64>; 2],
    }

    impl Protocol for TasConsensus {
        type Shared = TasShared;
        type Local = u8;
        fn processes(&self) -> usize {
            2
        }
        fn initial_shared(&self) -> TasShared {
            TasShared {
                taken: None,
                proposals: [None, None],
            }
        }
        fn initial_local(&self, _p: ProcessId) -> u8 {
            0
        }
        fn step(&self, shared: &mut TasShared, local: &mut u8, p: ProcessId) -> Step {
            match *local {
                0 => {
                    shared.proposals[p.index()] = Some(self.proposal(p));
                    *local = 1;
                    Step::Continue
                }
                _ => {
                    let winner = *shared.taken.get_or_insert(p);
                    Step::Decided(shared.proposals[winner.index()].expect("winner published"))
                }
            }
        }
        fn proposal(&self, p: ProcessId) -> u64 {
            p.index() as u64 + 100
        }
    }

    /// Broken "consensus": everyone just decides its own proposal.
    struct Selfish;

    impl Protocol for Selfish {
        type Shared = ();
        type Local = ();
        fn processes(&self) -> usize {
            2
        }
        fn initial_shared(&self) {}
        fn initial_local(&self, _p: ProcessId) {}
        fn step(&self, _s: &mut (), _l: &mut (), p: ProcessId) -> Step {
            Step::Decided(self.proposal(p))
        }
        fn proposal(&self, p: ProcessId) -> u64 {
            p.index() as u64
        }
    }

    /// A process that never decides.
    struct Spinner;

    impl Protocol for Spinner {
        type Shared = ();
        type Local = u64;
        fn processes(&self) -> usize {
            1
        }
        fn initial_shared(&self) {}
        fn initial_local(&self, _p: ProcessId) -> u64 {
            0
        }
        fn step(&self, _s: &mut (), l: &mut u64, _p: ProcessId) -> Step {
            *l += 1;
            Step::Continue
        }
        fn proposal(&self, _p: ProcessId) -> u64 {
            0
        }
        fn step_bound(&self) -> usize {
            8
        }
    }

    #[test]
    fn verifies_correct_tas_consensus() {
        let report = Explorer::new(&TasConsensus).run();
        assert!(matches!(report.outcome, Outcome::Verified), "{report:?}");
        assert!(report.stats.configs > 4);
    }

    #[test]
    fn catches_disagreement() {
        let report = Explorer::new(&Selfish).run();
        match report.outcome {
            Outcome::Violated(Violation::Disagreement { values, schedule }) => {
                assert_eq!(values, vec![0, 1]);
                assert!(!schedule.is_empty());
            }
            other => panic!("expected disagreement, got {other:?}"),
        }
    }

    #[test]
    fn catches_non_termination() {
        let report = Explorer::new(&Spinner).run();
        match report.outcome {
            Outcome::Violated(Violation::NonTermination { process, .. }) => {
                assert_eq!(process, ProcessId::new(0));
            }
            other => panic!("expected non-termination, got {other:?}"),
        }
    }

    #[test]
    fn exhaustion_reported_on_tiny_budget() {
        let report = Explorer::new(&TasConsensus).with_max_configs(2).run();
        assert!(matches!(report.outcome, Outcome::Exhausted));
    }
}

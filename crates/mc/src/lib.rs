//! An explicit-state model checker for wait-free protocols over token
//! objects.
//!
//! The paper's theorems are pencil-and-paper arguments about *all*
//! interleavings of asynchronous processes. This crate makes those
//! arguments executable on concrete instances:
//!
//! * [`Protocol`] — protocols as step machines over explicit shared/local
//!   state.
//! * [`Explorer`] — exhaustive DFS over every interleaving (crashes
//!   included: a crashed process simply stops being scheduled), checking
//!   the three consensus properties — **agreement**, **validity**, and
//!   **wait-freedom** (solo termination from every reachable
//!   configuration). Produces counterexample schedules on violation.
//! * [`valence`] — valency analysis: classifies reachable configurations
//!   as univalent/bivalent and locates **critical configurations**,
//!   mechanizing the Theorem 3 / Figure 1 argument.
//! * [`commute`] — exhaustive commutativity / read-only classification of
//!   ERC20 operation pairs over enumerated states: the case analysis at
//!   the heart of the Theorem 3 proof, checked state by state.
//! * [`enumerate`] — small-universe state-space census of the partition
//!   `{Q_k}` and the synchronization states `S_k`.
//! * [`protocols`] — Algorithm 1 (both race modes) as a step machine, its
//!   *overreach* variants (more processes than the state supports — the
//!   Theorem 3 counterexamples), consensus from `k`-AT, and a doomed
//!   register-only protocol.
//!
//! # Example: exhaustively verifying Algorithm 1 for k = 3
//!
//! ```
//! use tokensync_mc::protocols::TokenRace;
//! use tokensync_mc::{Explorer, Outcome};
//!
//! let protocol = TokenRace::in_sync_state(3);
//! let report = Explorer::new(&protocol).run();
//! assert!(matches!(report.outcome, Outcome::Verified));
//! assert!(report.stats.configs > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod commute;
pub mod enumerate;
mod explorer;
mod protocol;
pub mod protocols;
pub mod valence;

pub use explorer::{Explorer, Outcome, Report, Stats, Violation};
pub use protocol::{Config, Protocol, Step};

//! Cross-check of the Section 6 footprint conflict catalogs against the
//! model checker's ground truth.
//!
//! For exhaustively enumerated small ERC721 and ERC1155 universes, every
//! ordered operation pair by every pair of distinct processes is
//! classified with [`classify_pair_for`] (commute / read-only / genuine
//! conflict, the Theorem 3 trichotomy). The check: **every genuine
//! conflict is caught by the footprint relation** — i.e. the
//! state-independent cell catalog the pipeline schedules by is a sound
//! superset of the model-checked conflicts, for the new standards
//! exactly as `core::analysis::footprint`'s property suite establishes
//! for ERC20. (The converse is deliberately false: footprints
//! over-approximate — e.g. a credit landing on a drained account — which
//! costs parallelism, never correctness.)

use tokensync_core::analysis::FootprintedOp;
use tokensync_core::standards::erc1155::{Erc1155Op, Erc1155Spec, Erc1155State, TypeId};
use tokensync_core::standards::erc721::{Erc721Op, Erc721Spec, Erc721State, TokenId};
use tokensync_mc::commute::{classify_pair_for, PairClass};
use tokensync_spec::{AccountId, ObjectType, ProcessId};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn a(i: usize) -> AccountId {
    AccountId::new(i)
}

/// Sweeps every ordered op pair by every ordered pair of distinct
/// processes over `states`, asserting footprint soundness; returns the
/// number of genuine conflicts seen (so the sweep is provably
/// non-vacuous).
fn sweep<S>(spec: &S, states: &[S::State], processes: usize, ops: &[S::Op]) -> usize
where
    S: ObjectType,
    S::Op: FootprintedOp + std::fmt::Debug,
    S::State: std::fmt::Debug,
{
    let mut conflicts = 0;
    for state in states {
        for p1 in 0..processes {
            for p2 in 0..processes {
                if p1 == p2 {
                    continue;
                }
                let (p1, p2) = (p(p1), p(p2));
                for o1 in ops {
                    for o2 in ops {
                        let class = classify_pair_for(spec, state, (p1, o1), (p2, o2));
                        if class == PairClass::Conflict {
                            conflicts += 1;
                            assert!(
                                o1.footprint(p1).conflicts_with(&o2.footprint(p2)),
                                "model-checked conflict missed by footprints at \
                                 {state:?}: {p1}:{o1:?} vs {p2}:{o2:?}"
                            );
                        }
                    }
                }
            }
        }
    }
    conflicts
}

/// Every ERC721 state over `n` processes and `tokens` token ids: each
/// token unminted or (owner × approved) in all combinations, crossed
/// with every operator-pair subset.
fn erc721_states(n: usize, tokens: usize) -> Vec<Erc721State> {
    // Per-token configurations: None = unminted, or (owner, approved).
    let mut per_token: Vec<Option<(usize, Option<usize>)>> = vec![None];
    for owner in 0..n {
        per_token.push(Some((owner, None)));
        for ap in 0..n {
            per_token.push(Some((owner, Some(ap))));
        }
    }
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|h| (0..n).filter(move |&o| o != h).map(move |o| (h, o)))
        .collect();
    let mut states = Vec::new();
    let mut token_config = vec![0usize; tokens];
    loop {
        for op_mask in 0..(1usize << pairs.len()) {
            let mut q = Erc721State::new(n, tokens);
            let spec = Erc721Spec::new(q.clone());
            // Build through the spec's own transitions so every state is
            // genuinely reachable-shaped (mint, then approve/operators).
            let mut builder = spec.initial_state();
            for (t, &cfg) in token_config.iter().enumerate() {
                if let Some((owner, approved)) = per_token[cfg] {
                    spec.apply(
                        &mut builder,
                        p(owner),
                        &Erc721Op::Mint {
                            to: p(owner),
                            token: TokenId::new(t),
                        },
                    );
                    if let Some(ap) = approved {
                        spec.apply(
                            &mut builder,
                            p(owner),
                            &Erc721Op::Approve {
                                approved: Some(p(ap)),
                                token: TokenId::new(t),
                            },
                        );
                    }
                }
            }
            for (i, &(h, o)) in pairs.iter().enumerate() {
                if op_mask & (1 << i) != 0 {
                    builder.set_operator(p(h), p(o), true);
                }
            }
            q = builder;
            states.push(q);
        }
        // Next token configuration (mixed-radix counter).
        let mut t = 0;
        loop {
            if t == tokens {
                return states;
            }
            token_config[t] += 1;
            if token_config[t] < per_token.len() {
                break;
            }
            token_config[t] = 0;
            t += 1;
        }
    }
}

#[test]
fn erc721_footprints_catch_every_model_checked_conflict() {
    let n = 2;
    let tokens = 2;
    let states = erc721_states(n, tokens);
    let mut ops = Vec::new();
    for t in 0..tokens {
        let token = TokenId::new(t);
        ops.push(Erc721Op::OwnerOf { token });
        ops.push(Erc721Op::GetApproved { token });
        for to in 0..n {
            ops.push(Erc721Op::Mint { to: p(to), token });
            ops.push(Erc721Op::Approve {
                approved: Some(p(to)),
                token,
            });
            for from in 0..n {
                ops.push(Erc721Op::TransferFrom {
                    from: p(from),
                    to: p(to),
                    token,
                });
            }
        }
    }
    for op in 0..n {
        for on in [true, false] {
            ops.push(Erc721Op::SetApprovalForAll {
                operator: p(op),
                on,
            });
        }
    }
    let spec = Erc721Spec::new(Erc721State::new(n, tokens));
    let conflicts = sweep(&spec, &states, n, &ops);
    assert!(conflicts > 0, "sweep must exercise genuine conflicts");
}

/// Every ERC1155 state over `n` accounts × `types` types with balances
/// in `0..=max`, crossed with every operator-pair subset.
fn erc1155_states(n: usize, types: usize, max: u64) -> Vec<Erc1155State> {
    let cells = n * types;
    let radix = (max + 1) as usize;
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|h| (0..n).filter(move |&o| o != h).map(move |o| (h, o)))
        .collect();
    let mut states = Vec::new();
    let mut config = vec![0usize; cells];
    loop {
        for op_mask in 0..(1usize << pairs.len()) {
            let mut q = Erc1155State::deploy(n, p(0), &vec![0; types]);
            for (cell, &v) in config.iter().enumerate() {
                if v > 0 {
                    q.set_balance(a(cell % n), TypeId::new(cell / n), v as u64);
                }
            }
            for (i, &(h, o)) in pairs.iter().enumerate() {
                if op_mask & (1 << i) != 0 {
                    q.set_operator(a(h), p(o), true);
                }
            }
            states.push(q);
        }
        let mut c = 0;
        loop {
            if c == cells {
                return states;
            }
            config[c] += 1;
            if config[c] < radix {
                break;
            }
            config[c] = 0;
            c += 1;
        }
    }
}

#[test]
fn erc1155_footprints_catch_every_model_checked_conflict() {
    let n = 2;
    let types = 2;
    let states = erc1155_states(n, types, 2);
    let mut ops = Vec::new();
    for t in 0..types {
        let type_id = TypeId::new(t);
        ops.push(Erc1155Op::TotalSupply { type_id });
        for acct in 0..n {
            ops.push(Erc1155Op::BalanceOf {
                account: a(acct),
                type_id,
            });
        }
        for from in 0..n {
            for to in 0..n {
                for v in [1u64, 2] {
                    ops.push(Erc1155Op::Transfer {
                        from: a(from),
                        to: a(to),
                        type_id,
                        value: v,
                    });
                }
            }
        }
    }
    // Batches spanning both types — the cell-union case.
    for from in 0..n {
        for to in 0..n {
            ops.push(Erc1155Op::BatchTransfer {
                from: a(from),
                to: a(to),
                entries: vec![(TypeId::new(0), 1), (TypeId::new(1), 1)],
            });
        }
    }
    for op in 0..n {
        for on in [true, false] {
            ops.push(Erc1155Op::SetApprovalForAll {
                operator: p(op),
                on,
            });
        }
    }
    let spec = Erc1155Spec::new(Erc1155State::deploy(n, p(0), &vec![0; types]));
    let conflicts = sweep(&spec, &states, n, &ops);
    assert!(conflicts > 0, "sweep must exercise genuine conflicts");
}

//! Property-based tests of the model-checking machinery itself.

use proptest::prelude::*;
use tokensync_core::erc20::{Erc20Op, Erc20Spec, Erc20State};
use tokensync_mc::commute::{classify_pair, explain_conflict, PairClass};
use tokensync_mc::enumerate::enumerate_states;
use tokensync_mc::protocols::{Mode, TokenRace};
use tokensync_mc::{Explorer, Outcome};
use tokensync_spec::{AccountId, ProcessId};

fn arb_state() -> impl Strategy<Value = Erc20State> {
    (
        proptest::collection::vec(0u64..4, 3),
        proptest::collection::vec(0u64..4, 9),
    )
        .prop_map(|(balances, allowances)| {
            let mut state = Erc20State::from_balances(balances);
            for (idx, v) in allowances.into_iter().enumerate() {
                state.set_allowance(AccountId::new(idx / 3), ProcessId::new(idx % 3), v);
            }
            state
        })
}

fn arb_op() -> impl Strategy<Value = Erc20Op> {
    prop_oneof![
        (0..3usize, 0u64..4).prop_map(|(to, value)| Erc20Op::Transfer {
            to: AccountId::new(to),
            value
        }),
        (0..3usize, 0..3usize, 0u64..4).prop_map(|(from, to, value)| Erc20Op::TransferFrom {
            from: AccountId::new(from),
            to: AccountId::new(to),
            value
        }),
        (0..3usize, 0u64..4).prop_map(|(spender, value)| Erc20Op::Approve {
            spender: ProcessId::new(spender),
            value
        }),
        (0..3usize).prop_map(|a| Erc20Op::BalanceOf {
            account: AccountId::new(a)
        }),
    ]
}

proptest! {
    /// Pair classification is symmetric: swapping the operands never
    /// changes the verdict.
    #[test]
    fn classification_is_symmetric(
        state in arb_state(),
        o1 in arb_op(),
        o2 in arb_op(),
        p1 in 0..3usize,
        p2 in 0..3usize,
    ) {
        prop_assume!(p1 != p2);
        let spec = Erc20Spec::new(Erc20State::new(0));
        let (p1, p2) = (ProcessId::new(p1), ProcessId::new(p2));
        let forward = classify_pair(&spec, &state, (p1, &o1), (p2, &o2));
        let backward = classify_pair(&spec, &state, (p2, &o2), (p1, &o1));
        prop_assert_eq!(forward, backward);
    }

    /// Every conflict found on random states fits the paper's catalog —
    /// the randomized companion of the exhaustive sweep in `commute`.
    #[test]
    fn conflicts_always_catalogued(
        state in arb_state(),
        o1 in arb_op(),
        o2 in arb_op(),
        p1 in 0..3usize,
        p2 in 0..3usize,
    ) {
        prop_assume!(p1 != p2);
        let spec = Erc20Spec::new(Erc20State::new(0));
        let (p1, p2) = (ProcessId::new(p1), ProcessId::new(p2));
        if classify_pair(&spec, &state, (p1, &o1), (p2, &o2)) == PairClass::Conflict {
            prop_assert!(
                explain_conflict((p1, &o1), (p2, &o2)).is_some(),
                "unexplained conflict: {:?} vs {:?} at {:?}",
                o1, o2, state
            );
        }
    }
}

#[test]
fn explorer_agrees_with_u_predicate_on_enumerated_two_spender_states() {
    // For every enumerated state where account 0 has owner + one spender
    // enabled, the 2-process race verifies iff U holds there (balance
    // positive) — the analysis and the checker agree pointwise.
    let mut verified = 0;
    let mut refuted = 0;
    for state in enumerate_states(2, 1, 1) {
        let spender_enabled = state.balance(AccountId::new(0)) > 0
            && state.allowance(AccountId::new(0), ProcessId::new(1)) > 0;
        if !spender_enabled {
            continue;
        }
        // Embed with a destination account.
        let mut embedded = Erc20State::from_balances(vec![
            state.balance(AccountId::new(0)),
            state.balance(AccountId::new(1)),
            0,
        ]);
        embedded.set_allowance(
            AccountId::new(0),
            ProcessId::new(1),
            state.allowance(AccountId::new(0), ProcessId::new(1)),
        );
        let protocol = TokenRace::from_state(embedded, 2, Mode::Generalized);
        match Explorer::new(&protocol).run().outcome {
            Outcome::Verified => verified += 1,
            _ => refuted += 1,
        }
    }
    assert!(verified > 0);
    assert_eq!(refuted, 0, "U holds on all these states; races must verify");
}

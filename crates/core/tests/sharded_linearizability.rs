//! Property-based linearizability of [`ShardedErc20`].
//!
//! Mirrors the recorded-history stress tests in `shared::tests`, but lets
//! proptest drive the degrees of freedom the fixed-seed tests pin down:
//! the initial state (balances and outstanding approvals), the stripe
//! count (1 — coarse-degenerate — through more shards than accounts), and
//! the per-thread operation scripts. Every recorded concurrent history
//! must linearize against the sequential `Erc20Spec` from the same
//! initial state.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use tokensync_core::erc20::{Erc20Op, Erc20Resp, Erc20Spec, Erc20State};
use tokensync_core::shared::{ConcurrentObject, ConcurrentToken, ShardedErc20};
use tokensync_spec::{check_linearizable, AccountId, ObjectType, ProcessId, Recorder};

const N: usize = 4;

fn arb_op() -> impl Strategy<Value = Erc20Op> {
    prop_oneof![
        (0..N, 0u64..4).prop_map(|(to, value)| Erc20Op::Transfer {
            to: AccountId::new(to),
            value
        }),
        (0..N, 0..N, 0u64..4).prop_map(|(from, to, value)| Erc20Op::TransferFrom {
            from: AccountId::new(from),
            to: AccountId::new(to),
            value,
        }),
        (0..N, 0u64..6).prop_map(|(spender, value)| Erc20Op::Approve {
            spender: ProcessId::new(spender),
            value
        }),
        (0..N).prop_map(|account| Erc20Op::BalanceOf {
            account: AccountId::new(account)
        }),
        (0..N, 0..N).prop_map(|(account, spender)| Erc20Op::Allowance {
            account: AccountId::new(account),
            spender: ProcessId::new(spender),
        }),
        Just(Erc20Op::TotalSupply),
    ]
}

proptest! {
    /// Concurrent histories recorded against a sharded token linearize,
    /// for arbitrary initial states and stripe counts.
    #[test]
    fn sharded_histories_linearize(
        balances in vec(0u64..10, N),
        approvals in vec((0..N, 0..N, 1u64..6), 0..5),
        shard_exp in 0u32..4, // 1, 2, 4 or 8 shards over 4 accounts
        scripts in vec(vec(arb_op(), 1..7), 2..4),
    ) {
        let mut initial = Erc20State::from_balances(balances);
        for &(a, p, v) in &approvals {
            initial.set_allowance(AccountId::new(a), ProcessId::new(p), v);
        }
        let token = ShardedErc20::with_shards(initial.clone(), 1 << shard_exp);
        let recorder: Arc<Recorder<Erc20Op, Erc20Resp>> = Arc::new(Recorder::new());
        crossbeam::scope(|s| {
            for (t, script) in scripts.iter().enumerate() {
                let recorder = Arc::clone(&recorder);
                let token = &token;
                s.spawn(move |_| {
                    let caller = ProcessId::new(t);
                    for op in script {
                        let id = recorder.invoke(caller, op.clone());
                        let resp = token.apply(caller, op);
                        recorder.ret(id, resp);
                    }
                });
            }
        })
        .expect("worker panicked");
        let history = Arc::try_unwrap(recorder)
            .expect("all recorder handles dropped")
            .into_history();
        let spec = Erc20Spec::new(initial);
        let result = check_linearizable(&spec, &spec.initial_state(), &history);
        prop_assert!(result.is_ok(), "history not linearizable: {:?}", result.err());
    }

    /// Supply conservation under concurrency, the cheap global invariant:
    /// whatever interleaving the scheduler produces, no op mints or burns.
    #[test]
    fn sharded_conserves_supply(
        balances in vec(0u64..50, N),
        shard_exp in 0u32..4,
        scripts in vec(vec(arb_op(), 1..40), 2..5),
    ) {
        let supply: u64 = balances.iter().sum();
        let token = Arc::new(ShardedErc20::with_shards(
            Erc20State::from_balances(balances),
            1 << shard_exp,
        ));
        crossbeam::scope(|s| {
            for (t, script) in scripts.iter().enumerate() {
                let token = Arc::clone(&token);
                s.spawn(move |_| {
                    for op in script {
                        token.apply(ProcessId::new(t), op);
                    }
                });
            }
        })
        .expect("worker panicked");
        prop_assert_eq!(token.total_supply(), supply);
        prop_assert_eq!(token.state_snapshot().total_supply(), supply);
    }
}

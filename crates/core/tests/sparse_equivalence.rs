//! Equivalence of the sparse `Erc20State` against a dense reference model.
//!
//! The sparse allowance representation (per-account sorted vectors of
//! positive entries) is a pure data-structure change: the transition
//! function `Δ` of Definition 3 must be bit-for-bit unchanged. This suite
//! replays random operation scripts against both the production
//! `Erc20State` and an independently written dense `n × n` matrix model —
//! the representation the engine used before it scaled — and demands
//! identical responses and identical final states.

use proptest::collection::vec;
use proptest::prelude::*;
use tokensync_core::erc20::{Erc20Op, Erc20Resp, Erc20Spec, Erc20State};
use tokensync_spec::{AccountId, Amount, ObjectType, ProcessId};

const N: usize = 5;

/// The dense reference: `allowances[a][p]` is a full matrix cell, zeros
/// stored explicitly. Mirrors Algorithm 3 line by line, written without
/// reference to the production code.
struct DenseState {
    balances: Vec<Amount>,
    allowances: Vec<Vec<Amount>>,
}

impl DenseState {
    fn new(balances: Vec<Amount>) -> Self {
        let n = balances.len();
        Self {
            balances,
            allowances: vec![vec![0; n]; n],
        }
    }

    fn in_range(&self, i: usize) -> bool {
        i < self.balances.len()
    }

    fn apply(&mut self, caller: ProcessId, op: &Erc20Op) -> Erc20Resp {
        let c = caller.index();
        match *op {
            Erc20Op::Transfer { to, value } => {
                let t = to.index();
                if !self.in_range(c) || !self.in_range(t) || self.balances[c] < value {
                    return Erc20Resp::FALSE;
                }
                self.balances[c] -= value;
                self.balances[t] += value;
                Erc20Resp::TRUE
            }
            Erc20Op::TransferFrom { from, to, value } => {
                let (f, t) = (from.index(), to.index());
                if !self.in_range(c)
                    || !self.in_range(f)
                    || !self.in_range(t)
                    || self.allowances[f][c] < value
                    || self.balances[f] < value
                {
                    return Erc20Resp::FALSE;
                }
                self.allowances[f][c] -= value;
                self.balances[f] -= value;
                self.balances[t] += value;
                Erc20Resp::TRUE
            }
            Erc20Op::Approve { spender, value } => {
                let s = spender.index();
                if !self.in_range(c) || !self.in_range(s) {
                    return Erc20Resp::FALSE;
                }
                self.allowances[c][s] = value;
                Erc20Resp::TRUE
            }
            Erc20Op::BalanceOf { account } => Erc20Resp::Amount(
                self.in_range(account.index())
                    .then(|| self.balances[account.index()])
                    .unwrap_or(0),
            ),
            Erc20Op::Allowance { account, spender } => Erc20Resp::Amount(
                (self.in_range(account.index()) && self.in_range(spender.index()))
                    .then(|| self.allowances[account.index()][spender.index()])
                    .unwrap_or(0),
            ),
            Erc20Op::TotalSupply => Erc20Resp::Amount(self.balances.iter().sum()),
        }
    }
}

fn arb_op() -> impl Strategy<Value = Erc20Op> {
    // Indices range one past N so out-of-range rejection is exercised too.
    let idx = 0..N + 1;
    prop_oneof![
        (idx.clone(), 0u64..6).prop_map(|(to, value)| Erc20Op::Transfer {
            to: AccountId::new(to),
            value
        }),
        (idx.clone(), idx.clone(), 0u64..6).prop_map(|(from, to, value)| {
            Erc20Op::TransferFrom {
                from: AccountId::new(from),
                to: AccountId::new(to),
                value,
            }
        }),
        (idx.clone(), 0u64..8).prop_map(|(spender, value)| Erc20Op::Approve {
            spender: ProcessId::new(spender),
            value
        }),
        idx.clone().prop_map(|account| Erc20Op::BalanceOf {
            account: AccountId::new(account)
        }),
        (idx.clone(), idx.clone()).prop_map(|(account, spender)| Erc20Op::Allowance {
            account: AccountId::new(account),
            spender: ProcessId::new(spender),
        }),
        Just(Erc20Op::TotalSupply),
    ]
}

proptest! {
    /// Every response and every observable cell of the final state agree
    /// between the sparse production state and the dense reference.
    #[test]
    fn sparse_state_matches_dense_reference(
        balances in vec(0u64..20, N),
        approvals in vec((0..N, 0..N, 0u64..8), 0..8),
        script in vec((0..N, arb_op()), 0..120),
    ) {
        let mut dense = DenseState::new(balances.clone());
        let mut sparse = Erc20State::from_balances(balances);
        for &(a, p, v) in &approvals {
            dense.allowances[a][p] = v;
            sparse.set_allowance(AccountId::new(a), ProcessId::new(p), v);
        }
        let spec = Erc20Spec::new(Erc20State::new(0));
        for (caller, op) in &script {
            let caller = ProcessId::new(*caller);
            let expected = dense.apply(caller, op);
            let got = spec.apply(&mut sparse, caller, op);
            prop_assert_eq!(got, expected, "diverged on {:?}", op);
        }
        // Full observable-state comparison, including cells never named by
        // the script (a sparse bookkeeping bug could hide there).
        for a in 0..N {
            prop_assert_eq!(sparse.balance(AccountId::new(a)), dense.balances[a]);
            for p in 0..N {
                prop_assert_eq!(
                    sparse.allowance(AccountId::new(a), ProcessId::new(p)),
                    dense.allowances[a][p],
                    "allowance ({}, {})", a, p
                );
            }
        }
        // The cached supply equals the dense scan.
        prop_assert_eq!(sparse.total_supply(), dense.balances.iter().sum::<u64>());
    }

    /// The sparse iterators report exactly the positive cells of the dense
    /// matrix — the support the analysis layer now runs on.
    #[test]
    fn approval_support_matches_dense_positives(
        approvals in vec((0..N, 0..N, 0u64..5), 0..12),
        script in vec((0..N, arb_op()), 0..60),
    ) {
        let mut dense = DenseState::new(vec![10; N]);
        let mut sparse = Erc20State::from_balances(vec![10; N]);
        for &(a, p, v) in &approvals {
            dense.allowances[a][p] = v;
            sparse.set_allowance(AccountId::new(a), ProcessId::new(p), v);
        }
        let spec = Erc20Spec::new(Erc20State::new(0));
        for (caller, op) in &script {
            spec.apply(&mut sparse, ProcessId::new(*caller), op);
            dense.apply(ProcessId::new(*caller), op);
        }
        let mut total = 0;
        for a in 0..N {
            let account = AccountId::new(a);
            let support: Vec<(usize, Amount)> =
                sparse.approvals(account).map(|(p, v)| (p.index(), v)).collect();
            let expected: Vec<(usize, Amount)> = dense.allowances[a]
                .iter()
                .enumerate()
                .filter(|(_, &v)| v > 0)
                .map(|(p, &v)| (p, v))
                .collect();
            prop_assert_eq!(&support, &expected, "support of account {}", a);
            prop_assert_eq!(sparse.approval_count(account), expected.len());
            total += expected.len();
            prop_assert_eq!(
                sparse.accounts_with_approvals().any(|x| x == account),
                !expected.is_empty()
            );
        }
        prop_assert_eq!(sparse.outstanding_approvals(), total);
    }
}

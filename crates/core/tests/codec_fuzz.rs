//! Codec fuzzing: every [`Codec`] implementation the store persists and
//! the server speaks, against random bytes. Two documented invariants
//! under test (see the `codec` module docs):
//!
//! * **Total decoding** — hostile bytes produce `Ok` or a typed
//!   [`CodecError`], never a panic. The WAL recovery path and the wire
//!   server both stand on this.
//! * **Canonicality** — when random bytes *do* decode, re-encoding the
//!   value reproduces exactly the consumed prefix (encode → decode →
//!   encode is byte-identical), so a decoded value can never alias two
//!   different byte strings.

use proptest::prelude::*;
use tokensync_core::codec::Codec;
use tokensync_core::erc20::{Erc20Delta, Erc20Op, Erc20Resp, Erc20State};
use tokensync_core::standards::erc1155::{Erc1155Delta, Erc1155Op, Erc1155Resp, Erc1155State};
use tokensync_core::standards::erc721::{Erc721Delta, Erc721Op, Erc721Resp, Erc721State};

/// Drives one codec over one byte string: decode must not panic; a
/// successful decode must re-encode to exactly the bytes it consumed and
/// that re-encoding must decode back to an equal value.
fn assert_codec_total<C: Codec + PartialEq + std::fmt::Debug>(bytes: &[u8]) {
    let mut input = bytes;
    let Ok(value) = C::decode(&mut input) else {
        return; // a typed error is a pass — only a panic would fail
    };
    let consumed = &bytes[..bytes.len() - input.len()];
    let reencoded = value.encode();
    assert_eq!(
        reencoded, consumed,
        "decoded {value:?} from a non-canonical byte string"
    );
    let mut again = reencoded.as_slice();
    let redecoded = C::decode(&mut again).expect("re-encoding must decode");
    assert!(again.is_empty(), "re-decode left trailing bytes");
    assert_eq!(redecoded, value);
}

/// All twelve persisted codecs over the same byte string.
fn assert_all_codecs_total(bytes: &[u8]) {
    assert_codec_total::<Erc20Op>(bytes);
    assert_codec_total::<Erc20Resp>(bytes);
    assert_codec_total::<Erc20State>(bytes);
    assert_codec_total::<Erc20Delta>(bytes);
    assert_codec_total::<Erc721Op>(bytes);
    assert_codec_total::<Erc721Resp>(bytes);
    assert_codec_total::<Erc721State>(bytes);
    assert_codec_total::<Erc721Delta>(bytes);
    assert_codec_total::<Erc1155Op>(bytes);
    assert_codec_total::<Erc1155Resp>(bytes);
    assert_codec_total::<Erc1155State>(bytes);
    assert_codec_total::<Erc1155Delta>(bytes);
}

proptest! {
    /// Uniform random bytes: mostly invalid tags and truncations — the
    /// error paths.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        assert_all_codecs_total(&bytes);
    }

    /// Low-valued bytes: small integers are where the valid enum tags,
    /// short lengths, and in-range ids live, so decodes succeed far more
    /// often and the canonicality branch actually runs.
    #[test]
    fn structured_bytes_never_panic(bytes in proptest::collection::vec(0u8..=3, 0..256)) {
        assert_all_codecs_total(&bytes);
    }

    /// A valid encoding with a tail of garbage: decode must stop exactly
    /// at the value boundary, leaving the garbage unconsumed.
    #[test]
    fn decode_stops_at_value_boundary(
        to in 0usize..64,
        value in 0u64..1_000,
        tail in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let op = Erc20Op::Transfer { to: tokensync_spec::AccountId::new(to), value };
        let mut bytes = op.encode();
        let boundary = bytes.len();
        bytes.extend_from_slice(&tail);
        let mut input = bytes.as_slice();
        let decoded = Erc20Op::decode(&mut input).expect("valid prefix must decode");
        assert_eq!(decoded, op);
        assert_eq!(input.len(), bytes.len() - boundary, "consumed past the value");
    }

    /// Truncation at every boundary of a valid encoding: always a clean
    /// `Err`, never a panic, never a bogus success.
    #[test]
    fn truncations_fail_cleanly(
        account in 0usize..64,
        spender in 0usize..64,
        value in 0u64..u64::MAX,
    ) {
        let op = Erc20Op::Allowance {
            account: tokensync_spec::AccountId::new(account),
            spender: tokensync_spec::ProcessId::new(spender),
        };
        let approve = Erc20Op::Approve {
            spender: tokensync_spec::ProcessId::new(spender),
            value,
        };
        for op in [op, approve] {
            let bytes = op.encode();
            for cut in 0..bytes.len() {
                let mut input = &bytes[..cut];
                assert!(
                    Erc20Op::decode(&mut input).is_err(),
                    "decode of a strict prefix ({cut}/{} bytes) succeeded",
                    bytes.len()
                );
            }
        }
    }
}

//! Round-trip property tests for the wire codec: arbitrary states of
//! all three standards — built by random *operation sequences* through
//! the sequential oracles, so every reachable canonical shape appears,
//! including revoke-to-zero `SpenderMap` rows, cleared single-use
//! approvals, and emptied ERC1155 balance cells — must satisfy
//!
//! `decode(encode(q)) == q`  and  `encode(decode(bytes)) == bytes`.
//!
//! The second equality (byte-level idempotence) is what makes snapshot
//! files content-addressable-friendly and guarantees the encoder never
//! emits a non-canonical form the decoder would reject.

use proptest::collection::vec;
use proptest::prelude::*;
use tokensync_core::codec::Codec;
use tokensync_core::erc20::{Erc20Op, Erc20Spec, Erc20State};
use tokensync_core::standards::erc1155::{Erc1155Op, Erc1155Spec, Erc1155State, TypeId};
use tokensync_core::standards::erc721::{Erc721Op, Erc721Spec, Erc721State, TokenId};
use tokensync_spec::{AccountId, ObjectType, ProcessId};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn a(i: usize) -> AccountId {
    AccountId::new(i)
}

fn assert_roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: &T) {
    let bytes = value.encode();
    let mut input = bytes.as_slice();
    let decoded = T::decode(&mut input).expect("canonical state decodes");
    assert!(input.is_empty(), "decode consumed too little");
    assert_eq!(&decoded, value, "decode(encode(q)) != q");
    assert_eq!(decoded.encode(), bytes, "encode not canonical");
}

const N: usize = 6;
const SPAN: usize = 9;
const TYPES: usize = 3;

fn arb_erc20_op() -> impl Strategy<Value = Erc20Op> {
    prop_oneof![
        (0..N, 0u64..6).prop_map(|(to, value)| Erc20Op::Transfer { to: a(to), value }),
        (0..N, 0..N, 0u64..6).prop_map(|(from, to, value)| Erc20Op::TransferFrom {
            from: a(from),
            to: a(to),
            value,
        }),
        // value 0 included: approve-then-revoke must leave a state that
        // round-trips to the untouched row (no tombstones on the wire).
        (0..N, 0u64..4).prop_map(|(spender, value)| Erc20Op::Approve {
            spender: p(spender),
            value,
        }),
    ]
}

fn arb_721_op() -> impl Strategy<Value = Erc721Op> {
    prop_oneof![
        (0..N, 0..SPAN).prop_map(|(to, token)| Erc721Op::Mint {
            to: p(to),
            token: TokenId::new(token),
        }),
        (0..N, 0..N, 0..SPAN).prop_map(|(from, to, token)| Erc721Op::TransferFrom {
            from: p(from),
            to: p(to),
            token: TokenId::new(token),
        }),
        (0..=N, 0..SPAN).prop_map(|(ap, token)| Erc721Op::Approve {
            approved: (ap < N).then(|| p(ap)),
            token: TokenId::new(token),
        }),
        (0..N, 0..2usize).prop_map(|(op, on)| Erc721Op::SetApprovalForAll {
            operator: p(op),
            on: on == 1,
        }),
    ]
}

fn arb_1155_op() -> impl Strategy<Value = Erc1155Op> {
    prop_oneof![
        (0..N, 0..N, 0..TYPES, 0u64..5).prop_map(|(from, to, ty, value)| Erc1155Op::Transfer {
            from: a(from),
            to: a(to),
            type_id: TypeId::new(ty),
            value,
        }),
        (0..N, 0..N, vec((0..TYPES, 0u64..4), 0..3)).prop_map(|(from, to, rows)| {
            Erc1155Op::BatchTransfer {
                from: a(from),
                to: a(to),
                entries: rows
                    .into_iter()
                    .map(|(ty, v)| (TypeId::new(ty), v))
                    .collect(),
            }
        }),
        (0..N, 0..2usize).prop_map(|(op, on)| Erc1155Op::SetApprovalForAll {
            operator: p(op),
            on: on == 1,
        }),
    ]
}

proptest! {
    #[test]
    fn erc20_states_round_trip(
        callers in vec(0..N, 0..40),
        ops in vec(arb_erc20_op(), 0..40),
        supply_per_account in 0u64..20,
    ) {
        let spec = Erc20Spec::new(Erc20State::from_balances(vec![supply_per_account; N]));
        let mut state = spec.initial_state();
        for (&c, op) in callers.iter().zip(&ops) {
            spec.apply(&mut state, p(c), op);
        }
        assert_roundtrip(&state);
    }

    #[test]
    fn erc721_states_round_trip(
        premint in 0..SPAN,
        callers in vec(0..N, 0..40),
        ops in vec(arb_721_op(), 0..40),
    ) {
        let spec = Erc721Spec::new(Erc721State::minted_round_robin(N, SPAN, premint));
        let mut state = spec.initial_state();
        for (&c, op) in callers.iter().zip(&ops) {
            spec.apply(&mut state, p(c), op);
        }
        assert_roundtrip(&state);
    }

    #[test]
    fn erc1155_states_round_trip(
        balances in vec((0..TYPES, 0..N, 1u64..8), 0..10),
        callers in vec(0..N, 0..40),
        ops in vec(arb_1155_op(), 0..40),
    ) {
        let mut initial = Erc1155State::deploy(N, p(0), &[0; TYPES]);
        for &(ty, acct, v) in &balances {
            let old = initial.balance_of(a(acct), TypeId::new(ty));
            initial.set_balance(a(acct), TypeId::new(ty), old.max(v));
        }
        let spec = Erc1155Spec::new(initial);
        let mut state = spec.initial_state();
        for (&c, op) in callers.iter().zip(&ops) {
            spec.apply(&mut state, p(c), op);
        }
        assert_roundtrip(&state);
    }

    /// Op and response alphabets round-trip too (the WAL's record
    /// payloads are built from these).
    #[test]
    fn op_alphabets_round_trip(
        e20 in vec(arb_erc20_op(), 0..20),
        e721 in vec(arb_721_op(), 0..20),
        e1155 in vec(arb_1155_op(), 0..20),
    ) {
        for op in &e20 {
            assert_roundtrip(op);
        }
        for op in &e721 {
            assert_roundtrip(op);
        }
        for op in &e1155 {
            assert_roundtrip(op);
        }
    }
}

#[test]
fn revoked_rows_round_trip_to_the_untouched_encoding() {
    // The sharp end of canonicality: approve then revoke must encode
    // byte-identically to never having approved.
    let spec = Erc20Spec::new(Erc20State::from_balances(vec![5; 4]));
    let untouched = spec.initial_state().encode();
    let mut state = spec.initial_state();
    spec.apply(
        &mut state,
        p(1),
        &Erc20Op::Approve {
            spender: p(2),
            value: 9,
        },
    );
    spec.apply(
        &mut state,
        p(1),
        &Erc20Op::Approve {
            spender: p(2),
            value: 0,
        },
    );
    assert_eq!(state.encode(), untouched);
}

//! The Section 5 state-analysis machinery: enabled spenders, the state
//! partition `{Q_k}`, the unique-winner predicate `U`, synchronization
//! states `S_k`, consensus-number bounds, and dynamic monitoring.
//!
//! The paper's central insight is that the synchronization power of an ERC20
//! token can be *read off its state*: the enabled-spender map `σ_q`
//! determines which partition class `Q_k` the state lies in (upper bound on
//! the consensus number, Theorem 3) and whether a synchronization state in
//! `S_k` has been reached (lower bound, Theorem 2). This module computes all
//! of it.

mod bounds;
mod footprint;
mod monitor;
mod partition;
mod spenders;
mod sync_state;

pub use bounds::{consensus_number_bounds, CnBounds};
pub(crate) use footprint::cell_index;
pub use footprint::{
    footprints_conflict, ops_conflict, Access, Cell, CellKey, Footprint, FootprintedOp, OpFootprint,
};
pub use monitor::{SyncMonitor, SyncPoint};
pub use partition::{max_spender_account, partition_index};
pub use spenders::enabled_spenders;
pub use sync_state::{
    algorithm1_ready, is_sync_state_for, sync_level, unique_transfers, SyncWitness,
};

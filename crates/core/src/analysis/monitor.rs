//! Dynamic tracking of the consensus number of a live token.
//!
//! Section 7 of the paper: "the consistency mechanism could be flexibly
//! adapted, during execution, to require higher or lower coordination among
//! nodes depending on the current state of the smart contract". The
//! [`SyncMonitor`] is the sensing half of that vision: it watches a token's
//! state after every operation and records the evolution of its
//! consensus-number bounds.

use tokensync_spec::AccountId;

use crate::erc20::Erc20State;

use super::bounds::{consensus_number_bounds, CnBounds};
use super::partition::max_spender_account;

/// One sample of the synchronization requirements of a token state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncPoint {
    /// Index of the operation after which the sample was taken (0 = initial
    /// state).
    pub op_index: usize,
    /// Consensus-number bounds at that point.
    pub bounds: CnBounds,
    /// The account with the most enabled spenders (the synchronization
    /// hotspot), if any.
    pub hotspot: Option<AccountId>,
}

/// Records the consensus-number trajectory of an evolving token state.
///
/// # Example
///
/// ```
/// use tokensync_core::analysis::SyncMonitor;
/// use tokensync_core::erc20::Erc20Token;
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let mut token = Erc20Token::deploy(3, ProcessId::new(0), 10);
/// let mut monitor = SyncMonitor::new();
/// monitor.observe(token.state());
/// token.approve(ProcessId::new(0), ProcessId::new(1), 6)?;
/// monitor.observe(token.state());
/// assert_eq!(monitor.series().last().unwrap().bounds.upper, 2);
/// assert_eq!(monitor.max_level_seen(), 2);
/// # Ok::<(), tokensync_core::TokenError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct SyncMonitor {
    series: Vec<SyncPoint>,
}

impl SyncMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Samples `state`, appending a [`SyncPoint`] to the series.
    ///
    /// Returns the recorded point.
    pub fn observe(&mut self, state: &Erc20State) -> SyncPoint {
        let point = SyncPoint {
            op_index: self.series.len(),
            bounds: consensus_number_bounds(state),
            hotspot: max_spender_account(state).map(|(a, _)| a),
        };
        self.series.push(point);
        point
    }

    /// The recorded trajectory.
    pub fn series(&self) -> &[SyncPoint] {
        &self.series
    }

    /// The largest upper bound ever observed — the synchronization level a
    /// provisioning layer would have to support for this execution.
    pub fn max_level_seen(&self) -> usize {
        self.series
            .iter()
            .map(|p| p.bounds.upper)
            .max()
            .unwrap_or(1)
    }

    /// Count of observations whose bounds were exact (equation (17) states).
    pub fn exact_points(&self) -> usize {
        self.series.iter().filter(|p| p.bounds.is_exact()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokensync_spec::ProcessId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn trajectory_rises_and_falls_with_approvals() {
        let mut q = Erc20State::with_deployer(4, p(0), 10);
        let mut m = SyncMonitor::new();
        m.observe(&q); // CN = 1

        q.approve(p(0), p(1), 6).unwrap();
        m.observe(&q); // CN = 2

        q.approve(p(0), p(2), 7).unwrap();
        m.observe(&q); // CN = 3

        q.approve(p(0), p(1), 0).unwrap(); // revoke
        q.approve(p(0), p(2), 0).unwrap(); // revoke
        m.observe(&q); // CN = 1 again

        let uppers: Vec<usize> = m.series().iter().map(|pt| pt.bounds.upper).collect();
        assert_eq!(uppers, vec![1, 2, 3, 1]);
        assert_eq!(m.max_level_seen(), 3);
        assert_eq!(m.exact_points(), 4);
    }

    #[test]
    fn op_indices_are_sequential() {
        let q = Erc20State::new(2);
        let mut m = SyncMonitor::new();
        m.observe(&q);
        m.observe(&q);
        let idx: Vec<usize> = m.series().iter().map(|pt| pt.op_index).collect();
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn empty_monitor_reports_level_one() {
        let m = SyncMonitor::new();
        assert_eq!(m.max_level_seen(), 1);
        assert_eq!(m.exact_points(), 0);
    }
}

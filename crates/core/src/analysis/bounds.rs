//! Consensus-number bounds per state (Theorems 2 and 3 combined).

use crate::erc20::Erc20State;

use super::partition::partition_index;
use super::sync_state::sync_level;

/// Lower and upper bounds on the consensus number of `T_q` for a concrete
/// state `q`:
///
/// * `lower` — by Theorem 2, `q ∈ S_k ⟹ CN(T_q) ≥ k`; we take the largest
///   such `k` (at least 1: registers alone solve 1-process consensus).
/// * `upper` — by Theorem 3, `q ∈ Q_k ⟹ CN(T_q) ≤ k` with
///   `k = max_a |σ_q(a)|`.
///
/// When the maximizing account itself satisfies `U`, the bounds coincide
/// (equation (17): `CN(T_{S_k}) = k`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CnBounds {
    /// Largest proven lower bound.
    pub lower: usize,
    /// Partition-index upper bound.
    pub upper: usize,
}

impl CnBounds {
    /// Whether the bounds pin the consensus number exactly.
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }

    /// The exact consensus number, if pinned.
    pub fn exact(&self) -> Option<usize> {
        self.is_exact().then_some(self.lower)
    }
}

impl std::fmt::Display for CnBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_exact() {
            write!(f, "CN = {}", self.lower)
        } else {
            write!(f, "{} ≤ CN ≤ {}", self.lower, self.upper)
        }
    }
}

/// Computes [`CnBounds`] for state `q`.
///
/// # Example
///
/// ```
/// use tokensync_core::analysis::consensus_number_bounds;
/// use tokensync_core::erc20::Erc20State;
/// use tokensync_spec::{AccountId, ProcessId};
///
/// // Fresh deployment: CN = 1 (the headline for plain cryptocurrencies).
/// let q = Erc20State::with_deployer(4, ProcessId::new(0), 10);
/// assert_eq!(consensus_number_bounds(&q).exact(), Some(1));
///
/// // Owner approves two spenders with pairwise-exceeding allowances:
/// // the state enters S_3 and the consensus number jumps to exactly 3.
/// let mut q = q;
/// q.approve(ProcessId::new(0), ProcessId::new(1), 6)?;
/// q.approve(ProcessId::new(0), ProcessId::new(2), 7)?;
/// assert_eq!(consensus_number_bounds(&q).exact(), Some(3));
/// # Ok::<(), tokensync_core::TokenError>(())
/// ```
pub fn consensus_number_bounds(state: &Erc20State) -> CnBounds {
    let (lower, _) = sync_level(state);
    let upper = partition_index(state);
    debug_assert!(
        lower <= upper,
        "S_k witness cannot exceed the partition index"
    );
    CnBounds { lower, upper }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokensync_spec::{AccountId, ProcessId};

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn fresh_deployment_has_cn_one() {
        let q = Erc20State::with_deployer(5, p(0), 100);
        let b = consensus_number_bounds(&q);
        assert_eq!(b, CnBounds { lower: 1, upper: 1 });
        assert_eq!(b.to_string(), "CN = 1");
    }

    #[test]
    fn gap_when_u_fails_on_the_max_account() {
        // Three spenders but allowances too small for U: Q_3 upper bound,
        // yet only a 2-level witness exists (owner + one spender pairs are
        // in S_2 only if *some* account with |σ|=2... here the same account
        // fails U entirely, so the lower bound falls back to... still S_? —
        // no other account has spenders, so lower = 1).
        let mut q = Erc20State::from_balances(vec![10, 0, 0]);
        q.set_allowance(a(0), p(1), 3);
        q.set_allowance(a(0), p(2), 4); // 3 + 4 = 7 ≤ 10: U fails
        let b = consensus_number_bounds(&q);
        assert_eq!(b.lower, 1);
        assert_eq!(b.upper, 3);
        assert!(!b.is_exact());
        assert_eq!(b.exact(), None);
        assert_eq!(b.to_string(), "1 ≤ CN ≤ 3");
    }

    #[test]
    fn exact_when_witness_matches_partition() {
        let mut q = Erc20State::from_balances(vec![10, 0, 0]);
        q.set_allowance(a(0), p(1), 6);
        q.set_allowance(a(0), p(2), 7);
        assert_eq!(consensus_number_bounds(&q).exact(), Some(3));
    }

    #[test]
    fn two_spender_states_are_always_exact() {
        // |σ| ≤ 2 makes U trivial wherever the balance is positive.
        let mut q = Erc20State::from_balances(vec![1, 0]);
        q.set_allowance(a(0), p(1), 1000);
        assert_eq!(consensus_number_bounds(&q).exact(), Some(2));
    }
}

//! The state partition `Q = Q_1 ∪ … ∪ Q_n` (equation (11) of the paper).

use tokensync_spec::AccountId;

use crate::erc20::Erc20State;

use super::spenders::enabled_spenders;

/// Computes the partition index `k` such that `q ∈ Q_k`, i.e.
/// `k = max_a |σ_q(a)|` (equation (11)).
///
/// `k ≥ 1` always: every account has at least its owner enabled.
/// By Theorem 3, `k` is an upper bound on the consensus number of `T_q`.
///
/// # Example
///
/// ```
/// use tokensync_core::analysis::partition_index;
/// use tokensync_core::erc20::Erc20State;
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let mut q = Erc20State::with_deployer(3, ProcessId::new(0), 10);
/// assert_eq!(partition_index(&q), 1); // fresh deployment: Q_1
/// q.approve(ProcessId::new(0), ProcessId::new(1), 4)?;
/// q.approve(ProcessId::new(0), ProcessId::new(2), 4)?;
/// assert_eq!(partition_index(&q), 3); // owner + two spenders: Q_3
/// # Ok::<(), tokensync_core::TokenError>(())
/// ```
pub fn partition_index(state: &Erc20State) -> usize {
    max_spender_account(state)
        .map(|(_, k)| k)
        .unwrap_or(1)
        .max(1)
}

/// Returns the account realizing `max_a |σ_q(a)|` together with that
/// maximum, or `None` for a token with no accounts.
///
/// Ties resolve to the lowest account id, making the witness deterministic
/// (useful for reproducible experiments).
///
/// Only accounts with outstanding approvals can have `|σ_q(a)| > 1`, so
/// the maximum is taken over the sparse approval support — `O(outstanding
/// approvals)` instead of a scan of all `n` accounts. Every other account
/// has exactly `σ_q(a) = {ω(a)}`, which the seed candidate `(a_0, 1)`
/// represents (it is the tie-break winner among all such accounts).
pub fn max_spender_account(state: &Erc20State) -> Option<(AccountId, usize)> {
    if state.accounts() == 0 {
        return None;
    }
    let mut best = (AccountId::new(0), 1);
    for a in state.accounts_with_approvals() {
        let k = enabled_spenders(state, a).len();
        if k > best.1 || (k == best.1 && a < best.0) {
            best = (a, k);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokensync_spec::ProcessId;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn fresh_deployment_is_q1() {
        let q = Erc20State::with_deployer(4, p(0), 100);
        assert_eq!(partition_index(&q), 1);
    }

    #[test]
    fn approvals_raise_the_partition_index() {
        let mut q = Erc20State::with_deployer(4, p(0), 100);
        for (i, expect) in [(1, 2), (2, 3), (3, 4)] {
            q.approve(p(0), p(i), 5).unwrap();
            assert_eq!(partition_index(&q), expect);
        }
    }

    #[test]
    fn zero_balance_accounts_do_not_raise_index() {
        let mut q = Erc20State::new(3);
        q.approve(p(0), p(1), 5).unwrap();
        q.approve(p(0), p(2), 5).unwrap();
        assert_eq!(partition_index(&q), 1);
    }

    #[test]
    fn witness_prefers_lowest_account_on_ties() {
        let mut q = Erc20State::from_balances(vec![5, 5, 0]);
        q.set_allowance(a(0), p(2), 1);
        q.set_allowance(a(1), p(2), 1);
        assert_eq!(max_spender_account(&q), Some((a(0), 2)));
    }

    #[test]
    fn empty_token_defaults_to_one() {
        let q = Erc20State::new(0);
        assert_eq!(partition_index(&q), 1);
        assert_eq!(max_spender_account(&q), None);
    }
}

//! Per-operation state footprints and the *state-independent* conflict
//! relation the batched execution pipeline schedules by.
//!
//! The Section 5 analysis asks which operations need synchronization at a
//! *given* state `q` (the σ_q machinery); a batch scheduler needs the
//! stronger, state-free question: *can these two operations ever fail to
//! commute, at any state?* This module answers it by charging every
//! operation a footprint over the token's mutable cells — balance slots
//! `β(a)` and allowance cells `α(a, p̄)` — split by access mode:
//!
//! * a **debit** both reads and decreases a balance (its precondition and
//!   its response depend on the cell);
//! * a **credit** blindly increases a balance (`+=` commutes with `+=`,
//!   so two credits to the same account are *not* a conflict — this is
//!   what lets a hot sink account absorb parallel deposits);
//! * an **allowance write** overwrites (`approve`) or consumes
//!   (`transferFrom`) one allowance cell;
//! * **reads** (`balanceOf`, `allowance`) observe one cell;
//!   `totalSupply` has an *empty* footprint — the supply is invariant
//!   under `Δ`, so it commutes with everything.
//!
//! Two operations [`conflict`](OpFootprint::conflicts_with) iff one
//! accesses a cell the other writes (with the credit/credit exception).
//! Disjoint footprints touch disjoint mutable state apart from shared
//! pure increments, so the operations commute — identical final state
//! *and* identical responses in either order, at **every** state. This is
//! checked exhaustively against the sequential spec by the property tests
//! below, and it is the soundness argument of `tokensync-pipeline`'s wave
//! scheduler. The paper's catalogued conflicts (Theorem 3's proof:
//! same-source withdrawals, the approve/spender race — see
//! `tokensync-mc::commute`) appear here as debit/debit and
//! allowance-write/allowance-write collisions; the footprint relation is
//! deliberately a *superset* of the catalog because an executor must also
//! order pairs the proof may discharge as "read-only at q" (e.g. a credit
//! landing on an account another op is draining).

use tokensync_spec::{AccountId, ProcessId};

use crate::erc20::Erc20Op;

/// The cells of the state `q = (β, α)` one operation may touch, split by
/// access mode. Built by [`OpFootprint::of`]; cheap (a few `Option`s, no
/// allocation) because the pipeline computes one per op per batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpFootprint {
    /// Balance slot the op reads *and* may decrease (`β(a) -= v`): the
    /// caller's account for `transfer`, the source for `transferFrom`.
    pub debit: Option<AccountId>,
    /// Balance slot the op blindly increases (`β(a) += v`): the
    /// destination of a `transfer`/`transferFrom`.
    pub credit: Option<AccountId>,
    /// Allowance cell the op writes: overwritten by `approve`, consumed
    /// (read + debited) by `transferFrom`.
    pub allowance_write: Option<(AccountId, ProcessId)>,
    /// Balance slot read without mutation (`balanceOf`).
    pub balance_read: Option<AccountId>,
    /// Allowance cell read without mutation (`allowance`).
    pub allowance_read: Option<(AccountId, ProcessId)>,
}

impl OpFootprint {
    /// The footprint of `op` invoked by `caller`.
    pub fn of(caller: ProcessId, op: &Erc20Op) -> Self {
        match *op {
            Erc20Op::Transfer { to, .. } => Self {
                debit: Some(caller.own_account()),
                credit: Some(to),
                ..Self::default()
            },
            Erc20Op::TransferFrom { from, to, .. } => Self {
                debit: Some(from),
                credit: Some(to),
                allowance_write: Some((from, caller)),
                ..Self::default()
            },
            Erc20Op::Approve { spender, .. } => Self {
                allowance_write: Some((caller.own_account(), spender)),
                ..Self::default()
            },
            Erc20Op::BalanceOf { account } => Self {
                balance_read: Some(account),
                ..Self::default()
            },
            Erc20Op::Allowance { account, spender } => Self {
                allowance_read: Some((account, spender)),
                ..Self::default()
            },
            // Supply is invariant under Δ: the read commutes with every
            // operation, so the footprint is empty.
            Erc20Op::TotalSupply => Self::default(),
        }
    }

    /// Whether this op and `other` may fail to commute at *some* state.
    ///
    /// If this returns `false`, then at **every** state applying the two
    /// operations in either order yields the same final state and the
    /// same two responses (the property tests below check this claim
    /// against [`Erc20Spec`](crate::erc20::Erc20Spec)). The relation is
    /// symmetric.
    pub fn conflicts_with(&self, other: &Self) -> bool {
        // A debit reads its cell, so it collides with any earlier or
        // later access to that balance — including a plain credit, whose
        // deposit can flip the debit's outcome.
        let balance_hit = |a: &Self, b: &Self| {
            a.debit.is_some()
                && (a.debit == b.debit || a.debit == b.credit || a.debit == b.balance_read)
        };
        // A credit only writes, so besides debits (covered above) it
        // collides with reads of its cell; credit/credit commutes.
        let credit_hit = |a: &Self, b: &Self| a.credit.is_some() && a.credit == b.balance_read;
        // Allowance cells: any write/write or write/read collision. Two
        // writes never commute — `approve` overwrites and `transferFrom`
        // consumes, and no pair of those is order-independent in general.
        let cell_hit = |a: &Self, b: &Self| {
            a.allowance_write.is_some()
                && (a.allowance_write == b.allowance_write || a.allowance_write == b.allowance_read)
        };
        balance_hit(self, other)
            || balance_hit(other, self)
            || credit_hit(self, other)
            || credit_hit(other, self)
            || cell_hit(self, other)
            || cell_hit(other, self)
    }
}

/// Convenience form of [`OpFootprint::conflicts_with`] on raw
/// `(caller, op)` pairs.
pub fn ops_conflict(a: (ProcessId, &Erc20Op), b: (ProcessId, &Erc20Op)) -> bool {
    OpFootprint::of(a.0, a.1).conflicts_with(&OpFootprint::of(b.0, b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erc20::{Erc20Spec, Erc20State};
    use proptest::collection::vec;
    use proptest::prelude::*;
    use tokensync_spec::ObjectType;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn owner_disjoint_transfers_commute() {
        let t1 = Erc20Op::Transfer { to: a(2), value: 1 };
        let t2 = Erc20Op::Transfer { to: a(3), value: 1 };
        assert!(!ops_conflict((p(0), &t1), (p(1), &t2)));
    }

    #[test]
    fn shared_sink_credits_commute() {
        // Two deposits into the same hot account: += commutes with +=.
        let t1 = Erc20Op::Transfer { to: a(3), value: 1 };
        let t2 = Erc20Op::Transfer { to: a(3), value: 2 };
        assert!(!ops_conflict((p(0), &t1), (p(1), &t2)));
    }

    #[test]
    fn same_source_withdrawals_conflict() {
        // Theorem 3's Cases 1–3: withdrawals racing on one source.
        let tf1 = Erc20Op::TransferFrom {
            from: a(0),
            to: a(2),
            value: 1,
        };
        let tf2 = Erc20Op::TransferFrom {
            from: a(0),
            to: a(3),
            value: 1,
        };
        assert!(ops_conflict((p(2), &tf1), (p(3), &tf2)));
        // Owner's own transfer races a transferFrom on its account too.
        let t = Erc20Op::Transfer { to: a(3), value: 1 };
        assert!(ops_conflict((p(0), &t), (p(2), &tf1)));
    }

    #[test]
    fn approve_spender_race_conflicts() {
        // Theorem 3's Case 4: approve rewrites the allowance the
        // transferFrom consumes.
        let approve = Erc20Op::Approve {
            spender: p(2),
            value: 5,
        };
        let spend = Erc20Op::TransferFrom {
            from: a(0),
            to: a(1),
            value: 1,
        };
        assert!(ops_conflict((p(0), &approve), (p(2), &spend)));
        // A different spender's allowance is a different cell — but the
        // transferFrom still debits account 0's balance, which approve
        // does not touch, so the pair commutes.
        let other_spend = Erc20Op::TransferFrom {
            from: a(1),
            to: a(3),
            value: 1,
        };
        assert!(!ops_conflict((p(0), &approve), (p(2), &other_spend)));
    }

    #[test]
    fn credit_into_drained_account_conflicts() {
        // The pair Theorem 3's proof discharges as "read-only at q" but an
        // executor must still order: a deposit can flip a withdrawal's
        // outcome.
        let credit = Erc20Op::Transfer { to: a(1), value: 5 };
        let withdraw = Erc20Op::Transfer { to: a(2), value: 5 };
        assert!(ops_conflict((p(0), &credit), (p(1), &withdraw)));
    }

    #[test]
    fn approves_by_distinct_owners_commute() {
        let a1 = Erc20Op::Approve {
            spender: p(2),
            value: 5,
        };
        let a2 = Erc20Op::Approve {
            spender: p(2),
            value: 7,
        };
        assert!(!ops_conflict((p(0), &a1), (p(1), &a2)));
        // Same owner, same spender: overwrites do not commute.
        assert!(ops_conflict((p(0), &a1), (p(0), &a2)));
    }

    #[test]
    fn total_supply_commutes_with_everything() {
        let read = Erc20Op::TotalSupply;
        let ops = [
            Erc20Op::Transfer { to: a(1), value: 3 },
            Erc20Op::TransferFrom {
                from: a(0),
                to: a(1),
                value: 1,
            },
            Erc20Op::Approve {
                spender: p(1),
                value: 2,
            },
            Erc20Op::BalanceOf { account: a(0) },
        ];
        for op in &ops {
            assert!(!ops_conflict((p(0), &read), (p(2), op)));
        }
    }

    #[test]
    fn reads_conflict_with_writers_of_their_cell() {
        let bal = Erc20Op::BalanceOf { account: a(1) };
        let credit = Erc20Op::Transfer { to: a(1), value: 1 };
        assert!(ops_conflict((p(3), &bal), (p(0), &credit)));
        let alw = Erc20Op::Allowance {
            account: a(0),
            spender: p(2),
        };
        let approve = Erc20Op::Approve {
            spender: p(2),
            value: 9,
        };
        assert!(ops_conflict((p(3), &alw), (p(0), &approve)));
        // Reads never conflict with reads.
        assert!(!ops_conflict((p(3), &bal), (p(1), &bal)));
    }

    const N: usize = 4;

    fn arb_op() -> impl Strategy<Value = Erc20Op> {
        prop_oneof![
            (0..N, 0u64..4).prop_map(|(to, value)| Erc20Op::Transfer {
                to: AccountId::new(to),
                value
            }),
            (0..N, 0..N, 0u64..4).prop_map(|(from, to, value)| Erc20Op::TransferFrom {
                from: AccountId::new(from),
                to: AccountId::new(to),
                value,
            }),
            (0..N, 0u64..6).prop_map(|(spender, value)| Erc20Op::Approve {
                spender: ProcessId::new(spender),
                value
            }),
            (0..N).prop_map(|account| Erc20Op::BalanceOf {
                account: AccountId::new(account)
            }),
            (0..N, 0..N).prop_map(|(account, spender)| Erc20Op::Allowance {
                account: AccountId::new(account),
                spender: ProcessId::new(spender),
            }),
            Just(Erc20Op::TotalSupply),
        ]
    }

    proptest! {
        /// Soundness of the state-independent relation: footprint-disjoint
        /// pairs commute exactly — same final state, same responses, in
        /// both orders, from arbitrary states.
        #[test]
        fn disjoint_footprints_commute_at_every_state(
            balances in vec(0u64..6, N),
            approvals in vec((0..N, 0..N, 1u64..5), 0..4),
            c1 in 0..N,
            c2 in 0..N,
            o1 in arb_op(),
            o2 in arb_op(),
        ) {
            let (c1, c2) = (ProcessId::new(c1), ProcessId::new(c2));
            prop_assume!(!ops_conflict((c1, &o1), (c2, &o2)));
            let mut q = Erc20State::from_balances(balances);
            for &(acct, sp, v) in &approvals {
                q.set_allowance(AccountId::new(acct), ProcessId::new(sp), v);
            }
            let spec = Erc20Spec::new(Erc20State::new(0));
            // Order A: o1 then o2.
            let mut qa = q.clone();
            let r1a = spec.apply(&mut qa, c1, &o1);
            let r2a = spec.apply(&mut qa, c2, &o2);
            // Order B: o2 then o1.
            let mut qb = q.clone();
            let r2b = spec.apply(&mut qb, c2, &o2);
            let r1b = spec.apply(&mut qb, c1, &o1);
            prop_assert_eq!(qa, qb, "states diverge for a non-conflicting pair");
            prop_assert_eq!(r1a, r1b, "first op's response depends on order");
            prop_assert_eq!(r2a, r2b, "second op's response depends on order");
        }
    }
}

//! Per-operation state footprints and the *state-independent* conflict
//! relation the batched execution pipeline schedules by — for **every**
//! token standard, not just ERC20.
//!
//! The Section 5 analysis asks which operations need synchronization at a
//! *given* state `q` (the σ_q machinery); a batch scheduler needs the
//! stronger, state-free question: *can these two operations ever fail to
//! commute, at any state?* This module answers it by charging every
//! operation a [`Footprint`] over the token's mutable [`Cell`]s, each
//! tagged with an [`Access`] mode:
//!
//! * [`Access::Update`] both reads and rewrites a cell — a balance
//!   **debit** (precondition and response depend on the cell), an
//!   allowance overwrite/consumption, an NFT ownership change, an
//!   operator-row toggle;
//! * [`Access::Credit`] blindly increases a cell (`+=` commutes with
//!   `+=`, so two credits to the same account are *not* a conflict —
//!   this is what lets a hot sink account absorb parallel deposits);
//! * [`Access::Read`] observes a cell without changing it. Supply reads
//!   (`totalSupply`) have an *empty* footprint — the supply is invariant
//!   under `Δ`, so they commute with everything.
//!
//! Two operations conflict iff they touch a common cell and the accesses
//! are not both reads and not both credits. Disjoint footprints touch
//! disjoint mutable state apart from shared pure increments, so the
//! operations commute — identical final state *and* identical responses
//! in either order, at **every** state. This is checked exhaustively
//! against the sequential specs by property tests (here for ERC20, in
//! `standards::erc721`/`standards::erc1155` for the Section 6 objects),
//! and it is the soundness argument of `tokensync-pipeline`'s wave
//! scheduler. The paper's catalogued conflicts (Theorem 3's proof:
//! same-source withdrawals, the approve/spender race — see
//! `tokensync-mc::commute`) appear here as update/update collisions; the
//! footprint relation is deliberately a *superset* of the catalog because
//! an executor must also order pairs the proof may discharge as
//! "read-only at q" (e.g. a credit landing on an account another op is
//! draining).
//!
//! [`OpFootprint`] is the original ERC20-shaped footprint (a handful of
//! `Option` fields, `Copy`, no allocation); it remains as the ERC20
//! instance and [`FootprintedOp`] for [`Erc20Op`] is defined by lowering
//! it into the generic cell form — the two relations are proven to agree
//! by the tests below.

use smallvec::SmallVec;
use tokensync_spec::{AccountId, ProcessId};

use crate::erc20::Erc20Op;

/// Inline charge capacity of a [`Footprint`]: every single-op footprint
/// in the tree fits (the widest, `transferFrom`, charges 3 cells; an
/// ERC1155 batch charges `2·rows + 1` and only spills past 3 rows).
const INLINE_CHARGES: usize = 8;

/// One mutable cell of a token object's state, across all the standards
/// of Section 6. The pipeline never interprets a cell — it only compares
/// them for equality — so one enum covers every standard without the
/// scheduler knowing which object it is serving.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cell {
    /// An ERC20/ERC777 balance slot `β(a)`.
    Balance(u32),
    /// An ERC20 allowance cell `α(a, p̄)`.
    Allowance(u32, u32),
    /// An ERC721 per-token cell: ownership plus the single-use approval
    /// of one `tokenId`.
    Token(u32),
    /// The operator *column* of one process: every
    /// `isApprovedForAll(·, p)` row with `p` as the operator
    /// (ERC721/ERC1155/ERC777 `setApprovalForAll` /
    /// `authorizeOperator`). Keyed by the operator alone — coarser than
    /// the `(holder, operator)` pair, which over-approximates (two
    /// holders toggling the same operator conflict spuriously) but stays
    /// state-independent: an authorization check by caller `p` cannot
    /// know which holder's row it will consult, yet always consults a
    /// row in `p`'s column.
    Operator(u32),
    /// An ERC1155 `(token type, account)` balance cell.
    Typed(u32, u32),
}

impl Cell {
    /// The interned, pre-hashed form of this cell — computed once per
    /// charge so downstream registries (the wave scheduler, the bypass
    /// probe) neither re-hash nor re-compare variant structure per
    /// lookup. See [`CellKey`].
    pub fn key(self) -> CellKey {
        let (tag, a, b) = match self {
            Cell::Balance(a) => (0u128, a, 0),
            Cell::Allowance(a, p) => (1, a, p),
            Cell::Token(t) => (2, t, 0),
            Cell::Operator(p) => (3, p, 0),
            Cell::Typed(t, a) => (4, t, a),
        };
        let packed = (tag << 64) | ((a as u128) << 32) | b as u128;
        CellKey {
            packed,
            hash: mix64((packed as u64) ^ (packed >> 64) as u64 ^ GOLDEN),
        }
    }
}

/// 2⁶⁴/φ — the usual odd multiplicative constant; separates the variant
/// tag bits before the finalizer.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a cheap full-avalanche mix, so the low bits of a
/// [`CellKey`] hash are usable as open-addressing bucket indices even
/// though account/token ids are small dense integers.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An interned [`Cell`]: the variant packed into one `u128` plus its
/// hash, computed once at [`Cell::key`] time. Equality compares the
/// packing (exact — the packing is injective); [`std::hash::Hash`]
/// forwards the pre-computed hash, so hashing a `CellKey` is free no
/// matter which hasher consumes it.
#[derive(Clone, Copy, Debug, PartialOrd, Ord)]
pub struct CellKey {
    packed: u128,
    hash: u64,
}

impl CellKey {
    /// The injectively packed `(variant, ids)` value.
    pub fn packed(self) -> u128 {
        self.packed
    }

    /// The pre-computed 64-bit hash of [`packed`](CellKey::packed).
    pub fn hash(self) -> u64 {
        self.hash
    }
}

impl PartialEq for CellKey {
    fn eq(&self, other: &Self) -> bool {
        self.packed == other.packed
    }
}

impl Eq for CellKey {}

impl std::hash::Hash for CellKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// How an operation touches a [`Cell`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Observes the cell without changing it.
    Read,
    /// Blindly increases the cell (`+=`): commutes with other credits of
    /// the same cell, conflicts with everything else.
    Credit,
    /// Reads and/or rewrites the cell: debits, overwrites, consumption,
    /// ownership moves, operator toggles. Conflicts with every other
    /// access of the cell.
    Update,
}

impl Access {
    /// Whether two accesses of the *same* cell commute: only read/read
    /// and credit/credit do.
    pub fn commutes_with(self, other: Access) -> bool {
        matches!(
            (self, other),
            (Access::Read, Access::Read) | (Access::Credit, Access::Credit)
        )
    }
}

/// The set of `(cell, access)` charges of one operation. Built via
/// [`FootprintedOp::footprint_into`] into a caller-owned buffer so the
/// scheduler's hot loop performs no allocation at all: the charges live
/// in an inline small-vector (8 slots — every single-op footprint fits
/// without spilling), and clearing keeps whatever spill
/// capacity a wide batch op ever forced, so the reused buffer is
/// allocation-free in steady state.
///
/// # Examples
///
/// Two owner-disjoint transfers commute (their cell sets only co-credit);
/// two withdrawals racing one source conflict on its balance cell:
///
/// ```
/// use tokensync_core::analysis::FootprintedOp;
/// use tokensync_core::erc20::Erc20Op;
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let pay = |to: usize| Erc20Op::Transfer { to: AccountId::new(to), value: 1 };
/// let alice = (ProcessId::new(0), pay(7));
/// let bob = (ProcessId::new(1), pay(7));
/// // Disjoint sources, shared destination: credits commute.
/// assert!(!alice.1.footprint(alice.0).conflicts_with(&bob.1.footprint(bob.0)));
/// // Same source racing itself: update/update on one balance cell.
/// let again = (ProcessId::new(0), pay(3));
/// assert!(alice.1.footprint(alice.0).conflicts_with(&again.1.footprint(again.0)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    entries: SmallVec<(Cell, Access), INLINE_CHARGES>,
}

impl Footprint {
    /// An empty footprint (commutes with everything).
    pub const fn new() -> Self {
        Self {
            entries: SmallVec::new(),
        }
    }

    /// Removes all charges, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Charges `access` on `cell`.
    pub fn push(&mut self, cell: Cell, access: Access) {
        self.entries.push((cell, access));
    }

    /// The charges, in push order (one op may charge a cell repeatedly —
    /// e.g. a batch naming a token type twice; self-collisions are
    /// meaningless and ignored by the scheduler).
    pub fn iter(&self) -> impl Iterator<Item = (Cell, Access)> + '_ {
        self.entries.iter().copied()
    }

    /// Whether no cell is charged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of charges.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether this op and `other` may fail to commute at *some* state:
    /// a shared cell with accesses that are not read/read or
    /// credit/credit. Symmetric. If this returns `false` the two
    /// operations commute at **every** state (same final state, same two
    /// responses in either order) — the per-standard property suites
    /// check that claim against the sequential specs.
    pub fn conflicts_with(&self, other: &Footprint) -> bool {
        self.iter().any(|(cell, access)| {
            other
                .iter()
                .any(|(c, a)| c == cell && !access.commutes_with(a))
        })
    }
}

/// An operation that can report its state footprint — the one bound the
/// generic pipeline scheduler needs. Implemented by [`Erc20Op`] (lowering
/// [`OpFootprint`]) and by the ERC721/ERC1155 op alphabets in
/// [`standards`](crate::standards).
pub trait FootprintedOp {
    /// Appends the `(cell, access)` charges of this op invoked by
    /// `caller` into `out` (which the caller has cleared). Batch
    /// operations append one charge per touched cell — their footprint
    /// is the union of their parts.
    fn footprint_into(&self, caller: ProcessId, out: &mut Footprint);

    /// Convenience allocating form of
    /// [`footprint_into`](FootprintedOp::footprint_into).
    fn footprint(&self, caller: ProcessId) -> Footprint {
        let mut out = Footprint::new();
        self.footprint_into(caller, &mut out);
        out
    }
}

/// Convenience: whether two raw `(caller, op)` pairs may fail to commute,
/// per the generic footprint relation.
pub fn footprints_conflict<O: FootprintedOp>(a: (ProcessId, &O), b: (ProcessId, &O)) -> bool {
    a.1.footprint(a.0).conflicts_with(&b.1.footprint(b.0))
}

/// Saturating index → cell-key conversion shared by every standard's
/// [`FootprintedOp`] impl. Ids beyond `u32::MAX` all alias onto the
/// `u32::MAX` sentinel cell, which is *sound*: the specs treat every
/// out-of-range id as a failing/no-op operation, so aliasing them can
/// only add spurious conflicts (serializing what would commute), never
/// hide one — and, unlike a panicking conversion, a hostile op id can
/// never take down the scheduler.
pub(crate) fn cell_index(i: usize) -> u32 {
    u32::try_from(i).unwrap_or(u32::MAX)
}

impl FootprintedOp for Erc20Op {
    fn footprint_into(&self, caller: ProcessId, out: &mut Footprint) {
        let f = OpFootprint::of(caller, self);
        if let Some(d) = f.debit {
            out.push(Cell::Balance(cell_index(d.index())), Access::Update);
        }
        if let Some(c) = f.credit {
            out.push(Cell::Balance(cell_index(c.index())), Access::Credit);
        }
        if let Some((a, p)) = f.allowance_write {
            out.push(
                Cell::Allowance(cell_index(a.index()), cell_index(p.index())),
                Access::Update,
            );
        }
        if let Some(r) = f.balance_read {
            out.push(Cell::Balance(cell_index(r.index())), Access::Read);
        }
        if let Some((a, p)) = f.allowance_read {
            out.push(
                Cell::Allowance(cell_index(a.index()), cell_index(p.index())),
                Access::Read,
            );
        }
    }
}

/// The cells of the state `q = (β, α)` one operation may touch, split by
/// access mode. Built by [`OpFootprint::of`]; cheap (a few `Option`s, no
/// allocation) because the pipeline computes one per op per batch.
///
/// # Examples
///
/// ```
/// use tokensync_core::analysis::OpFootprint;
/// use tokensync_core::erc20::Erc20Op;
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let op = Erc20Op::TransferFrom {
///     from: AccountId::new(2),
///     to: AccountId::new(5),
///     value: 1,
/// };
/// let f = OpFootprint::of(ProcessId::new(9), &op);
/// assert_eq!(f.debit, Some(AccountId::new(2)));             // source debited
/// assert_eq!(f.credit, Some(AccountId::new(5)));            // sink credited
/// assert_eq!(
///     f.allowance_write,
///     Some((AccountId::new(2), ProcessId::new(9)))          // allowance consumed
/// );
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpFootprint {
    /// Balance slot the op reads *and* may decrease (`β(a) -= v`): the
    /// caller's account for `transfer`, the source for `transferFrom`.
    pub debit: Option<AccountId>,
    /// Balance slot the op blindly increases (`β(a) += v`): the
    /// destination of a `transfer`/`transferFrom`.
    pub credit: Option<AccountId>,
    /// Allowance cell the op writes: overwritten by `approve`, consumed
    /// (read + debited) by `transferFrom`.
    pub allowance_write: Option<(AccountId, ProcessId)>,
    /// Balance slot read without mutation (`balanceOf`).
    pub balance_read: Option<AccountId>,
    /// Allowance cell read without mutation (`allowance`).
    pub allowance_read: Option<(AccountId, ProcessId)>,
}

impl OpFootprint {
    /// The footprint of `op` invoked by `caller`.
    pub fn of(caller: ProcessId, op: &Erc20Op) -> Self {
        match *op {
            Erc20Op::Transfer { to, .. } => Self {
                debit: Some(caller.own_account()),
                credit: Some(to),
                ..Self::default()
            },
            Erc20Op::TransferFrom { from, to, .. } => Self {
                debit: Some(from),
                credit: Some(to),
                allowance_write: Some((from, caller)),
                ..Self::default()
            },
            Erc20Op::Approve { spender, .. } => Self {
                allowance_write: Some((caller.own_account(), spender)),
                ..Self::default()
            },
            Erc20Op::BalanceOf { account } => Self {
                balance_read: Some(account),
                ..Self::default()
            },
            Erc20Op::Allowance { account, spender } => Self {
                allowance_read: Some((account, spender)),
                ..Self::default()
            },
            // Supply is invariant under Δ: the read commutes with every
            // operation, so the footprint is empty.
            Erc20Op::TotalSupply => Self::default(),
        }
    }

    /// Whether this op and `other` may fail to commute at *some* state.
    ///
    /// If this returns `false`, then at **every** state applying the two
    /// operations in either order yields the same final state and the
    /// same two responses (the property tests below check this claim
    /// against [`Erc20Spec`](crate::erc20::Erc20Spec)). The relation is
    /// symmetric.
    pub fn conflicts_with(&self, other: &Self) -> bool {
        // A debit reads its cell, so it collides with any earlier or
        // later access to that balance — including a plain credit, whose
        // deposit can flip the debit's outcome.
        let balance_hit = |a: &Self, b: &Self| {
            a.debit.is_some()
                && (a.debit == b.debit || a.debit == b.credit || a.debit == b.balance_read)
        };
        // A credit only writes, so besides debits (covered above) it
        // collides with reads of its cell; credit/credit commutes.
        let credit_hit = |a: &Self, b: &Self| a.credit.is_some() && a.credit == b.balance_read;
        // Allowance cells: any write/write or write/read collision. Two
        // writes never commute — `approve` overwrites and `transferFrom`
        // consumes, and no pair of those is order-independent in general.
        let cell_hit = |a: &Self, b: &Self| {
            a.allowance_write.is_some()
                && (a.allowance_write == b.allowance_write || a.allowance_write == b.allowance_read)
        };
        balance_hit(self, other)
            || balance_hit(other, self)
            || credit_hit(self, other)
            || credit_hit(other, self)
            || cell_hit(self, other)
            || cell_hit(other, self)
    }
}

/// Convenience form of [`OpFootprint::conflicts_with`] on raw
/// `(caller, op)` pairs.
pub fn ops_conflict(a: (ProcessId, &Erc20Op), b: (ProcessId, &Erc20Op)) -> bool {
    OpFootprint::of(a.0, a.1).conflicts_with(&OpFootprint::of(b.0, b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erc20::{Erc20Spec, Erc20State};
    use proptest::collection::vec;
    use proptest::prelude::*;
    use tokensync_spec::ObjectType;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn owner_disjoint_transfers_commute() {
        let t1 = Erc20Op::Transfer { to: a(2), value: 1 };
        let t2 = Erc20Op::Transfer { to: a(3), value: 1 };
        assert!(!ops_conflict((p(0), &t1), (p(1), &t2)));
    }

    #[test]
    fn shared_sink_credits_commute() {
        // Two deposits into the same hot account: += commutes with +=.
        let t1 = Erc20Op::Transfer { to: a(3), value: 1 };
        let t2 = Erc20Op::Transfer { to: a(3), value: 2 };
        assert!(!ops_conflict((p(0), &t1), (p(1), &t2)));
    }

    #[test]
    fn same_source_withdrawals_conflict() {
        // Theorem 3's Cases 1–3: withdrawals racing on one source.
        let tf1 = Erc20Op::TransferFrom {
            from: a(0),
            to: a(2),
            value: 1,
        };
        let tf2 = Erc20Op::TransferFrom {
            from: a(0),
            to: a(3),
            value: 1,
        };
        assert!(ops_conflict((p(2), &tf1), (p(3), &tf2)));
        // Owner's own transfer races a transferFrom on its account too.
        let t = Erc20Op::Transfer { to: a(3), value: 1 };
        assert!(ops_conflict((p(0), &t), (p(2), &tf1)));
    }

    #[test]
    fn approve_spender_race_conflicts() {
        // Theorem 3's Case 4: approve rewrites the allowance the
        // transferFrom consumes.
        let approve = Erc20Op::Approve {
            spender: p(2),
            value: 5,
        };
        let spend = Erc20Op::TransferFrom {
            from: a(0),
            to: a(1),
            value: 1,
        };
        assert!(ops_conflict((p(0), &approve), (p(2), &spend)));
        // A different spender's allowance is a different cell — but the
        // transferFrom still debits account 0's balance, which approve
        // does not touch, so the pair commutes.
        let other_spend = Erc20Op::TransferFrom {
            from: a(1),
            to: a(3),
            value: 1,
        };
        assert!(!ops_conflict((p(0), &approve), (p(2), &other_spend)));
    }

    #[test]
    fn credit_into_drained_account_conflicts() {
        // The pair Theorem 3's proof discharges as "read-only at q" but an
        // executor must still order: a deposit can flip a withdrawal's
        // outcome.
        let credit = Erc20Op::Transfer { to: a(1), value: 5 };
        let withdraw = Erc20Op::Transfer { to: a(2), value: 5 };
        assert!(ops_conflict((p(0), &credit), (p(1), &withdraw)));
    }

    #[test]
    fn approves_by_distinct_owners_commute() {
        let a1 = Erc20Op::Approve {
            spender: p(2),
            value: 5,
        };
        let a2 = Erc20Op::Approve {
            spender: p(2),
            value: 7,
        };
        assert!(!ops_conflict((p(0), &a1), (p(1), &a2)));
        // Same owner, same spender: overwrites do not commute.
        assert!(ops_conflict((p(0), &a1), (p(0), &a2)));
    }

    #[test]
    fn total_supply_commutes_with_everything() {
        let read = Erc20Op::TotalSupply;
        let ops = [
            Erc20Op::Transfer { to: a(1), value: 3 },
            Erc20Op::TransferFrom {
                from: a(0),
                to: a(1),
                value: 1,
            },
            Erc20Op::Approve {
                spender: p(1),
                value: 2,
            },
            Erc20Op::BalanceOf { account: a(0) },
        ];
        for op in &ops {
            assert!(!ops_conflict((p(0), &read), (p(2), op)));
        }
    }

    #[test]
    fn reads_conflict_with_writers_of_their_cell() {
        let bal = Erc20Op::BalanceOf { account: a(1) };
        let credit = Erc20Op::Transfer { to: a(1), value: 1 };
        assert!(ops_conflict((p(3), &bal), (p(0), &credit)));
        let alw = Erc20Op::Allowance {
            account: a(0),
            spender: p(2),
        };
        let approve = Erc20Op::Approve {
            spender: p(2),
            value: 9,
        };
        assert!(ops_conflict((p(3), &alw), (p(0), &approve)));
        // Reads never conflict with reads.
        assert!(!ops_conflict((p(3), &bal), (p(1), &bal)));
    }

    #[test]
    fn generic_footprint_agrees_with_erc20_specialized_relation() {
        // The generic Cell/Access lowering must induce exactly the
        // relation `OpFootprint::conflicts_with` defines — every mode
        // pair of the specialized table maps onto the three-mode rule.
        let ops = [
            Erc20Op::Transfer { to: a(1), value: 1 },
            Erc20Op::Transfer { to: a(2), value: 2 },
            Erc20Op::TransferFrom {
                from: a(0),
                to: a(2),
                value: 1,
            },
            Erc20Op::TransferFrom {
                from: a(1),
                to: a(3),
                value: 1,
            },
            Erc20Op::Approve {
                spender: p(2),
                value: 5,
            },
            Erc20Op::BalanceOf { account: a(1) },
            Erc20Op::Allowance {
                account: a(0),
                spender: p(2),
            },
            Erc20Op::TotalSupply,
        ];
        for c1 in 0..N {
            for c2 in 0..N {
                for o1 in &ops {
                    for o2 in &ops {
                        let (c1, c2) = (p(c1), p(c2));
                        assert_eq!(
                            footprints_conflict((c1, o1), (c2, o2)),
                            ops_conflict((c1, o1), (c2, o2)),
                            "generic and ERC20 relations disagree on \
                             {c1}:{o1:?} vs {c2}:{o2:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_footprint_commutes_with_everything() {
        let supply = Erc20Op::TotalSupply.footprint(p(0));
        assert!(supply.is_empty());
        assert_eq!(supply.len(), 0);
        let spend = Erc20Op::TransferFrom {
            from: a(0),
            to: a(1),
            value: 1,
        }
        .footprint(p(2));
        assert_eq!(spend.len(), 3);
        assert!(!supply.conflicts_with(&spend));
        assert!(spend.conflicts_with(&spend.clone()));
    }

    #[test]
    fn cell_keys_are_injective_and_prehashed() {
        // Distinct cells — including same-id cells of different variants,
        // and transposed pair ids — must pack to distinct keys.
        let cells = [
            Cell::Balance(0),
            Cell::Balance(1),
            Cell::Allowance(0, 1),
            Cell::Allowance(1, 0),
            Cell::Token(0),
            Cell::Token(1),
            Cell::Operator(0),
            Cell::Typed(0, 1),
            Cell::Typed(1, 0),
            Cell::Balance(u32::MAX),
            Cell::Allowance(u32::MAX, u32::MAX),
        ];
        for (i, x) in cells.iter().enumerate() {
            for (j, y) in cells.iter().enumerate() {
                assert_eq!(
                    x.key() == y.key(),
                    i == j,
                    "key packing not injective on {x:?} vs {y:?}"
                );
                assert_eq!(x.key().packed() == y.key().packed(), i == j);
            }
            // Stable and pre-hashed: recomputing yields the same hash.
            assert_eq!(x.key().hash(), x.key().hash());
        }
        // The std Hash impl forwards the pre-computed value.
        use std::hash::{Hash, Hasher};
        let mut h = std::hash::DefaultHasher::new();
        Hash::hash(&cells[0].key(), &mut h);
        let _ = h.finish();
    }

    #[test]
    fn footprints_never_spill_for_single_ops() {
        // The inline capacity covers every single-op footprint in the
        // ERC20 alphabet — the scheduler's hot loop stays allocation-free.
        let ops = [
            Erc20Op::Transfer { to: a(1), value: 1 },
            Erc20Op::TransferFrom {
                from: a(0),
                to: a(1),
                value: 1,
            },
            Erc20Op::Approve {
                spender: p(1),
                value: 1,
            },
            Erc20Op::BalanceOf { account: a(0) },
            Erc20Op::Allowance {
                account: a(0),
                spender: p(1),
            },
            Erc20Op::TotalSupply,
        ];
        let mut fp = Footprint::new();
        for op in &ops {
            fp.clear();
            op.footprint_into(p(3), &mut fp);
            assert!(fp.len() <= 3, "{op:?} charges more cells than expected");
        }
    }

    #[test]
    fn access_mode_table() {
        use Access::*;
        assert!(Read.commutes_with(Read));
        assert!(Credit.commutes_with(Credit));
        for (x, y) in [
            (Read, Credit),
            (Read, Update),
            (Credit, Update),
            (Update, Update),
        ] {
            assert!(!x.commutes_with(y));
            assert!(!y.commutes_with(x));
        }
    }

    const N: usize = 4;

    fn arb_op() -> impl Strategy<Value = Erc20Op> {
        prop_oneof![
            (0..N, 0u64..4).prop_map(|(to, value)| Erc20Op::Transfer {
                to: AccountId::new(to),
                value
            }),
            (0..N, 0..N, 0u64..4).prop_map(|(from, to, value)| Erc20Op::TransferFrom {
                from: AccountId::new(from),
                to: AccountId::new(to),
                value,
            }),
            (0..N, 0u64..6).prop_map(|(spender, value)| Erc20Op::Approve {
                spender: ProcessId::new(spender),
                value
            }),
            (0..N).prop_map(|account| Erc20Op::BalanceOf {
                account: AccountId::new(account)
            }),
            (0..N, 0..N).prop_map(|(account, spender)| Erc20Op::Allowance {
                account: AccountId::new(account),
                spender: ProcessId::new(spender),
            }),
            Just(Erc20Op::TotalSupply),
        ]
    }

    proptest! {
        /// Soundness of the state-independent relation: footprint-disjoint
        /// pairs commute exactly — same final state, same responses, in
        /// both orders, from arbitrary states.
        #[test]
        fn disjoint_footprints_commute_at_every_state(
            balances in vec(0u64..6, N),
            approvals in vec((0..N, 0..N, 1u64..5), 0..4),
            c1 in 0..N,
            c2 in 0..N,
            o1 in arb_op(),
            o2 in arb_op(),
        ) {
            let (c1, c2) = (ProcessId::new(c1), ProcessId::new(c2));
            prop_assume!(!ops_conflict((c1, &o1), (c2, &o2)));
            let mut q = Erc20State::from_balances(balances);
            for &(acct, sp, v) in &approvals {
                q.set_allowance(AccountId::new(acct), ProcessId::new(sp), v);
            }
            let spec = Erc20Spec::new(Erc20State::new(0));
            // Order A: o1 then o2.
            let mut qa = q.clone();
            let r1a = spec.apply(&mut qa, c1, &o1);
            let r2a = spec.apply(&mut qa, c2, &o2);
            // Order B: o2 then o1.
            let mut qb = q.clone();
            let r2b = spec.apply(&mut qb, c2, &o2);
            let r1b = spec.apply(&mut qb, c1, &o1);
            prop_assert_eq!(qa, qb, "states diverge for a non-conflicting pair");
            prop_assert_eq!(r1a, r1b, "first op's response depends on order");
            prop_assert_eq!(r2a, r2b, "second op's response depends on order");
        }
    }
}

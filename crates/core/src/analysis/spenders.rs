//! The enabled-spender map `σ_q : A → 2^Π` (equation (10) of the paper).

use std::collections::BTreeSet;

use tokensync_spec::{AccountId, ProcessId};

use crate::erc20::Erc20State;

/// Computes `σ_q(account)`: the set of processes enabled to transfer tokens
/// from `account` in state `q`.
///
/// Per equation (10), `σ_q(a) = {p ∈ Π : p = ω(a) ∨ α(a, p) > 0}` — the
/// owner plus every process with positive allowance — with the paper's
/// convention that a zero-balance account has only its owner enabled
/// (an allowance on an empty account cannot be spent until the balance is
/// replenished).
///
/// Runs in `O(e log e)` where `e` is the number of outstanding approvals
/// on `account` (the sparse row's support), independent of the total
/// number of processes `n` — at a million accounts the dense scan this
/// replaces was the analysis bottleneck.
///
/// # Example
///
/// ```
/// use tokensync_core::analysis::enabled_spenders;
/// use tokensync_core::erc20::Erc20State;
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let mut q = Erc20State::with_deployer(3, ProcessId::new(0), 10);
/// q.approve(ProcessId::new(0), ProcessId::new(2), 4)?;
/// let sigma = enabled_spenders(&q, AccountId::new(0));
/// assert!(sigma.contains(&ProcessId::new(0))); // owner
/// assert!(sigma.contains(&ProcessId::new(2))); // approved spender
/// assert_eq!(sigma.len(), 2);
/// # Ok::<(), tokensync_core::TokenError>(())
/// ```
pub fn enabled_spenders(state: &Erc20State, account: AccountId) -> BTreeSet<ProcessId> {
    let owner = account.owner();
    let mut sigma = BTreeSet::new();
    sigma.insert(owner);
    if state.balance(account) == 0 {
        // Convention after (10): β(a) = 0 ⟹ σ_q(a) = {ω(a)}.
        return sigma;
    }
    for (p, _) in state.approvals(account) {
        sigma.insert(p);
    }
    sigma
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn owner_always_enabled() {
        let q = Erc20State::new(2);
        assert_eq!(enabled_spenders(&q, a(1)), [p(1)].into());
    }

    #[test]
    fn zero_balance_hides_approved_spenders() {
        let mut q = Erc20State::new(3);
        q.set_allowance(a(0), p(1), 5);
        q.set_allowance(a(0), p(2), 5);
        assert_eq!(enabled_spenders(&q, a(0)), [p(0)].into());
        q.set_balance(a(0), 1);
        assert_eq!(enabled_spenders(&q, a(0)), [p(0), p(1), p(2)].into());
    }

    #[test]
    fn owner_self_allowance_does_not_double_count() {
        let mut q = Erc20State::from_balances(vec![4, 0]);
        q.set_allowance(a(0), p(0), 9);
        assert_eq!(enabled_spenders(&q, a(0)).len(), 1);
    }

    #[test]
    fn spenders_drop_out_when_allowance_consumed() {
        let mut q = Erc20State::from_balances(vec![10, 0]);
        q.set_allowance(a(0), p(1), 2);
        assert_eq!(enabled_spenders(&q, a(0)).len(), 2);
        q.transfer_from(p(1), a(0), a(1), 2).unwrap();
        assert_eq!(enabled_spenders(&q, a(0)), [p(0)].into());
    }
}

//! The unique-winner predicate `U` (equation (13)) and the synchronization
//! states `S_k` (equation (14)).

use tokensync_spec::{AccountId, Amount, ProcessId};

use crate::erc20::Erc20State;

use super::spenders::enabled_spenders;

/// Evaluates the paper's predicate `U(account, q)` — equation (13):
///
/// ```text
/// U(a, q)  ⇔  β(a) > 0  ∧
///             (|σ_q(a)| ≤ 2  ∨  ∀ p_i ≠ p_j ∈ σ_q(a)\{ω(a)} :
///                                α(a, p_i) + α(a, p_j) > β(a))
/// ```
///
/// `U` guarantees a *unique winner* in the Algorithm 1 race: the balance
/// covers at most one of any two spenders' withdrawals.
pub fn unique_transfers(state: &Erc20State, account: AccountId) -> bool {
    let balance = state.balance(account);
    if balance == 0 {
        return false;
    }
    let sigma = enabled_spenders(state, account);
    if sigma.len() <= 2 {
        return true;
    }
    let owner = account.owner();
    let spenders: Vec<ProcessId> = sigma.into_iter().filter(|p| *p != owner).collect();
    spenders.iter().enumerate().all(|(i, pi)| {
        spenders[i + 1..]
            .iter()
            .all(|pj| state.allowance(account, *pi) + state.allowance(account, *pj) > balance)
    })
}

/// Whether the *verbatim* Algorithm 1 of the paper can run on `account`:
/// predicate `U` plus the "sufficient allowances" premise the proof of
/// Theorem 2 states in prose — every enabled spender's allowance must not
/// exceed the balance (`0 < A_i ≤ B`), so that each spender's
/// full-allowance `transferFrom` *can* succeed when scheduled first.
///
/// Without this extra condition the verbatim algorithm can violate validity
/// (a spender whose `transferFrom` can never succeed may decide `R[1]`
/// before the owner proposed); the generalized implementation in
/// [`token_consensus`](crate::token_consensus) removes the condition by
/// transferring `min(A_i, B)` and detecting winners via allowance
/// *decrease*. The model checker demonstrates both facts
/// (`tokensync-mc::protocols`).
pub fn algorithm1_ready(state: &Erc20State, account: AccountId) -> bool {
    if !unique_transfers(state, account) {
        return false;
    }
    let balance = state.balance(account);
    let owner = account.owner();
    enabled_spenders(state, account)
        .into_iter()
        .filter(|p| *p != owner)
        .all(|p| state.allowance(account, p) <= balance)
}

/// Whether `q ∈ S_k` — equation (14): some account has exactly `k` enabled
/// spenders and satisfies `U`.
///
/// For `k ≥ 2` only accounts with outstanding approvals can qualify, so
/// the search runs over the sparse approval support. `k = 1` additionally
/// admits any funded account with no approvals (`σ_q(a) = {ω(a)}`, `U`
/// trivial), which needs a balance scan — but only when no approval-
/// bearing account already witnesses level 1.
pub fn is_sync_state_for(state: &Erc20State, k: usize) -> bool {
    let witnessed = state
        .accounts_with_approvals()
        .any(|a| enabled_spenders(state, a).len() == k && unique_transfers(state, a));
    if witnessed {
        return true;
    }
    k == 1
        && (0..state.accounts()).any(|i| {
            let a = AccountId::new(i);
            state.approval_count(a) == 0 && state.balance(a) > 0
        })
}

/// A witness that consensus among `k` processes is implementable from the
/// current state: the account, its participants and the race parameters of
/// Algorithm 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyncWitness {
    /// The account `a_1` whose spenders race.
    pub account: AccountId,
    /// The participants, owner first: `σ_q(account)` ordered with
    /// `ω(account)` at index 0, remaining spenders in process order.
    pub participants: Vec<ProcessId>,
    /// The balance `B = β(account)`.
    pub balance: Amount,
    /// The allowances `A_i = α(account, p_i)` for the non-owner
    /// participants, aligned with `participants[1..]`.
    pub allowances: Vec<Amount>,
}

impl SyncWitness {
    /// The synchronization level `k = |σ_q(account)|`.
    pub fn k(&self) -> usize {
        self.participants.len()
    }

    /// The rank of `process` among the participants (0 = owner), or `None`
    /// if it is not a participant.
    pub fn rank(&self, process: ProcessId) -> Option<usize> {
        self.participants.iter().position(|p| *p == process)
    }

    /// Builds the witness for `account` in `state`, if `U` holds there.
    pub fn for_account(state: &Erc20State, account: AccountId) -> Option<Self> {
        if !unique_transfers(state, account) {
            return None;
        }
        let owner = account.owner();
        let mut participants = vec![owner];
        let mut allowances = Vec::new();
        for p in enabled_spenders(state, account) {
            if p != owner {
                participants.push(p);
                allowances.push(state.allowance(account, p));
            }
        }
        Some(Self {
            account,
            participants,
            balance: state.balance(account),
            allowances,
        })
    }
}

/// Computes the best provable synchronization level of `q`: the largest `k`
/// with `q ∈ S_k`, together with its witness.
///
/// Returns `(1, None)` when no account satisfies `U` (consensus among a
/// single process is trivially solvable with registers alone, so level 1
/// needs no witness).
///
/// Candidates with `k ≥ 2` all carry outstanding approvals, so the search
/// runs over the sparse approval support in `O(outstanding approvals)`.
/// Accounts without approvals yield at most a `k = 1` witness (`σ_q(a) =
/// {ω(a)}` whenever `β(a) > 0`), of which only the lowest-id one can win
/// the tie-break — it is scanned for only when no stronger witness exists.
pub fn sync_level(state: &Erc20State) -> (usize, Option<SyncWitness>) {
    let key = |w: &SyncWitness| (w.k(), std::cmp::Reverse(w.account));
    let mut best = state
        .accounts_with_approvals()
        .filter_map(|a| SyncWitness::for_account(state, a))
        .max_by_key(key);
    if best.as_ref().map_or(true, |w| w.k() == 1) {
        let plain = (0..state.accounts())
            .map(AccountId::new)
            .find(|&a| state.approval_count(a) == 0 && state.balance(a) > 0);
        if let Some(w) = plain.and_then(|a| SyncWitness::for_account(state, a)) {
            if best.as_ref().map_or(true, |b| key(&w) > key(b)) {
                best = Some(w);
            }
        }
    }
    match best {
        Some(w) => (w.k().max(1), Some(w)),
        None => (1, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Balance 10 on a0; two spenders with allowances 6 and 7 (6+7 > 10).
    fn s3_state() -> Erc20State {
        let mut q = Erc20State::from_balances(vec![10, 0, 0]);
        q.set_allowance(a(0), p(1), 6);
        q.set_allowance(a(0), p(2), 7);
        q
    }

    #[test]
    fn u_holds_for_pairwise_exceeding_allowances() {
        let q = s3_state();
        assert!(unique_transfers(&q, a(0)));
        assert!(is_sync_state_for(&q, 3));
        assert!(algorithm1_ready(&q, a(0)));
    }

    #[test]
    fn u_fails_when_two_spenders_fit_in_balance() {
        let mut q = s3_state();
        q.set_allowance(a(0), p(1), 3); // 3 + 7 = 10, not > 10
        assert!(!unique_transfers(&q, a(0)));
        assert!(!is_sync_state_for(&q, 3));
    }

    #[test]
    fn u_fails_on_zero_balance() {
        let mut q = s3_state();
        q.set_balance(a(0), 0);
        assert!(!unique_transfers(&q, a(0)));
    }

    #[test]
    fn u_trivial_for_two_or_fewer_spenders() {
        let mut q = Erc20State::from_balances(vec![5, 0]);
        assert!(unique_transfers(&q, a(0))); // owner only
        q.set_allowance(a(0), p(1), 2);
        assert!(unique_transfers(&q, a(0))); // owner + one spender
    }

    #[test]
    fn algorithm1_ready_requires_winnable_allowances() {
        // U holds (|σ| = 2) but the spender's allowance exceeds the balance:
        // the verbatim Algorithm 1 is not safe here.
        let mut q = Erc20State::from_balances(vec![5, 0]);
        q.set_allowance(a(0), p(1), 10);
        assert!(unique_transfers(&q, a(0)));
        assert!(!algorithm1_ready(&q, a(0)));
    }

    #[test]
    fn witness_orders_owner_first() {
        let w = SyncWitness::for_account(&s3_state(), a(0)).unwrap();
        assert_eq!(w.participants, vec![p(0), p(1), p(2)]);
        assert_eq!(w.balance, 10);
        assert_eq!(w.allowances, vec![6, 7]);
        assert_eq!(w.k(), 3);
        assert_eq!(w.rank(p(0)), Some(0));
        assert_eq!(w.rank(p(2)), Some(2));
        assert_eq!(w.rank(p(9)), None);
    }

    #[test]
    fn sync_level_picks_largest_witness() {
        let mut q = s3_state();
        // A second account with only its owner enabled: level stays 3.
        q.set_balance(a(1), 4);
        let (k, w) = sync_level(&q);
        assert_eq!(k, 3);
        assert_eq!(w.unwrap().account, a(0));
    }

    #[test]
    fn sync_level_finds_plain_funded_account_behind_dead_approvals() {
        // a0 carries approvals but no balance (no witness); the only
        // witness is the plain funded a2, reached by the fallback scan.
        let mut q = Erc20State::from_balances(vec![0, 0, 4]);
        q.set_allowance(a(0), p(1), 5);
        let (k, w) = sync_level(&q);
        assert_eq!(k, 1);
        assert_eq!(w.unwrap().account, a(2));
        assert!(is_sync_state_for(&q, 1));
        assert!(!is_sync_state_for(&q, 2));
    }

    #[test]
    fn sync_level_defaults_to_one_without_witness() {
        let q = Erc20State::new(2); // all balances zero: U nowhere
        let (k, w) = sync_level(&q);
        assert_eq!(k, 1);
        assert!(w.is_none());
    }
}

//! The shared skeleton of the Section 6 consensus constructions.
//!
//! Every standard's adaptation of Algorithm 1 has the same three-beat
//! shape: a mover **publishes** its proposal in a register, **fires** one
//! decisive token transfer that at most one racer can land, and **reads
//! the winner** off the token state. Only the middle beat differs per
//! standard — which transfer is decisive and how the winner is read —
//! so that part is a small [`DecisiveRace`] object and the publish/decide
//! choreography lives here once, instead of being copied into
//! `Erc721Consensus`, `Erc777Consensus`, ….

use tokensync_registers::{Register, RegisterArray};
use tokensync_spec::ProcessId;

/// The standard-specific heart of a racing-transfer consensus: firing a
/// mover's decisive transfer and reading the winner off the token.
///
/// Implementations must guarantee that (a) once any fire has completed,
/// [`winner`](DecisiveRace::winner) is `Some` and stays fixed forever
/// (the decisive transfer succeeds exactly once, losers fail harmlessly
/// inside the token's own linearization), and (b) `winner` only ever
/// names a mover whose fire has started — which is what makes reading
/// the winner's proposal register safe.
pub trait DecisiveRace: Send + Sync {
    /// Fires mover `i`'s decisive transfer.
    fn fire(&self, mover: usize);

    /// Index of the mover whose transfer landed, or `None` if the race
    /// has not resolved yet.
    fn winner(&self) -> Option<usize>;
}

/// Wait-free consensus for `k` movers from a [`DecisiveRace`] plus `k`
/// atomic registers — the generic body of the paper's Section 6
/// constructions. Agreement comes from the token's linearization of the
/// racing transfers; validity from reading the winner's published
/// proposal; wait-freedom from each mover firing exactly once and
/// reading.
pub struct RaceConsensus<V, R> {
    race: R,
    movers: Vec<ProcessId>,
    proposals: RegisterArray<Option<V>>,
}

impl<V: Clone + Send + Sync, R: DecisiveRace> RaceConsensus<V, R> {
    /// Builds the consensus object over `movers` (the processes allowed
    /// to propose, in race-index order) and their decisive race.
    ///
    /// # Panics
    ///
    /// Panics if `movers` is empty.
    pub fn new(movers: Vec<ProcessId>, race: R) -> Self {
        assert!(!movers.is_empty(), "consensus requires at least one mover");
        let proposals = RegisterArray::new(movers.len(), None);
        Self {
            race,
            movers,
            proposals,
        }
    }

    /// The movers, in race-index order.
    pub fn movers(&self) -> &[ProcessId] {
        &self.movers
    }

    /// Proposes `value` on behalf of `process`: publish, fire, decide.
    ///
    /// # Panics
    ///
    /// Panics if `process` is not a mover.
    pub fn propose(&self, process: ProcessId, value: V) -> V {
        let i = self
            .movers
            .iter()
            .position(|p| *p == process)
            .unwrap_or_else(|| panic!("{process} is not a mover"));
        self.proposals.at(i).write(Some(value));
        self.race.fire(i);
        self.peek()
            .expect("after any fire the race exposes a winner")
    }

    /// The decided value, or `None` if no decisive transfer has landed.
    pub fn peek(&self) -> Option<V> {
        self.race.winner().map(|j| {
            self.proposals
                .at(j)
                .read()
                .expect("winner published its proposal before racing")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A race decided by one compare-and-swap on an atomic — the minimal
    /// DecisiveRace, for testing the choreography in isolation.
    struct CasRace {
        slot: AtomicUsize, // usize::MAX = unresolved
    }

    impl DecisiveRace for CasRace {
        fn fire(&self, mover: usize) {
            let _ =
                self.slot
                    .compare_exchange(usize::MAX, mover, Ordering::AcqRel, Ordering::Acquire);
        }
        fn winner(&self) -> Option<usize> {
            match self.slot.load(Ordering::Acquire) {
                usize::MAX => None,
                w => Some(w),
            }
        }
    }

    fn fresh(k: usize) -> RaceConsensus<&'static str, CasRace> {
        RaceConsensus::new(
            (0..k).map(ProcessId::new).collect(),
            CasRace {
                slot: AtomicUsize::new(usize::MAX),
            },
        )
    }

    #[test]
    fn first_fire_decides() {
        let c = fresh(3);
        assert_eq!(c.peek(), None);
        assert_eq!(c.propose(ProcessId::new(1), "one"), "one");
        assert_eq!(c.propose(ProcessId::new(0), "zero"), "one");
        assert_eq!(c.peek(), Some("one"));
        assert_eq!(c.movers().len(), 3);
    }

    #[test]
    #[should_panic(expected = "is not a mover")]
    fn non_mover_rejected() {
        fresh(2).propose(ProcessId::new(7), "x");
    }
}

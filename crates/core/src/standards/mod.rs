//! Other Ethereum token standards (Section 6 of the paper) and the
//! adaptations of the consensus constructions to each.
//!
//! * [`erc777`] — operator-based fungible tokens: an operator may move the
//!   holder's *entire* balance, so the unique-winner predicate `U` holds
//!   automatically and the Algorithm 1 race simplifies to a full-balance
//!   drain (the paper: "it is immediate to extend our results to ERC777").
//! * [`erc721`] — non-fungible tokens: each token is transferred
//!   individually; the race is per-`tokenId` and the winner is read off
//!   `ownerOf` (the paper's suggested adaptation).
//! * [`erc1155`] — multi-token contracts: per-account operators moving any
//!   of several token types, including atomic batches. The paper leaves the
//!   exact requirements open; we implement the object and the per-account
//!   census that upper-bounds its synchronization power.
//! * [`erc1363`] — payable tokens with receiver callbacks: the paper notes
//!   their synchronization requirements are unbounded a priori; the module
//!   demonstrates why (the callback embeds arbitrary shared objects).

pub mod erc1155;
pub mod erc1363;
pub mod erc721;
pub mod erc777;

//! Other Ethereum token standards (Section 6 of the paper), the
//! adaptations of the consensus constructions to each, and the
//! standard-generic serving objects the batched pipeline executes.
//!
//! * [`erc777`] — operator-based fungible tokens: an operator may move the
//!   holder's *entire* balance, so the unique-winner predicate `U` holds
//!   automatically and the Algorithm 1 race simplifies to a full-balance
//!   drain (the paper: "it is immediate to extend our results to ERC777").
//! * [`erc721`] — non-fungible tokens: each token is transferred
//!   individually; the race is per-`tokenId` and the winner is read off
//!   `ownerOf` (the paper's suggested adaptation). Also home of the
//!   footprinted [`erc721::Erc721Op`] alphabet, the sequential
//!   [`erc721::Erc721Spec`] oracle, and the lock-striped
//!   [`erc721::ShardedErc721`] the generic pipeline serves.
//! * [`erc1155`] — multi-token contracts: per-account operators moving any
//!   of several token types, including atomic batches whose footprints are
//!   the **union** of their per-type cells. The paper leaves the exact
//!   requirements open; we implement the object, the per-account census
//!   that upper-bounds its synchronization power, and the lock-striped
//!   [`erc1155::ShardedErc1155`] serving path.
//! * [`erc1363`] — payable tokens with receiver callbacks: the paper notes
//!   their synchronization requirements are unbounded a priori; the module
//!   demonstrates why (the callback embeds arbitrary shared objects).
//! * [`race`] — the shared skeleton of the Section 6 consensus
//!   constructions: publish a proposal, fire one decisive transfer, read
//!   the winner off the token state.

pub mod erc1155;
pub mod erc1363;
pub mod erc721;
pub mod erc777;
pub mod race;

//! The ERC721 non-fungible token standard.
//!
//! Every token is unique, identified by a `tokenId`, and transferred
//! individually. A token's owner may `approve` one process per token and
//! may enable *operators* for all of its tokens. Section 6 of the paper
//! sketches how the consensus construction adapts: approved processes race
//! `transferFrom` on a single `tokenId` and the winner is read off
//! `ownerOf`.
//!
//! Besides the sequential [`Erc721Token`] and the consensus race, the
//! `object` submodule provides the standard as a *servable* concurrent
//! object: the formal [`Erc721Op`]/[`Erc721Resp`] alphabet with per-op
//! footprints, the [`Erc721Spec`] oracle, and the lock-striped
//! [`ShardedErc721`] the generic pipeline executes.

use std::collections::BTreeSet;
use std::fmt;

use parking_lot::Mutex;
use tokensync_spec::ProcessId;

use super::race;

mod object;

pub use object::{Erc721Delta, Erc721Op, Erc721Resp, Erc721Spec, Erc721State, ShardedErc721};

/// Identifier of a non-fungible token.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct TokenId(usize);

impl TokenId {
    /// Creates a token id from an index.
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The zero-based index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nft{}", self.0)
    }
}

/// Errors of the ERC721 object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Erc721Error {
    /// The token id does not exist.
    UnknownToken(TokenId),
    /// The caller may not move this token (not owner, approved, or
    /// operator).
    NotAuthorized {
        /// The caller that was refused.
        caller: ProcessId,
        /// The token involved.
        token: TokenId,
    },
    /// `from` does not currently own the token.
    WrongOwner {
        /// The claimed owner.
        claimed: ProcessId,
        /// The actual owner.
        actual: ProcessId,
    },
}

impl fmt::Display for Erc721Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Erc721Error::UnknownToken(t) => write!(f, "token {t} does not exist"),
            Erc721Error::NotAuthorized { caller, token } => {
                write!(f, "{caller} is not authorized to move {token}")
            }
            Erc721Error::WrongOwner { claimed, actual } => {
                write!(f, "token is owned by {actual}, not {claimed}")
            }
        }
    }
}

impl std::error::Error for Erc721Error {}

/// A sequential ERC721 token contract.
///
/// # Example
///
/// ```
/// use tokensync_core::standards::erc721::{Erc721Token, TokenId};
/// use tokensync_spec::ProcessId;
///
/// let minter = ProcessId::new(0);
/// let mut nft = Erc721Token::mint_to(3, minter, 2); // tokens nft0, nft1
/// nft.approve(minter, Some(ProcessId::new(2)), TokenId::new(0))?;
/// nft.transfer_from(ProcessId::new(2), minter, ProcessId::new(2), TokenId::new(0))?;
/// assert_eq!(nft.owner_of(TokenId::new(0)), Some(ProcessId::new(2)));
/// # Ok::<(), tokensync_core::standards::erc721::Erc721Error>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Erc721Token {
    processes: usize,
    owner_of: Vec<ProcessId>,
    approved: Vec<Option<ProcessId>>,
    /// `operators[holder]`: processes enabled for *all* of holder's tokens.
    operators: Vec<BTreeSet<ProcessId>>,
}

impl Erc721Token {
    /// Mints `tokens` NFTs, all owned by `minter`, in a system of
    /// `processes` processes.
    ///
    /// # Panics
    ///
    /// Panics if `minter.index() >= processes`.
    pub fn mint_to(processes: usize, minter: ProcessId, tokens: usize) -> Self {
        assert!(minter.index() < processes, "minter out of range");
        Self {
            processes,
            owner_of: vec![minter; tokens],
            approved: vec![None; tokens],
            operators: vec![BTreeSet::new(); processes],
        }
    }

    /// Number of minted tokens.
    pub fn tokens(&self) -> usize {
        self.owner_of.len()
    }

    /// `ownerOf(tokenId)`.
    pub fn owner_of(&self, token: TokenId) -> Option<ProcessId> {
        self.owner_of.get(token.index()).copied()
    }

    /// `getApproved(tokenId)`.
    pub fn get_approved(&self, token: TokenId) -> Option<ProcessId> {
        self.approved.get(token.index()).copied().flatten()
    }

    /// `balanceOf(owner)`: number of tokens held.
    pub fn balance_of(&self, holder: ProcessId) -> usize {
        self.owner_of.iter().filter(|o| **o == holder).count()
    }

    /// `isApprovedForAll(owner, operator)`.
    pub fn is_approved_for_all(&self, holder: ProcessId, operator: ProcessId) -> bool {
        self.operators
            .get(holder.index())
            .is_some_and(|s| s.contains(&operator))
    }

    /// `setApprovalForAll(operator, approved)` by `caller`.
    pub fn set_approval_for_all(&mut self, caller: ProcessId, operator: ProcessId, on: bool) {
        if caller.index() >= self.processes || operator.index() >= self.processes {
            return;
        }
        if on {
            self.operators[caller.index()].insert(operator);
        } else {
            self.operators[caller.index()].remove(&operator);
        }
    }

    fn may_manage(&self, caller: ProcessId, token: TokenId) -> bool {
        let Some(owner) = self.owner_of(token) else {
            return false;
        };
        caller == owner
            || self.get_approved(token) == Some(caller)
            || self.is_approved_for_all(owner, caller)
    }

    /// `approve(approved, tokenId)` by `caller` (owner or operator);
    /// `None` clears the approval.
    ///
    /// # Errors
    ///
    /// [`Erc721Error::UnknownToken`] or [`Erc721Error::NotAuthorized`].
    pub fn approve(
        &mut self,
        caller: ProcessId,
        approved: Option<ProcessId>,
        token: TokenId,
    ) -> Result<(), Erc721Error> {
        let owner = self
            .owner_of(token)
            .ok_or(Erc721Error::UnknownToken(token))?;
        if caller != owner && !self.is_approved_for_all(owner, caller) {
            return Err(Erc721Error::NotAuthorized { caller, token });
        }
        self.approved[token.index()] = approved;
        Ok(())
    }

    /// `transferFrom(from, to, tokenId)` by `caller`.
    ///
    /// On success the token's single-use approval is cleared (ERC721
    /// semantics) and ownership moves to `to`.
    ///
    /// # Errors
    ///
    /// [`Erc721Error::UnknownToken`], [`Erc721Error::WrongOwner`] if `from`
    /// is not the current owner, [`Erc721Error::NotAuthorized`] if the
    /// caller is neither owner, approved, nor operator.
    pub fn transfer_from(
        &mut self,
        caller: ProcessId,
        from: ProcessId,
        to: ProcessId,
        token: TokenId,
    ) -> Result<(), Erc721Error> {
        let owner = self
            .owner_of(token)
            .ok_or(Erc721Error::UnknownToken(token))?;
        if owner != from {
            return Err(Erc721Error::WrongOwner {
                claimed: from,
                actual: owner,
            });
        }
        if !self.may_manage(caller, token) {
            return Err(Erc721Error::NotAuthorized { caller, token });
        }
        self.owner_of[token.index()] = to;
        self.approved[token.index()] = None;
        Ok(())
    }

    /// The movers of `token`: owner, approved process, and the owner's
    /// operators — the ERC721 analogue of `σ_q` for a single token.
    pub fn enabled_movers(&self, token: TokenId) -> BTreeSet<ProcessId> {
        let mut set = BTreeSet::new();
        if let Some(owner) = self.owner_of(token) {
            set.insert(owner);
            if let Some(approved) = self.get_approved(token) {
                set.insert(approved);
            }
            if let Some(ops) = self.operators.get(owner.index()) {
                set.extend(ops.iter().copied());
            }
        }
        set
    }

    /// The contract-wide synchronization level: `max_t |movers(t)|`.
    pub fn sync_level(&self) -> usize {
        (0..self.tokens())
            .map(|t| self.enabled_movers(TokenId::new(t)).len())
            .max()
            .unwrap_or(1)
            .max(1)
    }
}

/// Coarse-grained linearizable ERC721 for threaded use.
#[derive(Debug)]
pub struct SharedErc721 {
    inner: Mutex<Erc721Token>,
}

impl SharedErc721 {
    /// Wraps a sequential contract.
    pub fn new(token: Erc721Token) -> Self {
        Self {
            inner: Mutex::new(token),
        }
    }

    /// `transferFrom` (see [`Erc721Token::transfer_from`]).
    ///
    /// # Errors
    ///
    /// As the sequential method.
    pub fn transfer_from(
        &self,
        caller: ProcessId,
        from: ProcessId,
        to: ProcessId,
        token: TokenId,
    ) -> Result<(), Erc721Error> {
        self.inner.lock().transfer_from(caller, from, to, token)
    }

    /// `ownerOf`.
    pub fn owner_of(&self, token: TokenId) -> Option<ProcessId> {
        self.inner.lock().owner_of(token)
    }

    /// Snapshot.
    pub fn snapshot(&self) -> Erc721Token {
        self.inner.lock().clone()
    }
}

/// The ERC721 decisive race: the `k` movers of one NFT race
/// `transferFrom` on the same `tokenId`; ownership changes exactly once,
/// and `ownerOf` names the winner.
///
/// The owner transfers the NFT to a dedicated *sink* process (not a
/// mover) rather than to itself — an owner-to-owner transfer would leave
/// `ownerOf` unchanged and the race winnable twice.
struct NftRace {
    token: SharedErc721,
    nft: TokenId,
    original_owner: ProcessId,
    sink: ProcessId,
}

impl race::DecisiveRace for NftRace {
    fn fire(&self, mover: usize) {
        // The owner sends the NFT to the sink; every other mover sends it
        // to itself. Exactly one transferFrom can succeed because a
        // successful transfer changes `ownerOf` away from the original
        // owner, failing all later `from = original_owner` claims.
        let process = ProcessId::new(mover);
        let target = if mover == 0 { self.sink } else { process };
        let _ = self
            .token
            .transfer_from(process, self.original_owner, target, self.nft);
    }

    fn winner(&self) -> Option<usize> {
        let current = self.token.owner_of(self.nft)?;
        if current == self.original_owner {
            return None;
        }
        Some(if current == self.sink {
            0 // the owner won by parking the NFT at the sink
        } else {
            current.index()
        })
    }
}

/// Wait-free consensus from one NFT (Section 6): an instance of the
/// generic [`race::RaceConsensus`] choreography whose decisive transfer
/// is a `transferFrom` race on a single `tokenId`.
pub struct Erc721Consensus<V> {
    inner: race::RaceConsensus<V, NftRace>,
}

impl<V: Clone + Send + Sync> Erc721Consensus<V> {
    /// Creates a fresh instance: one NFT owned by `p_0`, movers
    /// `p_0 .. p_{k-1}` (non-owners enabled via `setApprovalForAll`), and
    /// sink process `p_k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "consensus requires at least one process");
        let owner = ProcessId::new(0);
        let mut token = Erc721Token::mint_to(k + 1, owner, 1);
        for i in 1..k {
            token.set_approval_for_all(owner, ProcessId::new(i), true);
        }
        Self {
            inner: race::RaceConsensus::new(
                (0..k).map(ProcessId::new).collect(),
                NftRace {
                    token: SharedErc721::new(token),
                    nft: TokenId::new(0),
                    original_owner: owner,
                    sink: ProcessId::new(k),
                },
            ),
        }
    }

    /// Proposes `value` on behalf of `process`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is not a mover.
    pub fn propose(&self, process: ProcessId, value: V) -> V {
        self.inner.propose(process, value)
    }

    /// The decided value: the proposal of the process that captured the
    /// NFT, or `None` if it has not moved yet.
    pub fn peek(&self) -> Option<V> {
        self.inner.peek()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn t(i: usize) -> TokenId {
        TokenId::new(i)
    }

    #[test]
    fn mint_and_transfer() {
        let mut nft = Erc721Token::mint_to(3, p(0), 2);
        assert_eq!(nft.balance_of(p(0)), 2);
        nft.transfer_from(p(0), p(0), p(1), t(0)).unwrap();
        assert_eq!(nft.owner_of(t(0)), Some(p(1)));
        assert_eq!(nft.balance_of(p(0)), 1);
    }

    #[test]
    fn approval_is_single_use() {
        let mut nft = Erc721Token::mint_to(3, p(0), 1);
        nft.approve(p(0), Some(p(2)), t(0)).unwrap();
        nft.transfer_from(p(2), p(0), p(2), t(0)).unwrap();
        // Approval cleared by the transfer: p2 cannot move it again on
        // behalf of anyone (it is now the owner though).
        assert_eq!(nft.get_approved(t(0)), None);
        assert_eq!(nft.owner_of(t(0)), Some(p(2)));
    }

    #[test]
    fn unauthorized_transfer_rejected() {
        let mut nft = Erc721Token::mint_to(3, p(0), 1);
        let err = nft.transfer_from(p(1), p(0), p(1), t(0)).unwrap_err();
        assert!(matches!(err, Erc721Error::NotAuthorized { .. }));
    }

    #[test]
    fn wrong_owner_rejected_after_move() {
        let mut nft = Erc721Token::mint_to(3, p(0), 1);
        nft.set_approval_for_all(p(0), p(1), true);
        nft.transfer_from(p(1), p(0), p(1), t(0)).unwrap();
        // The race property: a second transfer claiming `from = p0` fails.
        let err = nft.transfer_from(p(0), p(0), p(0), t(0)).unwrap_err();
        assert!(matches!(err, Erc721Error::WrongOwner { .. }));
    }

    #[test]
    fn movers_include_owner_approved_and_operators() {
        let mut nft = Erc721Token::mint_to(4, p(0), 1);
        nft.approve(p(0), Some(p(1)), t(0)).unwrap();
        nft.set_approval_for_all(p(0), p(2), true);
        assert_eq!(nft.enabled_movers(t(0)), [p(0), p(1), p(2)].into());
        assert_eq!(nft.sync_level(), 3);
    }

    #[test]
    fn consensus_sequential() {
        let c: Erc721Consensus<&str> = Erc721Consensus::new(3);
        assert_eq!(c.peek(), None);
        assert_eq!(c.propose(p(2), "two"), "two");
        assert_eq!(c.propose(p(0), "zero"), "two");
        assert_eq!(c.propose(p(1), "one"), "two");
    }

    #[test]
    fn consensus_owner_first_wins() {
        let c: Erc721Consensus<&str> = Erc721Consensus::new(3);
        assert_eq!(c.propose(p(0), "owner"), "owner");
        assert_eq!(c.propose(p(1), "one"), "owner");
    }

    #[test]
    fn consensus_agreement_under_contention() {
        for k in [2usize, 4, 6] {
            for _ in 0..25 {
                let c: Arc<Erc721Consensus<usize>> = Arc::new(Erc721Consensus::new(k));
                let mut decisions = Vec::new();
                crossbeam::scope(|s| {
                    let handles: Vec<_> = (0..k)
                        .map(|i| {
                            let c = Arc::clone(&c);
                            s.spawn(move |_| c.propose(p(i), i))
                        })
                        .collect();
                    for h in handles {
                        decisions.push(h.join().unwrap());
                    }
                })
                .unwrap();
                let distinct: HashSet<_> = decisions.iter().copied().collect();
                assert_eq!(distinct.len(), 1, "k={k}: {decisions:?}");
                assert!(decisions[0] < k);
            }
        }
    }
}

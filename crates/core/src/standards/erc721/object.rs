//! The ERC721 object as a formal, footprinted, concurrently servable
//! standard: op/response alphabets, a sparse sequential state and
//! [`ObjectType`] spec, per-op [`Footprint`]s, and the lock-striped
//! [`ShardedErc721`] scaling to ~1M token ids.
//!
//! Section 6 of the paper transfers the σ_q analysis to ERC721: a
//! token's movers are its owner, its approved process and the owner's
//! operators, and racing `transferFrom`s on one `tokenId` decide
//! consensus among them. For *serving*, the useful flip side is that
//! transfers of **distinct** tokens by their owners touch disjoint state
//! and commute — which the footprints below encode so the generic
//! pipeline can schedule NFT traffic into wide waves.
//!
//! Footprint catalog (soundness property-tested below):
//!
//! * every op on a `tokenId` charges [`Cell::Token`] — ownership and the
//!   single-use approval live in the same cell, so owner-disjoint
//!   transfers commute while two claims on one token serialize;
//! * an op whose authorization may consult operator rows (`caller` not
//!   the claimed owner) charges a read of [`Cell::Operator`]`(caller)`;
//!   `setApprovalForAll(op, ·)` charges an update of
//!   [`Cell::Operator`]`(op)` — the op serializes against its operator's
//!   column, never against unrelated approvals.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use parking_lot::{Mutex, MutexGuard};
use tokensync_spec::{ObjectType, ProcessId};

use crate::analysis::cell_index;
use crate::analysis::{Access, Cell, Footprint, FootprintedOp};
use crate::shared::ConcurrentObject;
use crate::util::CacheLine;

use super::TokenId;

/// Capacity guard shared by the constructors: ids are stored as `u32`
/// keys, so the id spaces must fit (a bound no real deployment meets).
fn assert_u32_space(what: &str, n: usize) {
    assert!(
        n as u128 <= u32::MAX as u128 + 1,
        "{what} space exceeds the u32 key range"
    );
}

/// The storage key of `token` if it lies inside the id space — the one
/// conversion state code may use (in-range ids always fit `u32`, per the
/// constructor guard, so this is exact where `cell_index` saturates).
fn token_key(token: TokenId, span: usize) -> Option<u32> {
    (token.index() < span).then(|| cell_index(token.index()))
}

/// Operations `O` of the ERC721 object (the subset with cell-granular
/// footprints; `balanceOf` — a whole-contract scan — is served off
/// snapshots, not the pipeline).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Erc721Op {
    /// Mints `token` to `to`: succeeds iff the id is in range and not
    /// yet minted (lazy minting — any process may trigger it).
    Mint {
        /// The receiving process.
        to: ProcessId,
        /// The token id to create.
        token: TokenId,
    },
    /// `transferFrom(from, to, tokenId)` by the caller.
    TransferFrom {
        /// The claimed current owner.
        from: ProcessId,
        /// The receiving process.
        to: ProcessId,
        /// The token moved.
        token: TokenId,
    },
    /// `approve(approved, tokenId)` by the caller; `None` clears.
    Approve {
        /// The process approved to move the token (single-use).
        approved: Option<ProcessId>,
        /// The token involved.
        token: TokenId,
    },
    /// `setApprovalForAll(operator, on)` by the caller.
    SetApprovalForAll {
        /// The operator enabled/disabled for all of the caller's tokens.
        operator: ProcessId,
        /// Enable or disable.
        on: bool,
    },
    /// `ownerOf(tokenId)`.
    OwnerOf {
        /// The token read.
        token: TokenId,
    },
    /// `getApproved(tokenId)`.
    GetApproved {
        /// The token read.
        token: TokenId,
    },
}

/// Responses `R` of the ERC721 object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Erc721Resp {
    /// Outcome of a mutating method.
    Bool(bool),
    /// Result of `ownerOf` / `getApproved` (`None`: unminted token or no
    /// approval).
    Process(Option<ProcessId>),
}

impl Erc721Resp {
    /// `TRUE`.
    pub const TRUE: Self = Erc721Resp::Bool(true);
    /// `FALSE`.
    pub const FALSE: Self = Erc721Resp::Bool(false);
}

impl FootprintedOp for Erc721Op {
    fn footprint_into(&self, caller: ProcessId, out: &mut Footprint) {
        match *self {
            Erc721Op::Mint { token, .. } => {
                out.push(Cell::Token(cell_index(token.index())), Access::Update);
            }
            Erc721Op::TransferFrom { from, token, .. } => {
                out.push(Cell::Token(cell_index(token.index())), Access::Update);
                // Only a non-owner caller's authorization can depend on
                // operator rows (an owner check and the single-use
                // approval both live in the token cell).
                if caller != from {
                    out.push(Cell::Operator(cell_index(caller.index())), Access::Read);
                }
            }
            Erc721Op::Approve { token, .. } => {
                out.push(Cell::Token(cell_index(token.index())), Access::Update);
                // The caller may or may not be the owner — statically
                // unknown, so conservatively read the caller's operator
                // column.
                out.push(Cell::Operator(cell_index(caller.index())), Access::Read);
            }
            Erc721Op::SetApprovalForAll { operator, .. } => {
                out.push(Cell::Operator(cell_index(operator.index())), Access::Update);
            }
            Erc721Op::OwnerOf { token } | Erc721Op::GetApproved { token } => {
                out.push(Cell::Token(cell_index(token.index())), Access::Read);
            }
        }
    }
}

/// The sequential ERC721 state: sparse maps over minted tokens only, so
/// a contract spanning a million token ids costs memory proportional to
/// what has actually been minted and approved. Entries are canonical
/// (no tombstones), so derived `Eq`/`Hash` coincide with mathematical
/// state equality — the linearizability checker and the model checker
/// both rely on that.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Erc721State {
    processes: usize,
    /// Capacity of the token-id space; mint beyond it fails.
    token_span: usize,
    /// Minted tokens: `tokenId → owner`.
    owners: BTreeMap<u32, u32>,
    /// Outstanding single-use approvals: `tokenId → approved` (minted
    /// tokens only, `Some` entries only).
    approved: BTreeMap<u32, u32>,
    /// Enabled operator pairs `(holder, operator)`.
    operators: BTreeSet<(u32, u32)>,
}

impl Erc721State {
    /// The all-unminted state over `processes` processes and a token-id
    /// space of `token_span` ids.
    ///
    /// # Panics
    ///
    /// Panics if either space exceeds the `u32` key range.
    pub fn new(processes: usize, token_span: usize) -> Self {
        assert_u32_space("process", processes);
        assert_u32_space("token-id", token_span);
        Self {
            processes,
            token_span,
            owners: BTreeMap::new(),
            approved: BTreeMap::new(),
            operators: BTreeSet::new(),
        }
    }

    /// Pre-mints tokens `0..tokens`, distributing ownership round-robin
    /// over all processes (token `t` to process `t % processes`) — the
    /// marketplace starting grid.
    ///
    /// # Panics
    ///
    /// Panics if `tokens > token_span` or `processes == 0`.
    pub fn minted_round_robin(processes: usize, token_span: usize, tokens: usize) -> Self {
        assert!(processes > 0, "need at least one process");
        assert!(tokens <= token_span, "cannot pre-mint past the id space");
        let mut state = Self::new(processes, token_span);
        for t in 0..tokens {
            state
                .owners
                .insert(cell_index(t), cell_index(t % processes));
        }
        state
    }

    /// Number of processes.
    pub fn processes(&self) -> usize {
        self.processes
    }

    /// The token-id space bound.
    pub fn token_span(&self) -> usize {
        self.token_span
    }

    /// Number of minted tokens.
    pub fn minted(&self) -> usize {
        self.owners.len()
    }

    /// `ownerOf(token)`.
    pub fn owner_of(&self, token: TokenId) -> Option<ProcessId> {
        u32::try_from(token.index())
            .ok()
            .and_then(|t| self.owners.get(&t))
            .map(|&o| ProcessId::new(o as usize))
    }

    /// `getApproved(token)`.
    pub fn get_approved(&self, token: TokenId) -> Option<ProcessId> {
        u32::try_from(token.index())
            .ok()
            .and_then(|t| self.approved.get(&t))
            .map(|&p| ProcessId::new(p as usize))
    }

    /// `isApprovedForAll(holder, operator)`.
    pub fn is_approved_for_all(&self, holder: ProcessId, operator: ProcessId) -> bool {
        match (
            u32::try_from(holder.index()),
            u32::try_from(operator.index()),
        ) {
            (Ok(h), Ok(o)) => self.operators.contains(&(h, o)),
            _ => false,
        }
    }

    /// `balanceOf(holder)` — a scan over minted tokens (oracle-side
    /// only; deliberately not in the pipeline op alphabet).
    pub fn balance_of(&self, holder: ProcessId) -> usize {
        let Ok(h) = u32::try_from(holder.index()) else {
            return 0;
        };
        self.owners.values().filter(|&&o| o == h).count()
    }

    /// The minted tokens in increasing id order, each with its owner and
    /// outstanding single-use approval — the canonical walk the state
    /// codec serializes.
    pub fn minted_tokens(
        &self,
    ) -> impl Iterator<Item = (TokenId, ProcessId, Option<ProcessId>)> + '_ {
        self.owners.iter().map(|(&t, &owner)| {
            (
                TokenId::new(t as usize),
                ProcessId::new(owner as usize),
                self.approved.get(&t).map(|&p| ProcessId::new(p as usize)),
            )
        })
    }

    /// The enabled `(holder, operator)` pairs in increasing order.
    pub fn operator_pairs(&self) -> impl Iterator<Item = (ProcessId, ProcessId)> + '_ {
        self.operators
            .iter()
            .map(|&(h, o)| (ProcessId::new(h as usize), ProcessId::new(o as usize)))
    }

    /// Directly mints or overwrites `token` with an owner and optional
    /// single-use approval — codec/fixture aid, not an object operation.
    ///
    /// # Panics
    ///
    /// Panics if the token or either process is out of range.
    pub fn put_token(&mut self, token: TokenId, owner: ProcessId, approved: Option<ProcessId>) {
        assert!(token.index() < self.token_span, "token out of range");
        assert!(owner.index() < self.processes, "owner out of range");
        let t = cell_index(token.index());
        self.owners.insert(t, cell_index(owner.index()));
        match approved {
            Some(p) => {
                assert!(p.index() < self.processes, "approved out of range");
                self.approved.insert(t, cell_index(p.index()));
            }
            None => {
                self.approved.remove(&t);
            }
        }
    }

    /// Enables `(holder, operator)` directly — test-fixture aid.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn set_operator(&mut self, holder: ProcessId, operator: ProcessId, on: bool) {
        assert!(holder.index() < self.processes && operator.index() < self.processes);
        let pair = (cell_index(holder.index()), cell_index(operator.index()));
        if on {
            self.operators.insert(pair);
        } else {
            self.operators.remove(&pair);
        }
    }

    /// Whether `token`, `owner` and `approved` are all inside the state's
    /// id spaces (delta-apply pre-validation).
    fn token_row_in_range(&self, token: u32, owner: u32, approved: Option<u32>) -> bool {
        (token as usize) < self.token_span
            && (owner as usize) < self.processes
            && approved.map_or(true, |a| (a as usize) < self.processes)
    }

    fn may_manage(&self, caller: ProcessId, owner: ProcessId, token: u32) -> bool {
        caller == owner
            || self.approved.get(&token) == Some(&cell_index(caller.index()))
            || self.is_approved_for_all(owner, caller)
    }
}

/// The ERC721 object type over `Erc721State` — the sequential oracle
/// the pipeline's commit log replays against. Transitions are total:
/// out-of-range ids and failed preconditions return `FALSE` (mutators)
/// or `None` (reads) with the state unchanged.
#[derive(Clone, Debug)]
pub struct Erc721Spec {
    initial: Erc721State,
}

impl Erc721Spec {
    /// Object type starting from an arbitrary state.
    pub fn new(initial: Erc721State) -> Self {
        Self { initial }
    }
}

impl ObjectType for Erc721Spec {
    type State = Erc721State;
    type Op = Erc721Op;
    type Resp = Erc721Resp;

    fn initial_state(&self) -> Erc721State {
        self.initial.clone()
    }

    fn apply(&self, state: &mut Erc721State, process: ProcessId, op: &Erc721Op) -> Erc721Resp {
        let in_range = |p: ProcessId| p.index() < state.processes;
        match *op {
            Erc721Op::Mint { to, token } => {
                let Some(t) = token_key(token, state.token_span) else {
                    return Erc721Resp::FALSE;
                };
                if !in_range(to) || !in_range(process) {
                    return Erc721Resp::FALSE;
                }
                if state.owners.contains_key(&t) {
                    return Erc721Resp::FALSE;
                }
                state.owners.insert(t, cell_index(to.index()));
                Erc721Resp::TRUE
            }
            Erc721Op::TransferFrom { from, to, token } => {
                let Some(t) = token_key(token, state.token_span) else {
                    return Erc721Resp::FALSE;
                };
                if !in_range(process) || !in_range(to) || !in_range(from) {
                    return Erc721Resp::FALSE;
                }
                let Some(owner) = state.owner_of(token) else {
                    return Erc721Resp::FALSE;
                };
                // The ERC721 check order the sequential token uses:
                // claimed owner first, then authorization.
                if owner != from || !state.may_manage(process, owner, t) {
                    return Erc721Resp::FALSE;
                }
                state.owners.insert(t, cell_index(to.index()));
                state.approved.remove(&t); // single-use approval cleared
                Erc721Resp::TRUE
            }
            Erc721Op::Approve { approved, token } => {
                let Some(t) = token_key(token, state.token_span) else {
                    return Erc721Resp::FALSE;
                };
                if !in_range(process) || approved.is_some_and(|p| !in_range(p)) {
                    return Erc721Resp::FALSE;
                }
                let Some(owner) = state.owner_of(token) else {
                    return Erc721Resp::FALSE;
                };
                if process != owner && !state.is_approved_for_all(owner, process) {
                    return Erc721Resp::FALSE;
                }
                match approved {
                    Some(p) => state.approved.insert(t, cell_index(p.index())),
                    None => state.approved.remove(&t),
                };
                Erc721Resp::TRUE
            }
            Erc721Op::SetApprovalForAll { operator, on } => {
                if !in_range(process) || !in_range(operator) || operator == process {
                    return Erc721Resp::FALSE;
                }
                let pair = (cell_index(process.index()), cell_index(operator.index()));
                if on {
                    state.operators.insert(pair);
                } else {
                    state.operators.remove(&pair);
                }
                Erc721Resp::TRUE
            }
            Erc721Op::OwnerOf { token } => Erc721Resp::Process(state.owner_of(token)),
            Erc721Op::GetApproved { token } => Erc721Resp::Process(state.get_approved(token)),
        }
    }
}

/// An incremental copy-on-write snapshot of an ERC721 object: the
/// current cell of every token touched since the previous snapshot
/// watermark plus the current membership of every operator pair toggled
/// since then, drained by [`ShardedErc721::drain_delta`] and folded back
/// onto a base [`Erc721State`] at recovery time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Erc721Delta {
    /// `(token, owner, approved)` — current cell values, increasing
    /// token order. Tokens are never unminted, so a touched token always
    /// carries a full row.
    pub tokens: Vec<(u32, u32, Option<u32>)>,
    /// `(holder, operator, enabled)` — current membership of every
    /// toggled pair, increasing pair order.
    pub operators: Vec<(u32, u32, bool)>,
}

impl Erc721Delta {
    /// Whether the delta carries no rows (nothing was touched).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty() && self.operators.is_empty()
    }

    /// Folds the delta onto `state`, overwriting every carried cell with
    /// its current value. Returns `false` (caller must discard the
    /// state) if any row is outside the state's id spaces — a valid
    /// producer never emits such a row, so `false` means a corrupt or
    /// foreign delta file.
    pub fn apply_to(&self, state: &mut Erc721State) -> bool {
        let procs = state.processes;
        if self
            .tokens
            .iter()
            .any(|&(t, o, a)| !state.token_row_in_range(t, o, a))
            || self
                .operators
                .iter()
                .any(|&(h, o, _)| (h as usize) >= procs || (o as usize) >= procs)
        {
            return false;
        }
        for &(t, owner, approved) in &self.tokens {
            state.owners.insert(t, owner);
            match approved {
                Some(a) => {
                    state.approved.insert(t, a);
                }
                None => {
                    state.approved.remove(&t);
                }
            }
        }
        for &(h, o, on) in &self.operators {
            if on {
                state.operators.insert((h, o));
            } else {
                state.operators.remove(&(h, o));
            }
        }
        true
    }
}

/// One minted token's mutable cell.
#[derive(Clone, Copy, Debug)]
struct NftCell {
    owner: u32,
    approved: Option<u32>,
}

/// One token shard: its minted cells plus the copy-on-write dirty set of
/// token ids mutated since the last [`ShardedErc721::drain_delta`].
#[derive(Clone, Debug, Default)]
struct TokenShard {
    cells: HashMap<u32, NftCell>,
    dirty: BTreeSet<u32>,
}

/// One operator stripe: its enabled pairs plus the dirty set of pairs
/// toggled since the last drain.
#[derive(Clone, Debug, Default)]
struct OpStripe {
    pairs: BTreeSet<(u32, u32)>,
    dirty: BTreeSet<(u32, u32)>,
}

/// An ERC721 contract lock-striped by **token id**, scaling to ~1M
/// token ids.
///
/// Token `t` lives in shard `t & (S−1)` with `S = min(span, 4 × cores)`
/// shards; each shard is a sparse hash map over its minted ids, so the
/// unminted tail of the id space costs nothing. Operator rows are
/// striped separately by holder. The global lock order is *every token
/// shard before every operator stripe* (token ops read operator rows
/// under their token lock; `setApprovalForAll` touches only its operator
/// stripe), so no deadlock is possible.
///
/// Linearizability is established empirically by the per-standard
/// pipeline proptests
/// (`tokensync-pipeline/tests/standards_linearizability.rs`) through
/// [`check_linearizable`](tokensync_spec::check_linearizable).
///
/// # Example
///
/// ```
/// use tokensync_core::shared::ConcurrentObject;
/// use tokensync_core::standards::erc721::{Erc721Op, Erc721Resp, Erc721State, ShardedErc721, TokenId};
/// use tokensync_spec::ProcessId;
///
/// let nft = ShardedErc721::from_state(Erc721State::minted_round_robin(4, 1000, 8));
/// let resp = nft.apply(ProcessId::new(1), &Erc721Op::TransferFrom {
///     from: ProcessId::new(1),
///     to: ProcessId::new(2),
///     token: TokenId::new(1),
/// });
/// assert_eq!(resp, Erc721Resp::TRUE);
/// assert_eq!(nft.snapshot().owner_of(TokenId::new(1)), Some(ProcessId::new(2)));
/// ```
#[derive(Debug)]
pub struct ShardedErc721 {
    /// Minted tokens of shard `s`: `tokenId → cell` for ids with
    /// `id & mask == s`, plus the shard's dirty set.
    token_shards: Vec<CacheLine<Mutex<TokenShard>>>,
    /// Operator pairs `(holder, operator)` of holder stripe `h & op_mask`,
    /// plus the stripe's dirty set.
    operator_stripes: Vec<CacheLine<Mutex<OpStripe>>>,
    mask: usize,
    op_mask: usize,
    processes: usize,
    token_span: usize,
}

impl ShardedErc721 {
    /// Builds from a sequential state over the default stripe count
    /// (`min(span, 4 × cores)` rounded down to a power of two).
    pub fn from_state(state: Erc721State) -> Self {
        let shards = crate::util::default_stripe(state.token_span.max(1));
        Self::with_shards(state, shards)
    }

    /// Builds over an explicit number of token shards (tests exercise
    /// degenerate stripings).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or not a power of two.
    pub fn with_shards(state: Erc721State, shards: usize) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two (got {shards})"
        );
        let op_stripes = crate::util::default_stripe(state.processes.max(1));
        let mut token_shards: Vec<TokenShard> = vec![TokenShard::default(); shards];
        for (&t, &owner) in &state.owners {
            token_shards[t as usize & (shards - 1)].cells.insert(
                t,
                NftCell {
                    owner,
                    approved: state.approved.get(&t).copied(),
                },
            );
        }
        let mut operator_stripes: Vec<OpStripe> = vec![OpStripe::default(); op_stripes];
        for &(h, o) in &state.operators {
            operator_stripes[h as usize & (op_stripes - 1)]
                .pairs
                .insert((h, o));
        }
        Self {
            token_shards: token_shards
                .into_iter()
                .map(|s| CacheLine(Mutex::new(s)))
                .collect(),
            operator_stripes: operator_stripes
                .into_iter()
                .map(|s| CacheLine(Mutex::new(s)))
                .collect(),
            mask: shards - 1,
            op_mask: op_stripes - 1,
            processes: state.processes,
            token_span: state.token_span,
        }
    }

    /// The token stripe count (diagnostic; benchmarks record it).
    pub fn shard_count(&self) -> usize {
        self.mask + 1
    }

    /// Number of processes.
    pub fn processes(&self) -> usize {
        self.processes
    }

    fn token_shard(&self, token: u32) -> MutexGuard<'_, TokenShard> {
        self.token_shards[token as usize & self.mask].0.lock()
    }

    /// Whether `(holder, operator)` is enabled — acquires the holder's
    /// operator stripe (callers must already hold no operator stripe and
    /// may hold token shards: the global token-before-operator order).
    fn operator_enabled(&self, holder: u32, operator: u32) -> bool {
        self.operator_stripes[holder as usize & self.op_mask]
            .0
            .lock()
            .pairs
            .contains(&(holder, operator))
    }

    fn in_range(&self, p: ProcessId) -> bool {
        p.index() < self.processes
    }

    /// Drains the copy-on-write dirty sets: the current cell of every
    /// token and the current membership of every operator pair touched
    /// since the previous drain, clearing the tracking sets.
    ///
    /// Each shard/stripe is visited under its own lock — serving
    /// continues elsewhere throughout. At a quiescent point the drained
    /// rows together with the previous snapshot reconstruct `snapshot()`
    /// exactly.
    pub fn drain_delta(&self) -> Erc721Delta {
        let mut tokens = Vec::new();
        for cell in &self.token_shards {
            let shard = &mut *cell.0.lock();
            for t in std::mem::take(&mut shard.dirty) {
                if let Some(c) = shard.cells.get(&t) {
                    tokens.push((t, c.owner, c.approved));
                }
            }
        }
        let mut operators = Vec::new();
        for cell in &self.operator_stripes {
            let stripe = &mut *cell.0.lock();
            for pair in std::mem::take(&mut stripe.dirty) {
                operators.push((pair.0, pair.1, stripe.pairs.contains(&pair)));
            }
        }
        tokens.sort_unstable_by_key(|&(t, _, _)| t);
        operators.sort_unstable_by_key(|&(h, o, _)| (h, o));
        Erc721Delta { tokens, operators }
    }
}

impl ConcurrentObject for ShardedErc721 {
    type Op = Erc721Op;
    type Resp = Erc721Resp;
    type State = Erc721State;

    fn apply(&self, process: ProcessId, op: &Erc721Op) -> Erc721Resp {
        match *op {
            Erc721Op::Mint { to, token } => {
                let Some(t) = token_key(token, self.token_span) else {
                    return Erc721Resp::FALSE;
                };
                if !self.in_range(to) || !self.in_range(process) {
                    return Erc721Resp::FALSE;
                }
                let mut shard = self.token_shard(t);
                if shard.cells.contains_key(&t) {
                    return Erc721Resp::FALSE;
                }
                shard.cells.insert(
                    t,
                    NftCell {
                        owner: cell_index(to.index()),
                        approved: None,
                    },
                );
                shard.dirty.insert(t);
                Erc721Resp::TRUE
            }
            Erc721Op::TransferFrom { from, to, token } => {
                let Some(t) = token_key(token, self.token_span) else {
                    return Erc721Resp::FALSE;
                };
                if !self.in_range(process) || !self.in_range(to) || !self.in_range(from) {
                    return Erc721Resp::FALSE;
                }
                let mut shard = self.token_shard(t);
                let Some(&cell) = shard.cells.get(&t) else {
                    return Erc721Resp::FALSE;
                };
                if cell.owner != cell_index(from.index()) {
                    return Erc721Resp::FALSE;
                }
                let caller = cell_index(process.index());
                let authorized = cell.owner == caller
                    || cell.approved == Some(caller)
                    || self.operator_enabled(cell.owner, caller);
                if !authorized {
                    return Erc721Resp::FALSE;
                }
                shard.cells.insert(
                    t,
                    NftCell {
                        owner: cell_index(to.index()),
                        approved: None,
                    },
                );
                shard.dirty.insert(t);
                Erc721Resp::TRUE
            }
            Erc721Op::Approve { approved, token } => {
                let Some(t) = token_key(token, self.token_span) else {
                    return Erc721Resp::FALSE;
                };
                if !self.in_range(process) || approved.is_some_and(|p| !self.in_range(p)) {
                    return Erc721Resp::FALSE;
                }
                let mut shard = self.token_shard(t);
                let Some(&cell) = shard.cells.get(&t) else {
                    return Erc721Resp::FALSE;
                };
                let caller = cell_index(process.index());
                if cell.owner != caller && !self.operator_enabled(cell.owner, caller) {
                    return Erc721Resp::FALSE;
                }
                if let Some(c) = shard.cells.get_mut(&t) {
                    c.approved = approved.map(|p| cell_index(p.index()));
                }
                shard.dirty.insert(t);
                Erc721Resp::TRUE
            }
            Erc721Op::SetApprovalForAll { operator, on } => {
                if !self.in_range(process) || !self.in_range(operator) || operator == process {
                    return Erc721Resp::FALSE;
                }
                let pair = (cell_index(process.index()), cell_index(operator.index()));
                let mut stripe = self.operator_stripes[pair.0 as usize & self.op_mask]
                    .0
                    .lock();
                if on {
                    stripe.pairs.insert(pair);
                } else {
                    stripe.pairs.remove(&pair);
                }
                stripe.dirty.insert(pair);
                Erc721Resp::TRUE
            }
            Erc721Op::OwnerOf { token } => {
                let Some(t) = token_key(token, self.token_span) else {
                    return Erc721Resp::Process(None);
                };
                Erc721Resp::Process(
                    self.token_shard(t)
                        .cells
                        .get(&t)
                        .map(|c| ProcessId::new(c.owner as usize)),
                )
            }
            Erc721Op::GetApproved { token } => {
                let Some(t) = token_key(token, self.token_span) else {
                    return Erc721Resp::Process(None);
                };
                Erc721Resp::Process(
                    self.token_shard(t)
                        .cells
                        .get(&t)
                        .and_then(|c| c.approved)
                        .map(|p| ProcessId::new(p as usize)),
                )
            }
        }
    }

    fn snapshot(&self) -> Erc721State {
        // Global lock order: every token shard (ascending), then every
        // operator stripe (ascending).
        let token_guards: Vec<_> = self.token_shards.iter().map(|s| s.0.lock()).collect();
        let operator_guards: Vec<_> = self.operator_stripes.iter().map(|s| s.0.lock()).collect();
        let mut state = Erc721State::new(self.processes, self.token_span);
        for shard in &token_guards {
            for (&t, cell) in shard.cells.iter() {
                state.owners.insert(t, cell.owner);
                if let Some(a) = cell.approved {
                    state.approved.insert(t, a);
                }
            }
        }
        for stripe in &operator_guards {
            state.operators.extend(stripe.pairs.iter().copied());
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn t(i: usize) -> TokenId {
        TokenId::new(i)
    }

    #[test]
    fn drain_delta_tracks_touched_cells_and_folds_onto_base() {
        let nft = ShardedErc721::with_shards(Erc721State::minted_round_robin(4, 64, 8), 4);
        assert!(
            nft.drain_delta().is_empty(),
            "fresh object has no dirty rows"
        );
        let base = nft.snapshot();
        nft.apply(
            p(1),
            &Erc721Op::TransferFrom {
                from: p(1),
                to: p(2),
                token: t(1),
            },
        );
        nft.apply(
            p(0),
            &Erc721Op::Mint {
                to: p(3),
                token: t(20),
            },
        );
        nft.apply(
            p(2),
            &Erc721Op::SetApprovalForAll {
                operator: p(0),
                on: true,
            },
        );
        nft.apply(
            p(3),
            &Erc721Op::Approve {
                approved: Some(p(0)),
                token: t(3),
            },
        );
        let delta = nft.drain_delta();
        assert!(!delta.tokens.is_empty() && !delta.operators.is_empty());
        let mut folded = base;
        assert!(delta.apply_to(&mut folded));
        assert_eq!(folded, nft.snapshot());
        assert!(
            nft.drain_delta().is_empty(),
            "drain clears the tracking sets"
        );
    }

    #[test]
    fn delta_apply_rejects_out_of_range_rows() {
        let mut state = Erc721State::new(2, 4);
        let delta = Erc721Delta {
            tokens: vec![(9, 0, None)],
            operators: Vec::new(),
        };
        assert!(!delta.apply_to(&mut state));
        assert_eq!(state, Erc721State::new(2, 4));
    }

    #[test]
    fn spec_mint_transfer_approve_flow() {
        let spec = Erc721Spec::new(Erc721State::new(3, 8));
        let mut q = spec.initial_state();
        assert_eq!(
            spec.apply(
                &mut q,
                p(0),
                &Erc721Op::Mint {
                    to: p(0),
                    token: t(1)
                }
            ),
            Erc721Resp::TRUE
        );
        // Double mint of the same id fails.
        assert_eq!(
            spec.apply(
                &mut q,
                p(2),
                &Erc721Op::Mint {
                    to: p(2),
                    token: t(1)
                }
            ),
            Erc721Resp::FALSE
        );
        assert_eq!(
            spec.apply(
                &mut q,
                p(0),
                &Erc721Op::Approve {
                    approved: Some(p(2)),
                    token: t(1)
                }
            ),
            Erc721Resp::TRUE
        );
        assert_eq!(
            spec.apply(
                &mut q,
                p(2),
                &Erc721Op::TransferFrom {
                    from: p(0),
                    to: p(2),
                    token: t(1)
                }
            ),
            Erc721Resp::TRUE
        );
        // Approval is single-use: cleared by the transfer.
        assert_eq!(q.get_approved(t(1)), None);
        assert_eq!(q.owner_of(t(1)), Some(p(2)));
        // The losing race: a second claim on the old owner fails.
        assert_eq!(
            spec.apply(
                &mut q,
                p(0),
                &Erc721Op::TransferFrom {
                    from: p(0),
                    to: p(1),
                    token: t(1)
                }
            ),
            Erc721Resp::FALSE
        );
    }

    #[test]
    fn sharded_matches_spec_on_scripts() {
        let initial = Erc721State::minted_round_robin(4, 64, 12);
        let spec = Erc721Spec::new(initial.clone());
        for shards in [1, 2, 8] {
            let nft = ShardedErc721::with_shards(initial.clone(), shards);
            let mut oracle = spec.initial_state();
            let script: Vec<(ProcessId, Erc721Op)> = vec![
                (
                    p(1),
                    Erc721Op::SetApprovalForAll {
                        operator: p(3),
                        on: true,
                    },
                ),
                (
                    p(3),
                    Erc721Op::TransferFrom {
                        from: p(1),
                        to: p(0),
                        token: t(5),
                    },
                ),
                (
                    p(0),
                    Erc721Op::Approve {
                        approved: Some(p(2)),
                        token: t(0),
                    },
                ),
                (
                    p(2),
                    Erc721Op::TransferFrom {
                        from: p(0),
                        to: p(2),
                        token: t(0),
                    },
                ),
                (
                    p(2),
                    Erc721Op::Mint {
                        to: p(2),
                        token: t(40),
                    },
                ),
                (
                    p(2),
                    Erc721Op::Mint {
                        to: p(2),
                        token: t(40),
                    },
                ),
                (p(0), Erc721Op::OwnerOf { token: t(5) }),
                (p(0), Erc721Op::GetApproved { token: t(0) }),
                (
                    p(3),
                    Erc721Op::TransferFrom {
                        from: p(1),
                        to: p(3),
                        token: t(9),
                    },
                ),
                (
                    p(1),
                    Erc721Op::SetApprovalForAll {
                        operator: p(3),
                        on: false,
                    },
                ),
                (
                    p(3),
                    Erc721Op::TransferFrom {
                        from: p(1),
                        to: p(3),
                        token: t(1),
                    },
                ),
            ];
            for (caller, op) in &script {
                let expected = spec.apply(&mut oracle, *caller, op);
                assert_eq!(
                    ConcurrentObject::apply(&nft, *caller, op),
                    expected,
                    "sharded diverged on {op:?} (shards={shards})"
                );
            }
            assert_eq!(
                nft.snapshot(),
                oracle,
                "snapshot diverged (shards={shards})"
            );
        }
    }

    #[test]
    fn huge_token_ids_fail_cleanly_instead_of_panicking() {
        // Ids beyond the u32 key range: the spec and the sharded object
        // must agree on FALSE/None (totality), and the footprint must
        // saturate rather than panic — a hostile op id submitted through
        // the intake must never take down the engine.
        let huge = TokenId::new(u32::MAX as usize + 7);
        let spec = Erc721Spec::new(Erc721State::minted_round_robin(3, 8, 4));
        let nft = ShardedErc721::from_state(Erc721State::minted_round_robin(3, 8, 4));
        let ops = [
            Erc721Op::Mint {
                to: p(1),
                token: huge,
            },
            Erc721Op::TransferFrom {
                from: p(0),
                to: p(1),
                token: huge,
            },
            Erc721Op::Approve {
                approved: Some(p(1)),
                token: huge,
            },
            Erc721Op::OwnerOf { token: huge },
            Erc721Op::GetApproved { token: huge },
        ];
        let mut q = spec.initial_state();
        for op in &ops {
            let expected = spec.apply(&mut q, p(0), op);
            assert!(matches!(
                expected,
                Erc721Resp::FALSE | Erc721Resp::Process(None)
            ));
            assert_eq!(ConcurrentObject::apply(&nft, p(0), op), expected);
            assert!(!op.footprint(p(0)).is_empty()); // saturates, no panic
        }
        assert_eq!(q, spec.initial_state(), "huge ids must not mutate state");
    }

    #[test]
    fn owner_disjoint_transfers_have_disjoint_footprints() {
        let a = Erc721Op::TransferFrom {
            from: p(0),
            to: p(2),
            token: t(0),
        };
        let b = Erc721Op::TransferFrom {
            from: p(1),
            to: p(2),
            token: t(1),
        };
        assert!(!a.footprint(p(0)).conflicts_with(&b.footprint(p(1))));
        // Same token: both claims serialize.
        let c = Erc721Op::TransferFrom {
            from: p(0),
            to: p(3),
            token: t(0),
        };
        assert!(a.footprint(p(0)).conflicts_with(&c.footprint(p(3))));
        // An operator-authorized transfer serializes against its
        // operator's setApprovalForAll…
        let toggle = Erc721Op::SetApprovalForAll {
            operator: p(2),
            on: false,
        };
        let by_operator = Erc721Op::TransferFrom {
            from: p(0),
            to: p(2),
            token: t(3),
        };
        assert!(by_operator
            .footprint(p(2))
            .conflicts_with(&toggle.footprint(p(0))));
        // …but an owner's own transfer does not.
        assert!(!a.footprint(p(0)).conflicts_with(&toggle.footprint(p(1))));
    }

    const N: usize = 3;
    const SPAN: usize = 4;

    fn arb_op() -> impl Strategy<Value = Erc721Op> {
        prop_oneof![
            (0..N, 0..SPAN).prop_map(|(to, token)| Erc721Op::Mint {
                to: p(to),
                token: t(token)
            }),
            (0..N, 0..N, 0..SPAN).prop_map(|(from, to, token)| Erc721Op::TransferFrom {
                from: p(from),
                to: p(to),
                token: t(token),
            }),
            (0..=N, 0..SPAN).prop_map(|(ap, token)| Erc721Op::Approve {
                approved: (ap < N).then(|| p(ap)),
                token: t(token),
            }),
            (0..N, 0..2usize).prop_map(|(op, on)| Erc721Op::SetApprovalForAll {
                operator: p(op),
                on: on == 1,
            }),
            (0..SPAN).prop_map(|token| Erc721Op::OwnerOf { token: t(token) }),
            (0..SPAN).prop_map(|token| Erc721Op::GetApproved { token: t(token) }),
        ]
    }

    proptest! {
        /// Soundness of the ERC721 footprint catalog: footprint-disjoint
        /// pairs commute — same final state, same responses, both
        /// orders, from arbitrary reachable states (mirror of the ERC20
        /// suite).
        #[test]
        fn disjoint_footprints_commute_at_every_state(
            minted in vec((0..SPAN, 0..N), 0..4),
            approvals in vec((0..SPAN, 0..N), 0..3),
            operators in vec((0..N, 0..N), 0..3),
            c1 in 0..N,
            c2 in 0..N,
            o1 in arb_op(),
            o2 in arb_op(),
        ) {
            let (c1, c2) = (p(c1), p(c2));
            prop_assume!(!o1.footprint(c1).conflicts_with(&o2.footprint(c2)));
            let mut q = Erc721State::new(N, SPAN);
            for &(token, owner) in &minted {
                q.owners.insert(token as u32, owner as u32);
            }
            for &(token, ap) in &approvals {
                if q.owners.contains_key(&(token as u32)) {
                    q.approved.insert(token as u32, ap as u32);
                }
            }
            for &(h, o) in &operators {
                q.operators.insert((h as u32, o as u32));
            }
            let spec = Erc721Spec::new(Erc721State::new(N, SPAN));
            let mut qa = q.clone();
            let r1a = spec.apply(&mut qa, c1, &o1);
            let r2a = spec.apply(&mut qa, c2, &o2);
            let mut qb = q.clone();
            let r2b = spec.apply(&mut qb, c2, &o2);
            let r1b = spec.apply(&mut qb, c1, &o1);
            prop_assert_eq!(qa, qb, "states diverge for a non-conflicting pair");
            prop_assert_eq!(r1a, r1b, "first op's response depends on order");
            prop_assert_eq!(r2a, r2b, "second op's response depends on order");
        }
    }
}

//! The ERC1155 multi-token standard.
//!
//! One contract manages many token *types*; per-account operators may move
//! any of the holder's types, and batch methods transfer several types
//! atomically. The paper observes that ERC1155 plausibly inherits ERC20's
//! synchronization requirements but that exact bounds "would need an
//! in-depth analysis, based on combinations of accounts" — we implement the
//! object, its operator census (an upper-bound analogue of `σ`), and leave
//! the exact characterization as documented future work (EXPERIMENTS.md).
//!
//! The `object` submodule provides the standard as a *servable*
//! concurrent object: the footprinted [`Erc1155Op`]/[`Erc1155Resp`]
//! alphabet (batch ops union their `(type, account)` cells), the
//! [`Erc1155Spec`] oracle, and the lock-striped [`ShardedErc1155`] the
//! generic pipeline executes.

use std::collections::BTreeSet;
use std::fmt;

use tokensync_spec::{AccountId, Amount, ProcessId};

mod object;

pub use object::{Erc1155Delta, Erc1155Op, Erc1155Resp, Erc1155Spec, Erc1155State, ShardedErc1155};

/// Identifier of a token *type* within an ERC1155 contract.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct TypeId(usize);

impl TypeId {
    /// Creates a type id.
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// Zero-based index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type{}", self.0)
    }
}

/// Errors of the ERC1155 object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Erc1155Error {
    /// Caller is neither the holder nor an approved operator.
    NotAuthorized {
        /// The refused caller.
        caller: ProcessId,
        /// The source account.
        from: AccountId,
    },
    /// A balance was insufficient (for batches: no partial effects).
    InsufficientBalance {
        /// The token type that failed.
        type_id: TypeId,
        /// Balance available.
        balance: Amount,
        /// Amount required.
        required: Amount,
    },
    /// An id was out of range.
    BadId,
    /// Batch arrays had different lengths.
    LengthMismatch,
}

impl fmt::Display for Erc1155Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Erc1155Error::NotAuthorized { caller, from } => {
                write!(f, "{caller} is not an operator for {from}")
            }
            Erc1155Error::InsufficientBalance {
                type_id,
                balance,
                required,
            } => write!(
                f,
                "balance of {type_id} is {balance}, operation requires {required}"
            ),
            Erc1155Error::BadId => write!(f, "account, process, or type id out of range"),
            Erc1155Error::LengthMismatch => write!(f, "ids and amounts arrays differ in length"),
        }
    }
}

impl std::error::Error for Erc1155Error {}

/// A sequential ERC1155 multi-token contract.
///
/// # Example
///
/// ```
/// use tokensync_core::standards::erc1155::{Erc1155Token, TypeId};
/// use tokensync_spec::{AccountId, ProcessId};
///
/// // 2 token types, 3 accounts; deployer holds 10 of each type.
/// let mut multi = Erc1155Token::deploy(3, ProcessId::new(0), &[10, 10]);
/// multi.safe_batch_transfer_from(
///     ProcessId::new(0),
///     AccountId::new(0),
///     AccountId::new(1),
///     &[TypeId::new(0), TypeId::new(1)],
///     &[3, 4],
/// )?;
/// assert_eq!(multi.balance_of(AccountId::new(1), TypeId::new(1)), 4);
/// # Ok::<(), tokensync_core::standards::erc1155::Erc1155Error>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Erc1155Token {
    /// `balances[type][account]`.
    balances: Vec<Vec<Amount>>,
    /// `operators[account]`: processes approved for all of the account's
    /// types.
    operators: Vec<BTreeSet<ProcessId>>,
}

impl Erc1155Token {
    /// Deploys with `n` accounts and one token type per entry of
    /// `supplies`, all initially held by `deployer`.
    ///
    /// # Panics
    ///
    /// Panics if `deployer.index() >= n`.
    pub fn deploy(n: usize, deployer: ProcessId, supplies: &[Amount]) -> Self {
        assert!(deployer.index() < n, "deployer out of range");
        let balances = supplies
            .iter()
            .map(|s| {
                let mut row = vec![0; n];
                row[deployer.index()] = *s;
                row
            })
            .collect();
        Self {
            balances,
            operators: vec![BTreeSet::new(); n],
        }
    }

    /// Number of accounts.
    pub fn accounts(&self) -> usize {
        self.operators.len()
    }

    /// Number of token types.
    pub fn types(&self) -> usize {
        self.balances.len()
    }

    /// `balanceOf(account, id)`.
    pub fn balance_of(&self, account: AccountId, type_id: TypeId) -> Amount {
        self.balances
            .get(type_id.index())
            .and_then(|row| row.get(account.index()))
            .copied()
            .unwrap_or(0)
    }

    /// `balanceOfBatch`: one `(account, id)` query per pair.
    pub fn balance_of_batch(&self, accounts: &[AccountId], ids: &[TypeId]) -> Vec<Amount> {
        accounts
            .iter()
            .zip(ids)
            .map(|(a, t)| self.balance_of(*a, *t))
            .collect()
    }

    /// Total supply of one token type (invariant under transfers).
    pub fn total_supply(&self, type_id: TypeId) -> Amount {
        self.balances
            .get(type_id.index())
            .map(|row| row.iter().sum())
            .unwrap_or(0)
    }

    /// `setApprovalForAll(operator, approved)` by `caller`.
    ///
    /// # Errors
    ///
    /// [`Erc1155Error::BadId`] for out-of-range ids.
    pub fn set_approval_for_all(
        &mut self,
        caller: ProcessId,
        operator: ProcessId,
        approved: bool,
    ) -> Result<(), Erc1155Error> {
        if caller.index() >= self.accounts() || operator.index() >= self.accounts() {
            return Err(Erc1155Error::BadId);
        }
        if approved {
            if operator != caller {
                self.operators[caller.index()].insert(operator);
            }
        } else {
            self.operators[caller.index()].remove(&operator);
        }
        Ok(())
    }

    /// `isApprovedForAll(account, operator)` — holders operate for
    /// themselves.
    pub fn is_approved_for_all(&self, account: AccountId, operator: ProcessId) -> bool {
        operator == account.owner()
            || self
                .operators
                .get(account.index())
                .is_some_and(|s| s.contains(&operator))
    }

    /// `safeTransferFrom(from, to, id, amount)` by `caller`.
    ///
    /// # Errors
    ///
    /// [`Erc1155Error::NotAuthorized`], [`Erc1155Error::InsufficientBalance`],
    /// or [`Erc1155Error::BadId`]. The state is unchanged on error.
    pub fn safe_transfer_from(
        &mut self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        type_id: TypeId,
        amount: Amount,
    ) -> Result<(), Erc1155Error> {
        self.safe_batch_transfer_from(caller, from, to, &[type_id], &[amount])
    }

    /// `safeBatchTransferFrom(from, to, ids, amounts)` by `caller` —
    /// **atomic**: either every row moves or none does.
    ///
    /// # Errors
    ///
    /// [`Erc1155Error::LengthMismatch`], plus those of
    /// [`Erc1155Token::safe_transfer_from`]. The state is unchanged on
    /// error (all balances are validated before any is moved).
    pub fn safe_batch_transfer_from(
        &mut self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        ids: &[TypeId],
        amounts: &[Amount],
    ) -> Result<(), Erc1155Error> {
        if ids.len() != amounts.len() {
            return Err(Erc1155Error::LengthMismatch);
        }
        if from.index() >= self.accounts() || to.index() >= self.accounts() {
            return Err(Erc1155Error::BadId);
        }
        if !self.is_approved_for_all(from, caller) {
            return Err(Erc1155Error::NotAuthorized { caller, from });
        }
        // Validate everything first: batch semantics are all-or-nothing.
        // Aggregate per type id so duplicated ids in one batch cannot
        // overdraw.
        let mut required: std::collections::BTreeMap<TypeId, Amount> = Default::default();
        for (t, v) in ids.iter().zip(amounts) {
            if t.index() >= self.types() {
                return Err(Erc1155Error::BadId);
            }
            *required.entry(*t).or_insert(0) += v;
        }
        for (t, v) in &required {
            let balance = self.balance_of(from, *t);
            if balance < *v {
                return Err(Erc1155Error::InsufficientBalance {
                    type_id: *t,
                    balance,
                    required: *v,
                });
            }
        }
        for (t, v) in &required {
            self.balances[t.index()][from.index()] -= v;
            self.balances[t.index()][to.index()] += v;
        }
        Ok(())
    }

    /// The operator census of `account`: `{owner} ∪ operators(account)` if
    /// the account holds any tokens of any type, `{owner}` otherwise — the
    /// conservative ERC1155 analogue of `σ_q(a)`, upper-bounding the
    /// contract's synchronization needs per account.
    pub fn enabled_movers(&self, account: AccountId) -> BTreeSet<ProcessId> {
        let mut set = BTreeSet::new();
        set.insert(account.owner());
        let holds_any = (0..self.types()).any(|t| self.balance_of(account, TypeId::new(t)) > 0);
        if holds_any {
            if let Some(ops) = self.operators.get(account.index()) {
                set.extend(ops.iter().copied());
            }
        }
        set
    }

    /// `max_a |movers(a)|` — the upper-bound synchronization level.
    pub fn sync_level(&self) -> usize {
        (0..self.accounts())
            .map(|i| self.enabled_movers(AccountId::new(i)).len())
            .max()
            .unwrap_or(1)
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn t(i: usize) -> TypeId {
        TypeId::new(i)
    }

    #[test]
    fn deploy_and_single_transfer() {
        let mut m = Erc1155Token::deploy(3, p(0), &[10, 5]);
        m.safe_transfer_from(p(0), a(0), a(1), t(0), 4).unwrap();
        assert_eq!(m.balance_of(a(1), t(0)), 4);
        assert_eq!(m.total_supply(t(0)), 10);
        assert_eq!(m.total_supply(t(1)), 5);
    }

    #[test]
    fn batch_is_atomic_on_failure() {
        let mut m = Erc1155Token::deploy(2, p(0), &[10, 2]);
        let before = m.clone();
        // Second row overdraws: nothing must move.
        let err = m
            .safe_batch_transfer_from(p(0), a(0), a(1), &[t(0), t(1)], &[3, 5])
            .unwrap_err();
        assert!(matches!(err, Erc1155Error::InsufficientBalance { .. }));
        assert_eq!(m, before);
    }

    #[test]
    fn batch_with_duplicate_ids_cannot_overdraw() {
        let mut m = Erc1155Token::deploy(2, p(0), &[10]);
        // 6 + 6 = 12 > 10 even though each row alone fits.
        let err = m
            .safe_batch_transfer_from(p(0), a(0), a(1), &[t(0), t(0)], &[6, 6])
            .unwrap_err();
        assert!(matches!(err, Erc1155Error::InsufficientBalance { .. }));
        // 6 + 4 = 10 is fine.
        m.safe_batch_transfer_from(p(0), a(0), a(1), &[t(0), t(0)], &[6, 4])
            .unwrap();
        assert_eq!(m.balance_of(a(1), t(0)), 10);
    }

    #[test]
    fn operators_span_all_types() {
        let mut m = Erc1155Token::deploy(3, p(0), &[5, 5]);
        m.set_approval_for_all(p(0), p(2), true).unwrap();
        m.safe_transfer_from(p(2), a(0), a(2), t(0), 1).unwrap();
        m.safe_transfer_from(p(2), a(0), a(2), t(1), 1).unwrap();
        assert_eq!(m.balance_of(a(2), t(1)), 1);
        m.set_approval_for_all(p(0), p(2), false).unwrap();
        assert!(m.safe_transfer_from(p(2), a(0), a(2), t(0), 1).is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut m = Erc1155Token::deploy(2, p(0), &[5]);
        assert_eq!(
            m.safe_batch_transfer_from(p(0), a(0), a(1), &[t(0)], &[1, 2]),
            Err(Erc1155Error::LengthMismatch)
        );
    }

    #[test]
    fn census_follows_operators_and_holdings() {
        let mut m = Erc1155Token::deploy(3, p(0), &[5]);
        m.set_approval_for_all(p(0), p(1), true).unwrap();
        m.set_approval_for_all(p(0), p(2), true).unwrap();
        assert_eq!(m.sync_level(), 3);
        // Drain the account: operators become dormant.
        m.safe_transfer_from(p(0), a(0), a(1), t(0), 5).unwrap();
        assert_eq!(m.enabled_movers(a(0)).len(), 1);
        assert_eq!(m.sync_level(), 1);
    }

    #[test]
    fn balance_of_batch_pairs_queries() {
        let m = Erc1155Token::deploy(2, p(0), &[7, 9]);
        assert_eq!(
            m.balance_of_batch(&[a(0), a(0), a(1)], &[t(0), t(1), t(0)]),
            vec![7, 9, 0]
        );
    }
}

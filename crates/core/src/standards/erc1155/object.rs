//! The ERC1155 object as a formal, footprinted, concurrently servable
//! standard: op/response alphabets (including **atomic batches**), a
//! sparse sequential state and [`ObjectType`] spec, per-op
//! [`Footprint`]s, and the lock-striped [`ShardedErc1155`].
//!
//! The paper observes that ERC1155 plausibly inherits ERC20's
//! synchronization requirements but that exact bounds "would need an
//! in-depth analysis, based on combinations of accounts". The serving
//! side needs only the sound direction of that analysis, and it is
//! cell-granular: a `(type, account)` balance cell per pair, so
//!
//! * `safeTransferFrom` charges an update of the source cell and a
//!   *credit* of the destination cell (deposits commute);
//! * `safeBatchTransferFrom` charges the **union** of its rows' cells —
//!   two batches conflict iff their cell sets intersect;
//! * `setApprovalForAll` updates its operator's column
//!   ([`Cell::Operator`]), and any transfer whose caller may be a
//!   non-owner reads that column;
//! * per-type `totalSupply` is invariant under every transfer
//!   (constructor-cached in [`ShardedErc1155`]) and has an **empty**
//!   footprint.
//!
//! Soundness — footprint-disjoint pairs commute at every state — is
//! property-tested below against [`Erc1155Spec`].

use std::collections::{BTreeMap, BTreeSet};

use parking_lot::{Mutex, MutexGuard};
use tokensync_spec::{AccountId, Amount, ObjectType, ProcessId};

use crate::analysis::cell_index;
use crate::analysis::{Access, Cell, Footprint, FootprintedOp};
use crate::erc20::SpenderMap;
use crate::shared::ConcurrentObject;
use crate::util::CacheLine;

use super::TypeId;

/// Operations `O` of the ERC1155 object (the cell-granular subset the
/// pipeline serves).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Erc1155Op {
    /// `safeTransferFrom(from, to, id, amount)` by the caller.
    Transfer {
        /// Source account.
        from: AccountId,
        /// Destination account.
        to: AccountId,
        /// Token type moved.
        type_id: TypeId,
        /// Amount moved.
        value: Amount,
    },
    /// `safeBatchTransferFrom(from, to, ids, amounts)` by the caller —
    /// **atomic**: either every row moves or none does.
    BatchTransfer {
        /// Source account.
        from: AccountId,
        /// Destination account.
        to: AccountId,
        /// The `(type, amount)` rows of the batch.
        entries: Vec<(TypeId, Amount)>,
    },
    /// `setApprovalForAll(operator, on)` by the caller.
    SetApprovalForAll {
        /// The operator enabled/disabled for all of the caller's types.
        operator: ProcessId,
        /// Enable or disable.
        on: bool,
    },
    /// `balanceOf(account, id)`.
    BalanceOf {
        /// The account read.
        account: AccountId,
        /// The token type read.
        type_id: TypeId,
    },
    /// The per-type total supply — invariant under every transfer, so it
    /// commutes with everything (empty footprint).
    TotalSupply {
        /// The token type read.
        type_id: TypeId,
    },
}

/// Responses `R` of the ERC1155 object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Erc1155Resp {
    /// Outcome of a mutating method.
    Bool(bool),
    /// Result of a read method.
    Amount(Amount),
}

impl Erc1155Resp {
    /// `TRUE`.
    pub const TRUE: Self = Erc1155Resp::Bool(true);
    /// `FALSE`.
    pub const FALSE: Self = Erc1155Resp::Bool(false);
}

impl FootprintedOp for Erc1155Op {
    fn footprint_into(&self, caller: ProcessId, out: &mut Footprint) {
        let mut transfer_cells = |from: AccountId, to: AccountId, type_id: TypeId| {
            let t = cell_index(type_id.index());
            out.push(Cell::Typed(t, cell_index(from.index())), Access::Update);
            out.push(Cell::Typed(t, cell_index(to.index())), Access::Credit);
        };
        match *self {
            Erc1155Op::Transfer {
                from, to, type_id, ..
            } => {
                transfer_cells(from, to, type_id);
                if caller != from.owner() {
                    out.push(Cell::Operator(cell_index(caller.index())), Access::Read);
                }
            }
            Erc1155Op::BatchTransfer {
                from,
                to,
                ref entries,
            } => {
                for &(type_id, _) in entries {
                    transfer_cells(from, to, type_id);
                }
                if caller != from.owner() {
                    out.push(Cell::Operator(cell_index(caller.index())), Access::Read);
                }
            }
            Erc1155Op::SetApprovalForAll { operator, .. } => {
                out.push(Cell::Operator(cell_index(operator.index())), Access::Update);
            }
            Erc1155Op::BalanceOf { account, type_id } => {
                out.push(
                    Cell::Typed(cell_index(type_id.index()), cell_index(account.index())),
                    Access::Read,
                );
            }
            // Per-type supply is invariant under Δ: empty footprint.
            Erc1155Op::TotalSupply { .. } => {}
        }
    }
}

/// The sequential ERC1155 state: sparse `(type, account) → balance`
/// entries (positive only — the canonical encoding that makes derived
/// `Eq`/`Hash` mathematical equality) plus operator pairs and the
/// cached, transfer-invariant per-type supplies.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Erc1155State {
    accounts: usize,
    /// Positive balances only: `(type, account) → amount`.
    balances: BTreeMap<(u32, u32), Amount>,
    /// Enabled operator pairs `(holder, operator)`.
    operators: BTreeSet<(u32, u32)>,
    /// Cached `Σ_a balances[(t, a)]` per type; invariant under every
    /// operation (no mint/burn in the op alphabet).
    supplies: Vec<Amount>,
}

impl Erc1155State {
    /// Deploys with `n` accounts and one token type per entry of
    /// `supplies`, all initially held by `deployer`.
    ///
    /// # Panics
    ///
    /// Panics if `deployer.index() >= n`, or if the account or type
    /// space exceeds the `u32` key range (ids are stored as `u32`
    /// keys; in-range ids then always convert exactly, where the
    /// footprint layer's `cell_index` saturates).
    pub fn deploy(n: usize, deployer: ProcessId, supplies: &[Amount]) -> Self {
        assert!(deployer.index() < n, "deployer out of range");
        assert!(
            n as u128 <= u32::MAX as u128 + 1,
            "account space exceeds the u32 key range"
        );
        assert!(
            supplies.len() as u128 <= u32::MAX as u128 + 1,
            "type space exceeds the u32 key range"
        );
        let mut balances = BTreeMap::new();
        for (t, &s) in supplies.iter().enumerate() {
            if s > 0 {
                balances.insert((cell_index(t), cell_index(deployer.index())), s);
            }
        }
        Self {
            accounts: n,
            balances,
            operators: BTreeSet::new(),
            supplies: supplies.to_vec(),
        }
    }

    /// Number of accounts.
    pub fn accounts(&self) -> usize {
        self.accounts
    }

    /// Number of token types.
    pub fn types(&self) -> usize {
        self.supplies.len()
    }

    /// `balanceOf(account, id)`; out-of-range pairs read as 0.
    pub fn balance_of(&self, account: AccountId, type_id: TypeId) -> Amount {
        match (
            u32::try_from(type_id.index()),
            u32::try_from(account.index()),
        ) {
            (Ok(t), Ok(a)) => self.balances.get(&(t, a)).copied().unwrap_or(0),
            _ => 0,
        }
    }

    /// Per-type total supply (invariant under transfers); out-of-range
    /// types read as 0. `O(1)` via the maintained cache (debug builds
    /// assert it against the scan).
    pub fn total_supply(&self, type_id: TypeId) -> Amount {
        let Some(&supply) = self.supplies.get(type_id.index()) else {
            return 0;
        };
        debug_assert_eq!(
            supply,
            self.balances
                .iter()
                .filter(|((t, _), _)| *t as usize == type_id.index())
                .map(|(_, v)| v)
                .sum::<Amount>(),
            "per-type supply cache diverged from the scan"
        );
        supply
    }

    /// `isApprovedForAll(account, operator)` — holders operate for
    /// themselves.
    pub fn is_approved_for_all(&self, account: AccountId, operator: ProcessId) -> bool {
        operator == account.owner()
            || match (
                u32::try_from(account.index()),
                u32::try_from(operator.index()),
            ) {
                (Ok(h), Ok(o)) => self.operators.contains(&(h, o)),
                _ => false,
            }
    }

    /// Directly sets a balance — test-fixture aid; adjusts the cached
    /// per-type supply.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set_balance(&mut self, account: AccountId, type_id: TypeId, value: Amount) {
        assert!(account.index() < self.accounts && type_id.index() < self.types());
        let key = (cell_index(type_id.index()), cell_index(account.index()));
        let old = if value == 0 {
            self.balances.remove(&key).unwrap_or(0)
        } else {
            self.balances.insert(key, value).unwrap_or(0)
        };
        let supply = &mut self.supplies[type_id.index()];
        *supply = *supply - old + value;
    }

    /// The positive balance entries `((type, account) → amount)` in
    /// increasing `(type, account)` order — the canonical walk the state
    /// codec serializes.
    pub fn balance_entries(&self) -> impl Iterator<Item = (TypeId, AccountId, Amount)> + '_ {
        self.balances
            .iter()
            .map(|(&(t, a), &v)| (TypeId::new(t as usize), AccountId::new(a as usize), v))
    }

    /// The enabled `(holder, operator)` pairs in increasing order.
    pub fn operator_pairs(&self) -> impl Iterator<Item = (AccountId, ProcessId)> + '_ {
        self.operators
            .iter()
            .map(|&(h, o)| (AccountId::new(h as usize), ProcessId::new(o as usize)))
    }

    /// Enables `(holder, operator)` directly — test-fixture aid.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn set_operator(&mut self, holder: AccountId, operator: ProcessId, on: bool) {
        assert!(holder.index() < self.accounts && operator.index() < self.accounts);
        let pair = (cell_index(holder.index()), cell_index(operator.index()));
        if on {
            self.operators.insert(pair);
        } else {
            self.operators.remove(&pair);
        }
    }

    /// Validates and applies one (possibly batched) transfer: aggregate
    /// per type so duplicated ids cannot overdraw, check everything,
    /// then move — all-or-nothing.
    fn transfer(
        &mut self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        rows: &[(TypeId, Amount)],
    ) -> bool {
        if from.index() >= self.accounts
            || to.index() >= self.accounts
            || caller.index() >= self.accounts
            || !self.is_approved_for_all(from, caller)
        {
            return false;
        }
        let mut required: BTreeMap<u32, Amount> = BTreeMap::new();
        for &(t, v) in rows {
            if t.index() >= self.types() {
                return false;
            }
            *required.entry(cell_index(t.index())).or_insert(0) += v;
        }
        let f = cell_index(from.index());
        for (&t, &v) in &required {
            if self.balances.get(&(t, f)).copied().unwrap_or(0) < v {
                return false;
            }
        }
        let d = cell_index(to.index());
        for (&t, &v) in &required {
            if v == 0 {
                continue;
            }
            let src = self.balances.get_mut(&(t, f)).expect("validated above");
            *src -= v;
            if *src == 0 {
                self.balances.remove(&(t, f));
            }
            *self.balances.entry((t, d)).or_insert(0) += v;
        }
        true
    }
}

/// The ERC1155 object type over [`Erc1155State`] — the sequential
/// oracle the pipeline's commit log replays against. Transitions are
/// total: out-of-range ids and failed preconditions return `FALSE`
/// (mutators) or `0` (reads) with the state unchanged.
#[derive(Clone, Debug)]
pub struct Erc1155Spec {
    initial: Erc1155State,
}

impl Erc1155Spec {
    /// Object type starting from an arbitrary state.
    pub fn new(initial: Erc1155State) -> Self {
        Self { initial }
    }
}

impl ObjectType for Erc1155Spec {
    type State = Erc1155State;
    type Op = Erc1155Op;
    type Resp = Erc1155Resp;

    fn initial_state(&self) -> Erc1155State {
        self.initial.clone()
    }

    fn apply(&self, state: &mut Erc1155State, process: ProcessId, op: &Erc1155Op) -> Erc1155Resp {
        match *op {
            Erc1155Op::Transfer {
                from,
                to,
                type_id,
                value,
            } => Erc1155Resp::Bool(state.transfer(process, from, to, &[(type_id, value)])),
            Erc1155Op::BatchTransfer {
                from,
                to,
                ref entries,
            } => Erc1155Resp::Bool(state.transfer(process, from, to, entries)),
            Erc1155Op::SetApprovalForAll { operator, on } => {
                if process.index() >= state.accounts
                    || operator.index() >= state.accounts
                    || operator == process
                {
                    return Erc1155Resp::FALSE;
                }
                let pair = (cell_index(process.index()), cell_index(operator.index()));
                if on {
                    state.operators.insert(pair);
                } else {
                    state.operators.remove(&pair);
                }
                Erc1155Resp::TRUE
            }
            Erc1155Op::BalanceOf { account, type_id } => {
                Erc1155Resp::Amount(state.balance_of(account, type_id))
            }
            Erc1155Op::TotalSupply { type_id } => Erc1155Resp::Amount(state.total_supply(type_id)),
        }
    }
}

/// An incremental copy-on-write snapshot of an ERC1155 object: the
/// current value of every `(type, account)` balance cell and the current
/// membership of every operator pair touched since the previous snapshot
/// watermark, drained by [`ShardedErc1155::drain_delta`] and folded back
/// onto a base [`Erc1155State`] at recovery time.
///
/// The delta carries no supplies row: the op alphabet has no mint/burn,
/// so folding full-row balance cells through the supply-adjusting
/// replacement leaves every cached per-type supply exactly where the
/// base had it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Erc1155Delta {
    /// `(type, account, amount)` — current values (zero means the cell
    /// is now empty), increasing `(type, account)` order.
    pub balances: Vec<(u32, u32, Amount)>,
    /// `(holder, operator, enabled)` — current membership of every
    /// toggled pair, increasing pair order.
    pub operators: Vec<(u32, u32, bool)>,
}

impl Erc1155Delta {
    /// Whether the delta carries no rows (nothing was touched).
    pub fn is_empty(&self) -> bool {
        self.balances.is_empty() && self.operators.is_empty()
    }

    /// Folds the delta onto `state`, overwriting every carried cell with
    /// its current value. Returns `false` (caller must discard the
    /// state) if any row is outside the state's id spaces — a valid
    /// producer never emits such a row, so `false` means a corrupt or
    /// foreign delta file.
    pub fn apply_to(&self, state: &mut Erc1155State) -> bool {
        let (types, accounts) = (state.types(), state.accounts);
        if self
            .balances
            .iter()
            .any(|&(t, a, _)| t as usize >= types || a as usize >= accounts)
            || self
                .operators
                .iter()
                .any(|&(h, o, _)| h as usize >= accounts || o as usize >= accounts)
        {
            return false;
        }
        for &(t, a, v) in &self.balances {
            let old = if v == 0 {
                state.balances.remove(&(t, a)).unwrap_or(0)
            } else {
                state.balances.insert((t, a), v).unwrap_or(0)
            };
            let supply = &mut state.supplies[t as usize];
            *supply = *supply - old + v;
        }
        for &(h, o, on) in &self.operators {
            if on {
                state.operators.insert((h, o));
            } else {
                state.operators.remove(&(h, o));
            }
        }
        true
    }
}

/// The accounts striped onto one lock: per-slot sparse typed balances
/// (a [`SpenderMap`] keyed by type id — the same sorted-vec sparse row
/// the ERC20 allowance layer uses) and the slot's operator set, plus the
/// copy-on-write dirty sets of `(slot, type)` balance cells and
/// `(slot, operator)` pairs touched since the last
/// [`ShardedErc1155::drain_delta`].
#[derive(Debug, Default)]
struct Shard1155 {
    balances: Vec<SpenderMap>,
    operators: Vec<BTreeSet<u32>>,
    dirty_bal: BTreeSet<(u32, u32)>,
    dirty_ops: BTreeSet<(u32, u32)>,
}

/// An ERC1155 contract lock-striped by **account**, scaling to ~1M
/// accounts × many types.
///
/// Account `a` lives in shard `a & (S−1)` at slot `a >> log2(S)` with
/// `S = min(n, 4 × cores)` shards. An account's operator set lives in
/// the *same* shard cell as its balances, so a transfer's authorization
/// check, validation and debit are all under the source shard's lock —
/// one critical section, no cross-structure ordering concerns. Transfers
/// lock at most two shards in ascending order (the ERC20 discipline);
/// per-type `totalSupply` locks **nothing**: supplies are invariant
/// under every operation, so the constructor-cached values serve every
/// read.
///
/// # Example
///
/// ```
/// use tokensync_core::shared::ConcurrentObject;
/// use tokensync_core::standards::erc1155::{Erc1155Op, Erc1155Resp, Erc1155State, ShardedErc1155, TypeId};
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let initial = Erc1155State::deploy(4, ProcessId::new(0), &[10, 5]);
/// let multi = ShardedErc1155::from_state(initial);
/// let resp = multi.apply(ProcessId::new(0), &Erc1155Op::BatchTransfer {
///     from: AccountId::new(0),
///     to: AccountId::new(1),
///     entries: vec![(TypeId::new(0), 3), (TypeId::new(1), 4)],
/// });
/// assert_eq!(resp, Erc1155Resp::TRUE);
/// assert_eq!(multi.snapshot().balance_of(AccountId::new(1), TypeId::new(1)), 4);
/// assert_eq!(multi.total_supply(TypeId::new(0)), 10); // lock-free read
/// ```
#[derive(Debug)]
pub struct ShardedErc1155 {
    shards: Vec<CacheLine<Mutex<Shard1155>>>,
    mask: usize,
    shift: u32,
    accounts: usize,
    types: usize,
    /// Constructor-cached per-type totals; constant because every
    /// operation conserves each type's supply.
    supplies: Vec<Amount>,
}

impl ShardedErc1155 {
    /// Builds from a sequential state over the default stripe count.
    pub fn from_state(state: Erc1155State) -> Self {
        let shards = crate::util::default_stripe(state.accounts().max(1));
        Self::with_shards(state, shards)
    }

    /// Builds over an explicit number of shards (tests exercise
    /// degenerate stripings).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or not a power of two.
    pub fn with_shards(state: Erc1155State, shards: usize) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two (got {shards})"
        );
        let n = state.accounts();
        let per = n / shards + 1;
        let mut built: Vec<Shard1155> = (0..shards)
            .map(|_| Shard1155 {
                balances: Vec::with_capacity(per),
                operators: Vec::with_capacity(per),
                dirty_bal: BTreeSet::new(),
                dirty_ops: BTreeSet::new(),
            })
            .collect();
        for i in 0..n {
            let shard = &mut built[i & (shards - 1)];
            shard.balances.push(SpenderMap::new());
            shard.operators.push(BTreeSet::new());
        }
        let shift = shards.trailing_zeros();
        for (&(t, a), &v) in &state.balances {
            built[a as usize & (shards - 1)].balances[a as usize >> shift].set(t as usize, v);
        }
        for &(h, o) in &state.operators {
            built[h as usize & (shards - 1)].operators[h as usize >> shift].insert(o);
        }
        Self {
            shards: built
                .into_iter()
                .map(|s| CacheLine(Mutex::new(s)))
                .collect(),
            mask: shards - 1,
            shift,
            accounts: n,
            types: state.types(),
            supplies: state.supplies.clone(),
        }
    }

    /// The stripe count (diagnostic; benchmarks record it).
    pub fn shard_count(&self) -> usize {
        self.mask + 1
    }

    /// Number of accounts.
    pub fn accounts(&self) -> usize {
        self.accounts
    }

    /// Per-type total supply — lock-free: invariant under every
    /// operation, cached at construction.
    pub fn total_supply(&self, type_id: TypeId) -> Amount {
        self.supplies.get(type_id.index()).copied().unwrap_or(0)
    }

    /// Recomputes every type's supply from the live balances (one pass
    /// over all shards, `O(n + entries)`), for auditing the cached
    /// [`total_supply`](ShardedErc1155::total_supply) values — the
    /// conservation check the benchmarks assert after every run. A
    /// divergence means a transfer lost or minted tokens.
    pub fn audit_supplies(&self) -> Vec<Amount> {
        let mut sums = vec![0; self.types];
        for shard in &self.shards {
            let shard = shard.0.lock();
            for row in &shard.balances {
                for (t, v) in row.iter() {
                    sums[t.index()] += v;
                }
            }
        }
        sums
    }

    #[inline]
    fn shard_of(&self, account: usize) -> usize {
        account & self.mask
    }

    #[inline]
    fn slot_of(&self, account: usize) -> usize {
        account >> self.shift
    }

    /// Drains the copy-on-write dirty sets: the current value of every
    /// `(type, account)` balance cell and the current membership of
    /// every operator pair touched since the previous drain, clearing
    /// the tracking sets.
    ///
    /// Each shard is visited under its own lock — serving continues on
    /// the other shards throughout. At a quiescent point the drained
    /// rows together with the previous snapshot reconstruct `snapshot()`
    /// exactly.
    pub fn drain_delta(&self) -> Erc1155Delta {
        let mut balances = Vec::new();
        let mut operators = Vec::new();
        for (shard_idx, cell) in self.shards.iter().enumerate() {
            let shard = &mut *cell.0.lock();
            for (slot, t) in std::mem::take(&mut shard.dirty_bal) {
                let account = ((slot as usize) << self.shift | shard_idx) as u32;
                balances.push((t, account, shard.balances[slot as usize].get(t as usize)));
            }
            for (slot, o) in std::mem::take(&mut shard.dirty_ops) {
                let holder = ((slot as usize) << self.shift | shard_idx) as u32;
                operators.push((holder, o, shard.operators[slot as usize].contains(&o)));
            }
        }
        balances.sort_unstable_by_key(|&(t, a, _)| (t, a));
        operators.sort_unstable_by_key(|&(h, o, _)| (h, o));
        Erc1155Delta {
            balances,
            operators,
        }
    }

    /// Validates and applies `rows` under the proper shard locks —
    /// all-or-nothing, one linearization point.
    fn transfer(
        &self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        rows: &[(TypeId, Amount)],
    ) -> bool {
        if from.index() >= self.accounts
            || to.index() >= self.accounts
            || caller.index() >= self.accounts
            || rows.iter().any(|(t, _)| t.index() >= self.types)
        {
            return false;
        }
        // Aggregate per type so duplicated ids in one batch cannot
        // overdraw (the all-or-nothing ERC1155 batch semantics).
        let mut required: BTreeMap<u32, Amount> = BTreeMap::new();
        for &(t, v) in rows {
            *required.entry(cell_index(t.index())).or_insert(0) += v;
        }
        let (fs, ts) = (self.shard_of(from.index()), self.shard_of(to.index()));
        let (fi, ti) = (self.slot_of(from.index()), self.slot_of(to.index()));
        let authorized = |shard: &Shard1155| {
            caller == from.owner() || shard.operators[fi].contains(&cell_index(caller.index()))
        };
        let validate = |shard: &Shard1155| {
            required
                .iter()
                .all(|(&t, &v)| shard.balances[fi].get(t as usize) >= v)
        };
        let debit = |shard: &mut Shard1155| {
            for (&t, &v) in &required {
                if v > 0 {
                    shard.balances[fi].debit(t as usize, v);
                    shard.dirty_bal.insert((fi as u32, t));
                }
            }
        };
        let credit = |shard: &mut Shard1155, slot: usize| {
            for (&t, &v) in &required {
                if v > 0 {
                    let old = shard.balances[slot].get(t as usize);
                    shard.balances[slot].set(t as usize, old + v);
                    shard.dirty_bal.insert((slot as u32, t));
                }
            }
        };
        if fs == ts {
            let shard = &mut *self.shards[fs].0.lock();
            if !authorized(shard) || !validate(shard) {
                return false;
            }
            // Covers from == to as well: debit then credit the same slot
            // is a validated net no-op — the ERC1155 semantics.
            debit(shard);
            credit(shard, ti);
        } else {
            let (lo, hi) = (fs.min(ts), fs.max(ts));
            let mut lo_guard = self.shards[lo].0.lock();
            let mut hi_guard = self.shards[hi].0.lock();
            let (src, dst) = if fs == lo {
                (&mut *lo_guard, &mut *hi_guard)
            } else {
                (&mut *hi_guard, &mut *lo_guard)
            };
            if !authorized(src) || !validate(src) {
                return false;
            }
            debit(src);
            credit(dst, ti);
        }
        true
    }
}

impl ConcurrentObject for ShardedErc1155 {
    type Op = Erc1155Op;
    type Resp = Erc1155Resp;
    type State = Erc1155State;

    fn apply(&self, process: ProcessId, op: &Erc1155Op) -> Erc1155Resp {
        match *op {
            Erc1155Op::Transfer {
                from,
                to,
                type_id,
                value,
            } => Erc1155Resp::Bool(self.transfer(process, from, to, &[(type_id, value)])),
            Erc1155Op::BatchTransfer {
                from,
                to,
                ref entries,
            } => Erc1155Resp::Bool(self.transfer(process, from, to, entries)),
            Erc1155Op::SetApprovalForAll { operator, on } => {
                if process.index() >= self.accounts
                    || operator.index() >= self.accounts
                    || operator == process
                {
                    return Erc1155Resp::FALSE;
                }
                let mut shard = self.shards[self.shard_of(process.index())].0.lock();
                let slot = self.slot_of(process.index());
                if on {
                    shard.operators[slot].insert(cell_index(operator.index()));
                } else {
                    shard.operators[slot].remove(&cell_index(operator.index()));
                }
                shard
                    .dirty_ops
                    .insert((slot as u32, cell_index(operator.index())));
                Erc1155Resp::TRUE
            }
            Erc1155Op::BalanceOf { account, type_id } => {
                if account.index() >= self.accounts {
                    return Erc1155Resp::Amount(0);
                }
                let shard = self.shards[self.shard_of(account.index())].0.lock();
                Erc1155Resp::Amount(
                    shard.balances[self.slot_of(account.index())].get(type_id.index()),
                )
            }
            Erc1155Op::TotalSupply { type_id } => Erc1155Resp::Amount(self.total_supply(type_id)),
        }
    }

    fn snapshot(&self) -> Erc1155State {
        let guards: Vec<MutexGuard<'_, Shard1155>> =
            self.shards.iter().map(|s| s.0.lock()).collect();
        let mut state = Erc1155State {
            accounts: self.accounts,
            balances: BTreeMap::new(),
            operators: BTreeSet::new(),
            supplies: self.supplies.clone(),
        };
        for a in 0..self.accounts {
            let shard = &guards[self.shard_of(a)];
            let slot = self.slot_of(a);
            for (t, v) in shard.balances[slot].iter() {
                state
                    .balances
                    .insert((cell_index(t.index()), cell_index(a)), v);
            }
            for &o in &shard.operators[slot] {
                state.operators.insert((cell_index(a), o));
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn t(i: usize) -> TypeId {
        TypeId::new(i)
    }

    #[test]
    fn drain_delta_tracks_touched_cells_and_folds_onto_base() {
        let m = ShardedErc1155::with_shards(Erc1155State::deploy(8, p(0), &[10, 5]), 4);
        assert!(m.drain_delta().is_empty(), "fresh object has no dirty rows");
        let base = m.snapshot();
        m.apply(
            p(0),
            &Erc1155Op::Transfer {
                from: a(0),
                to: a(5),
                type_id: t(0),
                value: 4,
            },
        );
        m.apply(
            p(3),
            &Erc1155Op::SetApprovalForAll {
                operator: p(1),
                on: true,
            },
        );
        let delta = m.drain_delta();
        assert!(!delta.balances.is_empty() && !delta.operators.is_empty());
        let mut folded = base;
        assert!(delta.apply_to(&mut folded));
        assert_eq!(folded, m.snapshot());
        assert_eq!(folded.total_supply(t(0)), 10, "supply cache stays exact");
        assert!(m.drain_delta().is_empty(), "drain clears the tracking sets");
    }

    #[test]
    fn delta_apply_rejects_out_of_range_rows() {
        let mut state = Erc1155State::deploy(2, p(0), &[5]);
        let delta = Erc1155Delta {
            balances: vec![(7, 0, 1)],
            operators: Vec::new(),
        };
        assert!(!delta.apply_to(&mut state));
        assert_eq!(state, Erc1155State::deploy(2, p(0), &[5]));
    }

    #[test]
    fn spec_batch_is_atomic_and_aggregates_duplicates() {
        let spec = Erc1155Spec::new(Erc1155State::deploy(3, p(0), &[10, 2]));
        let mut q = spec.initial_state();
        // Second row overdraws: nothing must move.
        let before = q.clone();
        assert_eq!(
            spec.apply(
                &mut q,
                p(0),
                &Erc1155Op::BatchTransfer {
                    from: a(0),
                    to: a(1),
                    entries: vec![(t(0), 3), (t(1), 5)],
                }
            ),
            Erc1155Resp::FALSE
        );
        assert_eq!(q, before);
        // Duplicate ids aggregate: 6 + 6 > 10 fails, 6 + 4 lands.
        assert_eq!(
            spec.apply(
                &mut q,
                p(0),
                &Erc1155Op::BatchTransfer {
                    from: a(0),
                    to: a(1),
                    entries: vec![(t(0), 6), (t(0), 6)],
                }
            ),
            Erc1155Resp::FALSE
        );
        assert_eq!(
            spec.apply(
                &mut q,
                p(0),
                &Erc1155Op::BatchTransfer {
                    from: a(0),
                    to: a(1),
                    entries: vec![(t(0), 6), (t(0), 4)],
                }
            ),
            Erc1155Resp::TRUE
        );
        assert_eq!(q.balance_of(a(1), t(0)), 10);
        assert_eq!(q.total_supply(t(0)), 10);
    }

    #[test]
    fn sharded_matches_spec_on_scripts() {
        let mut initial = Erc1155State::deploy(5, p(0), &[20, 9, 4]);
        initial.set_operator(a(0), p(3), true);
        let spec = Erc1155Spec::new(initial.clone());
        let script: Vec<(ProcessId, Erc1155Op)> = vec![
            (
                p(3),
                Erc1155Op::BatchTransfer {
                    from: a(0),
                    to: a(2),
                    entries: vec![(t(0), 5), (t(1), 2)],
                },
            ),
            (
                p(0),
                Erc1155Op::SetApprovalForAll {
                    operator: p(4),
                    on: true,
                },
            ),
            (
                p(4),
                Erc1155Op::Transfer {
                    from: a(0),
                    to: a(4),
                    type_id: t(2),
                    value: 4,
                },
            ),
            (
                p(1),
                Erc1155Op::BalanceOf {
                    account: a(2),
                    type_id: t(1),
                },
            ),
            (
                p(2),
                Erc1155Op::Transfer {
                    from: a(2),
                    to: a(1),
                    type_id: t(0),
                    value: 9,
                },
            ),
            (
                p(0),
                Erc1155Op::SetApprovalForAll {
                    operator: p(4),
                    on: false,
                },
            ),
            (
                p(4),
                Erc1155Op::Transfer {
                    from: a(0),
                    to: a(4),
                    type_id: t(0),
                    value: 1,
                },
            ),
            (p(1), Erc1155Op::TotalSupply { type_id: t(1) }),
            (
                p(2),
                Erc1155Op::Transfer {
                    from: a(2),
                    to: a(2),
                    type_id: t(0),
                    value: 2,
                },
            ),
        ];
        for shards in [1, 2, 4] {
            let multi = ShardedErc1155::with_shards(initial.clone(), shards);
            let mut oracle = spec.initial_state();
            for (caller, op) in &script {
                let expected = spec.apply(&mut oracle, *caller, op);
                assert_eq!(
                    ConcurrentObject::apply(&multi, *caller, op),
                    expected,
                    "sharded diverged on {op:?} (shards={shards})"
                );
            }
            assert_eq!(
                multi.snapshot(),
                oracle,
                "snapshot diverged (shards={shards})"
            );
        }
    }

    #[test]
    fn audit_supplies_recounts_the_cache_from_live_balances() {
        let mut initial = Erc1155State::deploy(4, p(0), &[12, 7]);
        initial.set_operator(a(0), p(2), true);
        let multi = ShardedErc1155::with_shards(initial, 2);
        multi.apply(
            p(0),
            &Erc1155Op::BatchTransfer {
                from: a(0),
                to: a(3),
                entries: vec![(t(0), 5), (t(1), 2)],
            },
        );
        multi.apply(
            p(2),
            &Erc1155Op::Transfer {
                from: a(0),
                to: a(1),
                type_id: t(1),
                value: 5,
            },
        );
        // The recount from live balances matches the cached constants —
        // this is the non-vacuous direction the benchmarks assert.
        assert_eq!(multi.audit_supplies(), vec![12, 7]);
        assert_eq!(multi.total_supply(t(0)), 12);
    }

    #[test]
    fn huge_ids_fail_cleanly_instead_of_panicking() {
        let spec = Erc1155Spec::new(Erc1155State::deploy(3, p(0), &[9]));
        let multi = ShardedErc1155::from_state(Erc1155State::deploy(3, p(0), &[9]));
        let huge_acct = a(u32::MAX as usize + 3);
        let huge_type = t(u32::MAX as usize + 3);
        let ops = [
            Erc1155Op::Transfer {
                from: huge_acct,
                to: a(1),
                type_id: t(0),
                value: 1,
            },
            Erc1155Op::Transfer {
                from: a(0),
                to: a(1),
                type_id: huge_type,
                value: 1,
            },
            Erc1155Op::BatchTransfer {
                from: a(0),
                to: huge_acct,
                entries: vec![(huge_type, 1)],
            },
            Erc1155Op::BalanceOf {
                account: huge_acct,
                type_id: huge_type,
            },
            Erc1155Op::TotalSupply { type_id: huge_type },
        ];
        let mut q = spec.initial_state();
        for op in &ops {
            let expected = spec.apply(&mut q, p(0), op);
            assert!(matches!(
                expected,
                Erc1155Resp::FALSE | Erc1155Resp::Amount(0)
            ));
            assert_eq!(ConcurrentObject::apply(&multi, p(0), op), expected);
            let _ = op.footprint(p(0)); // saturates, no panic
        }
        assert_eq!(q, spec.initial_state(), "huge ids must not mutate state");
    }

    #[test]
    fn batch_conflicts_iff_cell_sets_intersect() {
        let batch = |from: usize, to: usize, types: &[usize]| Erc1155Op::BatchTransfer {
            from: a(from),
            to: a(to),
            entries: types.iter().map(|&ty| (t(ty), 1)).collect(),
        };
        // Disjoint accounts, disjoint types: commute.
        let x = batch(0, 1, &[0, 1]);
        let y = batch(2, 3, &[0, 1]);
        assert!(!x.footprint(p(0)).conflicts_with(&y.footprint(p(2))));
        // Same source account and a shared type: conflict.
        let z = batch(0, 3, &[1, 2]);
        assert!(x.footprint(p(0)).conflicts_with(&z.footprint(p(0))));
        // Shared *destination* only: credits commute.
        let c1 = batch(0, 4, &[0]);
        let c2 = batch(2, 4, &[0]);
        assert!(!c1.footprint(p(0)).conflicts_with(&c2.footprint(p(2))));
        // Supply reads commute with everything.
        let supply = Erc1155Op::TotalSupply { type_id: t(0) };
        assert!(supply.footprint(p(1)).is_empty());
        assert!(!supply.footprint(p(1)).conflicts_with(&x.footprint(p(0))));
    }

    const N: usize = 4;
    const TYPES: usize = 3;

    fn arb_op() -> impl Strategy<Value = Erc1155Op> {
        prop_oneof![
            (0..N, 0..N, 0..TYPES, 0u64..4).prop_map(|(from, to, ty, value)| {
                Erc1155Op::Transfer {
                    from: a(from),
                    to: a(to),
                    type_id: t(ty),
                    value,
                }
            }),
            (0..N, 0..N, vec((0..TYPES, 0u64..4), 0..3)).prop_map(|(from, to, rows)| {
                Erc1155Op::BatchTransfer {
                    from: a(from),
                    to: a(to),
                    entries: rows.into_iter().map(|(ty, v)| (t(ty), v)).collect(),
                }
            }),
            (0..N, 0..2usize).prop_map(|(op, on)| Erc1155Op::SetApprovalForAll {
                operator: p(op),
                on: on == 1,
            }),
            (0..N, 0..TYPES).prop_map(|(account, ty)| Erc1155Op::BalanceOf {
                account: a(account),
                type_id: t(ty),
            }),
            (0..TYPES).prop_map(|ty| Erc1155Op::TotalSupply { type_id: t(ty) }),
        ]
    }

    proptest! {
        /// Soundness of the ERC1155 footprint catalog — including batch
        /// cell unions: footprint-disjoint pairs commute at every
        /// reachable state (mirror of the ERC20 suite).
        #[test]
        fn disjoint_footprints_commute_at_every_state(
            balances in vec((0..TYPES, 0..N, 0u64..5), 0..6),
            operators in vec((0..N, 0..N), 0..3),
            c1 in 0..N,
            c2 in 0..N,
            o1 in arb_op(),
            o2 in arb_op(),
        ) {
            let (c1, c2) = (p(c1), p(c2));
            prop_assume!(!o1.footprint(c1).conflicts_with(&o2.footprint(c2)));
            let mut q = Erc1155State::deploy(N, p(0), &vec![0; TYPES]);
            for &(ty, acct, v) in &balances {
                let old = q.balance_of(a(acct), t(ty));
                q.set_balance(a(acct), t(ty), old.max(v));
            }
            for &(h, o) in &operators {
                q.set_operator(a(h), p(o), true);
            }
            let spec = Erc1155Spec::new(Erc1155State::deploy(N, p(0), &[]));
            let mut qa = q.clone();
            let r1a = spec.apply(&mut qa, c1, &o1);
            let r2a = spec.apply(&mut qa, c2, &o2);
            let mut qb = q.clone();
            let r2b = spec.apply(&mut qb, c2, &o2);
            let r1b = spec.apply(&mut qb, c1, &o1);
            prop_assert_eq!(qa, qb, "states diverge for a non-conflicting pair");
            prop_assert_eq!(r1a, r1b, "first op's response depends on order");
            prop_assert_eq!(r2a, r2b, "second op's response depends on order");
        }
    }
}

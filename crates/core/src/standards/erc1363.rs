//! The ERC1363 "payable token" standard — and why the paper stops there.
//!
//! ERC1363 keeps ERC20's `approve`/`transferFrom` surface but invokes a
//! *receiver callback* after `transferAndCall` / `approveAndCall`; the
//! callback is arbitrary contract code. Section 6 of the paper observes
//! that this "precludes establishing exact synchronization requirements a
//! priori, as this can be arbitrary". This module makes that observation
//! concrete: the callback is a user-supplied closure over an arbitrary
//! shared object, so the *token* object embeds objects of unbounded
//! consensus number — [`Erc1363Token`] is exactly as strong as whatever
//! you plug into it.

use tokensync_spec::{AccountId, Amount, ProcessId};

use crate::erc20::Erc20State;
use crate::error::TokenError;

/// The outcome a receiver callback reports (per the standard, receivers
/// may reject a transfer, rolling it back).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HookOutcome {
    /// Accept the transfer.
    Accept,
    /// Reject: the token reverts the transfer.
    Reject,
}

/// A receiver hook: invoked after the balance moves, before the call
/// returns. In Solidity this is `onTransferReceived`; here it is any
/// closure — which is precisely why no a-priori consensus number exists.
pub type Hook = Box<dyn FnMut(ProcessId, AccountId, Amount) -> HookOutcome + Send>;

/// A minimal ERC1363 payable token: ERC20 semantics plus per-account
/// receiver hooks.
///
/// # Example
///
/// ```
/// use tokensync_core::standards::erc1363::{Erc1363Token, HookOutcome};
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let mut token = Erc1363Token::deploy(2, ProcessId::new(0), 10);
/// // Account 1 rejects payments over 5.
/// token.set_hook(AccountId::new(1), Box::new(|_, _, v| {
///     if v > 5 { HookOutcome::Reject } else { HookOutcome::Accept }
/// }));
/// assert!(token.transfer_and_call(ProcessId::new(0), AccountId::new(1), 3).is_ok());
/// assert!(token.transfer_and_call(ProcessId::new(0), AccountId::new(1), 7).is_err());
/// assert_eq!(token.state().balance(AccountId::new(1)), 3);
/// ```
pub struct Erc1363Token {
    state: Erc20State,
    hooks: Vec<Option<Hook>>,
    /// Number of hook invocations (diagnostic).
    pub hook_calls: u64,
}

impl Erc1363Token {
    /// Deploys with `n` accounts; the deployer holds the supply.
    ///
    /// # Panics
    ///
    /// Panics if `deployer.index() >= n`.
    pub fn deploy(n: usize, deployer: ProcessId, total_supply: Amount) -> Self {
        Self {
            state: Erc20State::with_deployer(n, deployer, total_supply),
            hooks: (0..n).map(|_| None).collect(),
            hook_calls: 0,
        }
    }

    /// The underlying ERC20 state.
    pub fn state(&self) -> &Erc20State {
        &self.state
    }

    /// Installs (or replaces) the receiver hook of `account`.
    ///
    /// # Panics
    ///
    /// Panics if `account` is out of range.
    pub fn set_hook(&mut self, account: AccountId, hook: Hook) {
        self.hooks[account.index()] = Some(hook);
    }

    /// `transferAndCall(to, value)`: ERC20 transfer, then the receiver's
    /// hook; a rejecting hook rolls the transfer back.
    ///
    /// # Errors
    ///
    /// The usual ERC20 errors for the transfer itself; a hook rejection is
    /// reported as [`TokenError::WouldExceedRestriction`] with `k = 0` —
    /// the library's "refused by policy" marker (a dedicated variant is
    /// not warranted for a demonstration standard).
    pub fn transfer_and_call(
        &mut self,
        caller: ProcessId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.state.transfer(caller, to, value)?;
        if let Some(hook) = self.hooks.get_mut(to.index()).and_then(Option::as_mut) {
            self.hook_calls += 1;
            if hook(caller, to, value) == HookOutcome::Reject {
                // Roll back: move the funds back to the caller.
                self.state
                    .transfer(to.owner(), caller.own_account(), value)
                    .expect("rollback of a just-applied transfer cannot fail");
                return Err(TokenError::WouldExceedRestriction { k: 0 });
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Erc1363Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Erc1363Token")
            .field("state", &self.state)
            .field("hook_calls", &self.hook_calls)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn accepting_hook_behaves_like_erc20() {
        let mut t = Erc1363Token::deploy(2, p(0), 10);
        t.set_hook(a(1), Box::new(|_, _, _| HookOutcome::Accept));
        t.transfer_and_call(p(0), a(1), 4).unwrap();
        assert_eq!(t.state().balance(a(1)), 4);
        assert_eq!(t.hook_calls, 1);
    }

    #[test]
    fn rejecting_hook_rolls_back_atomically() {
        let mut t = Erc1363Token::deploy(2, p(0), 10);
        t.set_hook(a(1), Box::new(|_, _, _| HookOutcome::Reject));
        let err = t.transfer_and_call(p(0), a(1), 4).unwrap_err();
        assert_eq!(err, TokenError::WouldExceedRestriction { k: 0 });
        assert_eq!(t.state().balance(a(0)), 10);
        assert_eq!(t.state().balance(a(1)), 0);
        assert_eq!(t.state().total_supply(), 10);
    }

    #[test]
    fn no_hook_means_plain_transfer() {
        let mut t = Erc1363Token::deploy(2, p(0), 10);
        t.transfer_and_call(p(0), a(1), 4).unwrap();
        assert_eq!(t.hook_calls, 0);
    }

    #[test]
    fn hooks_can_embed_arbitrary_synchronization() {
        // The paper's point: the hook below is a fetch-and-increment — an
        // object of consensus number 2 — and nothing stops a hook from
        // embedding consensus among any number of processes. The token's
        // synchronization power is therefore unbounded *a priori*.
        let counter = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&counter);
        let mut t = Erc1363Token::deploy(2, p(0), 10);
        t.set_hook(
            a(1),
            Box::new(move |_, _, _| {
                seen.fetch_add(1, Ordering::SeqCst);
                HookOutcome::Accept
            }),
        );
        t.transfer_and_call(p(0), a(1), 1).unwrap();
        t.transfer_and_call(p(0), a(1), 1).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn insufficient_balance_never_reaches_the_hook() {
        let mut t = Erc1363Token::deploy(2, p(0), 3);
        t.set_hook(a(1), Box::new(|_, _, _| HookOutcome::Accept));
        assert!(t.transfer_and_call(p(0), a(1), 5).is_err());
        assert_eq!(t.hook_calls, 0);
    }
}

//! The ERC777 token standard: operators instead of allowances.
//!
//! ERC777 replaces ERC20's metered allowances with *operators*: a holder
//! authorizes a process to move **all** of its tokens. In the paper's terms
//! the enabled-spender set of an account is `{owner} ∪ operators(a)` when
//! the balance is positive, and — because an operator's withdrawal is
//! unconstrained — the unique-winner condition needed by the consensus race
//! is arranged by having every racer withdraw the full balance.

use std::collections::BTreeSet;

use parking_lot::Mutex;
use tokensync_spec::{AccountId, Amount, ProcessId};

use crate::error::TokenError;

use super::race;

/// A sequential ERC777 token: balances plus per-holder operator sets.
///
/// # Example
///
/// ```
/// use tokensync_core::standards::erc777::Erc777Token;
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let mut token = Erc777Token::deploy(3, ProcessId::new(0), 10);
/// token.authorize_operator(ProcessId::new(0), ProcessId::new(2))?;
/// token.operator_send(ProcessId::new(2), AccountId::new(0), AccountId::new(1), 4)?;
/// assert_eq!(token.balance_of(AccountId::new(1)), 4);
/// # Ok::<(), tokensync_core::TokenError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Erc777Token {
    balances: Vec<Amount>,
    operators: Vec<BTreeSet<ProcessId>>,
}

impl Erc777Token {
    /// Deploys with `n` accounts; the deployer holds the whole supply.
    ///
    /// # Panics
    ///
    /// Panics if `deployer.index() >= n`.
    pub fn deploy(n: usize, deployer: ProcessId, total_supply: Amount) -> Self {
        let mut balances = vec![0; n];
        balances[deployer.index()] = total_supply;
        Self {
            balances,
            operators: vec![BTreeSet::new(); n],
        }
    }

    /// Builds from explicit balances (no operators).
    pub fn from_balances(balances: Vec<Amount>) -> Self {
        let n = balances.len();
        Self {
            balances,
            operators: vec![BTreeSet::new(); n],
        }
    }

    /// Number of accounts.
    pub fn accounts(&self) -> usize {
        self.balances.len()
    }

    /// `balanceOf(account)`.
    pub fn balance_of(&self, account: AccountId) -> Amount {
        self.balances.get(account.index()).copied().unwrap_or(0)
    }

    /// Total supply (invariant).
    pub fn total_supply(&self) -> Amount {
        self.balances.iter().sum()
    }

    fn check(&self, id: usize) -> Result<(), TokenError> {
        if id < self.balances.len() {
            Ok(())
        } else {
            Err(TokenError::UnknownProcess {
                process: ProcessId::new(id),
            })
        }
    }

    /// `authorizedOperators` check: a holder is always its own operator
    /// (per the ERC777 specification).
    pub fn is_operator_for(&self, operator: ProcessId, holder: AccountId) -> bool {
        operator == holder.owner()
            || self
                .operators
                .get(holder.index())
                .is_some_and(|s| s.contains(&operator))
    }

    /// `authorizeOperator(operator)` by `caller`.
    ///
    /// # Errors
    ///
    /// Unknown-id errors only.
    pub fn authorize_operator(
        &mut self,
        caller: ProcessId,
        operator: ProcessId,
    ) -> Result<(), TokenError> {
        self.check(caller.index())?;
        self.check(operator.index())?;
        if operator != caller {
            self.operators[caller.index()].insert(operator);
        }
        Ok(())
    }

    /// `revokeOperator(operator)` by `caller`.
    ///
    /// # Errors
    ///
    /// Unknown-id errors only.
    pub fn revoke_operator(
        &mut self,
        caller: ProcessId,
        operator: ProcessId,
    ) -> Result<(), TokenError> {
        self.check(caller.index())?;
        self.check(operator.index())?;
        self.operators[caller.index()].remove(&operator);
        Ok(())
    }

    /// `send(to, value)` by `caller` — like ERC20 `transfer`.
    ///
    /// # Errors
    ///
    /// [`TokenError::InsufficientBalance`] or unknown ids.
    pub fn send(
        &mut self,
        caller: ProcessId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.operator_send(caller, caller.own_account(), to, value)
    }

    /// `operatorSend(from, to, value)` by `caller`: the caller must be an
    /// operator for `from` (or its owner). Unlike ERC20 there is no metered
    /// allowance — an operator may move any amount up to the balance.
    ///
    /// # Errors
    ///
    /// [`TokenError::InsufficientAllowance`] (reported with the full
    /// requested amount) if the caller is not an operator;
    /// [`TokenError::InsufficientBalance`]; unknown ids.
    pub fn operator_send(
        &mut self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.check(caller.index())?;
        self.check(from.index())?;
        self.check(to.index())?;
        if !self.is_operator_for(caller, from) {
            return Err(TokenError::InsufficientAllowance {
                account: from,
                spender: caller,
                allowance: 0,
                required: value,
            });
        }
        let balance = self.balances[from.index()];
        if balance < value {
            return Err(TokenError::InsufficientBalance {
                account: from,
                balance,
                required: value,
            });
        }
        self.balances[from.index()] -= value;
        self.balances[to.index()] += value;
        Ok(())
    }

    /// The movers of `account`: `{owner} ∪ operators(account)` when the
    /// balance is positive, `{owner}` otherwise — the ERC777 analogue of
    /// `σ_q(a)` (equation (10)).
    pub fn enabled_movers(&self, account: AccountId) -> BTreeSet<ProcessId> {
        let mut set = BTreeSet::new();
        set.insert(account.owner());
        if self.balance_of(account) > 0 {
            if let Some(ops) = self.operators.get(account.index()) {
                set.extend(ops.iter().copied());
            }
        }
        set
    }

    /// The ERC777 partition index: `max_a |movers(a)|`. Because operator
    /// withdrawals are all-or-nothing, every state with a positive-balance
    /// multi-operator account is simultaneously a synchronization state —
    /// the `U` predicate is vacuous here.
    pub fn sync_level(&self) -> usize {
        (0..self.accounts())
            .map(|i| self.enabled_movers(AccountId::new(i)).len())
            .max()
            .unwrap_or(1)
            .max(1)
    }
}

/// A coarse-grained linearizable ERC777 token for threaded use.
#[derive(Debug)]
pub struct SharedErc777 {
    inner: Mutex<Erc777Token>,
}

impl SharedErc777 {
    /// Wraps a sequential token.
    pub fn new(token: Erc777Token) -> Self {
        Self {
            inner: Mutex::new(token),
        }
    }

    /// `operatorSend` (see [`Erc777Token::operator_send`]).
    ///
    /// # Errors
    ///
    /// As the sequential method.
    pub fn operator_send(
        &self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.inner.lock().operator_send(caller, from, to, value)
    }

    /// `balanceOf`.
    pub fn balance_of(&self, account: AccountId) -> Amount {
        self.inner.lock().balance_of(account)
    }

    /// Snapshot of the sequential token.
    pub fn snapshot(&self) -> Erc777Token {
        self.inner.lock().clone()
    }
}

/// The ERC777 decisive race: every mover races to `operatorSend` the
/// **full balance** of the shared source account to its private
/// destination; exactly one send succeeds, and the winner is the unique
/// destination holding the balance.
struct DrainRace {
    token: SharedErc777,
    source: AccountId,
    destinations: Vec<AccountId>,
    balance: Amount,
}

impl race::DecisiveRace for DrainRace {
    fn fire(&self, mover: usize) {
        let _ = self.token.operator_send(
            ProcessId::new(mover),
            self.source,
            self.destinations[mover],
            self.balance,
        );
    }

    fn winner(&self) -> Option<usize> {
        self.destinations
            .iter()
            .position(|d| self.token.balance_of(*d) == self.balance)
    }
}

/// Wait-free consensus among the `k` movers of an ERC777 account — the
/// Section 6 adaptation of Algorithm 1 as an instance of the generic
/// [`race::RaceConsensus`] choreography whose decisive transfer is a
/// full-balance `operatorSend` drain.
pub struct Erc777Consensus<V> {
    inner: race::RaceConsensus<V, DrainRace>,
}

impl<V: Clone + Send + Sync> Erc777Consensus<V> {
    /// Creates a fresh consensus instance for `k` movers: a dedicated
    /// ERC777 token with source account `a_0` (balance `B`), movers
    /// `p_0 .. p_{k-1}` all operators of `a_0`, and destination `a_{i+1}`
    /// for mover `i`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `balance == 0`.
    pub fn new(k: usize, balance: Amount) -> Self {
        assert!(k > 0, "consensus requires at least one process");
        assert!(balance > 0, "the source account needs positive balance");
        let mut balances = vec![0; k + 1];
        balances[0] = balance;
        let mut token = Erc777Token::from_balances(balances);
        for i in 0..k {
            token
                .authorize_operator(ProcessId::new(0), ProcessId::new(i))
                .expect("ids in range");
        }
        Self {
            inner: race::RaceConsensus::new(
                (0..k).map(ProcessId::new).collect(),
                DrainRace {
                    token: SharedErc777::new(token),
                    source: AccountId::new(0),
                    destinations: (1..=k).map(AccountId::new).collect(),
                    balance,
                },
            ),
        }
    }

    /// Proposes `value` on behalf of `process`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is not a mover.
    pub fn propose(&self, process: ProcessId, value: V) -> V {
        self.inner.propose(process, value)
    }

    /// The decided value, if any mover's full-balance send has landed.
    pub fn peek(&self) -> Option<V> {
        self.inner.peek()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn operators_move_any_amount() {
        let mut t = Erc777Token::deploy(3, p(0), 10);
        t.authorize_operator(p(0), p(1)).unwrap();
        t.operator_send(p(1), a(0), a(2), 9).unwrap();
        assert_eq!(t.balance_of(a(2)), 9);
        assert_eq!(t.total_supply(), 10);
    }

    #[test]
    fn non_operator_rejected() {
        let mut t = Erc777Token::deploy(2, p(0), 5);
        let err = t.operator_send(p(1), a(0), a(1), 1).unwrap_err();
        assert!(matches!(err, TokenError::InsufficientAllowance { .. }));
    }

    #[test]
    fn revocation_removes_mover() {
        let mut t = Erc777Token::deploy(2, p(0), 5);
        t.authorize_operator(p(0), p(1)).unwrap();
        assert_eq!(t.enabled_movers(a(0)).len(), 2);
        t.revoke_operator(p(0), p(1)).unwrap();
        assert_eq!(t.enabled_movers(a(0)).len(), 1);
    }

    #[test]
    fn sync_level_counts_operators_only_with_balance() {
        let mut t = Erc777Token::deploy(3, p(0), 5);
        t.authorize_operator(p(1), p(0)).unwrap(); // a1 has balance 0
        assert_eq!(t.sync_level(), 1);
        t.authorize_operator(p(0), p(1)).unwrap();
        t.authorize_operator(p(0), p(2)).unwrap();
        assert_eq!(t.sync_level(), 3);
    }

    #[test]
    fn holder_is_own_operator() {
        let t = Erc777Token::deploy(2, p(0), 5);
        assert!(t.is_operator_for(p(0), a(0)));
        assert!(!t.is_operator_for(p(1), a(0)));
    }

    #[test]
    fn consensus_sequential_first_wins() {
        let c: Erc777Consensus<&str> = Erc777Consensus::new(3, 10);
        assert_eq!(c.peek(), None);
        assert_eq!(c.propose(p(1), "one"), "one");
        assert_eq!(c.propose(p(0), "zero"), "one");
        assert_eq!(c.propose(p(2), "two"), "one");
    }

    #[test]
    fn consensus_agreement_under_contention() {
        for k in [2usize, 4, 6] {
            for _ in 0..25 {
                let c: Arc<Erc777Consensus<usize>> = Arc::new(Erc777Consensus::new(k, 5));
                let mut decisions = Vec::new();
                crossbeam::scope(|s| {
                    let handles: Vec<_> = (0..k)
                        .map(|i| {
                            let c = Arc::clone(&c);
                            s.spawn(move |_| c.propose(p(i), i))
                        })
                        .collect();
                    for h in handles {
                        decisions.push(h.join().unwrap());
                    }
                })
                .unwrap();
                let distinct: HashSet<_> = decisions.iter().copied().collect();
                assert_eq!(distinct.len(), 1, "k={k}: {decisions:?}");
                assert!(decisions[0] < k);
            }
        }
    }
}

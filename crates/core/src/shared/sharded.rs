//! Lock-striped concurrent token: the million-account fast path.
//!
//! [`SharedErc20`](super::SharedErc20) buys parallelism with one mutex per
//! account, which is perfect contention-wise but costs a mutex per account
//! and makes the global reads (`totalSupply`, snapshots) lock all `n`
//! cells — a full-engine stall at a million accounts. [`ShardedErc20`]
//! keeps the parallelism where it matters (disjoint *shards* proceed in
//! parallel; two ops conflict only when their accounts collide modulo the
//! stripe count) while bounding the lock count by the hardware: accounts
//! are striped across `min(n, 4 × cores)` shards.
//!
//! `totalSupply` needs no locks at all: every ERC20 operation conserves
//! the supply (no mint/burn in Definition 3), so the value is fixed at
//! construction and served from one atomic — reading it concurrently with
//! a transfer is trivially linearizable because both shard cells of the
//! transfer change inside one critical section that leaves the sum
//! untouched.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, MutexGuard};
use tokensync_spec::{AccountId, Amount, ProcessId};

use crate::erc20::{Erc20Delta, Erc20Op, Erc20Resp, Erc20State, SpenderMap};
use crate::error::TokenError;
use crate::util::CacheLine;

use super::interface::{apply_erc20, ConcurrentObject, ConcurrentToken};

/// The accounts striped onto one lock: account `i` lives in shard
/// `i % stripe` at slot `i / stripe`.
#[derive(Debug, Default)]
struct Shard {
    balances: Vec<Amount>,
    allowances: Vec<SpenderMap>,
    /// Copy-on-write tracking for incremental snapshots: bit `s` set iff
    /// slot `s` was mutated since the last [`ShardedErc20::drain_delta`].
    /// Two OR-stores on the transfer hot path; drained (and cleared)
    /// under the same shard lock, so a drain at a quiescent point sees
    /// exactly the slots touched since the previous drain.
    dirty: Vec<u64>,
}

impl Shard {
    #[inline]
    fn mark(&mut self, slot: usize) {
        self.dirty[slot >> 6] |= 1 << (slot & 63);
    }
}

/// An ERC20 token striped across `min(n, 4 × cores)` lock shards.
///
/// Each operation locks only the shards of the accounts it touches, in
/// ascending shard order (a global lock order, so no deadlock is
/// possible):
///
/// * `transfer` / `transferFrom` — at most two shards;
/// * `approve`, `allowance`, `balanceOf` — one shard;
/// * `totalSupply` — **zero** shards (cached atomic; supply is invariant
///   under every operation);
/// * [`ConcurrentToken::state_snapshot`] — all shards, ascending; `O(4 ×
///   cores)` lock acquisitions instead of the `O(n)` of the per-account
///   design.
///
/// Linearizability is established empirically by the recorded-history
/// stress tests in `shared::tests` and the proptest suite in
/// `tests/sharded_linearizability.rs`, both through
/// [`check_linearizable`](tokensync_spec::check_linearizable).
///
/// # Example
///
/// ```
/// use tokensync_core::shared::{ConcurrentToken, ShardedErc20};
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let token = ShardedErc20::deploy(1000, ProcessId::new(0), 1_000_000);
/// token.transfer(ProcessId::new(0), AccountId::new(999), 50)?;
/// assert_eq!(token.balance_of(AccountId::new(999)), 50);
/// assert_eq!(token.total_supply(), 1_000_000); // lock-free read
/// # Ok::<(), tokensync_core::TokenError>(())
/// ```
#[derive(Debug)]
pub struct ShardedErc20 {
    shards: Vec<CacheLine<Mutex<Shard>>>,
    /// Number of shards (a power of two); account `i` maps to shard
    /// `i & (stripe - 1)` at slot `i >> stripe.trailing_zeros()` — shift
    /// and mask, not division, because the stripe math sits on the hot
    /// path of every single operation.
    stripe: usize,
    /// `stripe - 1`.
    mask: usize,
    /// `log2(stripe)`.
    shift: u32,
    accounts: usize,
    /// Cached `Σ_a β(a)`; constant after construction because every
    /// operation conserves the supply.
    supply: AtomicU64,
}

impl ShardedErc20 {
    /// The default stripe count: `min(n, 4 × available cores)` rounded
    /// *down* to a power of two (so the bound is never exceeded), at
    /// least 1.
    ///
    /// Four stripes per core keeps the collision probability of two random
    /// concurrent operations low (≤ 1/4 per pair per core) without paying
    /// for a mutex per account; the power-of-two constraint turns the
    /// per-operation stripe math into shift/mask.
    pub fn default_shards(n: usize) -> usize {
        crate::util::default_stripe(n)
    }

    /// Deploys a fresh token (deployer holds the whole supply) over the
    /// default stripe count.
    ///
    /// # Panics
    ///
    /// Panics if `deployer.index() >= n`.
    pub fn deploy(n: usize, deployer: ProcessId, total_supply: Amount) -> Self {
        Self::from_state(Erc20State::with_deployer(n, deployer, total_supply))
    }

    /// Wraps an arbitrary starting state (the paper's `T_q`) over the
    /// default stripe count.
    pub fn from_state(state: Erc20State) -> Self {
        let stripe = Self::default_shards(state.accounts());
        Self::with_shards(state, stripe)
    }

    /// Wraps `state` over an explicit number of shards (tests exercise
    /// degenerate stripings; benchmarks sweep the knob).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or not a power of two.
    pub fn with_shards(state: Erc20State, shards: usize) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two (got {shards})"
        );
        let n = state.accounts();
        let supply = state.total_supply();
        // Shard s holds accounts s, s + stripe, s + 2·stripe, …
        let mut built: Vec<Shard> = (0..shards)
            .map(|_| Shard {
                balances: Vec::with_capacity(n / shards + 1),
                allowances: Vec::with_capacity(n / shards + 1),
                dirty: Vec::new(),
            })
            .collect();
        for i in 0..n {
            let account = AccountId::new(i);
            let shard = &mut built[i % shards];
            shard.balances.push(state.balance(account));
            shard.allowances.push(state.approval_row(account).clone());
        }
        for shard in &mut built {
            shard.dirty = vec![0; shard.balances.len().div_ceil(64)];
        }
        Self {
            shards: built
                .into_iter()
                .map(|s| CacheLine(Mutex::new(s)))
                .collect(),
            stripe: shards,
            mask: shards - 1,
            shift: shards.trailing_zeros(),
            accounts: n,
            supply: AtomicU64::new(supply),
        }
    }

    /// The stripe count (diagnostic; benchmarks record it).
    pub fn shard_count(&self) -> usize {
        self.stripe
    }

    /// Drains the copy-on-write dirty set: the full current
    /// `(balance, allowance row)` of every account touched since the
    /// previous drain, clearing the tracking bits.
    ///
    /// Each shard is visited under its own lock — serving continues on the
    /// other shards throughout. At a quiescent point (a sealed batch) the
    /// drained rows together with the previous snapshot reconstruct
    /// `snapshot()` exactly; mid-traffic the rows are each individually
    /// consistent but need not form an atomic cut.
    pub fn drain_delta(&self) -> Erc20Delta {
        let mut rows = Vec::new();
        for (shard_idx, cell) in self.shards.iter().enumerate() {
            let shard = &mut *cell.0.lock();
            for (word_idx, word) in shard.dirty.iter_mut().enumerate() {
                let mut bits = *word;
                *word = 0;
                while bits != 0 {
                    let slot = (word_idx << 6) | bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let account = ((slot << self.shift) | shard_idx) as u32;
                    rows.push((
                        account,
                        shard.balances[slot],
                        shard.allowances[slot].clone(),
                    ));
                }
            }
        }
        rows.sort_unstable_by_key(|&(a, _, _)| a);
        Erc20Delta { rows }
    }

    #[inline]
    fn shard_of(&self, account: usize) -> usize {
        account & self.mask
    }

    #[inline]
    fn slot_of(&self, account: usize) -> usize {
        account >> self.shift
    }

    fn check_account(&self, account: AccountId) -> Result<(), TokenError> {
        if account.index() < self.accounts {
            Ok(())
        } else {
            Err(TokenError::UnknownAccount { account })
        }
    }

    fn check_process(&self, process: ProcessId) -> Result<(), TokenError> {
        if process.index() < self.accounts {
            Ok(())
        } else {
            Err(TokenError::UnknownProcess { process })
        }
    }

    /// Locks every shard in ascending order (snapshot only).
    fn lock_all(&self) -> Vec<MutexGuard<'_, Shard>> {
        self.shards.iter().map(|s| s.0.lock()).collect()
    }
}

impl ConcurrentObject for ShardedErc20 {
    type Op = Erc20Op;
    type Resp = Erc20Resp;
    type State = Erc20State;

    fn apply(&self, process: ProcessId, op: &Erc20Op) -> Erc20Resp {
        apply_erc20(self, process, op)
    }

    fn snapshot(&self) -> Erc20State {
        let guards = self.lock_all();
        let mut balances = vec![0; self.accounts];
        for i in 0..self.accounts {
            balances[i] = guards[self.shard_of(i)].balances[self.slot_of(i)];
        }
        let mut state = Erc20State::from_balances(balances);
        for i in 0..self.accounts {
            let shard = &guards[self.shard_of(i)];
            for (spender, v) in shard.allowances[self.slot_of(i)].iter() {
                state.set_allowance(AccountId::new(i), spender, v);
            }
        }
        state
    }
}

impl ConcurrentToken for ShardedErc20 {
    fn accounts(&self) -> usize {
        self.accounts
    }

    fn transfer(&self, caller: ProcessId, to: AccountId, value: Amount) -> Result<(), TokenError> {
        self.check_process(caller)?;
        self.check_account(to)?;
        let from = caller.own_account();
        // Hot path: written as straight-line indexed code — no closures,
        // no simultaneous-borrow gymnastics — because at tens of millions
        // of ops per second every saved branch shows up in the baseline.
        let (fs, ts) = (self.shard_of(from.index()), self.shard_of(to.index()));
        let (fi, ti) = (self.slot_of(from.index()), self.slot_of(to.index()));
        if fs == ts {
            // Covers from == to as well (fi == ti debits then credits the
            // same slot: checked, then a net no-op — the ERC20 semantics).
            let shard = &mut *self.shards[fs].0.lock();
            let balance = shard.balances[fi];
            if balance < value {
                return Err(TokenError::InsufficientBalance {
                    account: from,
                    balance,
                    required: value,
                });
            }
            shard.balances[fi] = balance - value;
            shard.balances[ti] += value;
            shard.mark(fi);
            shard.mark(ti);
        } else {
            let (lo, hi) = (fs.min(ts), fs.max(ts));
            let mut lo_guard = self.shards[lo].0.lock();
            let mut hi_guard = self.shards[hi].0.lock();
            let (src, dst) = if fs == lo {
                (&mut *lo_guard, &mut *hi_guard)
            } else {
                (&mut *hi_guard, &mut *lo_guard)
            };
            let balance = src.balances[fi];
            if balance < value {
                return Err(TokenError::InsufficientBalance {
                    account: from,
                    balance,
                    required: value,
                });
            }
            src.balances[fi] = balance - value;
            dst.balances[ti] += value;
            src.mark(fi);
            dst.mark(ti);
        }
        Ok(())
    }

    fn transfer_from(
        &self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.check_process(caller)?;
        self.check_account(from)?;
        self.check_account(to)?;
        let spend = |balance: &mut Amount, allowances: &mut SpenderMap| {
            let allowance = allowances.get(caller.index());
            if allowance < value {
                return Err(TokenError::InsufficientAllowance {
                    account: from,
                    spender: caller,
                    allowance,
                    required: value,
                });
            }
            if *balance < value {
                return Err(TokenError::InsufficientBalance {
                    account: from,
                    balance: *balance,
                    required: value,
                });
            }
            allowances.debit(caller.index(), value);
            *balance -= value;
            Ok(())
        };
        let (fs, ts) = (self.shard_of(from.index()), self.shard_of(to.index()));
        let (fi, ti) = (self.slot_of(from.index()), self.slot_of(to.index()));
        if fs == ts {
            // Covers from == to as well: spend debits the one cell, then
            // the credit lands back on it (allowance burned, balance kept).
            let shard = &mut *self.shards[fs].0.lock();
            let (balances, allowances) = (&mut shard.balances, &mut shard.allowances);
            spend(&mut balances[fi], &mut allowances[fi])?;
            balances[ti] += value;
            shard.mark(fi);
            shard.mark(ti);
        } else {
            let (lo, hi) = (fs.min(ts), fs.max(ts));
            let mut lo_guard = self.shards[lo].0.lock();
            let mut hi_guard = self.shards[hi].0.lock();
            let (src, dst) = if fs == lo {
                (&mut *lo_guard, &mut *hi_guard)
            } else {
                (&mut *hi_guard, &mut *lo_guard)
            };
            spend(&mut src.balances[fi], &mut src.allowances[fi])?;
            dst.balances[ti] += value;
            src.mark(fi);
            dst.mark(ti);
        }
        Ok(())
    }

    fn approve(
        &self,
        caller: ProcessId,
        spender: ProcessId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.check_process(caller)?;
        self.check_process(spender)?;
        let account = caller.own_account();
        let mut shard = self.shards[self.shard_of(account.index())].0.lock();
        let slot = self.slot_of(account.index());
        shard.allowances[slot].set(spender.index(), value);
        shard.mark(slot);
        Ok(())
    }

    fn balance_of(&self, account: AccountId) -> Amount {
        if account.index() >= self.accounts {
            return 0;
        }
        let shard = self.shards[self.shard_of(account.index())].0.lock();
        shard.balances[self.slot_of(account.index())]
    }

    fn allowance(&self, account: AccountId, spender: ProcessId) -> Amount {
        if account.index() >= self.accounts {
            return 0;
        }
        let shard = self.shards[self.shard_of(account.index())].0.lock();
        shard.allowances[self.slot_of(account.index())].get(spender.index())
    }

    fn total_supply(&self) -> Amount {
        // Supply is invariant under Δ, so the constructor-time value is the
        // value at every linearization point; no lock needed. Relaxed is
        // enough: the atomic is written once, before the object is shared.
        self.supply.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn basic_flow_matches_spec() {
        for shards in [1, 2, 4, 8] {
            let t = ShardedErc20::with_shards(Erc20State::with_deployer(3, p(0), 10), shards);
            t.transfer(p(0), a(1), 3).unwrap();
            t.approve(p(1), p(2), 5).unwrap();
            assert!(t.transfer_from(p(2), a(1), a(2), 5).is_err());
            t.transfer_from(p(2), a(1), a(0), 1).unwrap();
            assert_eq!(t.balance_of(a(0)), 8, "shards={shards}");
            assert_eq!(t.balance_of(a(1)), 2);
            assert_eq!(t.allowance(a(1), p(2)), 4);
            assert_eq!(t.total_supply(), 10);
        }
    }

    #[test]
    fn self_transfer_preserves_balance() {
        let t = ShardedErc20::with_shards(Erc20State::with_deployer(2, p(0), 5), 2);
        t.transfer(p(0), a(0), 3).unwrap();
        assert_eq!(t.balance_of(a(0)), 5);
        assert!(matches!(
            t.transfer(p(0), a(0), 9),
            Err(TokenError::InsufficientBalance { .. })
        ));
    }

    #[test]
    fn self_transfer_from_preserves_balance_burns_allowance() {
        for shards in [1, 2, 4] {
            let t = ShardedErc20::with_shards(Erc20State::with_deployer(2, p(0), 5), shards);
            t.approve(p(0), p(1), 3).unwrap();
            t.transfer_from(p(1), a(0), a(0), 2).unwrap();
            assert_eq!(t.balance_of(a(0)), 5, "shards={shards}");
            assert_eq!(t.allowance(a(0), p(1)), 1);
        }
    }

    #[test]
    fn same_shard_distinct_accounts_transfer() {
        // Accounts 0 and 2 collide in shard 0 of a 2-stripe token.
        let t = ShardedErc20::with_shards(Erc20State::with_deployer(4, p(0), 10), 2);
        t.transfer(p(0), a(2), 4).unwrap();
        assert_eq!(t.balance_of(a(0)), 6);
        assert_eq!(t.balance_of(a(2)), 4);
        // And the reverse direction (source slot above destination slot).
        t.transfer(p(2), a(0), 1).unwrap();
        assert_eq!((t.balance_of(a(0)), t.balance_of(a(2))), (7, 3));
    }

    #[test]
    fn snapshot_round_trips_through_from_state() {
        let t = ShardedErc20::with_shards(Erc20State::with_deployer(5, p(1), 9), 2);
        t.approve(p(1), p(0), 4).unwrap();
        t.transfer(p(1), a(4), 2).unwrap();
        let snap = t.state_snapshot();
        let t2 = ShardedErc20::with_shards(snap.clone(), 4);
        assert_eq!(t2.state_snapshot(), snap);
        assert_eq!(snap.total_supply(), 9);
    }

    #[test]
    fn draining_race_admits_exactly_one_winner() {
        for _ in 0..200 {
            let t = Arc::new(ShardedErc20::with_shards(
                {
                    let mut q = Erc20State::from_balances(vec![10, 0, 0]);
                    q.set_allowance(a(0), p(1), 6);
                    q.set_allowance(a(0), p(2), 7);
                    q
                },
                2,
            ));
            let mut wins = 0;
            crossbeam::scope(|s| {
                let handles: Vec<_> = [(1usize, 6u64), (2, 7)]
                    .into_iter()
                    .map(|(i, amount)| {
                        let t = Arc::clone(&t);
                        s.spawn(move |_| t.transfer_from(p(i), a(0), a(i), amount).is_ok())
                    })
                    .collect();
                for h in handles {
                    if h.join().unwrap() {
                        wins += 1;
                    }
                }
            })
            .unwrap();
            assert_eq!(wins, 1);
        }
    }

    #[test]
    fn total_supply_is_lock_free_and_stable_under_traffic() {
        let t = Arc::new(ShardedErc20::with_shards(
            Erc20State::from_balances(vec![50; 8]),
            4,
        ));
        crossbeam::scope(|s| {
            for i in 0..4 {
                let t = Arc::clone(&t);
                s.spawn(move |_| {
                    for j in 0..200 {
                        let _ = t.transfer(p(i), a((i + j) % 8), 1 + (j as u64 % 3));
                        assert_eq!(t.total_supply(), 400);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(t.state_snapshot().total_supply(), 400);
    }

    #[test]
    fn drain_delta_tracks_touched_rows_and_folds_onto_base() {
        let t = ShardedErc20::with_shards(Erc20State::with_deployer(8, p(0), 100), 4);
        assert!(t.drain_delta().is_empty(), "fresh object has no dirty rows");
        let base = t.state_snapshot();
        t.transfer(p(0), a(5), 10).unwrap();
        t.approve(p(3), p(1), 7).unwrap();
        t.transfer_from(p(1), a(3), a(6), 0).unwrap();
        let delta = t.drain_delta();
        let touched: Vec<u32> = delta.rows.iter().map(|&(acc, _, _)| acc).collect();
        assert_eq!(touched, vec![0, 3, 5, 6]);
        let mut folded = base;
        assert!(delta.apply_to(&mut folded));
        assert_eq!(folded, t.state_snapshot());
        assert!(t.drain_delta().is_empty(), "drain clears the tracking bits");
    }

    #[test]
    fn delta_apply_rejects_out_of_range_rows() {
        let mut state = Erc20State::with_deployer(2, p(0), 5);
        let delta = Erc20Delta {
            rows: vec![(7, 1, SpenderMap::new())],
        };
        assert!(!delta.apply_to(&mut state));
        assert_eq!(state, Erc20State::with_deployer(2, p(0), 5));
    }

    #[test]
    fn unknown_ids_error() {
        let t = ShardedErc20::deploy(1, p(0), 1);
        assert!(matches!(
            t.transfer(p(0), a(4), 1),
            Err(TokenError::UnknownAccount { .. })
        ));
        assert!(matches!(
            t.approve(p(0), p(4), 1),
            Err(TokenError::UnknownProcess { .. })
        ));
        assert_eq!(t.balance_of(a(4)), 0);
        assert_eq!(t.allowance(a(4), p(0)), 0);
    }

    #[test]
    fn default_shards_bounded_by_accounts_and_cores() {
        assert_eq!(ShardedErc20::default_shards(0), 1);
        assert_eq!(ShardedErc20::default_shards(1), 1);
        assert_eq!(ShardedErc20::default_shards(2), 2);
        assert_eq!(ShardedErc20::default_shards(3), 2); // rounded down: never > n
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        let got = ShardedErc20::default_shards(1_000_000);
        assert!(got.is_power_of_two());
        assert!(got <= 4 * cores, "stripe count exceeds the 4×cores bound");
        assert!(2 * got > 4 * cores, "stripe count needlessly small");
    }
}

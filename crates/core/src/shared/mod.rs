//! Linearizable concurrent implementations of the ERC20 token object.
//!
//! The paper's model assumes processes access the token as a linearizable
//! shared object. Three implementations are provided behind the
//! [`ConcurrentToken`] interface:
//!
//! * [`CoarseErc20`] — one global lock; the obviously correct baseline.
//! * [`SharedErc20`] — per-account locks acquired in ascending index order;
//!   disjoint accounts proceed in parallel. This is the implementation the
//!   consensus constructions run on.
//! * [`ShardedErc20`] — accounts lock-striped across `min(n, 4 × cores)`
//!   shards with a lock-free cached `totalSupply`; the fast path for
//!   million-account deployments, where a mutex per account and
//!   all-account global reads stop scaling.
//!
//! All are differentially tested against the sequential
//! [`Erc20Token`](crate::erc20::Erc20Token) and checked for
//! linearizability with recorded histories.

mod coarse;
mod fine;
mod interface;
mod sharded;

pub use coarse::CoarseErc20;
pub use fine::SharedErc20;
pub use interface::{apply_erc20, ConcurrentObject, ConcurrentToken};
pub use sharded::ShardedErc20;

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tokensync_spec::{check_linearizable, AccountId, ObjectType, ProcessId, Recorder};

    use crate::erc20::{Erc20Op, Erc20Resp, Erc20Spec, Erc20State};

    use super::*;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn random_op(rng: &mut StdRng, n: usize) -> Erc20Op {
        match rng.gen_range(0..6) {
            0 => Erc20Op::Transfer {
                to: a(rng.gen_range(0..n)),
                value: rng.gen_range(0..4),
            },
            1 => Erc20Op::TransferFrom {
                from: a(rng.gen_range(0..n)),
                to: a(rng.gen_range(0..n)),
                value: rng.gen_range(0..4),
            },
            2 => Erc20Op::Approve {
                spender: p(rng.gen_range(0..n)),
                value: rng.gen_range(0..6),
            },
            3 => Erc20Op::BalanceOf {
                account: a(rng.gen_range(0..n)),
            },
            4 => Erc20Op::Allowance {
                account: a(rng.gen_range(0..n)),
                spender: p(rng.gen_range(0..n)),
            },
            _ => Erc20Op::TotalSupply,
        }
    }

    /// Runs `threads` worker threads of random operations against `token`,
    /// recording the history, and checks it linearizes against the
    /// sequential specification.
    fn linearizability_stress<T: ConcurrentToken>(token: &T, initial: Erc20State, seed: u64) {
        let threads = 3;
        let ops_per_thread = 6; // 18 ops total: comfortably within checker range
        let recorder: Arc<Recorder<Erc20Op, Erc20Resp>> = Arc::new(Recorder::new());
        crossbeam::scope(|s| {
            for t in 0..threads {
                let recorder = Arc::clone(&recorder);
                let token = &token;
                s.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(seed + t as u64);
                    for _ in 0..ops_per_thread {
                        let op = random_op(&mut rng, token.accounts());
                        let id = recorder.invoke(p(t), op.clone());
                        let resp = token.apply(p(t), &op);
                        recorder.ret(id, resp);
                    }
                });
            }
        })
        .unwrap();
        let history = Arc::try_unwrap(recorder).unwrap().into_history();
        let spec = Erc20Spec::new(initial);
        check_linearizable(&spec, &spec.initial_state(), &history)
            .unwrap_or_else(|e| panic!("history not linearizable: {e}"));
    }

    fn seeded_initial() -> Erc20State {
        let mut q = Erc20State::from_balances(vec![8, 5, 3]);
        q.set_allowance(a(0), p(1), 4);
        q.set_allowance(a(1), p(2), 4);
        q
    }

    #[test]
    fn coarse_token_linearizable_under_stress() {
        for seed in 0..8 {
            let initial = seeded_initial();
            let token = CoarseErc20::from_state(initial.clone());
            linearizability_stress(&token, initial, seed * 100);
        }
    }

    #[test]
    fn fine_token_linearizable_under_stress() {
        for seed in 0..8 {
            let initial = seeded_initial();
            let token = SharedErc20::from_state(initial.clone());
            linearizability_stress(&token, initial, seed * 100 + 7);
        }
    }

    #[test]
    fn sharded_token_linearizable_under_stress() {
        // Stripe counts below, at, and above the account count, so the
        // same-shard two-account path and the cross-shard path both race.
        for (seed, shards) in (0..8).zip([1, 2, 2, 4, 4, 8, 8, 16].into_iter().cycle()) {
            let initial = seeded_initial();
            let token = ShardedErc20::with_shards(initial.clone(), shards);
            linearizability_stress(&token, initial, seed * 100 + 13);
        }
    }

    #[test]
    fn implementations_agree_on_sequential_script() {
        let initial = seeded_initial();
        let coarse = CoarseErc20::from_state(initial.clone());
        let fine = SharedErc20::from_state(initial.clone());
        let sharded = ShardedErc20::with_shards(initial.clone(), 2);
        let mut oracle = initial;
        let spec = Erc20Spec::new(Erc20State::new(0));
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..300 {
            let caller = p(rng.gen_range(0..3));
            let op = random_op(&mut rng, 3);
            let expected = spec.apply(&mut oracle, caller, &op);
            assert_eq!(
                coarse.apply(caller, &op),
                expected,
                "coarse diverged on {op:?}"
            );
            assert_eq!(fine.apply(caller, &op), expected, "fine diverged on {op:?}");
            assert_eq!(
                sharded.apply(caller, &op),
                expected,
                "sharded diverged on {op:?}"
            );
        }
        assert_eq!(coarse.state_snapshot(), oracle);
        assert_eq!(fine.state_snapshot(), oracle);
        assert_eq!(sharded.state_snapshot(), oracle);
    }

    #[test]
    fn supply_conserved_under_heavy_concurrency() {
        let token = Arc::new(SharedErc20::from_state(Erc20State::from_balances(vec![
            100, 100, 100, 100,
        ])));
        crossbeam::scope(|s| {
            for t in 0..4 {
                let token = Arc::clone(&token);
                s.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(t as u64);
                    for _ in 0..500 {
                        let op = random_op(&mut rng, 4);
                        token.apply(p(t), &op);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(token.total_supply(), 400);
    }
}

//! Single-lock concurrent token.

use parking_lot::Mutex;
use tokensync_spec::{AccountId, Amount, ProcessId};

use crate::erc20::{Erc20Op, Erc20Resp, Erc20State};
use crate::error::TokenError;

use super::interface::{apply_erc20, ConcurrentObject, ConcurrentToken};

/// An ERC20 token behind one global mutex.
///
/// Trivially linearizable (every operation is one critical section over the
/// whole state) but fully serialized: the baseline the finer-grained
/// [`SharedErc20`](super::SharedErc20) and the consensus-backed universal
/// token are benchmarked against (bench `token_ops`).
///
/// # Example
///
/// ```
/// use tokensync_core::shared::{CoarseErc20, ConcurrentToken};
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let token = CoarseErc20::deploy(2, ProcessId::new(0), 10);
/// token.transfer(ProcessId::new(0), AccountId::new(1), 4)?;
/// assert_eq!(token.balance_of(AccountId::new(1)), 4);
/// # Ok::<(), tokensync_core::TokenError>(())
/// ```
#[derive(Debug)]
pub struct CoarseErc20 {
    state: Mutex<Erc20State>,
    accounts: usize,
}

impl CoarseErc20 {
    /// Deploys a fresh token (deployer holds the whole supply).
    ///
    /// # Panics
    ///
    /// Panics if `deployer.index() >= n`.
    pub fn deploy(n: usize, deployer: ProcessId, total_supply: Amount) -> Self {
        Self::from_state(Erc20State::with_deployer(n, deployer, total_supply))
    }

    /// Wraps an arbitrary starting state (the paper's `T_q`).
    pub fn from_state(state: Erc20State) -> Self {
        let accounts = state.accounts();
        Self {
            state: Mutex::new(state),
            accounts,
        }
    }
}

impl ConcurrentObject for CoarseErc20 {
    type Op = Erc20Op;
    type Resp = Erc20Resp;
    type State = Erc20State;

    fn apply(&self, process: ProcessId, op: &Erc20Op) -> Erc20Resp {
        apply_erc20(self, process, op)
    }

    fn snapshot(&self) -> Erc20State {
        self.state.lock().clone()
    }
}

impl ConcurrentToken for CoarseErc20 {
    fn accounts(&self) -> usize {
        self.accounts
    }

    fn transfer(&self, caller: ProcessId, to: AccountId, value: Amount) -> Result<(), TokenError> {
        self.state.lock().transfer(caller, to, value)
    }

    fn transfer_from(
        &self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.state.lock().transfer_from(caller, from, to, value)
    }

    fn approve(
        &self,
        caller: ProcessId,
        spender: ProcessId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.state.lock().approve(caller, spender, value)
    }

    fn balance_of(&self, account: AccountId) -> Amount {
        self.state.lock().balance(account)
    }

    fn allowance(&self, account: AccountId, spender: ProcessId) -> Amount {
        self.state.lock().allowance(account, spender)
    }

    fn total_supply(&self) -> Amount {
        self.state.lock().total_supply()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_flow() {
        let t = CoarseErc20::deploy(3, ProcessId::new(0), 10);
        t.transfer(ProcessId::new(0), AccountId::new(1), 3).unwrap();
        t.approve(ProcessId::new(1), ProcessId::new(2), 5).unwrap();
        assert!(t
            .transfer_from(ProcessId::new(2), AccountId::new(1), AccountId::new(2), 5)
            .is_err());
        t.transfer_from(ProcessId::new(2), AccountId::new(1), AccountId::new(0), 1)
            .unwrap();
        assert_eq!(t.balance_of(AccountId::new(0)), 8);
        assert_eq!(t.allowance(AccountId::new(1), ProcessId::new(2)), 4);
        assert_eq!(t.total_supply(), 10);
    }
}

//! The interfaces shared by all concurrent token implementations.
//!
//! Two layers:
//!
//! * [`ConcurrentObject`] — the *standard-generic* contract the batched
//!   pipeline serves: a linearizable shared object whose operations carry
//!   state footprints ([`FootprintedOp`]) and whose state can be
//!   snapshotted into a sequential oracle type. ERC20, ERC721 and
//!   ERC1155 objects all implement it.
//! * [`ConcurrentToken`] — the ERC20-specific convenience subtrait with
//!   the named methods (`transfer`, `approve`, …) the paper's
//!   constructions call directly. Every `ConcurrentToken` is a
//!   `ConcurrentObject` over the [`Erc20Op`]/[`Erc20Resp`]/[`Erc20State`]
//!   alphabet.

use std::fmt::Debug;

use tokensync_spec::{AccountId, Amount, ProcessId};

use crate::analysis::FootprintedOp;
use crate::erc20::{Erc20Op, Erc20Resp, Erc20State};
use crate::error::TokenError;

/// A linearizable, concurrently accessible token object of any standard.
///
/// Every operation must appear to take effect atomically at some point
/// between invocation and response (the assumption under which all of the
/// paper's constructions operate). The associated types tie the object to
/// its formal alphabet, so the generic pipeline can schedule
/// ([`FootprintedOp`]), execute ([`ConcurrentObject::apply`]) and audit
/// ([`ConcurrentObject::snapshot`] against an
/// [`ObjectType`](tokensync_spec::ObjectType) oracle) without knowing
/// which standard it is serving.
pub trait ConcurrentObject: Send + Sync {
    /// The operation alphabet `O`, carrying its own conflict footprints.
    type Op: FootprintedOp + Clone + Debug + Send + Sync + 'static;
    /// The response alphabet `R`. `Sync` so recovery can verify recorded
    /// responses from parallel replay workers sharing the log slice.
    type Resp: Clone + PartialEq + Debug + Send + Sync + 'static;
    /// The sequential oracle state `Q` — an atomic snapshot type
    /// comparable against a sequential replay (diagnostic / test oracle).
    /// `Send` so a durability layer can materialize state on a
    /// background snapshot thread.
    type State: Clone + PartialEq + Debug + Send + 'static;

    /// Applies a formal operation, returning the formal response.
    fn apply(&self, process: ProcessId, op: &Self::Op) -> Self::Resp;

    /// An atomic snapshot of the full state.
    fn snapshot(&self) -> Self::State;
}

impl<T: ConcurrentObject + ?Sized> ConcurrentObject for std::sync::Arc<T> {
    type Op = T::Op;
    type Resp = T::Resp;
    type State = T::State;

    fn apply(&self, process: ProcessId, op: &Self::Op) -> Self::Resp {
        (**self).apply(process, op)
    }
    fn snapshot(&self) -> Self::State {
        (**self).snapshot()
    }
}

/// Dispatches a formal [`Erc20Op`] to the named [`ConcurrentToken`]
/// methods — the shared body of every ERC20 object's
/// [`ConcurrentObject::apply`].
pub fn apply_erc20<T: ConcurrentToken + ?Sized>(
    token: &T,
    process: ProcessId,
    op: &Erc20Op,
) -> Erc20Resp {
    match *op {
        Erc20Op::Transfer { to, value } => {
            Erc20Resp::Bool(token.transfer(process, to, value).is_ok())
        }
        Erc20Op::TransferFrom { from, to, value } => {
            Erc20Resp::Bool(token.transfer_from(process, from, to, value).is_ok())
        }
        Erc20Op::Approve { spender, value } => {
            Erc20Resp::Bool(token.approve(process, spender, value).is_ok())
        }
        Erc20Op::BalanceOf { account } => Erc20Resp::Amount(token.balance_of(account)),
        Erc20Op::Allowance { account, spender } => {
            Erc20Resp::Amount(token.allowance(account, spender))
        }
        Erc20Op::TotalSupply => Erc20Resp::Amount(token.total_supply()),
    }
}

/// A linearizable, concurrently accessible ERC20 token object.
///
/// Mirrors [`Erc20Token`](crate::erc20::Erc20Token) with `&self` methods.
/// The formal alphabet is fixed by the supertrait: a `ConcurrentToken`
/// *is* a [`ConcurrentObject`] over
/// [`Erc20Op`]/[`Erc20Resp`]/[`Erc20State`], which is what lets the
/// generic pipeline and the ERC20-specific constructions share one
/// object.
pub trait ConcurrentToken:
    ConcurrentObject<Op = Erc20Op, Resp = Erc20Resp, State = Erc20State>
{
    /// Number of accounts `n`.
    fn accounts(&self) -> usize;

    /// `transfer(to, value)` as `caller`.
    ///
    /// # Errors
    ///
    /// As [`Erc20State::transfer`](crate::erc20::Erc20State::transfer).
    fn transfer(&self, caller: ProcessId, to: AccountId, value: Amount) -> Result<(), TokenError>;

    /// `transferFrom(from, to, value)` as `caller`.
    ///
    /// # Errors
    ///
    /// As [`Erc20State::transfer_from`](crate::erc20::Erc20State::transfer_from).
    fn transfer_from(
        &self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError>;

    /// `approve(spender, value)` as `caller`.
    ///
    /// # Errors
    ///
    /// As [`Erc20State::approve`](crate::erc20::Erc20State::approve).
    fn approve(
        &self,
        caller: ProcessId,
        spender: ProcessId,
        value: Amount,
    ) -> Result<(), TokenError>;

    /// `balanceOf(account)`.
    fn balance_of(&self, account: AccountId) -> Amount;

    /// `allowance(account, spender)`.
    fn allowance(&self, account: AccountId, spender: ProcessId) -> Amount;

    /// `totalSupply()` — atomic with respect to transfers.
    fn total_supply(&self) -> Amount;

    /// Legacy alias of [`ConcurrentObject::snapshot`], kept so existing
    /// callers migrate incrementally; prefer `snapshot()`.
    fn state_snapshot(&self) -> Erc20State {
        self.snapshot()
    }
}

impl<T: ConcurrentToken + ?Sized> ConcurrentToken for std::sync::Arc<T> {
    fn accounts(&self) -> usize {
        (**self).accounts()
    }
    fn transfer(&self, caller: ProcessId, to: AccountId, value: Amount) -> Result<(), TokenError> {
        (**self).transfer(caller, to, value)
    }
    fn transfer_from(
        &self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError> {
        (**self).transfer_from(caller, from, to, value)
    }
    fn approve(
        &self,
        caller: ProcessId,
        spender: ProcessId,
        value: Amount,
    ) -> Result<(), TokenError> {
        (**self).approve(caller, spender, value)
    }
    fn balance_of(&self, account: AccountId) -> Amount {
        (**self).balance_of(account)
    }
    fn allowance(&self, account: AccountId, spender: ProcessId) -> Amount {
        (**self).allowance(account, spender)
    }
    fn total_supply(&self) -> Amount {
        (**self).total_supply()
    }
}

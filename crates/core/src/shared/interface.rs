//! The interface shared by all concurrent token implementations.

use tokensync_spec::{AccountId, Amount, ProcessId};

use crate::erc20::{Erc20Op, Erc20Resp, Erc20State};
use crate::error::TokenError;

/// A linearizable, concurrently accessible ERC20 token object.
///
/// Mirrors [`Erc20Token`](crate::erc20::Erc20Token) with `&self` methods;
/// every operation must appear to take effect atomically at some point
/// between invocation and response (the assumption under which all of the
/// paper's constructions operate).
pub trait ConcurrentToken: Send + Sync {
    /// Number of accounts `n`.
    fn accounts(&self) -> usize;

    /// `transfer(to, value)` as `caller`.
    ///
    /// # Errors
    ///
    /// As [`Erc20State::transfer`](crate::erc20::Erc20State::transfer).
    fn transfer(&self, caller: ProcessId, to: AccountId, value: Amount) -> Result<(), TokenError>;

    /// `transferFrom(from, to, value)` as `caller`.
    ///
    /// # Errors
    ///
    /// As [`Erc20State::transfer_from`](crate::erc20::Erc20State::transfer_from).
    fn transfer_from(
        &self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError>;

    /// `approve(spender, value)` as `caller`.
    ///
    /// # Errors
    ///
    /// As [`Erc20State::approve`](crate::erc20::Erc20State::approve).
    fn approve(
        &self,
        caller: ProcessId,
        spender: ProcessId,
        value: Amount,
    ) -> Result<(), TokenError>;

    /// `balanceOf(account)`.
    fn balance_of(&self, account: AccountId) -> Amount;

    /// `allowance(account, spender)`.
    fn allowance(&self, account: AccountId, spender: ProcessId) -> Amount;

    /// `totalSupply()` — atomic with respect to transfers.
    fn total_supply(&self) -> Amount;

    /// An atomic snapshot of the full state (diagnostic / test oracle).
    fn state_snapshot(&self) -> Erc20State;

    /// Applies a formal [`Erc20Op`], returning the formal response.
    fn apply(&self, process: ProcessId, op: &Erc20Op) -> Erc20Resp {
        match *op {
            Erc20Op::Transfer { to, value } => {
                Erc20Resp::Bool(self.transfer(process, to, value).is_ok())
            }
            Erc20Op::TransferFrom { from, to, value } => {
                Erc20Resp::Bool(self.transfer_from(process, from, to, value).is_ok())
            }
            Erc20Op::Approve { spender, value } => {
                Erc20Resp::Bool(self.approve(process, spender, value).is_ok())
            }
            Erc20Op::BalanceOf { account } => Erc20Resp::Amount(self.balance_of(account)),
            Erc20Op::Allowance { account, spender } => {
                Erc20Resp::Amount(self.allowance(account, spender))
            }
            Erc20Op::TotalSupply => Erc20Resp::Amount(self.total_supply()),
        }
    }
}

impl<T: ConcurrentToken + ?Sized> ConcurrentToken for std::sync::Arc<T> {
    fn accounts(&self) -> usize {
        (**self).accounts()
    }
    fn transfer(&self, caller: ProcessId, to: AccountId, value: Amount) -> Result<(), TokenError> {
        (**self).transfer(caller, to, value)
    }
    fn transfer_from(
        &self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError> {
        (**self).transfer_from(caller, from, to, value)
    }
    fn approve(
        &self,
        caller: ProcessId,
        spender: ProcessId,
        value: Amount,
    ) -> Result<(), TokenError> {
        (**self).approve(caller, spender, value)
    }
    fn balance_of(&self, account: AccountId) -> Amount {
        (**self).balance_of(account)
    }
    fn allowance(&self, account: AccountId, spender: ProcessId) -> Amount {
        (**self).allowance(account, spender)
    }
    fn total_supply(&self) -> Amount {
        (**self).total_supply()
    }
    fn state_snapshot(&self) -> Erc20State {
        (**self).state_snapshot()
    }
}

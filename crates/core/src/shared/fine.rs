//! Per-account-locked concurrent token.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, MutexGuard};
use tokensync_spec::{AccountId, Amount, ProcessId};

use crate::erc20::{Erc20Op, Erc20Resp, Erc20State, SpenderMap};
use crate::error::TokenError;

use super::interface::{apply_erc20, ConcurrentObject, ConcurrentToken};

/// Everything owned by one account: its balance and the allowances it has
/// granted (`α(a, ·)` is written only through `a`'s lock). The allowance
/// row is sparse, so a cell costs `O(1 + outstanding approvals)` memory —
/// a million idle accounts cost a few machine words each, not a row of
/// the dense `n × n` matrix.
#[derive(Debug)]
struct AccountCell {
    balance: Amount,
    allowances: SpenderMap,
}

/// An ERC20 token with per-account locking.
///
/// Each operation locks only the accounts it touches, in ascending index
/// order (a global lock order, so no deadlock is possible):
///
/// * `transfer` / `transferFrom` — the source and destination cells;
/// * `approve`, `allowance`, `balanceOf` — one cell;
/// * `totalSupply` — **zero** cells: the supply is invariant under every
///   operation, so a constructor-cached atomic serves every read (debug
///   builds re-verify it against the full locked scan);
/// * [`ConcurrentToken::state_snapshot`] — all cells, ascending.
///
/// Operations on disjoint account pairs proceed fully in parallel, which is
/// precisely the parallelism opportunity the paper argues blockchains leave
/// on the table (Section 1). Linearizability is established empirically in
/// `shared::tests` via recorded histories and the
/// [`check_linearizable`](tokensync_spec::check_linearizable) oracle.
///
/// # Example
///
/// ```
/// use tokensync_core::shared::{ConcurrentToken, SharedErc20};
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let token = SharedErc20::deploy(3, ProcessId::new(0), 100);
/// token.approve(ProcessId::new(0), ProcessId::new(2), 40)?;
/// token.transfer_from(ProcessId::new(2), AccountId::new(0), AccountId::new(1), 25)?;
/// assert_eq!(token.balance_of(AccountId::new(1)), 25);
/// assert_eq!(token.allowance(AccountId::new(0), ProcessId::new(2)), 15);
/// # Ok::<(), tokensync_core::TokenError>(())
/// ```
#[derive(Debug)]
pub struct SharedErc20 {
    cells: Vec<Mutex<AccountCell>>,
    /// Cached `Σ_a β(a)`; constant after construction because every
    /// operation conserves the supply.
    supply: AtomicU64,
}

impl SharedErc20 {
    /// Deploys a fresh token (deployer holds the whole supply).
    ///
    /// # Panics
    ///
    /// Panics if `deployer.index() >= n`.
    pub fn deploy(n: usize, deployer: ProcessId, total_supply: Amount) -> Self {
        Self::from_state(Erc20State::with_deployer(n, deployer, total_supply))
    }

    /// Wraps an arbitrary starting state (the paper's `T_q`).
    pub fn from_state(state: Erc20State) -> Self {
        let n = state.accounts();
        let supply = state.total_supply();
        let cells = (0..n)
            .map(|i| {
                let account = AccountId::new(i);
                Mutex::new(AccountCell {
                    balance: state.balance(account),
                    allowances: state.approval_row(account).clone(),
                })
            })
            .collect();
        Self {
            cells,
            supply: AtomicU64::new(supply),
        }
    }

    fn check_account(&self, account: AccountId) -> Result<(), TokenError> {
        if account.index() < self.cells.len() {
            Ok(())
        } else {
            Err(TokenError::UnknownAccount { account })
        }
    }

    fn check_process(&self, process: ProcessId) -> Result<(), TokenError> {
        if process.index() < self.cells.len() {
            Ok(())
        } else {
            Err(TokenError::UnknownProcess { process })
        }
    }

    /// Locks `from` and `to` in ascending order and runs `f` on the pair
    /// `(source cell, destination cell)`. `from != to` required.
    fn with_pair<R>(
        &self,
        from: AccountId,
        to: AccountId,
        f: impl FnOnce(&mut AccountCell, &mut AccountCell) -> R,
    ) -> R {
        let (lo, hi) = (from.index().min(to.index()), from.index().max(to.index()));
        debug_assert_ne!(lo, hi);
        let mut lo_guard = self.cells[lo].lock();
        let mut hi_guard = self.cells[hi].lock();
        if from.index() == lo {
            f(&mut lo_guard, &mut hi_guard)
        } else {
            f(&mut hi_guard, &mut lo_guard)
        }
    }

    /// Locks every cell in ascending order (for the global reads).
    fn lock_all(&self) -> Vec<MutexGuard<'_, AccountCell>> {
        self.cells.iter().map(Mutex::lock).collect()
    }
}

impl ConcurrentObject for SharedErc20 {
    type Op = Erc20Op;
    type Resp = Erc20Resp;
    type State = Erc20State;

    fn apply(&self, process: ProcessId, op: &Erc20Op) -> Erc20Resp {
        apply_erc20(self, process, op)
    }

    fn snapshot(&self) -> Erc20State {
        let guards = self.lock_all();
        let mut state = Erc20State::from_balances(guards.iter().map(|c| c.balance).collect());
        for (i, cell) in guards.iter().enumerate() {
            for (spender, v) in cell.allowances.iter() {
                state.set_allowance(AccountId::new(i), spender, v);
            }
        }
        state
    }
}

impl ConcurrentToken for SharedErc20 {
    fn accounts(&self) -> usize {
        self.cells.len()
    }

    fn transfer(&self, caller: ProcessId, to: AccountId, value: Amount) -> Result<(), TokenError> {
        self.check_process(caller)?;
        self.check_account(to)?;
        let from = caller.own_account();
        if from == to {
            let cell = self.cells[from.index()].lock();
            return if cell.balance >= value {
                Ok(())
            } else {
                Err(TokenError::InsufficientBalance {
                    account: from,
                    balance: cell.balance,
                    required: value,
                })
            };
        }
        self.with_pair(from, to, |src, dst| {
            if src.balance < value {
                return Err(TokenError::InsufficientBalance {
                    account: from,
                    balance: src.balance,
                    required: value,
                });
            }
            src.balance -= value;
            dst.balance += value;
            Ok(())
        })
    }

    fn transfer_from(
        &self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.check_process(caller)?;
        self.check_account(from)?;
        self.check_account(to)?;
        let spend = |src: &mut AccountCell| -> Result<(), TokenError> {
            let allowance = src.allowances.get(caller.index());
            if allowance < value {
                return Err(TokenError::InsufficientAllowance {
                    account: from,
                    spender: caller,
                    allowance,
                    required: value,
                });
            }
            if src.balance < value {
                return Err(TokenError::InsufficientBalance {
                    account: from,
                    balance: src.balance,
                    required: value,
                });
            }
            src.allowances.debit(caller.index(), value);
            src.balance -= value;
            Ok(())
        };
        if from == to {
            let mut cell = self.cells[from.index()].lock();
            spend(&mut cell)?;
            cell.balance += value;
            return Ok(());
        }
        self.with_pair(from, to, |src, dst| {
            spend(src)?;
            dst.balance += value;
            Ok(())
        })
    }

    fn approve(
        &self,
        caller: ProcessId,
        spender: ProcessId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.check_process(caller)?;
        self.check_process(spender)?;
        let mut cell = self.cells[caller.index()].lock();
        cell.allowances.set(spender.index(), value);
        Ok(())
    }

    fn balance_of(&self, account: AccountId) -> Amount {
        self.cells
            .get(account.index())
            .map(|c| c.lock().balance)
            .unwrap_or(0)
    }

    fn allowance(&self, account: AccountId, spender: ProcessId) -> Amount {
        self.cells
            .get(account.index())
            .map(|c| c.lock().allowances.get(spender.index()))
            .unwrap_or(0)
    }

    fn total_supply(&self) -> Amount {
        // Supply is invariant under Δ, so the constructor-time value is
        // the value at every linearization point — exactly the argument
        // `ShardedErc20` makes. The previous implementation took all `n`
        // per-account locks per read: a full-engine stall at n = 1M.
        // Relaxed is enough: the atomic is written once, before sharing.
        debug_assert_eq!(
            self.supply.load(Ordering::Relaxed),
            self.lock_all().iter().map(|c| c.balance).sum::<Amount>(),
            "supply cache diverged from the locked scan"
        );
        self.supply.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn basic_flow_matches_spec() {
        let t = SharedErc20::deploy(3, p(0), 10);
        t.transfer(p(0), a(1), 3).unwrap();
        t.approve(p(1), p(2), 5).unwrap();
        assert!(t.transfer_from(p(2), a(1), a(2), 5).is_err());
        t.transfer_from(p(2), a(1), a(0), 1).unwrap();
        assert_eq!(t.balance_of(a(0)), 8);
        assert_eq!(t.balance_of(a(1)), 2);
        assert_eq!(t.allowance(a(1), p(2)), 4);
    }

    #[test]
    fn self_transfer_from_preserves_balance_burns_allowance() {
        let t = SharedErc20::deploy(2, p(0), 5);
        t.approve(p(0), p(1), 3).unwrap();
        t.transfer_from(p(1), a(0), a(0), 2).unwrap();
        assert_eq!(t.balance_of(a(0)), 5);
        assert_eq!(t.allowance(a(0), p(1)), 1);
    }

    #[test]
    fn snapshot_round_trips_through_from_state() {
        let t = SharedErc20::deploy(3, p(1), 9);
        t.approve(p(1), p(0), 4).unwrap();
        t.transfer(p(1), a(2), 2).unwrap();
        let snap = t.state_snapshot();
        let t2 = SharedErc20::from_state(snap.clone());
        assert_eq!(t2.state_snapshot(), snap);
    }

    #[test]
    fn draining_race_admits_exactly_one_winner() {
        // The linearizability property Algorithm 1 leans on: when two
        // spenders' allowances pairwise exceed the balance, at most one
        // transferFrom succeeds.
        for _ in 0..200 {
            let t = Arc::new(SharedErc20::from_state({
                let mut q = Erc20State::from_balances(vec![10, 0, 0]);
                q.set_allowance(a(0), p(1), 6);
                q.set_allowance(a(0), p(2), 7);
                q
            }));
            let mut wins = 0;
            crossbeam::scope(|s| {
                let handles: Vec<_> = [(1usize, 6u64), (2, 7)]
                    .into_iter()
                    .map(|(i, amount)| {
                        let t = Arc::clone(&t);
                        s.spawn(move |_| t.transfer_from(p(i), a(0), a(i), amount).is_ok())
                    })
                    .collect();
                for h in handles {
                    if h.join().unwrap() {
                        wins += 1;
                    }
                }
            })
            .unwrap();
            assert_eq!(wins, 1);
        }
    }

    #[test]
    fn total_supply_is_lock_free_and_stable_under_traffic() {
        // Mirrors the sharded token's test: the cached atomic must agree
        // with the locked scan (debug builds assert that inside the read)
        // at every point of a concurrent run.
        let t = Arc::new(SharedErc20::from_state(Erc20State::from_balances(vec![
            50;
            8
        ])));
        crossbeam::scope(|s| {
            for i in 0..4 {
                let t = Arc::clone(&t);
                s.spawn(move |_| {
                    for j in 0..200 {
                        let _ = t.transfer(p(i), a((i + j) % 8), 1 + (j as u64 % 3));
                        assert_eq!(t.total_supply(), 400);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(t.state_snapshot().total_supply(), 400);
    }

    #[test]
    fn unknown_ids_error() {
        let t = SharedErc20::deploy(1, p(0), 1);
        assert!(matches!(
            t.transfer(p(0), a(4), 1),
            Err(TokenError::UnknownAccount { .. })
        ));
        assert!(matches!(
            t.approve(p(0), p(4), 1),
            Err(TokenError::UnknownProcess { .. })
        ));
        assert_eq!(t.balance_of(a(4)), 0);
        assert_eq!(t.allowance(a(4), p(0)), 0);
    }
}

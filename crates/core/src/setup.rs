//! Driving a token into a synchronization state.
//!
//! Theorem 2 applies once the object *is* in a state of `S_k`; the paper
//! stresses (after Theorem 3) that *getting there* is not wait-free — it
//! requires the owner of an account with positive balance to successfully
//! execute `k − 1` `approve` operations, and the owner may crash first.
//! This module provides that (non-wait-free) preparation step, plus fixture
//! helpers for tests and benches.

use std::fmt;

use tokensync_spec::{AccountId, Amount, ProcessId};

use crate::analysis::{sync_level, SyncWitness};
use crate::erc20::Erc20State;
use crate::shared::ConcurrentToken;

/// Errors from [`prepare_sync_state`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetupError {
    /// The owner's account has zero balance — `U` can never hold.
    EmptyAccount {
        /// The account that cannot anchor a race.
        account: AccountId,
    },
    /// An `approve` failed (out-of-range spender).
    ApproveFailed {
        /// The spender whose approval failed.
        spender: ProcessId,
    },
    /// The resulting state does not satisfy `U` on the owner's account —
    /// the requested allowances do not pairwise exceed the balance.
    NotUnique {
        /// The account that ended up without the unique-winner guarantee.
        account: AccountId,
    },
}

impl fmt::Display for SetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetupError::EmptyAccount { account } => {
                write!(f, "account {account} has zero balance")
            }
            SetupError::ApproveFailed { spender } => {
                write!(f, "approve of {spender} failed")
            }
            SetupError::NotUnique { account } => write!(
                f,
                "allowances on {account} do not satisfy the unique-winner predicate U"
            ),
        }
    }
}

impl std::error::Error for SetupError {}

/// Allowance values that put an account with balance `balance` into a
/// synchronization state with `k` participants: `k − 1` equal allowances of
/// `⌊balance/2⌋ + 1`, which pairwise exceed the balance and never exceed it
/// individually (for `balance ≥ 1`).
pub fn pairwise_exceeding_allowances(k: usize, balance: Amount) -> Vec<Amount> {
    vec![balance / 2 + 1; k.saturating_sub(1)]
}

/// Drives `token` into a synchronization state anchored at `owner`'s
/// account by approving each of `spenders` with the corresponding allowance,
/// then validates `U` and returns the [`SyncWitness`] to hand to
/// [`TokenConsensus`](crate::token_consensus::TokenConsensus).
///
/// This is the operation sequence of equation (12): each successful
/// `approve` moves the state from `Q_k` to `Q_{k+1}`. It is **not**
/// wait-free — it completes only if the owner stays alive through all
/// `k − 1` approvals, which is exactly why the token's consensus number is
/// state-dependent rather than always `n`.
///
/// # Errors
///
/// See [`SetupError`]. On error the token may be left with some approvals
/// already applied (mirroring a crashed owner mid-preparation).
pub fn prepare_sync_state<T: ConcurrentToken>(
    token: &T,
    owner: ProcessId,
    spenders: &[ProcessId],
    allowances: &[Amount],
) -> Result<SyncWitness, SetupError> {
    assert_eq!(
        spenders.len(),
        allowances.len(),
        "one allowance per spender required"
    );
    let account = owner.own_account();
    if token.balance_of(account) == 0 {
        return Err(SetupError::EmptyAccount { account });
    }
    for (spender, allowance) in spenders.iter().zip(allowances) {
        token
            .approve(owner, *spender, *allowance)
            .map_err(|_| SetupError::ApproveFailed { spender: *spender })?;
    }
    SyncWitness::for_account(&token.state_snapshot(), account)
        .ok_or(SetupError::NotUnique { account })
}

/// Builds a fixture state in `S_k`: `n` accounts, balance `balance` on
/// account 0, spenders `p_1 .. p_{k-1}` approved with pairwise-exceeding
/// allowances. Returns the state and its witness.
///
/// # Panics
///
/// Panics if `k == 0`, `k > n`, or `balance == 0`.
pub fn sync_state_fixture(k: usize, n: usize, balance: Amount) -> (Erc20State, SyncWitness) {
    assert!(k >= 1 && k <= n, "need 1 ≤ k ≤ n");
    assert!(balance > 0, "the race account needs positive balance");
    let mut balances = vec![0; n];
    balances[0] = balance;
    let mut state = Erc20State::from_balances(balances);
    for (i, allowance) in pairwise_exceeding_allowances(k, balance)
        .into_iter()
        .enumerate()
    {
        state.set_allowance(AccountId::new(0), ProcessId::new(i + 1), allowance);
    }
    let witness = SyncWitness::for_account(&state, AccountId::new(0))
        .expect("fixture construction satisfies U by design");
    assert_eq!(witness.k(), k);
    (state, witness)
}

/// Convenience: the best sync level reachable *right now* plus what a
/// provisioning layer should do — used by examples and the dynamic
/// protocol.
pub fn current_sync_level(state: &Erc20State) -> usize {
    sync_level(state).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{consensus_number_bounds, unique_transfers};
    use crate::shared::{CoarseErc20, SharedErc20};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }

    #[test]
    fn fixture_is_exactly_sk() {
        for k in 1..=5 {
            let (state, w) = sync_state_fixture(k, 6, 10);
            assert_eq!(w.k(), k);
            assert!(unique_transfers(&state, a(0)));
            assert_eq!(consensus_number_bounds(&state).exact(), Some(k));
        }
    }

    #[test]
    fn fixture_balance_one_still_works() {
        let (state, w) = sync_state_fixture(3, 4, 1);
        assert_eq!(w.allowances, vec![1, 1]);
        assert!(unique_transfers(&state, a(0)));
    }

    #[test]
    fn prepare_reaches_sk_on_live_token() {
        let token = SharedErc20::deploy(5, p(0), 20);
        let spenders = [p(1), p(2), p(3)];
        let allowances = pairwise_exceeding_allowances(4, 20);
        let w = prepare_sync_state(&token, p(0), &spenders, &allowances).unwrap();
        assert_eq!(w.k(), 4);
        assert_eq!(w.balance, 20);
        assert_eq!(
            consensus_number_bounds(&token.state_snapshot()).exact(),
            Some(4)
        );
    }

    #[test]
    fn prepare_rejects_empty_account() {
        let token = CoarseErc20::deploy(3, p(0), 5);
        let err = prepare_sync_state(&token, p(1), &[p(2)], &[3]).unwrap_err();
        assert_eq!(err, SetupError::EmptyAccount { account: a(1) });
    }

    #[test]
    fn prepare_rejects_non_unique_allowances() {
        let token = CoarseErc20::deploy(4, p(0), 10);
        // 3 + 4 ≤ 10: two spenders could both win.
        let err = prepare_sync_state(&token, p(0), &[p(1), p(2)], &[3, 4]).unwrap_err();
        assert_eq!(err, SetupError::NotUnique { account: a(0) });
    }

    #[test]
    fn prepare_rejects_unknown_spender() {
        let token = CoarseErc20::deploy(2, p(0), 10);
        let err = prepare_sync_state(&token, p(0), &[p(7)], &[6]).unwrap_err();
        assert_eq!(err, SetupError::ApproveFailed { spender: p(7) });
    }

    #[test]
    #[should_panic(expected = "1 ≤ k ≤ n")]
    fn fixture_validates_k() {
        sync_state_fixture(5, 3, 10);
    }
}

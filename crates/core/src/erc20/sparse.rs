//! Sparse storage for one account's allowance row `α(a, ·)`.
//!
//! The dense representation of the allowance map — an `n × n` matrix — is
//! what keeps a token from scaling: at a million accounts it needs
//! terabytes before the first `approve`. Real allowance sets are tiny
//! relative to `n` (an account authorizes a handful of spenders, not the
//! whole world), so each row is stored as a sorted vector of
//! `(spender, amount)` pairs holding **only the positive entries**.
//!
//! Keeping zero entries out of the vector is a representation invariant,
//! not just an optimization: it makes the encoding *canonical*, so the
//! derived `PartialEq`/`Hash` on [`SpenderMap`] (and on
//! [`Erc20State`](super::Erc20State)) coincide with mathematical equality
//! of the allowance function — two states are `==` iff they agree on every
//! `α(a, p)`.

use tokensync_spec::{Amount, ProcessId};

/// One account's outstanding approvals: the support of `α(a, ·)` as a
/// sorted vector of `(spender index, amount)` pairs with all amounts
/// positive.
///
/// Reads are `O(log e)` (binary search) and iteration is `O(e)`, where `e`
/// is the number of outstanding approvals on the account — independent of
/// the total number of accounts `n`.
///
/// # Example
///
/// ```
/// use tokensync_core::erc20::SpenderMap;
/// use tokensync_spec::ProcessId;
///
/// let mut row = SpenderMap::new();
/// row.set(3, 10);
/// row.set(1, 5);
/// assert_eq!(row.get(3), 10);
/// assert_eq!(row.get(2), 0); // absent reads as zero
/// row.set(3, 0); // revocation removes the entry
/// assert_eq!(row.len(), 1);
/// assert_eq!(
///     row.iter().collect::<Vec<_>>(),
///     vec![(ProcessId::new(1), 5)]
/// );
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct SpenderMap {
    /// Sorted by spender index; every amount is `> 0`.
    entries: Vec<(u32, Amount)>,
}

impl SpenderMap {
    /// An empty row: `α(a, p) = 0` for every `p`.
    pub const fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// `α(a, spender)`; absent spenders read as 0.
    pub fn get(&self, spender: usize) -> Amount {
        // Not `as u32`: a wrapping cast would alias out-of-range spender
        // indices onto small ones, and reads carry no range check.
        let Ok(key) = u32::try_from(spender) else {
            return 0;
        };
        match self.entries.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// Sets `α(a, spender) = value`, removing the entry when `value == 0`
    /// (preserving the no-zero-entries invariant).
    ///
    /// # Panics
    ///
    /// Panics if `spender` exceeds `u32::MAX` (the sparse encoding packs
    /// spender indices into 32 bits; four billion accounts is beyond any
    /// deployment this workspace models).
    pub fn set(&mut self, spender: usize, value: Amount) {
        let key = u32::try_from(spender).expect("spender index exceeds u32::MAX");
        match self.entries.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => {
                if value == 0 {
                    self.entries.remove(i);
                } else {
                    self.entries[i].1 = value;
                }
            }
            Err(i) => {
                if value != 0 {
                    self.entries.insert(i, (key, value));
                }
            }
        }
    }

    /// Consumes `value` of `spender`'s allowance, removing the entry when
    /// it reaches zero. The caller must have checked
    /// `get(spender) >= value` first (the `Δ` precondition).
    pub fn debit(&mut self, spender: usize, value: Amount) {
        if value == 0 {
            return;
        }
        // A positive debit implies a prior `get(spender) >= value > 0`,
        // which only holds for in-range keys; stay defensive anyway.
        let Ok(key) = u32::try_from(spender) else {
            debug_assert!(false, "debit of an out-of-range spender");
            return;
        };
        match self.entries.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => {
                debug_assert!(self.entries[i].1 >= value, "debit past the allowance");
                self.entries[i].1 -= value;
                if self.entries[i].1 == 0 {
                    self.entries.remove(i);
                }
            }
            Err(_) => debug_assert!(false, "debit of an absent allowance"),
        }
    }

    /// Iterates the outstanding approvals `(p, α(a, p))` with `α(a, p) > 0`
    /// in increasing spender order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, Amount)> + '_ {
        self.entries
            .iter()
            .map(|&(p, v)| (ProcessId::new(p as usize), v))
    }

    /// Number of outstanding (positive) approvals on the account.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the account has no outstanding approvals.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_reads_zero() {
        let row = SpenderMap::new();
        assert_eq!(row.get(0), 0);
        assert_eq!(row.get(1_000_000), 0);
        assert!(row.is_empty());
    }

    #[test]
    fn out_of_range_spender_does_not_alias() {
        let mut row = SpenderMap::new();
        row.set(3, 7);
        // (1 << 32) + 3 truncates to 3 under a wrapping cast; the read
        // must see an absent key, not alias spender 3.
        assert_eq!(row.get((1usize << 32) + 3), 0);
        row.debit((1usize << 32) + 3, 0);
        assert_eq!(row.get(3), 7);
    }

    #[test]
    fn set_get_overwrite_remove() {
        let mut row = SpenderMap::new();
        row.set(5, 7);
        row.set(2, 3);
        row.set(9, 1);
        assert_eq!((row.get(2), row.get(5), row.get(9)), (3, 7, 1));
        row.set(5, 4); // overwrite
        assert_eq!(row.get(5), 4);
        row.set(2, 0); // remove
        assert_eq!(row.get(2), 0);
        assert_eq!(row.len(), 2);
    }

    #[test]
    fn entries_stay_sorted_and_positive() {
        let mut row = SpenderMap::new();
        for &(p, v) in &[(8usize, 2u64), (1, 5), (4, 0), (3, 9), (1, 0)] {
            row.set(p, v);
        }
        let got: Vec<(usize, Amount)> = row.iter().map(|(p, v)| (p.index(), v)).collect();
        assert_eq!(got, vec![(3, 9), (8, 2)]);
    }

    #[test]
    fn debit_consumes_and_collapses() {
        let mut row = SpenderMap::new();
        row.set(1, 10);
        row.debit(1, 4);
        assert_eq!(row.get(1), 6);
        row.debit(1, 6);
        assert_eq!(row.get(1), 0);
        assert!(row.is_empty());
        row.debit(2, 0); // zero debit of an absent entry is a no-op
        assert!(row.is_empty());
    }

    #[test]
    fn canonical_equality() {
        let mut a = SpenderMap::new();
        a.set(1, 5);
        a.set(1, 0);
        let b = SpenderMap::new();
        // A set-then-revoke row equals a never-touched row.
        assert_eq!(a, b);
    }
}

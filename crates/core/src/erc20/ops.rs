//! The operation and response alphabets `O` and `R` of the ERC20 object.

use tokensync_spec::{AccountId, Amount, ProcessId};

/// Operations `O` of the ERC20 token object (Definition 3, equations
/// (3)–(7), plus the `totalSupply` read of Algorithm 3).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Erc20Op {
    /// `transfer(a_d, v)`: the caller sends `v` from its own account.
    Transfer {
        /// Destination account `a_d`.
        to: AccountId,
        /// Amount `v`.
        value: Amount,
    },
    /// `transferFrom(a_s, a_d, v)`: the caller spends `v` of its allowance
    /// on `from`.
    TransferFrom {
        /// Source account `a_s`.
        from: AccountId,
        /// Destination account `a_d`.
        to: AccountId,
        /// Amount `v`.
        value: Amount,
    },
    /// `approve(p̄, v)`: the caller authorizes `spender` for up to `v`
    /// tokens from the caller's account.
    Approve {
        /// The process being authorized.
        spender: ProcessId,
        /// The authorized amount (overwrites any previous allowance).
        value: Amount,
    },
    /// `balanceOf(a)`: read `β(a)`.
    BalanceOf {
        /// The account read.
        account: AccountId,
    },
    /// `allowance(a, p̄)`: read `α(a, p̄)`.
    Allowance {
        /// The account read.
        account: AccountId,
        /// The spender read.
        spender: ProcessId,
    },
    /// `totalSupply()`: read `Σ_a β(a)`.
    TotalSupply,
}

impl Erc20Op {
    /// Whether the method is *syntactically* read-only (`balanceOf`,
    /// `allowance`, `totalSupply`).
    ///
    /// A non-read-only method can still be *semantically* read-only in a
    /// given state — e.g. a failing `transfer` — which is what the
    /// Theorem 3 case analysis is about; see
    /// [`ObjectType::is_read_only`](tokensync_spec::ObjectType::is_read_only).
    pub fn is_read_method(&self) -> bool {
        matches!(
            self,
            Erc20Op::BalanceOf { .. } | Erc20Op::Allowance { .. } | Erc20Op::TotalSupply
        )
    }
}

/// Responses `R = {TRUE, FALSE} ∪ ℕ` of the ERC20 token object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Erc20Resp {
    /// Outcome of a mutating method.
    Bool(bool),
    /// Result of a read method.
    Amount(Amount),
}

impl Erc20Resp {
    /// `TRUE`.
    pub const TRUE: Self = Erc20Resp::Bool(true);
    /// `FALSE`.
    pub const FALSE: Self = Erc20Resp::Bool(false);

    /// Whether this is the `TRUE` response.
    pub fn is_true(self) -> bool {
        self == Erc20Resp::TRUE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_methods_classified() {
        assert!(Erc20Op::TotalSupply.is_read_method());
        assert!(Erc20Op::BalanceOf {
            account: AccountId::new(0)
        }
        .is_read_method());
        assert!(Erc20Op::Allowance {
            account: AccountId::new(0),
            spender: ProcessId::new(1)
        }
        .is_read_method());
        assert!(!Erc20Op::Transfer {
            to: AccountId::new(0),
            value: 0
        }
        .is_read_method());
        assert!(!Erc20Op::Approve {
            spender: ProcessId::new(0),
            value: 0
        }
        .is_read_method());
    }

    #[test]
    fn response_constants() {
        assert!(Erc20Resp::TRUE.is_true());
        assert!(!Erc20Resp::FALSE.is_true());
        assert!(!Erc20Resp::Amount(1).is_true());
    }
}

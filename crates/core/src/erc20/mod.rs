//! The ERC20 token object of Definition 3 / Algorithm 3.
//!
//! The object's state is a pair `(β, α)` of a balance map and an allowance
//! map; its operations are `transfer`, `transferFrom`, `approve` and the
//! read-only `balanceOf`, `allowance`, `totalSupply`. The module provides:
//!
//! * [`Erc20State`] — the state `q = (β, α)` with the transition logic of
//!   `Δ` as typed-error methods. Allowance rows are sparse
//!   ([`SpenderMap`]): memory is `O(n + outstanding approvals)`, so the
//!   object scales to millions of accounts.
//! * [`Erc20Op`] / [`Erc20Resp`] — the operation and response alphabets
//!   `O` and `R`.
//! * [`Erc20Spec`] — the full object type, pluggable into the
//!   linearizability checker and the model checker.
//! * [`Erc20Token`] — a sequential token with ERC20 metadata, mirroring the
//!   contract a Solidity developer would deploy (Algorithm 3).

mod ops;
mod sparse;
mod spec;
mod state;
mod token;

pub use ops::{Erc20Op, Erc20Resp};
pub use sparse::SpenderMap;
pub use spec::Erc20Spec;
pub use state::{Erc20Delta, Erc20State};
pub use token::{Erc20Token, TokenMetadata};

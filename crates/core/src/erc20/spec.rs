//! Definition 3 as an [`ObjectType`].

use tokensync_spec::{ObjectType, ProcessId};

use super::ops::{Erc20Op, Erc20Resp};
use super::state::Erc20State;

/// The ERC20 token object type `T = (Q, q0, O, R, Δ)` (Definition 3 of the
/// paper) over `n` accounts/processes.
///
/// The transition function is total: operations referencing out-of-range
/// accounts or processes return `FALSE` (mutators) or `0` (reads) without
/// changing the state, exactly like their insufficient-funds counterparts.
///
/// # Example
///
/// ```
/// use tokensync_core::erc20::{Erc20Op, Erc20Resp, Erc20Spec};
/// use tokensync_spec::{AccountId, ObjectType, ProcessId};
///
/// let spec = Erc20Spec::deployed(2, ProcessId::new(0), 5);
/// let mut q = spec.initial_state();
/// let r = spec.apply(&mut q, ProcessId::new(0), &Erc20Op::Transfer {
///     to: AccountId::new(1),
///     value: 5,
/// });
/// assert_eq!(r, Erc20Resp::TRUE);
/// assert_eq!(q.balance(AccountId::new(1)), 5);
/// ```
#[derive(Clone, Debug)]
pub struct Erc20Spec {
    initial: Erc20State,
}

impl Erc20Spec {
    /// Object type starting from an arbitrary state `q` (the paper's `T_q`).
    pub fn new(initial: Erc20State) -> Self {
        Self { initial }
    }

    /// Object type starting from the standard's `q0`: deployer holds the
    /// whole supply, allowances zero.
    ///
    /// # Panics
    ///
    /// Panics if `deployer.index() >= n`.
    pub fn deployed(n: usize, deployer: ProcessId, total_supply: u64) -> Self {
        Self::new(Erc20State::with_deployer(n, deployer, total_supply))
    }

    /// Number of accounts/processes `n`.
    pub fn accounts(&self) -> usize {
        self.initial.accounts()
    }
}

impl ObjectType for Erc20Spec {
    type State = Erc20State;
    type Op = Erc20Op;
    type Resp = Erc20Resp;

    fn initial_state(&self) -> Erc20State {
        self.initial.clone()
    }

    fn apply(&self, state: &mut Erc20State, process: ProcessId, op: &Erc20Op) -> Erc20Resp {
        match *op {
            Erc20Op::Transfer { to, value } => {
                Erc20Resp::Bool(state.transfer(process, to, value).is_ok())
            }
            Erc20Op::TransferFrom { from, to, value } => {
                Erc20Resp::Bool(state.transfer_from(process, from, to, value).is_ok())
            }
            Erc20Op::Approve { spender, value } => {
                Erc20Resp::Bool(state.approve(process, spender, value).is_ok())
            }
            Erc20Op::BalanceOf { account } => Erc20Resp::Amount(state.balance(account)),
            Erc20Op::Allowance { account, spender } => {
                Erc20Resp::Amount(state.allowance(account, spender))
            }
            Erc20Op::TotalSupply => Erc20Resp::Amount(state.total_supply()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokensync_spec::AccountId;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn example_1_full_trace() {
        // The complete Example 1 of the paper, op by op.
        let spec = Erc20Spec::deployed(3, p(0), 10);
        let mut q = spec.initial_state();

        // q1: Alice transfers 3 to Bob.
        let r = spec.apply(&mut q, p(0), &Erc20Op::Transfer { to: a(1), value: 3 });
        assert_eq!(r, Erc20Resp::TRUE);
        assert_eq!(
            (q.balance(a(0)), q.balance(a(1)), q.balance(a(2))),
            (7, 3, 0)
        );

        // q2: Bob approves Charlie for 5.
        let r = spec.apply(
            &mut q,
            p(1),
            &Erc20Op::Approve {
                spender: p(2),
                value: 5,
            },
        );
        assert_eq!(r, Erc20Resp::TRUE);
        assert_eq!(q.allowance(a(1), p(2)), 5);

        // q3 = q2: Charlie's transferFrom of 5 fails on balance.
        let before = q.clone();
        let r = spec.apply(
            &mut q,
            p(2),
            &Erc20Op::TransferFrom {
                from: a(1),
                to: a(2),
                value: 5,
            },
        );
        assert_eq!(r, Erc20Resp::FALSE);
        assert_eq!(q, before);

        // q4: Charlie transfers 1 from Bob to Alice.
        let r = spec.apply(
            &mut q,
            p(2),
            &Erc20Op::TransferFrom {
                from: a(1),
                to: a(0),
                value: 1,
            },
        );
        assert_eq!(r, Erc20Resp::TRUE);
        assert_eq!(
            (q.balance(a(0)), q.balance(a(1)), q.balance(a(2))),
            (8, 2, 0)
        );
        assert_eq!(q.allowance(a(1), p(2)), 4);
    }

    #[test]
    fn reads_are_read_only() {
        let spec = Erc20Spec::deployed(2, p(0), 9);
        let q = spec.initial_state();
        for op in [
            Erc20Op::BalanceOf { account: a(0) },
            Erc20Op::Allowance {
                account: a(0),
                spender: p(1),
            },
            Erc20Op::TotalSupply,
        ] {
            assert!(spec.is_read_only(&q, p(1), &op), "{op:?} must be read-only");
        }
    }

    #[test]
    fn failing_mutators_are_semantically_read_only() {
        let spec = Erc20Spec::deployed(2, p(0), 1);
        let q = spec.initial_state();
        // p1 has no balance: its transfer of 1 fails and changes nothing.
        assert!(spec.is_read_only(&q, p(1), &Erc20Op::Transfer { to: a(0), value: 1 }));
        // p1 has no allowance on a0.
        assert!(spec.is_read_only(
            &q,
            p(1),
            &Erc20Op::TransferFrom {
                from: a(0),
                to: a(1),
                value: 1
            }
        ));
    }

    #[test]
    fn out_of_range_ops_are_total_and_read_only() {
        let spec = Erc20Spec::deployed(1, p(0), 1);
        let mut q = spec.initial_state();
        let r = spec.apply(&mut q, p(0), &Erc20Op::Transfer { to: a(9), value: 1 });
        assert_eq!(r, Erc20Resp::FALSE);
        let r = spec.apply(&mut q, p(0), &Erc20Op::BalanceOf { account: a(9) });
        assert_eq!(r, Erc20Resp::Amount(0));
        assert_eq!(q, spec.initial_state());
    }

    #[test]
    fn total_supply_reported() {
        let spec = Erc20Spec::deployed(3, p(1), 42);
        let mut q = spec.initial_state();
        assert_eq!(
            spec.apply(&mut q, p(0), &Erc20Op::TotalSupply),
            Erc20Resp::Amount(42)
        );
    }
}

//! The ERC20 state `q = (β, α)` and its transition logic.

use std::collections::BTreeSet;

use tokensync_spec::{AccountId, Amount, ProcessId};

use crate::error::TokenError;

use super::sparse::SpenderMap;

/// The state of an ERC20 token object: the balance map
/// `β : A → ℕ` and the allowance map `α : A × Π → ℕ` (Definition 3,
/// equation (2) of the paper).
///
/// With `n` accounts and one process per account (the paper's owner map `ω`
/// is a bijection), `balances[a]` is `β(a)` dense, while each allowance row
/// `α(a, ·)` is a sparse [`SpenderMap`] holding only the positive entries —
/// memory is `O(n + E)` where `E` is the number of outstanding approvals,
/// instead of the `O(n²)` of a dense matrix. A million-account token with a
/// few approvals per account fits in tens of megabytes; the dense matrix
/// would need eight terabytes.
///
/// The total supply `Σ_a β(a)` is cached and maintained incrementally by
/// the mutators (it is invariant under every object operation), so
/// [`Erc20State::total_supply`] is `O(1)`.
///
/// All mutators take the *calling process* explicitly and enforce the
/// preconditions of `Δ`; a returned [`TokenError`] corresponds exactly to a
/// `FALSE` response (state unchanged).
///
/// # Example
///
/// ```
/// use tokensync_core::erc20::Erc20State;
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let mut q = Erc20State::with_deployer(3, ProcessId::new(0), 10);
/// q.transfer(ProcessId::new(0), AccountId::new(1), 3)?;
/// q.approve(ProcessId::new(1), ProcessId::new(2), 5)?;
/// assert_eq!(q.balance(AccountId::new(1)), 3);
/// assert_eq!(q.allowance(AccountId::new(1), ProcessId::new(2)), 5);
/// # Ok::<(), tokensync_core::TokenError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Erc20State {
    balances: Vec<Amount>,
    /// `allowances[a]` is the sparse row `α(a, ·)`.
    allowances: Vec<SpenderMap>,
    /// Indices of the accounts whose row is non-empty — the support of
    /// `α` by account, maintained on every emptiness transition so the
    /// analysis layer can enumerate approval-bearing accounts in
    /// `O(outstanding approvals)` instead of scanning all `n` rows.
    /// Derived data, but canonical (a function of `allowances`), so the
    /// derived `Eq`/`Hash` stay exact.
    approval_index: BTreeSet<u32>,
    /// Cached `Σ_a β(a)`; maintained by every mutator.
    supply: Amount,
}

impl Erc20State {
    /// The all-zero state over `n` accounts.
    pub fn new(n: usize) -> Self {
        Self {
            balances: vec![0; n],
            allowances: vec![SpenderMap::new(); n],
            approval_index: BTreeSet::new(),
            supply: 0,
        }
    }

    /// The canonical initial state `q0` of the ERC20 standard: the deployer
    /// `d` holds the whole supply, all allowances are zero (Algorithm 3,
    /// lines 7–8).
    ///
    /// # Panics
    ///
    /// Panics if `deployer.index() >= n`.
    pub fn with_deployer(n: usize, deployer: ProcessId, total_supply: Amount) -> Self {
        let mut state = Self::new(n);
        state.balances[deployer.index()] = total_supply;
        state.supply = total_supply;
        state
    }

    /// Builds a state from explicit balances (all allowances zero).
    pub fn from_balances(balances: Vec<Amount>) -> Self {
        let n = balances.len();
        let supply = balances.iter().sum();
        Self {
            balances,
            allowances: vec![SpenderMap::new(); n],
            approval_index: BTreeSet::new(),
            supply,
        }
    }

    /// Number of accounts `n = |A| = |Π|`.
    pub fn accounts(&self) -> usize {
        self.balances.len()
    }

    /// `β(account)`; out-of-range accounts read as 0.
    pub fn balance(&self, account: AccountId) -> Amount {
        self.balances.get(account.index()).copied().unwrap_or(0)
    }

    /// `α(account, spender)`; out-of-range pairs read as 0.
    pub fn allowance(&self, account: AccountId, spender: ProcessId) -> Amount {
        self.allowances
            .get(account.index())
            .map(|row| row.get(spender.index()))
            .unwrap_or(0)
    }

    /// The outstanding approvals of `account`: every `(p, α(account, p))`
    /// with `α(account, p) > 0`, in increasing spender order. Out-of-range
    /// accounts yield nothing.
    ///
    /// This is the support of the row `α(account, ·)` — the quantity the
    /// Section 5 analysis is really about (`σ_q` is the owner plus this
    /// set), exposed so the analysis runs in `O(e)` per account rather
    /// than scanning all `n` processes.
    pub fn approvals(&self, account: AccountId) -> impl Iterator<Item = (ProcessId, Amount)> + '_ {
        self.allowances
            .get(account.index())
            .into_iter()
            .flat_map(SpenderMap::iter)
    }

    /// Number of outstanding (positive) approvals on `account`.
    pub fn approval_count(&self, account: AccountId) -> usize {
        self.allowances
            .get(account.index())
            .map(SpenderMap::len)
            .unwrap_or(0)
    }

    /// The sparse row `α(account, ·)` itself (an empty row for
    /// out-of-range accounts) — lets the concurrent implementations clone
    /// per-account state in `O(e)` without re-inserting entry by entry.
    pub fn approval_row(&self, account: AccountId) -> &SpenderMap {
        static EMPTY: SpenderMap = SpenderMap::new();
        self.allowances.get(account.index()).unwrap_or(&EMPTY)
    }

    /// The accounts with at least one outstanding approval, in increasing
    /// order — the only accounts whose enabled-spender set can exceed
    /// `{ω(a)}`. Iterating these instead of all of `A` is what makes the
    /// partition/sync-level analysis `O(outstanding approvals)`.
    pub fn accounts_with_approvals(&self) -> impl Iterator<Item = AccountId> + '_ {
        self.approval_index
            .iter()
            .map(|&i| AccountId::new(i as usize))
    }

    /// Total number of outstanding approvals `E = |{(a, p) : α(a, p) > 0}|`
    /// across all accounts.
    pub fn outstanding_approvals(&self) -> usize {
        self.approval_index
            .iter()
            .map(|&i| self.allowances[i as usize].len())
            .sum()
    }

    /// `totalSupply = Σ_a β(a)`; invariant under every operation. `O(1)`
    /// via the maintained cache (debug builds assert it against the scan).
    pub fn total_supply(&self) -> Amount {
        debug_assert_eq!(
            self.supply,
            self.balances.iter().sum::<Amount>(),
            "total-supply cache diverged from the balance scan"
        );
        self.supply
    }

    /// Directly sets `β(account)` — test-fixture constructor aid; not an
    /// object operation. Adjusts the cached supply.
    ///
    /// # Panics
    ///
    /// Panics if `account` is out of range.
    pub fn set_balance(&mut self, account: AccountId, value: Amount) {
        let slot = &mut self.balances[account.index()];
        self.supply -= *slot;
        self.supply += value;
        *slot = value;
    }

    /// Directly sets `α(account, spender)` — test-fixture constructor aid;
    /// not an object operation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set_allowance(&mut self, account: AccountId, spender: ProcessId, value: Amount) {
        assert!(
            spender.index() < self.balances.len(),
            "spender {spender} out of range"
        );
        let row = &mut self.allowances[account.index()];
        let was_empty = row.is_empty();
        row.set(spender.index(), value);
        if row.is_empty() != was_empty {
            self.index_transition(account.index());
        }
    }

    /// Re-syncs `approval_index` for `account` after its row crossed an
    /// emptiness boundary.
    fn index_transition(&mut self, account: usize) {
        let key = u32::try_from(account).expect("account index exceeds u32::MAX");
        if self.allowances[account].is_empty() {
            self.approval_index.remove(&key);
        } else {
            self.approval_index.insert(key);
        }
    }

    fn check_account(&self, account: AccountId) -> Result<(), TokenError> {
        if account.index() < self.balances.len() {
            Ok(())
        } else {
            Err(TokenError::UnknownAccount { account })
        }
    }

    fn check_process(&self, process: ProcessId) -> Result<(), TokenError> {
        if process.index() < self.balances.len() {
            Ok(())
        } else {
            Err(TokenError::UnknownProcess { process })
        }
    }

    /// `transfer(a_d, v)` invoked by `caller`: moves `v` tokens from the
    /// caller's own account to `to`.
    ///
    /// # Errors
    ///
    /// [`TokenError::UnknownProcess`] / [`TokenError::UnknownAccount`] for
    /// out-of-range ids, [`TokenError::InsufficientBalance`] if
    /// `β(a_caller) < v`. The state is unchanged on error.
    pub fn transfer(
        &mut self,
        caller: ProcessId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.check_process(caller)?;
        self.check_account(to)?;
        let from = caller.own_account();
        let balance = self.balances[from.index()];
        if balance < value {
            return Err(TokenError::InsufficientBalance {
                account: from,
                balance,
                required: value,
            });
        }
        self.balances[from.index()] -= value;
        self.balances[to.index()] += value;
        Ok(())
    }

    /// `transferFrom(a_s, a_d, v)` invoked by `caller`: moves `v` tokens
    /// from `from` to `to`, consuming `v` of the caller's allowance on
    /// `from`.
    ///
    /// Follows Algorithm 3's check order: allowance first, then balance.
    ///
    /// # Errors
    ///
    /// [`TokenError::InsufficientAllowance`] if `α(from, caller) < v`,
    /// [`TokenError::InsufficientBalance`] if `β(from) < v`, unknown-id
    /// errors as for [`Erc20State::transfer`]. The state is unchanged on
    /// error.
    pub fn transfer_from(
        &mut self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.check_process(caller)?;
        self.check_account(from)?;
        self.check_account(to)?;
        let allowance = self.allowances[from.index()].get(caller.index());
        if allowance < value {
            return Err(TokenError::InsufficientAllowance {
                account: from,
                spender: caller,
                allowance,
                required: value,
            });
        }
        let balance = self.balances[from.index()];
        if balance < value {
            return Err(TokenError::InsufficientBalance {
                account: from,
                balance,
                required: value,
            });
        }
        let row = &mut self.allowances[from.index()];
        row.debit(caller.index(), value);
        if row.is_empty() {
            self.index_transition(from.index());
        }
        self.balances[from.index()] -= value;
        self.balances[to.index()] += value;
        Ok(())
    }

    /// `approve(p̄, v)` invoked by `caller`: sets the allowance of `spender`
    /// on the caller's own account to exactly `v` (overwriting, not
    /// adding — the ERC20 semantics).
    ///
    /// # Errors
    ///
    /// Unknown-id errors only; an in-range `approve` always succeeds.
    pub fn approve(
        &mut self,
        caller: ProcessId,
        spender: ProcessId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.check_process(caller)?;
        self.check_process(spender)?;
        let row = &mut self.allowances[caller.index()];
        let was_empty = row.is_empty();
        row.set(spender.index(), value);
        if row.is_empty() != was_empty {
            self.index_transition(caller.index());
        }
        Ok(())
    }

    /// Overwrites one account's full row — balance plus allowance row —
    /// with current values (the delta-snapshot apply path). Keeps the
    /// supply cache and approval index exact.
    fn replace_account_row(&mut self, account: usize, balance: Amount, row: SpenderMap) {
        self.supply = self.supply - self.balances[account] + balance;
        self.balances[account] = balance;
        self.allowances[account] = row;
        self.index_transition(account);
    }
}

/// An incremental copy-on-write snapshot of an ERC20 object: the full
/// current `(balance, allowance row)` of every account touched since the
/// previous snapshot watermark, drained from the live sharded object by
/// [`ShardedErc20::drain_delta`](crate::shared::ShardedErc20::drain_delta)
/// and folded back onto a base [`Erc20State`] at recovery time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Erc20Delta {
    /// `(account, balance, allowance row)` — current values, one row per
    /// touched account, in increasing account order.
    pub rows: Vec<(u32, Amount, SpenderMap)>,
}

impl Erc20Delta {
    /// Whether the delta carries no rows (nothing was touched).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Folds the delta onto `state`, overwriting every carried row with
    /// its current value. Returns `false` (state only partially
    /// meaningful — the caller must discard it) if any row is out of the
    /// state's account range; a valid producer never emits such a row,
    /// so `false` means a corrupt or foreign delta file.
    pub fn apply_to(&self, state: &mut Erc20State) -> bool {
        let n = state.accounts();
        if self.rows.iter().any(|&(a, _, _)| a as usize >= n) {
            return false;
        }
        for (a, balance, row) in &self.rows {
            state.replace_account_row(*a as usize, *balance, row.clone());
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn deployer_holds_supply() {
        let q = Erc20State::with_deployer(3, p(1), 100);
        assert_eq!(q.balance(a(1)), 100);
        assert_eq!(q.balance(a(0)), 0);
        assert_eq!(q.total_supply(), 100);
    }

    #[test]
    fn transfer_moves_and_conserves() {
        let mut q = Erc20State::with_deployer(2, p(0), 10);
        q.transfer(p(0), a(1), 4).unwrap();
        assert_eq!((q.balance(a(0)), q.balance(a(1))), (6, 4));
        assert_eq!(q.total_supply(), 10);
    }

    #[test]
    fn transfer_insufficient_balance_keeps_state() {
        let mut q = Erc20State::with_deployer(2, p(0), 3);
        let before = q.clone();
        let err = q.transfer(p(0), a(1), 4).unwrap_err();
        assert_eq!(
            err,
            TokenError::InsufficientBalance {
                account: a(0),
                balance: 3,
                required: 4
            }
        );
        assert_eq!(q, before);
    }

    #[test]
    fn transfer_to_self_is_noop_success() {
        let mut q = Erc20State::with_deployer(2, p(0), 3);
        let before = q.clone();
        q.transfer(p(0), a(0), 2).unwrap();
        assert_eq!(q, before);
    }

    #[test]
    fn approve_overwrites_allowance() {
        let mut q = Erc20State::with_deployer(2, p(0), 3);
        q.approve(p(0), p(1), 7).unwrap();
        assert_eq!(q.allowance(a(0), p(1)), 7);
        q.approve(p(0), p(1), 2).unwrap();
        assert_eq!(q.allowance(a(0), p(1)), 2);
        // Revocation: reset to zero.
        q.approve(p(0), p(1), 0).unwrap();
        assert_eq!(q.allowance(a(0), p(1)), 0);
    }

    #[test]
    fn transfer_from_consumes_allowance() {
        let mut q = Erc20State::with_deployer(3, p(0), 10);
        q.approve(p(0), p(2), 6).unwrap();
        q.transfer_from(p(2), a(0), a(1), 4).unwrap();
        assert_eq!(q.balance(a(0)), 6);
        assert_eq!(q.balance(a(1)), 4);
        assert_eq!(q.allowance(a(0), p(2)), 2);
    }

    #[test]
    fn transfer_from_checks_allowance_before_balance() {
        let mut q = Erc20State::with_deployer(2, p(0), 1);
        // allowance 0 < 5 and balance 1 < 5: Algorithm 3 reports allowance.
        let err = q.transfer_from(p(1), a(0), a(1), 5).unwrap_err();
        assert!(matches!(err, TokenError::InsufficientAllowance { .. }));
    }

    #[test]
    fn example_1_insufficient_balance_case() {
        // The Example 1 step where Charlie's allowance permits 5 but Bob's
        // balance is only 3: FALSE, state unchanged.
        let mut q = Erc20State::with_deployer(3, p(0), 10);
        q.transfer(p(0), a(1), 3).unwrap();
        q.approve(p(1), p(2), 5).unwrap();
        let before = q.clone();
        let err = q.transfer_from(p(2), a(1), a(2), 5).unwrap_err();
        assert!(matches!(err, TokenError::InsufficientBalance { .. }));
        assert_eq!(q, before);
    }

    #[test]
    fn transfer_from_to_source_account_still_burns_allowance() {
        let mut q = Erc20State::with_deployer(2, p(0), 5);
        q.approve(p(0), p(1), 3).unwrap();
        q.transfer_from(p(1), a(0), a(0), 2).unwrap();
        assert_eq!(q.balance(a(0)), 5);
        assert_eq!(q.allowance(a(0), p(1)), 1);
    }

    #[test]
    fn unknown_ids_rejected() {
        let mut q = Erc20State::with_deployer(2, p(0), 5);
        assert!(matches!(
            q.transfer(p(0), a(9), 1),
            Err(TokenError::UnknownAccount { .. })
        ));
        assert!(matches!(
            q.transfer(p(9), a(0), 1),
            Err(TokenError::UnknownProcess { .. })
        ));
        assert!(matches!(
            q.approve(p(0), p(9), 1),
            Err(TokenError::UnknownProcess { .. })
        ));
        assert!(matches!(
            q.transfer_from(p(0), a(0), a(9), 1),
            Err(TokenError::UnknownAccount { .. })
        ));
    }

    #[test]
    fn zero_value_operations_succeed() {
        let mut q = Erc20State::with_deployer(2, p(0), 0);
        q.transfer(p(0), a(1), 0).unwrap();
        q.approve(p(1), p(0), 0).unwrap();
        q.transfer_from(p(0), a(1), a(0), 0).unwrap();
        assert_eq!(q.total_supply(), 0);
    }

    #[test]
    fn revoked_state_equals_untouched_state() {
        // Canonical sparse encoding: approve-then-revoke leaves no trace,
        // so derived equality/hashing match mathematical state equality.
        let mut q = Erc20State::with_deployer(3, p(0), 5);
        q.approve(p(0), p(1), 4).unwrap();
        q.approve(p(0), p(1), 0).unwrap();
        assert_eq!(q, Erc20State::with_deployer(3, p(0), 5));
    }

    #[test]
    fn approvals_iterator_yields_only_positive_entries() {
        let mut q = Erc20State::with_deployer(4, p(0), 9);
        q.approve(p(0), p(3), 2).unwrap();
        q.approve(p(0), p(1), 7).unwrap();
        q.approve(p(0), p(2), 1).unwrap();
        q.approve(p(0), p(2), 0).unwrap(); // revoked
        let got: Vec<(usize, Amount)> = q.approvals(a(0)).map(|(p, v)| (p.index(), v)).collect();
        assert_eq!(got, vec![(1, 7), (3, 2)]);
        assert_eq!(q.approval_count(a(0)), 2);
        assert_eq!(q.approvals(a(9)).count(), 0); // out of range: empty
    }

    #[test]
    fn accounts_with_approvals_tracks_support() {
        let mut q = Erc20State::with_deployer(4, p(0), 9);
        assert_eq!(q.accounts_with_approvals().count(), 0);
        q.approve(p(2), p(0), 3).unwrap();
        q.approve(p(0), p(1), 1).unwrap();
        let with: Vec<usize> = q.accounts_with_approvals().map(|a| a.index()).collect();
        assert_eq!(with, vec![0, 2]);
        assert_eq!(q.outstanding_approvals(), 2);
        q.approve(p(0), p(1), 0).unwrap();
        assert_eq!(
            q.accounts_with_approvals()
                .map(|a| a.index())
                .collect::<Vec<_>>(),
            vec![2]
        );
    }

    #[test]
    fn supply_cache_survives_mutation_mix() {
        let mut q = Erc20State::from_balances(vec![7, 2, 0]);
        assert_eq!(q.total_supply(), 9);
        q.transfer(p(0), a(2), 3).unwrap();
        q.approve(p(2), p(1), 2).unwrap();
        q.transfer_from(p(1), a(2), a(1), 2).unwrap();
        assert_eq!(q.total_supply(), 9); // debug build re-verifies by scan
        q.set_balance(a(1), 10);
        assert_eq!(q.total_supply(), 9 - 4 + 10);
    }
}

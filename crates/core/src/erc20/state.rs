//! The ERC20 state `q = (β, α)` and its transition logic.

use tokensync_spec::{AccountId, Amount, ProcessId};

use crate::error::TokenError;

/// The state of an ERC20 token object: the balance map
/// `β : A → ℕ` and the allowance map `α : A × Π → ℕ` (Definition 3,
/// equation (2) of the paper).
///
/// With `n` accounts and one process per account (the paper's owner map `ω`
/// is a bijection), both maps are dense arrays: `balances[a]` is `β(a)` and
/// `allowances[a][p]` is `α(a, p)`.
///
/// All mutators take the *calling process* explicitly and enforce the
/// preconditions of `Δ`; a returned [`TokenError`] corresponds exactly to a
/// `FALSE` response (state unchanged).
///
/// # Example
///
/// ```
/// use tokensync_core::erc20::Erc20State;
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let mut q = Erc20State::with_deployer(3, ProcessId::new(0), 10);
/// q.transfer(ProcessId::new(0), AccountId::new(1), 3)?;
/// q.approve(ProcessId::new(1), ProcessId::new(2), 5)?;
/// assert_eq!(q.balance(AccountId::new(1)), 3);
/// assert_eq!(q.allowance(AccountId::new(1), ProcessId::new(2)), 5);
/// # Ok::<(), tokensync_core::TokenError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Erc20State {
    balances: Vec<Amount>,
    /// `allowances[a][p] = α(a, p)`.
    allowances: Vec<Vec<Amount>>,
}

impl Erc20State {
    /// The all-zero state over `n` accounts.
    pub fn new(n: usize) -> Self {
        Self {
            balances: vec![0; n],
            allowances: vec![vec![0; n]; n],
        }
    }

    /// The canonical initial state `q0` of the ERC20 standard: the deployer
    /// `d` holds the whole supply, all allowances are zero (Algorithm 3,
    /// lines 7–8).
    ///
    /// # Panics
    ///
    /// Panics if `deployer.index() >= n`.
    pub fn with_deployer(n: usize, deployer: ProcessId, total_supply: Amount) -> Self {
        let mut state = Self::new(n);
        state.balances[deployer.index()] = total_supply;
        state
    }

    /// Builds a state from explicit balances (all allowances zero).
    pub fn from_balances(balances: Vec<Amount>) -> Self {
        let n = balances.len();
        Self {
            balances,
            allowances: vec![vec![0; n]; n],
        }
    }

    /// Number of accounts `n = |A| = |Π|`.
    pub fn accounts(&self) -> usize {
        self.balances.len()
    }

    /// `β(account)`; out-of-range accounts read as 0.
    pub fn balance(&self, account: AccountId) -> Amount {
        self.balances.get(account.index()).copied().unwrap_or(0)
    }

    /// `α(account, spender)`; out-of-range pairs read as 0.
    pub fn allowance(&self, account: AccountId, spender: ProcessId) -> Amount {
        self.allowances
            .get(account.index())
            .and_then(|row| row.get(spender.index()))
            .copied()
            .unwrap_or(0)
    }

    /// `totalSupply = Σ_a β(a)`; invariant under every operation.
    pub fn total_supply(&self) -> Amount {
        self.balances.iter().sum()
    }

    /// Directly sets `β(account)` — test-fixture constructor aid; not an
    /// object operation.
    ///
    /// # Panics
    ///
    /// Panics if `account` is out of range.
    pub fn set_balance(&mut self, account: AccountId, value: Amount) {
        self.balances[account.index()] = value;
    }

    /// Directly sets `α(account, spender)` — test-fixture constructor aid;
    /// not an object operation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set_allowance(&mut self, account: AccountId, spender: ProcessId, value: Amount) {
        self.allowances[account.index()][spender.index()] = value;
    }

    fn check_account(&self, account: AccountId) -> Result<(), TokenError> {
        if account.index() < self.balances.len() {
            Ok(())
        } else {
            Err(TokenError::UnknownAccount { account })
        }
    }

    fn check_process(&self, process: ProcessId) -> Result<(), TokenError> {
        if process.index() < self.balances.len() {
            Ok(())
        } else {
            Err(TokenError::UnknownProcess { process })
        }
    }

    /// `transfer(a_d, v)` invoked by `caller`: moves `v` tokens from the
    /// caller's own account to `to`.
    ///
    /// # Errors
    ///
    /// [`TokenError::UnknownProcess`] / [`TokenError::UnknownAccount`] for
    /// out-of-range ids, [`TokenError::InsufficientBalance`] if
    /// `β(a_caller) < v`. The state is unchanged on error.
    pub fn transfer(
        &mut self,
        caller: ProcessId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.check_process(caller)?;
        self.check_account(to)?;
        let from = caller.own_account();
        let balance = self.balances[from.index()];
        if balance < value {
            return Err(TokenError::InsufficientBalance {
                account: from,
                balance,
                required: value,
            });
        }
        self.balances[from.index()] -= value;
        self.balances[to.index()] += value;
        Ok(())
    }

    /// `transferFrom(a_s, a_d, v)` invoked by `caller`: moves `v` tokens
    /// from `from` to `to`, consuming `v` of the caller's allowance on
    /// `from`.
    ///
    /// Follows Algorithm 3's check order: allowance first, then balance.
    ///
    /// # Errors
    ///
    /// [`TokenError::InsufficientAllowance`] if `α(from, caller) < v`,
    /// [`TokenError::InsufficientBalance`] if `β(from) < v`, unknown-id
    /// errors as for [`Erc20State::transfer`]. The state is unchanged on
    /// error.
    pub fn transfer_from(
        &mut self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.check_process(caller)?;
        self.check_account(from)?;
        self.check_account(to)?;
        let allowance = self.allowances[from.index()][caller.index()];
        if allowance < value {
            return Err(TokenError::InsufficientAllowance {
                account: from,
                spender: caller,
                allowance,
                required: value,
            });
        }
        let balance = self.balances[from.index()];
        if balance < value {
            return Err(TokenError::InsufficientBalance {
                account: from,
                balance,
                required: value,
            });
        }
        self.allowances[from.index()][caller.index()] -= value;
        self.balances[from.index()] -= value;
        self.balances[to.index()] += value;
        Ok(())
    }

    /// `approve(p̄, v)` invoked by `caller`: sets the allowance of `spender`
    /// on the caller's own account to exactly `v` (overwriting, not
    /// adding — the ERC20 semantics).
    ///
    /// # Errors
    ///
    /// Unknown-id errors only; an in-range `approve` always succeeds.
    pub fn approve(
        &mut self,
        caller: ProcessId,
        spender: ProcessId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.check_process(caller)?;
        self.check_process(spender)?;
        self.allowances[caller.index()][spender.index()] = value;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn deployer_holds_supply() {
        let q = Erc20State::with_deployer(3, p(1), 100);
        assert_eq!(q.balance(a(1)), 100);
        assert_eq!(q.balance(a(0)), 0);
        assert_eq!(q.total_supply(), 100);
    }

    #[test]
    fn transfer_moves_and_conserves() {
        let mut q = Erc20State::with_deployer(2, p(0), 10);
        q.transfer(p(0), a(1), 4).unwrap();
        assert_eq!((q.balance(a(0)), q.balance(a(1))), (6, 4));
        assert_eq!(q.total_supply(), 10);
    }

    #[test]
    fn transfer_insufficient_balance_keeps_state() {
        let mut q = Erc20State::with_deployer(2, p(0), 3);
        let before = q.clone();
        let err = q.transfer(p(0), a(1), 4).unwrap_err();
        assert_eq!(
            err,
            TokenError::InsufficientBalance {
                account: a(0),
                balance: 3,
                required: 4
            }
        );
        assert_eq!(q, before);
    }

    #[test]
    fn transfer_to_self_is_noop_success() {
        let mut q = Erc20State::with_deployer(2, p(0), 3);
        let before = q.clone();
        q.transfer(p(0), a(0), 2).unwrap();
        assert_eq!(q, before);
    }

    #[test]
    fn approve_overwrites_allowance() {
        let mut q = Erc20State::with_deployer(2, p(0), 3);
        q.approve(p(0), p(1), 7).unwrap();
        assert_eq!(q.allowance(a(0), p(1)), 7);
        q.approve(p(0), p(1), 2).unwrap();
        assert_eq!(q.allowance(a(0), p(1)), 2);
        // Revocation: reset to zero.
        q.approve(p(0), p(1), 0).unwrap();
        assert_eq!(q.allowance(a(0), p(1)), 0);
    }

    #[test]
    fn transfer_from_consumes_allowance() {
        let mut q = Erc20State::with_deployer(3, p(0), 10);
        q.approve(p(0), p(2), 6).unwrap();
        q.transfer_from(p(2), a(0), a(1), 4).unwrap();
        assert_eq!(q.balance(a(0)), 6);
        assert_eq!(q.balance(a(1)), 4);
        assert_eq!(q.allowance(a(0), p(2)), 2);
    }

    #[test]
    fn transfer_from_checks_allowance_before_balance() {
        let mut q = Erc20State::with_deployer(2, p(0), 1);
        // allowance 0 < 5 and balance 1 < 5: Algorithm 3 reports allowance.
        let err = q.transfer_from(p(1), a(0), a(1), 5).unwrap_err();
        assert!(matches!(err, TokenError::InsufficientAllowance { .. }));
    }

    #[test]
    fn example_1_insufficient_balance_case() {
        // The Example 1 step where Charlie's allowance permits 5 but Bob's
        // balance is only 3: FALSE, state unchanged.
        let mut q = Erc20State::with_deployer(3, p(0), 10);
        q.transfer(p(0), a(1), 3).unwrap();
        q.approve(p(1), p(2), 5).unwrap();
        let before = q.clone();
        let err = q.transfer_from(p(2), a(1), a(2), 5).unwrap_err();
        assert!(matches!(err, TokenError::InsufficientBalance { .. }));
        assert_eq!(q, before);
    }

    #[test]
    fn transfer_from_to_source_account_still_burns_allowance() {
        let mut q = Erc20State::with_deployer(2, p(0), 5);
        q.approve(p(0), p(1), 3).unwrap();
        q.transfer_from(p(1), a(0), a(0), 2).unwrap();
        assert_eq!(q.balance(a(0)), 5);
        assert_eq!(q.allowance(a(0), p(1)), 1);
    }

    #[test]
    fn unknown_ids_rejected() {
        let mut q = Erc20State::with_deployer(2, p(0), 5);
        assert!(matches!(
            q.transfer(p(0), a(9), 1),
            Err(TokenError::UnknownAccount { .. })
        ));
        assert!(matches!(
            q.transfer(p(9), a(0), 1),
            Err(TokenError::UnknownProcess { .. })
        ));
        assert!(matches!(
            q.approve(p(0), p(9), 1),
            Err(TokenError::UnknownProcess { .. })
        ));
        assert!(matches!(
            q.transfer_from(p(0), a(0), a(9), 1),
            Err(TokenError::UnknownAccount { .. })
        ));
    }

    #[test]
    fn zero_value_operations_succeed() {
        let mut q = Erc20State::with_deployer(2, p(0), 0);
        q.transfer(p(0), a(1), 0).unwrap();
        q.approve(p(1), p(0), 0).unwrap();
        q.transfer_from(p(0), a(1), a(0), 0).unwrap();
        assert_eq!(q.total_supply(), 0);
    }
}

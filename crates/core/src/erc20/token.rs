//! A sequential ERC20 token with contract metadata (Algorithm 3).

use tokensync_spec::{AccountId, Amount, ObjectType, ProcessId};

use super::ops::{Erc20Op, Erc20Resp};
use super::spec::Erc20Spec;
use super::state::Erc20State;
use crate::error::TokenError;

/// The constant metadata of an ERC20 contract (Algorithm 3, lines 3–6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenMetadata {
    /// Human-readable token name.
    pub name: String,
    /// Ticker symbol.
    pub symbol: String,
    /// Display decimals.
    pub decimals: u8,
}

impl Default for TokenMetadata {
    fn default() -> Self {
        Self {
            name: "TokenSync".to_owned(),
            symbol: "TSY".to_owned(),
            decimals: 18,
        }
    }
}

/// A sequential ERC20 token: the contract of Algorithm 3, with typed
/// errors. This is the single-threaded reference implementation every
/// concurrent implementation in the workspace is differentially tested
/// against.
///
/// # Example
///
/// ```
/// use tokensync_core::erc20::Erc20Token;
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let deployer = ProcessId::new(0);
/// let mut token = Erc20Token::deploy(2, deployer, 100);
/// token.transfer(deployer, AccountId::new(1), 30)?;
/// assert_eq!(token.balance_of(AccountId::new(1)), 30);
/// assert_eq!(token.total_supply(), 100);
/// # Ok::<(), tokensync_core::TokenError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Erc20Token {
    metadata: TokenMetadata,
    state: Erc20State,
}

impl Erc20Token {
    /// Deploys a token over `n` accounts; `deployer` receives the whole
    /// `total_supply` (Algorithm 3 initialization).
    ///
    /// # Panics
    ///
    /// Panics if `deployer.index() >= n`.
    pub fn deploy(n: usize, deployer: ProcessId, total_supply: Amount) -> Self {
        Self::with_metadata(n, deployer, total_supply, TokenMetadata::default())
    }

    /// Deploys with explicit [`TokenMetadata`].
    ///
    /// # Panics
    ///
    /// Panics if `deployer.index() >= n`.
    pub fn with_metadata(
        n: usize,
        deployer: ProcessId,
        total_supply: Amount,
        metadata: TokenMetadata,
    ) -> Self {
        Self {
            metadata,
            state: Erc20State::with_deployer(n, deployer, total_supply),
        }
    }

    /// Wraps an arbitrary state `q` (the paper's `T_q`).
    pub fn from_state(state: Erc20State) -> Self {
        Self {
            metadata: TokenMetadata::default(),
            state,
        }
    }

    /// The contract metadata.
    pub fn metadata(&self) -> &TokenMetadata {
        &self.metadata
    }

    /// The current state `q = (β, α)`.
    pub fn state(&self) -> &Erc20State {
        &self.state
    }

    /// Consumes the token and returns its state.
    pub fn into_state(self) -> Erc20State {
        self.state
    }

    /// Number of accounts.
    pub fn accounts(&self) -> usize {
        self.state.accounts()
    }

    /// `transfer(to, value)` as `caller`.
    ///
    /// # Errors
    ///
    /// See [`Erc20State::transfer`].
    pub fn transfer(
        &mut self,
        caller: ProcessId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.state.transfer(caller, to, value)
    }

    /// `transferFrom(from, to, value)` as `caller`.
    ///
    /// # Errors
    ///
    /// See [`Erc20State::transfer_from`].
    pub fn transfer_from(
        &mut self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.state.transfer_from(caller, from, to, value)
    }

    /// `approve(spender, value)` as `caller`.
    ///
    /// # Errors
    ///
    /// See [`Erc20State::approve`].
    pub fn approve(
        &mut self,
        caller: ProcessId,
        spender: ProcessId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.state.approve(caller, spender, value)
    }

    /// `balanceOf(account)`.
    pub fn balance_of(&self, account: AccountId) -> Amount {
        self.state.balance(account)
    }

    /// `allowance(account, spender)`.
    pub fn allowance(&self, account: AccountId, spender: ProcessId) -> Amount {
        self.state.allowance(account, spender)
    }

    /// `totalSupply()`.
    pub fn total_supply(&self) -> Amount {
        self.state.total_supply()
    }

    /// Applies an [`Erc20Op`], returning the formal response — the bridge
    /// between the ergonomic API and the `(Q, q0, O, R, Δ)` view.
    pub fn apply(&mut self, process: ProcessId, op: &Erc20Op) -> Erc20Resp {
        Erc20Spec::new(Erc20State::new(0)) // spec carries no per-op state
            .apply(&mut self.state, process, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn deploy_and_metadata() {
        let t = Erc20Token::with_metadata(
            2,
            p(0),
            5,
            TokenMetadata {
                name: "Gold".into(),
                symbol: "GLD".into(),
                decimals: 2,
            },
        );
        assert_eq!(t.metadata().symbol, "GLD");
        assert_eq!(t.total_supply(), 5);
        assert_eq!(t.accounts(), 2);
    }

    #[test]
    fn typed_and_formal_interfaces_agree() {
        let mut t = Erc20Token::deploy(3, p(0), 10);
        assert!(t.transfer(p(0), a(1), 3).is_ok());
        let resp = t.apply(
            p(1),
            &Erc20Op::Approve {
                spender: p(2),
                value: 5,
            },
        );
        assert_eq!(resp, Erc20Resp::TRUE);
        assert_eq!(t.allowance(a(1), p(2)), 5);
        let resp = t.apply(p(0), &Erc20Op::BalanceOf { account: a(1) });
        assert_eq!(resp, Erc20Resp::Amount(3));
    }

    #[test]
    fn from_state_round_trips() {
        let mut q = Erc20State::with_deployer(2, p(0), 7);
        q.set_allowance(a(0), p(1), 3);
        let t = Erc20Token::from_state(q.clone());
        assert_eq!(t.into_state(), q);
    }
}

//! **Algorithm 2**: the restricted token `T|Q_k` implemented from
//! `k`-shared asset transfer objects and atomic registers (Theorem 4,
//! `CN(T|Q_k) ≤ CN(k-AT) = k`).
//!
//! The reduction keeps balances inside a `k`-AT object and mirrors
//! allowances in registers `R_a[j]`. `approve` is *gated*: it refuses any
//! transition that would give an account more than `k` spenders, so every
//! reachable state stays within `Q_k` — which is what makes the `k`-AT
//! substrate sufficient. Whenever an account's spender set changes, the
//! paper creates a fresh `k`-AT instance with the same balances and the
//! updated (static) owner map; [`SharedAt::set_account_owners`] models the
//! instance swap and counts instances.
//!
//! ## Fidelity notes (deviations from the paper's pseudocode, both
//! documented in DESIGN.md)
//!
//! 1. The pseudocode's `approve` gate (`|{p_a} ∪ {p_j : R_a[j] > 0}| = k ⇒
//!    FALSE`) also refuses revocations and same-spender updates once the
//!    account is at `k` spenders; we gate only *growth beyond `k`*, which
//!    matches `Δ' = {(q,p,o,r,q') ∈ Δ : q' ∈ Q_k}` more closely.
//! 2. The pseudocode decrements `R_{a_s}[i]` before invoking
//!    `k-AT.transfer` and ignores its result; a failed balance check would
//!    then lose allowance. We invoke the `k`-AT transfer first and decrement
//!    only on success.
//! 3. The pseudocode's read-modify-write on allowance registers is not
//!    atomic under concurrent `approve`; we serialize the per-account
//!    critical sections with a short internal lock. This is an engineering
//!    convenience for linearizability of the *implementation*, not part of
//!    the reduction: the consensus-power argument only needs the object to
//!    exist, and the lock sections are bounded (no waiting on other
//!    processes).
//!
//! The gate is *conservative* with respect to `σ` (it counts positive
//! allowances even on zero-balance accounts, where `σ` would not), which
//! keeps all reachable states in `Q_k` even as balances move — see
//! `restricted_stays_in_qk` in the tests.

use std::collections::BTreeSet;

use parking_lot::Mutex;
use tokensync_kat::{AtError, OwnerMap, SharedAt};
use tokensync_registers::{Register, U64Register};
use tokensync_spec::{AccountId, Amount, ObjectType, ProcessId};

use crate::analysis::enabled_spenders;
use crate::erc20::{Erc20Op, Erc20Resp, Erc20State};
use crate::error::TokenError;
use crate::shared::{apply_erc20, ConcurrentObject, ConcurrentToken};

/// Sequential specification of the object [`RestrictedToken`] implements:
/// the ERC20 transition function with the growth-gated `approve` (the
/// `FALSE`-totalization of `T|Q_k`).
///
/// Used as the differential-testing oracle for the emulation.
#[derive(Clone, Debug)]
pub struct RestrictedErc20Spec {
    k: usize,
    initial: Erc20State,
}

impl RestrictedErc20Spec {
    /// Creates the spec for restriction level `k` starting from `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or some account already has more than `k`
    /// potential spenders (owner + positive allowances) in `initial`.
    pub fn new(k: usize, initial: Erc20State) -> Self {
        assert!(k >= 1, "restriction level must be at least 1");
        for i in 0..initial.accounts() {
            let a = AccountId::new(i);
            assert!(
                spender_count(&initial, a) <= k,
                "initial state already exceeds the Q_{k} restriction at {a}"
            );
        }
        Self { k, initial }
    }

    /// The restriction level `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Counts `|{ω(a)} ∪ {p : α(a,p) > 0}|` — the gate's (balance-agnostic)
/// spender census of Algorithm 2, line 17.
fn spender_count(state: &Erc20State, account: AccountId) -> usize {
    let owner = account.owner();
    let mut set: BTreeSet<ProcessId> = BTreeSet::new();
    set.insert(owner);
    for j in 0..state.accounts() {
        let p = ProcessId::new(j);
        if state.allowance(account, p) > 0 {
            set.insert(p);
        }
    }
    set.len()
}

/// Whether `approve(spender, value)` by `caller` is allowed at restriction
/// level `k` in `state`: refused only if it would add a *new* non-owner
/// spender to an account already at `k` census entries.
fn approve_allowed(
    state: &Erc20State,
    k: usize,
    caller: ProcessId,
    spender: ProcessId,
    value: Amount,
) -> bool {
    let account = caller.own_account();
    let is_new = value > 0 && spender != caller && state.allowance(account, spender) == 0;
    !(is_new && spender_count(state, account) >= k)
}

impl ObjectType for RestrictedErc20Spec {
    type State = Erc20State;
    type Op = Erc20Op;
    type Resp = Erc20Resp;

    fn initial_state(&self) -> Erc20State {
        self.initial.clone()
    }

    fn apply(&self, state: &mut Erc20State, process: ProcessId, op: &Erc20Op) -> Erc20Resp {
        if let Erc20Op::Approve { spender, value } = *op {
            if process.index() < state.accounts()
                && spender.index() < state.accounts()
                && !approve_allowed(state, self.k, process, spender, value)
            {
                return Erc20Resp::FALSE;
            }
        }
        crate::erc20::Erc20Spec::new(Erc20State::new(0)).apply(state, process, op)
    }
}

/// The wait-free implementation of `T|Q_k` from a `k`-AT object and
/// registers (Algorithm 2 of the paper).
///
/// # Example
///
/// ```
/// use tokensync_core::emulation::RestrictedToken;
/// use tokensync_core::erc20::Erc20State;
/// use tokensync_core::shared::ConcurrentToken;
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let token = RestrictedToken::new(2, Erc20State::with_deployer(3, ProcessId::new(0), 10));
/// // One extra spender is fine at k = 2 ...
/// token.approve(ProcessId::new(0), ProcessId::new(1), 5)?;
/// // ... but a second would leave Q_2: refused.
/// assert!(token.approve(ProcessId::new(0), ProcessId::new(2), 5).is_err());
/// # Ok::<(), tokensync_core::TokenError>(())
/// ```
pub struct RestrictedToken {
    k: usize,
    at: SharedAt,
    /// `allowances[a][j]` mirrors `R_a[j]`.
    allowances: Vec<Vec<U64Register>>,
    /// Per-account critical sections for allowance read-modify-writes and
    /// owner-map swaps (fidelity note 3 in the module docs).
    sections: Vec<Mutex<()>>,
    supply: Amount,
}

impl RestrictedToken {
    /// Builds the emulation at restriction level `k` from `initial`.
    ///
    /// Initializes the `k`-AT balances from `β`, the registers from `α`,
    /// and the owner map from the enabled spenders of each account
    /// (Algorithm 2, lines 2–6).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `initial` already exceeds the restriction.
    pub fn new(k: usize, initial: Erc20State) -> Self {
        assert!(k >= 1, "restriction level must be at least 1");
        let n = initial.accounts();
        let mut owners = OwnerMap::new(n);
        for i in 0..n {
            let account = AccountId::new(i);
            assert!(
                spender_count(&initial, account) <= k,
                "initial state already exceeds the Q_{k} restriction at {account}"
            );
            owners.add_owner(account, account.owner());
            for j in 0..n {
                let p = ProcessId::new(j);
                if initial.allowance(account, p) > 0 {
                    owners.add_owner(account, p);
                }
            }
        }
        let balances: Vec<Amount> = (0..n).map(|i| initial.balance(AccountId::new(i))).collect();
        let supply = balances.iter().sum();
        let allowances = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        U64Register::new(initial.allowance(AccountId::new(i), ProcessId::new(j)))
                    })
                    .collect()
            })
            .collect();
        Self {
            k,
            at: SharedAt::new(owners, balances),
            allowances,
            sections: (0..n).map(|_| Mutex::new(())).collect(),
            supply,
        }
    }

    /// The restriction level `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of logical `k`-AT instances consumed so far (each spender-set
    /// change re-instantiates the substrate, per the Theorem 4 proof).
    pub fn kat_instances(&self) -> u64 {
        self.at.instances()
    }

    fn check_process(&self, process: ProcessId) -> Result<(), TokenError> {
        if process.index() < self.allowances.len() {
            Ok(())
        } else {
            Err(TokenError::UnknownProcess { process })
        }
    }

    fn check_account(&self, account: AccountId) -> Result<(), TokenError> {
        if account.index() < self.allowances.len() {
            Ok(())
        } else {
            Err(TokenError::UnknownAccount { account })
        }
    }

    fn map_at_error(
        err: AtError,
        account: AccountId,
        value: Amount,
        balance: Amount,
    ) -> TokenError {
        match err {
            AtError::InsufficientBalance => TokenError::InsufficientBalance {
                account,
                balance,
                required: value,
            },
            AtError::UnknownAccount => TokenError::UnknownAccount { account },
            // The owner map always contains every positive-allowance
            // spender and the owner, so NotOwner can only mean a stale
            // caller id.
            AtError::NotOwner => TokenError::UnknownAccount { account },
        }
    }

    /// Census of account `a` from the registers: `{owner} ∪ {j : R_a[j]>0}`.
    fn census(&self, account: AccountId) -> BTreeSet<ProcessId> {
        let mut set = BTreeSet::new();
        set.insert(account.owner());
        for (j, reg) in self.allowances[account.index()].iter().enumerate() {
            if reg.read() > 0 {
                set.insert(ProcessId::new(j));
            }
        }
        set
    }
}

impl ConcurrentObject for RestrictedToken {
    type Op = Erc20Op;
    type Resp = Erc20Resp;
    type State = Erc20State;

    fn apply(&self, process: ProcessId, op: &Erc20Op) -> Erc20Resp {
        apply_erc20(self, process, op)
    }

    fn snapshot(&self) -> Erc20State {
        // Quiesce allowance sections, then read balances. Diagnostic: exact
        // at quiescent points, which is how the tests use it.
        let _guards: Vec<_> = self.sections.iter().map(Mutex::lock).collect();
        let mut state = Erc20State::from_balances(self.at.balances_snapshot());
        for (i, row) in self.allowances.iter().enumerate() {
            for (j, reg) in row.iter().enumerate() {
                state.set_allowance(AccountId::new(i), ProcessId::new(j), reg.read());
            }
        }
        state
    }
}

impl ConcurrentToken for RestrictedToken {
    fn accounts(&self) -> usize {
        self.allowances.len()
    }

    /// Algorithm 2, lines 12–13: delegate to the `k`-AT object.
    fn transfer(&self, caller: ProcessId, to: AccountId, value: Amount) -> Result<(), TokenError> {
        self.check_process(caller)?;
        self.check_account(to)?;
        let from = caller.own_account();
        self.at
            .transfer(caller, from, to, value)
            .map_err(|e| Self::map_at_error(e, from, value, self.at.balance_of(from)))
    }

    /// Algorithm 2, lines 7–11 (with the success-ordered decrement of
    /// fidelity note 2).
    fn transfer_from(
        &self,
        caller: ProcessId,
        from: AccountId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.check_process(caller)?;
        self.check_account(from)?;
        self.check_account(to)?;
        let _section = self.sections[from.index()].lock();
        let reg = &self.allowances[from.index()][caller.index()];
        let allowance = reg.read();
        if allowance < value {
            return Err(TokenError::InsufficientAllowance {
                account: from,
                spender: caller,
                allowance,
                required: value,
            });
        }
        if value == 0 {
            // ERC20 permits a zero-value transferFrom from anyone (0 ≥ 0 on
            // both checks); the k-AT owner map would reject callers with no
            // allowance, so short-circuit the no-op here.
            return Ok(());
        }
        self.at
            .transfer(caller, from, to, value)
            .map_err(|e| Self::map_at_error(e, from, value, self.at.balance_of(from)))?;
        reg.write(allowance - value);
        Ok(())
    }

    /// Algorithm 2, lines 16–24: gate, register write, owner-map swap.
    fn approve(
        &self,
        caller: ProcessId,
        spender: ProcessId,
        value: Amount,
    ) -> Result<(), TokenError> {
        self.check_process(caller)?;
        self.check_process(spender)?;
        let account = caller.own_account();
        let _section = self.sections[account.index()].lock();
        let reg = &self.allowances[account.index()][spender.index()];
        let old = reg.read();
        let is_new = value > 0 && spender != caller && old == 0;
        if is_new && self.census(account).len() >= self.k {
            return Err(TokenError::WouldExceedRestriction { k: self.k });
        }
        reg.write(value);
        // Spender-set change ⇒ new k-AT instance with the updated owner map
        // for this account (lines 21–23, restricted to the touched account;
        // see fidelity discussion in the module docs).
        if (old == 0) != (value == 0) {
            let mut owners = self.census(account);
            owners.insert(account.owner());
            self.at.set_account_owners(account, owners);
        }
        Ok(())
    }

    fn balance_of(&self, account: AccountId) -> Amount {
        self.at.balance_of(account)
    }

    fn allowance(&self, account: AccountId, spender: ProcessId) -> Amount {
        self.allowances
            .get(account.index())
            .and_then(|row| row.get(spender.index()))
            .map(Register::read)
            .unwrap_or(0)
    }

    /// Constant under every operation, so trivially linearizable.
    fn total_supply(&self) -> Amount {
        self.supply
    }
}

impl std::fmt::Debug for RestrictedToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RestrictedToken")
            .field("k", &self.k)
            .field("kat_instances", &self.kat_instances())
            .finish()
    }
}

/// Asserts the defining invariant of the restricted object on a state: no
/// account exceeds `k` in the register census, hence
/// `partition_index(q) ≤ k` (every reachable state is in `Q_1 ∪ … ∪ Q_k`).
pub fn within_restriction(state: &Erc20State, k: usize) -> bool {
    (0..state.accounts()).all(|i| {
        let a = AccountId::new(i);
        spender_count(state, a) <= k && enabled_spenders(state, a).len() <= k
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::partition_index;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn basic_erc20_flows_still_work() {
        let t = RestrictedToken::new(2, Erc20State::with_deployer(3, p(0), 10));
        t.transfer(p(0), a(1), 3).unwrap();
        t.approve(p(1), p(2), 5).unwrap();
        assert!(t.transfer_from(p(2), a(1), a(2), 5).is_err());
        t.transfer_from(p(2), a(1), a(0), 1).unwrap();
        assert_eq!(t.balance_of(a(0)), 8);
        assert_eq!(t.allowance(a(1), p(2)), 4);
        assert_eq!(t.total_supply(), 10);
    }

    #[test]
    fn approve_gate_blocks_growth_beyond_k() {
        let t = RestrictedToken::new(2, Erc20State::with_deployer(4, p(0), 10));
        t.approve(p(0), p(1), 5).unwrap();
        assert_eq!(
            t.approve(p(0), p(2), 5),
            Err(TokenError::WouldExceedRestriction { k: 2 })
        );
        // Updating the existing spender and revoking are always allowed.
        t.approve(p(0), p(1), 9).unwrap();
        t.approve(p(0), p(1), 0).unwrap();
        // After the revocation a different spender fits again.
        t.approve(p(0), p(2), 5).unwrap();
    }

    #[test]
    fn consumed_allowance_frees_a_slot() {
        let t = RestrictedToken::new(2, Erc20State::with_deployer(3, p(0), 10));
        t.approve(p(0), p(1), 4).unwrap();
        t.transfer_from(p(1), a(0), a(1), 4).unwrap();
        // p1's allowance is spent to zero: the census shrinks and p2 fits.
        t.approve(p(0), p(2), 5).unwrap();
        assert_eq!(t.allowance(a(0), p(2)), 5);
    }

    #[test]
    fn kat_instances_track_spender_set_changes() {
        let t = RestrictedToken::new(3, Erc20State::with_deployer(3, p(0), 10));
        let base = t.kat_instances();
        t.approve(p(0), p(1), 4).unwrap(); // 0 → positive: new instance
        t.approve(p(0), p(1), 6).unwrap(); // positive → positive: same
        t.approve(p(0), p(1), 0).unwrap(); // positive → 0: new instance
        assert_eq!(t.kat_instances(), base + 2);
    }

    #[test]
    fn differential_against_restricted_spec() {
        let initial = Erc20State::with_deployer(4, p(0), 12);
        let spec = RestrictedErc20Spec::new(2, initial.clone());
        let t = RestrictedToken::new(2, initial);
        let mut oracle = spec.initial_state();
        let mut rng = StdRng::seed_from_u64(11);
        for step in 0..600 {
            let caller = p(rng.gen_range(0..4));
            let op = match rng.gen_range(0..5) {
                0 => Erc20Op::Transfer {
                    to: a(rng.gen_range(0..4)),
                    value: rng.gen_range(0..4),
                },
                1 => Erc20Op::TransferFrom {
                    from: a(rng.gen_range(0..4)),
                    to: a(rng.gen_range(0..4)),
                    value: rng.gen_range(0..4),
                },
                2 => Erc20Op::Approve {
                    spender: p(rng.gen_range(0..4)),
                    value: rng.gen_range(0..4),
                },
                3 => Erc20Op::BalanceOf {
                    account: a(rng.gen_range(0..4)),
                },
                _ => Erc20Op::Allowance {
                    account: a(rng.gen_range(0..4)),
                    spender: p(rng.gen_range(0..4)),
                },
            };
            let expected = spec.apply(&mut oracle, caller, &op);
            let got = t.apply(caller, &op);
            assert_eq!(got, expected, "step {step}: divergence on {op:?}");
        }
        assert_eq!(t.state_snapshot(), oracle);
    }

    #[test]
    fn restricted_stays_in_qk() {
        // Theorem 4's enabling invariant: every reachable state lies in
        // Q_1 ∪ … ∪ Q_k, even as balances move onto accounts with dormant
        // positive allowances.
        let initial = Erc20State::with_deployer(5, p(0), 20);
        let spec = RestrictedErc20Spec::new(3, initial.clone());
        let mut oracle = spec.initial_state();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let caller = p(rng.gen_range(0..5));
            let op = match rng.gen_range(0..3) {
                0 => Erc20Op::Transfer {
                    to: a(rng.gen_range(0..5)),
                    value: rng.gen_range(0..5),
                },
                1 => Erc20Op::TransferFrom {
                    from: a(rng.gen_range(0..5)),
                    to: a(rng.gen_range(0..5)),
                    value: rng.gen_range(0..5),
                },
                _ => Erc20Op::Approve {
                    spender: p(rng.gen_range(0..5)),
                    value: rng.gen_range(0..3),
                },
            };
            spec.apply(&mut oracle, caller, &op);
            assert!(within_restriction(&oracle, 3));
            assert!(partition_index(&oracle) <= 3);
        }
    }

    #[test]
    fn concurrent_use_preserves_supply_and_restriction() {
        use std::sync::Arc;
        let t = Arc::new(RestrictedToken::new(
            2,
            Erc20State::from_balances(vec![50, 50, 50, 50]),
        ));
        crossbeam::scope(|s| {
            for i in 0..4 {
                let t = Arc::clone(&t);
                s.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(i as u64 + 99);
                    for _ in 0..300 {
                        match rng.gen_range(0..3) {
                            0 => {
                                let _ =
                                    t.transfer(p(i), a(rng.gen_range(0..4)), rng.gen_range(0..4));
                            }
                            1 => {
                                let _ =
                                    t.approve(p(i), p(rng.gen_range(0..4)), rng.gen_range(0..4));
                            }
                            _ => {
                                let _ = t.transfer_from(
                                    p(i),
                                    a(rng.gen_range(0..4)),
                                    a(rng.gen_range(0..4)),
                                    rng.gen_range(0..4),
                                );
                            }
                        }
                    }
                });
            }
        })
        .unwrap();
        let final_state = t.state_snapshot();
        assert_eq!(final_state.total_supply(), 200);
        assert!(within_restriction(&final_state, 2));
    }

    #[test]
    #[should_panic(expected = "already exceeds")]
    fn oversubscribed_initial_state_rejected() {
        let mut q = Erc20State::from_balances(vec![5, 0, 0]);
        q.set_allowance(a(0), p(1), 1);
        q.set_allowance(a(0), p(2), 1);
        let _t = RestrictedToken::new(2, q);
    }
}

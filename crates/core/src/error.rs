//! Typed errors for token operations.
//!
//! The paper's objects signal failure with a `FALSE` response; a library
//! wants to know *why*. Every `FALSE` transition of Definition 3 maps to
//! exactly one variant here, and the mapping is bijective so the formal
//! responses can always be reconstructed (`Result::is_ok()` ⇔ `TRUE`).

use std::fmt;

use tokensync_spec::{AccountId, Amount, ProcessId};

/// Reason a token operation returned `FALSE` in the sequential
/// specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenError {
    /// The source balance is below the requested amount
    /// (`β(a_s) < v`).
    InsufficientBalance {
        /// Account whose balance was insufficient.
        account: AccountId,
        /// Balance at the time of the operation.
        balance: Amount,
        /// Amount the operation required.
        required: Amount,
    },
    /// The caller's allowance on the source account is below the requested
    /// amount (`α(a_s, p) < v`).
    InsufficientAllowance {
        /// Account the caller tried to spend from.
        account: AccountId,
        /// Spender whose allowance was insufficient.
        spender: ProcessId,
        /// Allowance at the time of the operation.
        allowance: Amount,
        /// Amount the operation required.
        required: Amount,
    },
    /// The operation referenced an account outside `A`.
    UnknownAccount {
        /// The out-of-range account.
        account: AccountId,
    },
    /// The operation referenced a process outside `Π`.
    UnknownProcess {
        /// The out-of-range process.
        process: ProcessId,
    },
    /// The operation was refused because it would leave the restricted
    /// state space (only returned by `T|Q_k`, Algorithm 2: an `approve`
    /// that would give some account more than `k` enabled spenders).
    WouldExceedRestriction {
        /// The restriction level `k`.
        k: usize,
    },
}

impl fmt::Display for TokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenError::InsufficientBalance {
                account,
                balance,
                required,
            } => write!(
                f,
                "balance of {account} is {balance}, operation requires {required}"
            ),
            TokenError::InsufficientAllowance {
                account,
                spender,
                allowance,
                required,
            } => write!(
                f,
                "allowance of {spender} on {account} is {allowance}, operation requires {required}"
            ),
            TokenError::UnknownAccount { account } => {
                write!(f, "account {account} does not exist")
            }
            TokenError::UnknownProcess { process } => {
                write!(f, "process {process} does not exist")
            }
            TokenError::WouldExceedRestriction { k } => {
                write!(f, "operation would exceed the Q_{k} restriction")
            }
        }
    }
}

impl std::error::Error for TokenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TokenError::InsufficientBalance {
            account: AccountId::new(1),
            balance: 3,
            required: 5,
        };
        assert_eq!(e.to_string(), "balance of a1 is 3, operation requires 5");
        let e = TokenError::WouldExceedRestriction { k: 2 };
        assert!(e.to_string().contains("Q_2"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<TokenError>();
    }
}

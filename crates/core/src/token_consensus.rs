//! **Algorithm 1**: wait-free consensus from an ERC20 token in a
//! synchronization state (Theorem 2, `CN(T_{S_k}) ≥ k`).
//!
//! The construction: the `k` enabled spenders of an account `a_1` (state in
//! `S_k`) publish proposals in registers `R[1..k]`, then race to withdraw
//! from `a_1` — the owner by `transfer`ring the full balance `B`, each
//! spender `p_i` by `transferFrom`ing against its allowance `A_i`. The
//! predicate `U` guarantees a unique winner; losers identify it by reading
//! allowances and adopt its published proposal.
//!
//! Two race modes are provided:
//!
//! * [`RaceMode::Verbatim`] — the paper's Algorithm 1 exactly: spender `p_i`
//!   transfers its *full* allowance `A_i` and winners are detected by
//!   `allowance = 0`. Correct under `U` **plus** the proof's prose premise
//!   that allowances are "sufficient" (`A_i ≤ B`); see
//!   [`algorithm1_ready`](crate::analysis::algorithm1_ready()). The model
//!   checker exhibits a validity violation when `A_i > B`
//!   (`tokensync-mc`).
//! * [`RaceMode::Generalized`] (default) — spender `p_i` transfers
//!   `min(A_i, B)` and winners are detected by *allowance decrease*. This
//!   realizes Theorem 2 for every literal `S_k` state: pairwise
//!   `A_i + A_j > B` still forces a unique winner because
//!   `min(A_i,B) + min(A_j,B) > B`.
//!
//! Wait-freedom is immediate: one register write, one token operation and a
//! bounded scan of `k − 1` allowances.

use tokensync_consensus::Consensus;
use tokensync_registers::{Register, RegisterArray};
use tokensync_spec::{AccountId, ProcessId};

use crate::analysis::{algorithm1_ready, SyncWitness};
use crate::shared::ConcurrentToken;

/// How spenders race and how winners are detected; see the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RaceMode {
    /// Transfer `min(A_i, B)`, detect winners by allowance decrease.
    #[default]
    Generalized,
    /// The paper's Algorithm 1 verbatim: transfer `A_i`, detect zero
    /// allowance. Requires `algorithm1_ready`.
    Verbatim,
}

/// A wait-free consensus object for the `k` enabled spenders of one token
/// account (Algorithm 1 of the paper).
///
/// The object takes ownership of its token instance conceptually: during the
/// race no other party may operate on the witness account (the consensus
/// protocol *consumes* the synchronization state, as the paper notes —
/// synchronization states are spent, not reusable).
///
/// # Example
///
/// ```
/// use tokensync_core::analysis::SyncWitness;
/// use tokensync_core::erc20::Erc20State;
/// use tokensync_core::shared::SharedErc20;
/// use tokensync_core::token_consensus::TokenConsensus;
/// use tokensync_spec::{AccountId, ProcessId};
///
/// // A state in S_3: balance 10, two spenders with allowances 6 and 7.
/// let mut q = Erc20State::from_balances(vec![10, 0, 0]);
/// q.set_allowance(AccountId::new(0), ProcessId::new(1), 6);
/// q.set_allowance(AccountId::new(0), ProcessId::new(2), 7);
/// let witness = SyncWitness::for_account(&q, AccountId::new(0)).unwrap();
///
/// let consensus = TokenConsensus::new(
///     SharedErc20::from_state(q),
///     witness,
///     AccountId::new(1),
/// );
/// let d = consensus.propose(ProcessId::new(2), "charlie");
/// assert_eq!(d, "charlie");
/// assert_eq!(consensus.propose(ProcessId::new(0), "alice"), "charlie");
/// ```
pub struct TokenConsensus<T, V> {
    token: T,
    witness: SyncWitness,
    destination: AccountId,
    registers: RegisterArray<Option<V>>,
    mode: RaceMode,
}

impl<T: ConcurrentToken, V: Clone + Send + Sync> TokenConsensus<T, V> {
    /// Creates the consensus object in [`RaceMode::Generalized`].
    ///
    /// # Panics
    ///
    /// Panics if the witness does not describe the token's current state
    /// (balance or allowances differ), or if `destination` equals the
    /// witness account (the race must move tokens *out*).
    pub fn new(token: T, witness: SyncWitness, destination: AccountId) -> Self {
        Self::with_mode(token, witness, destination, RaceMode::Generalized)
    }

    /// Creates the consensus object with an explicit [`RaceMode`].
    ///
    /// # Panics
    ///
    /// As [`TokenConsensus::new`]; additionally panics in
    /// [`RaceMode::Verbatim`] if the state is not
    /// [`algorithm1_ready`](crate::analysis::algorithm1_ready()) (some
    /// allowance exceeds the balance), since the verbatim race would not be
    /// a correct consensus object there.
    pub fn with_mode(
        token: T,
        witness: SyncWitness,
        destination: AccountId,
        mode: RaceMode,
    ) -> Self {
        assert_ne!(
            destination, witness.account,
            "destination must differ from the race account"
        );
        assert_eq!(
            token.balance_of(witness.account),
            witness.balance,
            "witness balance out of date"
        );
        for (i, p) in witness.participants.iter().enumerate().skip(1) {
            assert_eq!(
                token.allowance(witness.account, *p),
                witness.allowances[i - 1],
                "witness allowance for {p} out of date"
            );
        }
        if mode == RaceMode::Verbatim {
            assert!(
                algorithm1_ready(&token.state_snapshot(), witness.account),
                "verbatim Algorithm 1 requires allowances ≤ balance (see analysis::algorithm1_ready)"
            );
        }
        let k = witness.k();
        Self {
            token,
            witness,
            destination,
            registers: RegisterArray::new(k, None),
            mode,
        }
    }

    /// The synchronization level `k` of this object.
    pub fn k(&self) -> usize {
        self.witness.k()
    }

    /// The participants, owner first.
    pub fn participants(&self) -> &[ProcessId] {
        &self.witness.participants
    }

    /// Proposes `value` on behalf of `process` (Algorithm 1's `propose`).
    ///
    /// # Panics
    ///
    /// Panics if `process` is not one of the `k` participants.
    pub fn propose(&self, process: ProcessId, value: V) -> V {
        let rank = self
            .witness
            .rank(process)
            .unwrap_or_else(|| panic!("{process} is not a participant of this consensus object"));
        // Line 7: publish the proposal.
        self.registers.at(rank).write(Some(value));
        // Lines 8–10: race on the token.
        if rank == 0 {
            // Owner: transfer the full balance.
            let _ = self
                .token
                .transfer(process, self.destination, self.witness.balance);
        } else {
            let granted = self.witness.allowances[rank - 1];
            let amount = match self.mode {
                RaceMode::Verbatim => granted,
                RaceMode::Generalized => granted.min(self.witness.balance),
            };
            let _ =
                self.token
                    .transfer_from(process, self.witness.account, self.destination, amount);
        }
        // Lines 11–14: find the winner and adopt its proposal.
        self.read_decision()
            .expect("a completed race always exposes a winner")
    }

    /// Reads the decided value without racing, or `None` if no `propose`
    /// has completed yet (diagnostic, like
    /// [`peek`](tokensync_consensus::Consensus::peek)).
    pub fn read_decision(&self) -> Option<V> {
        for j in 1..self.witness.k() {
            let p_j = self.witness.participants[j];
            let initial = self.witness.allowances[j - 1];
            let current = self.token.allowance(self.witness.account, p_j);
            let won = match self.mode {
                RaceMode::Verbatim => current == 0,
                RaceMode::Generalized => current < initial,
            };
            if won {
                return Some(
                    self.registers
                        .at(j)
                        .read()
                        .expect("winner published its proposal before racing"),
                );
            }
        }
        // No spender won. If the balance moved, the owner won.
        if self.token.balance_of(self.witness.account) < self.witness.balance {
            return Some(
                self.registers
                    .at(0)
                    .read()
                    .expect("owner published its proposal before racing"),
            );
        }
        None
    }

    /// Shared access to the underlying token (diagnostics/tests).
    pub fn token(&self) -> &T {
        &self.token
    }
}

impl<T: ConcurrentToken, V: Clone + Send + Sync> Consensus<V> for TokenConsensus<T, V> {
    fn propose(&self, process: ProcessId, value: V) -> V {
        TokenConsensus::propose(self, process, value)
    }

    fn peek(&self) -> Option<V> {
        self.read_decision()
    }
}

impl<T: ConcurrentToken, V: Clone + Send + Sync + std::fmt::Debug> std::fmt::Debug
    for TokenConsensus<T, V>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenConsensus")
            .field("k", &self.k())
            .field("account", &self.witness.account)
            .field("mode", &self.mode)
            .field("decided", &self.read_decision())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erc20::Erc20State;
    use crate::shared::SharedErc20;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Balance `b` on a0, spenders p1..p(k-1) with pairwise-exceeding
    /// allowances b/2 + 1.
    fn sk_state(k: usize, n: usize, b: u64) -> (Erc20State, SyncWitness) {
        let mut balances = vec![0; n];
        balances[0] = b;
        let mut q = Erc20State::from_balances(balances);
        for i in 1..k {
            q.set_allowance(a(0), p(i), b / 2 + 1);
        }
        let w = SyncWitness::for_account(&q, a(0)).unwrap();
        assert_eq!(w.k(), k);
        (q, w)
    }

    #[test]
    fn k1_owner_decides_alone() {
        let (q, w) = sk_state(1, 2, 5);
        let c = TokenConsensus::new(SharedErc20::from_state(q), w, a(1));
        assert_eq!(c.read_decision(), None);
        assert_eq!(c.propose(p(0), 42), 42);
        assert_eq!(c.read_decision(), Some(42));
    }

    #[test]
    fn sequential_first_proposer_wins_each_rank() {
        for first in 0..3 {
            let (q, w) = sk_state(3, 4, 10);
            let c = TokenConsensus::new(SharedErc20::from_state(q), w, a(3));
            let order: Vec<usize> = (0..3).map(|i| (first + i) % 3).collect();
            let mut decisions = Vec::new();
            for i in &order {
                decisions.push(c.propose(p(*i), *i));
            }
            assert!(
                decisions.iter().all(|d| *d == first),
                "first={first}: {decisions:?}"
            );
        }
    }

    #[test]
    fn agreement_validity_under_threaded_contention() {
        for k in [2usize, 3, 5, 8] {
            for round in 0..20 {
                let (q, w) = sk_state(k, k + 1, 64);
                let c: Arc<TokenConsensus<SharedErc20, usize>> =
                    Arc::new(TokenConsensus::new(SharedErc20::from_state(q), w, a(k)));
                let mut decisions = Vec::new();
                crossbeam::scope(|s| {
                    let handles: Vec<_> = (0..k)
                        .map(|i| {
                            let c = Arc::clone(&c);
                            s.spawn(move |_| c.propose(p(i), i))
                        })
                        .collect();
                    for h in handles {
                        decisions.push(h.join().unwrap());
                    }
                })
                .unwrap();
                let distinct: HashSet<_> = decisions.iter().copied().collect();
                assert_eq!(distinct.len(), 1, "k={k} round={round}: {decisions:?}");
                assert!(decisions[0] < k);
            }
        }
    }

    #[test]
    fn generalized_mode_handles_oversized_allowances() {
        // A literal S_2 state where the spender's allowance exceeds the
        // balance: the verbatim algorithm is unsafe here, the generalized
        // mode must still be a correct consensus object.
        let mut q = Erc20State::from_balances(vec![5, 0, 0]);
        q.set_allowance(a(0), p(1), 12);
        let w = SyncWitness::for_account(&q, a(0)).unwrap();
        // Spender proposes first: its min(12, 5) withdrawal wins.
        let c = TokenConsensus::new(SharedErc20::from_state(q), w, a(2));
        assert_eq!(c.propose(p(1), "spender"), "spender");
        assert_eq!(c.propose(p(0), "owner"), "spender");
    }

    #[test]
    #[should_panic(expected = "algorithm1_ready")]
    fn verbatim_mode_rejects_oversized_allowances() {
        let mut q = Erc20State::from_balances(vec![5, 0, 0]);
        q.set_allowance(a(0), p(1), 12);
        let w = SyncWitness::for_account(&q, a(0)).unwrap();
        let _c: TokenConsensus<_, u8> =
            TokenConsensus::with_mode(SharedErc20::from_state(q), w, a(2), RaceMode::Verbatim);
    }

    #[test]
    fn verbatim_mode_agrees_under_contention() {
        for _ in 0..30 {
            let (q, w) = sk_state(4, 5, 10);
            let c: Arc<TokenConsensus<SharedErc20, usize>> = Arc::new(TokenConsensus::with_mode(
                SharedErc20::from_state(q),
                w,
                a(4),
                RaceMode::Verbatim,
            ));
            let mut decisions = Vec::new();
            crossbeam::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|i| {
                        let c = Arc::clone(&c);
                        s.spawn(move |_| c.propose(p(i), i))
                    })
                    .collect();
                for h in handles {
                    decisions.push(h.join().unwrap());
                }
            })
            .unwrap();
            assert_eq!(decisions.iter().collect::<HashSet<_>>().len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "not a participant")]
    fn non_participant_cannot_propose() {
        let (q, w) = sk_state(2, 4, 10);
        let c = TokenConsensus::new(SharedErc20::from_state(q), w, a(3));
        c.propose(p(3), 0);
    }

    #[test]
    #[should_panic(expected = "destination must differ")]
    fn destination_must_not_be_race_account() {
        let (q, w) = sk_state(2, 4, 10);
        let _c: TokenConsensus<_, u8> = TokenConsensus::new(SharedErc20::from_state(q), w, a(0));
    }

    #[test]
    #[should_panic(expected = "out of date")]
    fn stale_witness_rejected() {
        let (q, mut w) = sk_state(2, 4, 10);
        w.balance = 99;
        let _c: TokenConsensus<_, u8> = TokenConsensus::new(SharedErc20::from_state(q), w, a(1));
    }
}

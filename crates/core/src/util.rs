//! Small shared building blocks of the concurrent state layouts.

/// Pads a value to its own cache line so neighbouring locks do not
/// false-share under cross-core traffic. Used by every lock-striped
/// object (`ShardedErc20`, `ShardedErc721`, `ShardedErc1155`).
#[derive(Debug)]
#[repr(align(64))]
pub(crate) struct CacheLine<T>(pub(crate) T);

/// The default stripe count shared by every sharded object:
/// `min(n, 4 × available cores)` rounded *down* to a power of two, at
/// least 1.
///
/// Four stripes per core keeps the collision probability of two random
/// concurrent operations low (≤ 1/4 per pair per core) without paying
/// for a lock per slot; the power-of-two constraint turns the
/// per-operation stripe math into shift/mask.
pub(crate) fn default_stripe(n: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let bound = n.clamp(1, 4 * cores);
    // Largest power of two ≤ bound (bound ≥ 1, so this is well-formed).
    1 << (usize::BITS - 1 - bound.leading_zeros())
}

//! ERC20 tokens as shared objects — the primary contribution of
//! *On the Synchronization Power of Token Smart Contracts* (Alpos, Cachin,
//! Marson, Zanolini — ICDCS 2021), reproduced as a Rust library.
//!
//! The paper models an ERC20 token contract as a sequential shared-memory
//! object `T = (Q, q0, O, R, Δ)` (Definition 3) and shows that its
//! *consensus number is a function of its state*: the object is exactly as
//! powerful as consensus among the largest set of *enabled spenders*
//! `σ_q(a)` of any single account — a level that changes as `approve`
//! operations execute. This crate implements the whole story:
//!
//! * [`erc20`] — the token object: sequential specification
//!   ([`Erc20Spec`]), convenience sequential token ([`Erc20Token`],
//!   Algorithm 3 of the paper) with typed errors.
//! * [`shared`] — linearizable concurrent implementations
//!   ([`CoarseErc20`], [`SharedErc20`], [`ShardedErc20`]) behind the
//!   ERC20 [`ConcurrentToken`] interface, itself an instance of the
//!   standard-generic [`ConcurrentObject`] trait (footprinted ops +
//!   oracle snapshots) the batched pipeline serves.
//! * [`analysis`] — the Section 5 machinery: enabled spenders `σ_q`,
//!   the partition `{Q_k}`, the unique-winner predicate `U`,
//!   synchronization states `S_k`, and per-state consensus-number bounds
//!   ([`CnBounds`]); plus a [`SyncMonitor`] tracking the *dynamic*
//!   consensus number of a live token.
//! * [`token_consensus`] — **Algorithm 1**: wait-free consensus for `k`
//!   processes from a token in a `k`-synchronization state plus `k` atomic
//!   registers (Theorem 2).
//! * [`emulation`] — **Algorithm 2**: the restricted object `T|Q_k`
//!   implemented from `k`-shared asset transfer and registers (Theorem 4).
//! * [`setup`] — driving a token from `q0` into a chosen synchronization
//!   state (the inherently non-wait-free preparation discussed after
//!   Theorem 3).
//! * [`codec`] — the binary wire codec (ops, responses, versioned
//!   states) the durable store persists through.
//! * [`standards`] — Section 6 extensions: ERC777 operators, ERC721
//!   non-fungible tokens, ERC1155 multi-tokens, with their consensus
//!   constructions (deduplicated over [`standards::race`]) and the
//!   lock-striped, footprinted serving objects
//!   ([`standards::erc721::ShardedErc721`],
//!   [`standards::erc1155::ShardedErc1155`]) the generic pipeline
//!   executes.
//!
//! # Quickstart
//!
//! ```
//! use tokensync_core::analysis::{consensus_number_bounds, enabled_spenders};
//! use tokensync_core::erc20::Erc20Token;
//! use tokensync_spec::{AccountId, ProcessId};
//!
//! // Alice deploys a token with supply 10 (Example 1 of the paper).
//! let alice = ProcessId::new(0);
//! let bob = ProcessId::new(1);
//! let charlie = ProcessId::new(2);
//! let mut token = Erc20Token::deploy(3, alice, 10);
//!
//! token.transfer(alice, AccountId::new(1), 3)?;   // Alice pays Bob 3
//! token.approve(bob, charlie, 5)?;                 // Bob approves Charlie for 5
//!
//! // Bob's account now has two enabled spenders: consensus number ≥ 2.
//! let sigma = enabled_spenders(token.state(), AccountId::new(1));
//! assert_eq!(sigma.len(), 2);
//! let bounds = consensus_number_bounds(token.state());
//! assert_eq!((bounds.lower, bounds.upper), (2, 2));
//! # Ok::<(), tokensync_core::TokenError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod analysis;
pub mod codec;
pub mod emulation;
pub mod erc20;
mod error;
pub mod setup;
pub mod shared;
pub mod standards;
pub mod token_consensus;
mod util;

pub use analysis::{consensus_number_bounds, enabled_spenders, CnBounds, SyncMonitor};
pub use emulation::RestrictedToken;
pub use erc20::{Erc20Op, Erc20Resp, Erc20Spec, Erc20State, Erc20Token};
pub use error::TokenError;
pub use setup::prepare_sync_state;
pub use shared::{CoarseErc20, ConcurrentObject, ConcurrentToken, ShardedErc20, SharedErc20};
pub use token_consensus::TokenConsensus;

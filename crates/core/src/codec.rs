//! Binary wire codec for the servable standards — the encoding layer the
//! durable store (`tokensync-store`) persists through.
//!
//! Every op/response alphabet and every sequential oracle state of the
//! three served standards (ERC20, ERC721, ERC1155) implements [`Codec`]:
//! a compact little-endian binary encoding with explicit enum tags.
//! States additionally implement [`StateCodec`], which pins a *standard
//! tag* and an *encoding version* — the write-ahead log and snapshot
//! headers embed both, so a store directory can never be silently
//! replayed through the wrong standard or a stale layout.
//!
//! Design rules:
//!
//! * **Canonical** — the encoders walk the canonical public views of the
//!   states (positive sparse entries only, sorted), so
//!   encode → decode → encode is byte-identical and decode → `Eq`
//!   coincides with mathematical state equality.
//! * **Total decoding** — [`Codec::decode`] never panics on hostile
//!   bytes: truncation, range violations and non-canonical payloads
//!   surface as [`CodecError`]. The recovery path relies on this to stop
//!   cleanly at a torn or corrupted record.
//! * **No allocation surprises** — encoders append to a caller-owned
//!   buffer ([`Codec::encode_into`]), so the WAL writer frames records
//!   without intermediate copies.

use tokensync_spec::{AccountId, Amount, ProcessId};

use crate::erc20::{Erc20Delta, Erc20Op, Erc20Resp, Erc20State, SpenderMap};
use crate::standards::erc1155::{Erc1155Delta, Erc1155Op, Erc1155Resp, Erc1155State, TypeId};
use crate::standards::erc721::{Erc721Delta, Erc721Op, Erc721Resp, Erc721State, TokenId};

/// Why a decode failed. The store layer wraps this into its record /
/// snapshot errors; nothing in the codec panics on bad input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    Truncated,
    /// A structurally complete value violated a semantic bound (unknown
    /// enum tag, id out of the declared space, non-canonical entry, …).
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated mid-value"),
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A value with a self-contained binary encoding.
///
/// # Examples
///
/// ```
/// use tokensync_core::codec::Codec;
/// use tokensync_core::erc20::Erc20Op;
/// use tokensync_spec::AccountId;
///
/// let op = Erc20Op::Transfer { to: AccountId::new(7), value: 42 };
/// let bytes = op.encode();
/// let mut input = bytes.as_slice();
/// assert_eq!(Erc20Op::decode(&mut input).unwrap(), op);
/// assert!(input.is_empty()); // decode consumes exactly the value
/// ```
pub trait Codec: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `input`, advancing it past
    /// the consumed bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if `input` is too short,
    /// [`CodecError::Invalid`] if the bytes do not form a valid value.
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError>;

    /// The encoding as a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }
}

/// A sequential oracle state with a versioned, tagged encoding. The
/// store embeds both constants in segment and snapshot headers and
/// refuses to recover through a mismatch.
pub trait StateCodec: Codec {
    /// Which standard this state belongs to (distinct per standard).
    const STANDARD: u8;
    /// Version of the binary layout; bump on any incompatible change.
    const VERSION: u8;
}

// ── primitive helpers ──────────────────────────────────────────────────

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_u8(input: &mut &[u8]) -> Result<u8, CodecError> {
    let (&first, rest) = input.split_first().ok_or(CodecError::Truncated)?;
    *input = rest;
    Ok(first)
}

pub(crate) fn get_u32(input: &mut &[u8]) -> Result<u32, CodecError> {
    if input.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let (head, rest) = input.split_at(4);
    *input = rest;
    Ok(u32::from_le_bytes(head.try_into().expect("4-byte slice")))
}

pub(crate) fn get_u64(input: &mut &[u8]) -> Result<u64, CodecError> {
    if input.len() < 8 {
        return Err(CodecError::Truncated);
    }
    let (head, rest) = input.split_at(8);
    *input = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("8-byte slice")))
}

/// Ids are encoded as `u32` — the same key width every sparse state
/// layout uses internally (guarded there by constructor asserts).
fn put_id(out: &mut Vec<u8>, index: usize) {
    let key = u32::try_from(index).expect("id exceeds the u32 key space");
    put_u32(out, key);
}

fn get_id(input: &mut &[u8]) -> Result<usize, CodecError> {
    Ok(get_u32(input)? as usize)
}

fn get_bool(input: &mut &[u8]) -> Result<bool, CodecError> {
    match get_u8(input)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CodecError::Invalid("boolean byte not 0/1")),
    }
}

// ── ERC20 ──────────────────────────────────────────────────────────────

const ERC20_TRANSFER: u8 = 0;
const ERC20_TRANSFER_FROM: u8 = 1;
const ERC20_APPROVE: u8 = 2;
const ERC20_BALANCE_OF: u8 = 3;
const ERC20_ALLOWANCE: u8 = 4;
const ERC20_TOTAL_SUPPLY: u8 = 5;

impl Codec for Erc20Op {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            Erc20Op::Transfer { to, value } => {
                put_u8(out, ERC20_TRANSFER);
                put_id(out, to.index());
                put_u64(out, value);
            }
            Erc20Op::TransferFrom { from, to, value } => {
                put_u8(out, ERC20_TRANSFER_FROM);
                put_id(out, from.index());
                put_id(out, to.index());
                put_u64(out, value);
            }
            Erc20Op::Approve { spender, value } => {
                put_u8(out, ERC20_APPROVE);
                put_id(out, spender.index());
                put_u64(out, value);
            }
            Erc20Op::BalanceOf { account } => {
                put_u8(out, ERC20_BALANCE_OF);
                put_id(out, account.index());
            }
            Erc20Op::Allowance { account, spender } => {
                put_u8(out, ERC20_ALLOWANCE);
                put_id(out, account.index());
                put_id(out, spender.index());
            }
            Erc20Op::TotalSupply => put_u8(out, ERC20_TOTAL_SUPPLY),
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(match get_u8(input)? {
            ERC20_TRANSFER => Erc20Op::Transfer {
                to: AccountId::new(get_id(input)?),
                value: get_u64(input)?,
            },
            ERC20_TRANSFER_FROM => Erc20Op::TransferFrom {
                from: AccountId::new(get_id(input)?),
                to: AccountId::new(get_id(input)?),
                value: get_u64(input)?,
            },
            ERC20_APPROVE => Erc20Op::Approve {
                spender: ProcessId::new(get_id(input)?),
                value: get_u64(input)?,
            },
            ERC20_BALANCE_OF => Erc20Op::BalanceOf {
                account: AccountId::new(get_id(input)?),
            },
            ERC20_ALLOWANCE => Erc20Op::Allowance {
                account: AccountId::new(get_id(input)?),
                spender: ProcessId::new(get_id(input)?),
            },
            ERC20_TOTAL_SUPPLY => Erc20Op::TotalSupply,
            _ => return Err(CodecError::Invalid("unknown Erc20Op tag")),
        })
    }
}

const RESP_BOOL: u8 = 0;
const RESP_PAYLOAD: u8 = 1;

impl Codec for Erc20Resp {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            Erc20Resp::Bool(b) => {
                put_u8(out, RESP_BOOL);
                put_u8(out, b as u8);
            }
            Erc20Resp::Amount(v) => {
                put_u8(out, RESP_PAYLOAD);
                put_u64(out, v);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(match get_u8(input)? {
            RESP_BOOL => Erc20Resp::Bool(get_bool(input)?),
            RESP_PAYLOAD => Erc20Resp::Amount(get_u64(input)?),
            _ => return Err(CodecError::Invalid("unknown Erc20Resp tag")),
        })
    }
}

impl Codec for Erc20State {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let n = self.accounts();
        put_id(out, n);
        for i in 0..n {
            put_u64(out, self.balance(AccountId::new(i)));
        }
        let rows: Vec<AccountId> = self.accounts_with_approvals().collect();
        put_id(out, rows.len());
        for account in rows {
            put_id(out, account.index());
            put_id(out, self.approval_count(account));
            for (spender, value) in self.approvals(account) {
                put_id(out, spender.index());
                put_u64(out, value);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let n = get_id(input)?;
        let mut balances = Vec::with_capacity(n.min(input.len() / 8 + 1));
        let mut supply = 0u64;
        for _ in 0..n {
            let balance = get_u64(input)?;
            // `from_balances` sums the vector to cache the supply; a
            // hostile payload must not push that sum past u64 (debug
            // panic / silent wrap) — reject it here instead.
            supply = supply
                .checked_add(balance)
                .ok_or(CodecError::Invalid("balance sum overflows the supply"))?;
            balances.push(balance);
        }
        let mut state = Erc20State::from_balances(balances);
        let rows = get_id(input)?;
        let mut last_account = None;
        for _ in 0..rows {
            let account = get_id(input)?;
            if account >= n {
                return Err(CodecError::Invalid("allowance row account out of range"));
            }
            if last_account.is_some_and(|last| account <= last) {
                return Err(CodecError::Invalid("allowance rows not strictly sorted"));
            }
            last_account = Some(account);
            let entries = get_id(input)?;
            if entries == 0 {
                return Err(CodecError::Invalid("empty allowance row not canonical"));
            }
            let mut last_spender = None;
            for _ in 0..entries {
                let spender = get_id(input)?;
                let value = get_u64(input)?;
                if spender >= n {
                    return Err(CodecError::Invalid("allowance spender out of range"));
                }
                if value == 0 {
                    return Err(CodecError::Invalid("zero allowance entry not canonical"));
                }
                if last_spender.is_some_and(|last| spender <= last) {
                    return Err(CodecError::Invalid("allowance entries not strictly sorted"));
                }
                last_spender = Some(spender);
                state.set_allowance(AccountId::new(account), ProcessId::new(spender), value);
            }
        }
        Ok(state)
    }
}

impl StateCodec for Erc20State {
    const STANDARD: u8 = 0x20;
    const VERSION: u8 = 1;
}

// ── ERC721 ─────────────────────────────────────────────────────────────

const ERC721_MINT: u8 = 0;
const ERC721_TRANSFER_FROM: u8 = 1;
const ERC721_APPROVE: u8 = 2;
const ERC721_SET_APPROVAL_FOR_ALL: u8 = 3;
const ERC721_OWNER_OF: u8 = 4;
const ERC721_GET_APPROVED: u8 = 5;

fn put_opt_process(out: &mut Vec<u8>, p: Option<ProcessId>) {
    match p {
        Some(p) => {
            put_u8(out, 1);
            put_id(out, p.index());
        }
        None => put_u8(out, 0),
    }
}

fn get_opt_process(input: &mut &[u8]) -> Result<Option<ProcessId>, CodecError> {
    Ok(if get_bool(input)? {
        Some(ProcessId::new(get_id(input)?))
    } else {
        None
    })
}

impl Codec for Erc721Op {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            Erc721Op::Mint { to, token } => {
                put_u8(out, ERC721_MINT);
                put_id(out, to.index());
                put_id(out, token.index());
            }
            Erc721Op::TransferFrom { from, to, token } => {
                put_u8(out, ERC721_TRANSFER_FROM);
                put_id(out, from.index());
                put_id(out, to.index());
                put_id(out, token.index());
            }
            Erc721Op::Approve { approved, token } => {
                put_u8(out, ERC721_APPROVE);
                put_opt_process(out, approved);
                put_id(out, token.index());
            }
            Erc721Op::SetApprovalForAll { operator, on } => {
                put_u8(out, ERC721_SET_APPROVAL_FOR_ALL);
                put_id(out, operator.index());
                put_u8(out, on as u8);
            }
            Erc721Op::OwnerOf { token } => {
                put_u8(out, ERC721_OWNER_OF);
                put_id(out, token.index());
            }
            Erc721Op::GetApproved { token } => {
                put_u8(out, ERC721_GET_APPROVED);
                put_id(out, token.index());
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(match get_u8(input)? {
            ERC721_MINT => Erc721Op::Mint {
                to: ProcessId::new(get_id(input)?),
                token: TokenId::new(get_id(input)?),
            },
            ERC721_TRANSFER_FROM => Erc721Op::TransferFrom {
                from: ProcessId::new(get_id(input)?),
                to: ProcessId::new(get_id(input)?),
                token: TokenId::new(get_id(input)?),
            },
            ERC721_APPROVE => Erc721Op::Approve {
                approved: get_opt_process(input)?,
                token: TokenId::new(get_id(input)?),
            },
            ERC721_SET_APPROVAL_FOR_ALL => Erc721Op::SetApprovalForAll {
                operator: ProcessId::new(get_id(input)?),
                on: get_bool(input)?,
            },
            ERC721_OWNER_OF => Erc721Op::OwnerOf {
                token: TokenId::new(get_id(input)?),
            },
            ERC721_GET_APPROVED => Erc721Op::GetApproved {
                token: TokenId::new(get_id(input)?),
            },
            _ => return Err(CodecError::Invalid("unknown Erc721Op tag")),
        })
    }
}

impl Codec for Erc721Resp {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            Erc721Resp::Bool(b) => {
                put_u8(out, RESP_BOOL);
                put_u8(out, b as u8);
            }
            Erc721Resp::Process(p) => {
                put_u8(out, RESP_PAYLOAD);
                put_opt_process(out, p);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(match get_u8(input)? {
            RESP_BOOL => Erc721Resp::Bool(get_bool(input)?),
            RESP_PAYLOAD => Erc721Resp::Process(get_opt_process(input)?),
            _ => return Err(CodecError::Invalid("unknown Erc721Resp tag")),
        })
    }
}

impl Codec for Erc721State {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_id(out, self.processes());
        put_id(out, self.token_span());
        put_id(out, self.minted());
        for (token, owner, approved) in self.minted_tokens() {
            put_id(out, token.index());
            put_id(out, owner.index());
            put_opt_process(out, approved);
        }
        let pairs: Vec<(ProcessId, ProcessId)> = self.operator_pairs().collect();
        put_id(out, pairs.len());
        for (holder, operator) in pairs {
            put_id(out, holder.index());
            put_id(out, operator.index());
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let processes = get_id(input)?;
        let token_span = get_id(input)?;
        let mut state = Erc721State::new(processes, token_span);
        let minted = get_id(input)?;
        let mut last_token = None;
        for _ in 0..minted {
            let token = get_id(input)?;
            let owner = get_id(input)?;
            let approved = get_opt_process(input)?;
            if token >= token_span || owner >= processes {
                return Err(CodecError::Invalid("minted token out of range"));
            }
            if approved.is_some_and(|p| p.index() >= processes) {
                return Err(CodecError::Invalid("approved process out of range"));
            }
            // Strictly increasing ids keep the encoding canonical.
            if last_token.is_some_and(|last| token <= last) {
                return Err(CodecError::Invalid("minted tokens not strictly sorted"));
            }
            last_token = Some(token);
            state.put_token(TokenId::new(token), ProcessId::new(owner), approved);
        }
        let pairs = get_id(input)?;
        let mut last_pair = None;
        for _ in 0..pairs {
            let holder = get_id(input)?;
            let operator = get_id(input)?;
            if holder >= processes || operator >= processes {
                return Err(CodecError::Invalid("operator pair out of range"));
            }
            if last_pair.is_some_and(|last| (holder, operator) <= last) {
                return Err(CodecError::Invalid("operator pairs not strictly sorted"));
            }
            last_pair = Some((holder, operator));
            state.set_operator(ProcessId::new(holder), ProcessId::new(operator), true);
        }
        Ok(state)
    }
}

impl StateCodec for Erc721State {
    const STANDARD: u8 = 0x21;
    const VERSION: u8 = 1;
}

// ── ERC1155 ────────────────────────────────────────────────────────────

const ERC1155_TRANSFER: u8 = 0;
const ERC1155_BATCH_TRANSFER: u8 = 1;
const ERC1155_SET_APPROVAL_FOR_ALL: u8 = 2;
const ERC1155_BALANCE_OF: u8 = 3;
const ERC1155_TOTAL_SUPPLY: u8 = 4;

impl Codec for Erc1155Op {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            Erc1155Op::Transfer {
                from,
                to,
                type_id,
                value,
            } => {
                put_u8(out, ERC1155_TRANSFER);
                put_id(out, from.index());
                put_id(out, to.index());
                put_id(out, type_id.index());
                put_u64(out, value);
            }
            Erc1155Op::BatchTransfer {
                from,
                to,
                ref entries,
            } => {
                put_u8(out, ERC1155_BATCH_TRANSFER);
                put_id(out, from.index());
                put_id(out, to.index());
                put_id(out, entries.len());
                for &(type_id, value) in entries {
                    put_id(out, type_id.index());
                    put_u64(out, value);
                }
            }
            Erc1155Op::SetApprovalForAll { operator, on } => {
                put_u8(out, ERC1155_SET_APPROVAL_FOR_ALL);
                put_id(out, operator.index());
                put_u8(out, on as u8);
            }
            Erc1155Op::BalanceOf { account, type_id } => {
                put_u8(out, ERC1155_BALANCE_OF);
                put_id(out, account.index());
                put_id(out, type_id.index());
            }
            Erc1155Op::TotalSupply { type_id } => {
                put_u8(out, ERC1155_TOTAL_SUPPLY);
                put_id(out, type_id.index());
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(match get_u8(input)? {
            ERC1155_TRANSFER => Erc1155Op::Transfer {
                from: AccountId::new(get_id(input)?),
                to: AccountId::new(get_id(input)?),
                type_id: TypeId::new(get_id(input)?),
                value: get_u64(input)?,
            },
            ERC1155_BATCH_TRANSFER => {
                let from = AccountId::new(get_id(input)?);
                let to = AccountId::new(get_id(input)?);
                let rows = get_id(input)?;
                if rows > input.len() / 12 + 1 {
                    // 12 bytes per row minimum: reject length-bomb counts
                    // before allocating.
                    return Err(CodecError::Truncated);
                }
                let mut entries = Vec::with_capacity(rows);
                for _ in 0..rows {
                    entries.push((TypeId::new(get_id(input)?), get_u64(input)?));
                }
                Erc1155Op::BatchTransfer { from, to, entries }
            }
            ERC1155_SET_APPROVAL_FOR_ALL => Erc1155Op::SetApprovalForAll {
                operator: ProcessId::new(get_id(input)?),
                on: get_bool(input)?,
            },
            ERC1155_BALANCE_OF => Erc1155Op::BalanceOf {
                account: AccountId::new(get_id(input)?),
                type_id: TypeId::new(get_id(input)?),
            },
            ERC1155_TOTAL_SUPPLY => Erc1155Op::TotalSupply {
                type_id: TypeId::new(get_id(input)?),
            },
            _ => return Err(CodecError::Invalid("unknown Erc1155Op tag")),
        })
    }
}

impl Codec for Erc1155Resp {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            Erc1155Resp::Bool(b) => {
                put_u8(out, RESP_BOOL);
                put_u8(out, b as u8);
            }
            Erc1155Resp::Amount(v) => {
                put_u8(out, RESP_PAYLOAD);
                put_u64(out, v);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(match get_u8(input)? {
            RESP_BOOL => Erc1155Resp::Bool(get_bool(input)?),
            RESP_PAYLOAD => Erc1155Resp::Amount(get_u64(input)?),
            _ => return Err(CodecError::Invalid("unknown Erc1155Resp tag")),
        })
    }
}

impl Codec for Erc1155State {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_id(out, self.accounts());
        let types = self.types();
        put_id(out, types);
        for t in 0..types {
            put_u64(out, self.total_supply(TypeId::new(t)));
        }
        let entries: Vec<(TypeId, AccountId, Amount)> = self.balance_entries().collect();
        put_id(out, entries.len());
        for (type_id, account, value) in entries {
            put_id(out, type_id.index());
            put_id(out, account.index());
            put_u64(out, value);
        }
        let pairs: Vec<(AccountId, ProcessId)> = self.operator_pairs().collect();
        put_id(out, pairs.len());
        for (holder, operator) in pairs {
            put_id(out, holder.index());
            put_id(out, operator.index());
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let accounts = get_id(input)?;
        if accounts == 0 {
            return Err(CodecError::Invalid("ERC1155 state needs >= 1 account"));
        }
        let types = get_id(input)?;
        if types > input.len() / 8 + 1 {
            return Err(CodecError::Truncated);
        }
        let mut supplies = Vec::with_capacity(types);
        for _ in 0..types {
            supplies.push(get_u64(input)?);
        }
        // Deploy parks every supply at account 0, then redistribute: the
        // cached per-type supplies are rebuilt by `set_balance`, so the
        // final cache equals the sum of the decoded entries — validated
        // against the declared supplies below.
        let deployer = ProcessId::new(0);
        let mut state = Erc1155State::deploy(accounts, deployer, &supplies);
        for t in 0..types {
            state.set_balance(deployer.own_account(), TypeId::new(t), 0);
        }
        let entries = get_id(input)?;
        let mut last_entry = None;
        for _ in 0..entries {
            let type_id = get_id(input)?;
            let account = get_id(input)?;
            let value = get_u64(input)?;
            if type_id >= types || account >= accounts {
                return Err(CodecError::Invalid("balance entry out of range"));
            }
            if value == 0 {
                return Err(CodecError::Invalid("zero balance entry not canonical"));
            }
            if last_entry.is_some_and(|last| (type_id, account) <= last) {
                return Err(CodecError::Invalid("balance entries not strictly sorted"));
            }
            last_entry = Some((type_id, account));
            state.set_balance(AccountId::new(account), TypeId::new(type_id), value);
        }
        for (t, &declared) in supplies.iter().enumerate() {
            if state.total_supply(TypeId::new(t)) != declared {
                return Err(CodecError::Invalid("per-type supply mismatch"));
            }
        }
        let pairs = get_id(input)?;
        let mut last_pair = None;
        for _ in 0..pairs {
            let holder = get_id(input)?;
            let operator = get_id(input)?;
            if holder >= accounts || operator >= accounts {
                return Err(CodecError::Invalid("operator pair out of range"));
            }
            if last_pair.is_some_and(|last| (holder, operator) <= last) {
                return Err(CodecError::Invalid("operator pairs not strictly sorted"));
            }
            last_pair = Some((holder, operator));
            state.set_operator(AccountId::new(holder), ProcessId::new(operator), true);
        }
        Ok(state)
    }
}

impl StateCodec for Erc1155State {
    const STANDARD: u8 = 0x55;
    const VERSION: u8 = 1;
}

// ── incremental-snapshot deltas ────────────────────────────────────────
//
// The deltas are canonical like the states (strictly sorted rows), but
// carry no id-space bound of their own — range checking happens when a
// delta is folded onto a concrete base state (`apply_to`), which is the
// only place the bound is known.

/// Shared `(u32, u32, bool)` row list encoding for the operator-pair
/// deltas of ERC721 and ERC1155.
fn put_pair_rows(out: &mut Vec<u8>, rows: &[(u32, u32, bool)]) {
    put_u32(
        out,
        u32::try_from(rows.len()).expect("row count exceeds u32"),
    );
    for &(a, b, on) in rows {
        put_u32(out, a);
        put_u32(out, b);
        put_u8(out, u8::from(on));
    }
}

fn get_pair_rows(input: &mut &[u8]) -> Result<Vec<(u32, u32, bool)>, CodecError> {
    let count = get_u32(input)? as usize;
    let mut rows = Vec::with_capacity(count.min(input.len() / 9 + 1));
    let mut last = None;
    for _ in 0..count {
        let a = get_u32(input)?;
        let b = get_u32(input)?;
        let on = get_bool(input)?;
        if last.is_some_and(|l| (a, b) <= l) {
            return Err(CodecError::Invalid("pair rows not strictly sorted"));
        }
        last = Some((a, b));
        rows.push((a, b, on));
    }
    Ok(rows)
}

impl Codec for Erc20Delta {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u32(
            out,
            u32::try_from(self.rows.len()).expect("row count exceeds u32"),
        );
        for (account, balance, row) in &self.rows {
            put_u32(out, *account);
            put_u64(out, *balance);
            put_u32(out, u32::try_from(row.len()).expect("row exceeds u32"));
            for (spender, value) in row.iter() {
                put_id(out, spender.index());
                put_u64(out, value);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let count = get_u32(input)? as usize;
        let mut rows = Vec::with_capacity(count.min(input.len() / 16 + 1));
        let mut last_account = None;
        for _ in 0..count {
            let account = get_u32(input)?;
            if last_account.is_some_and(|l| account <= l) {
                return Err(CodecError::Invalid("delta rows not strictly sorted"));
            }
            last_account = Some(account);
            let balance = get_u64(input)?;
            let entries = get_u32(input)? as usize;
            let mut map = SpenderMap::new();
            let mut last_spender = None;
            for _ in 0..entries {
                let spender = get_id(input)?;
                let value = get_u64(input)?;
                if value == 0 {
                    return Err(CodecError::Invalid("zero allowance entry not canonical"));
                }
                if last_spender.is_some_and(|l| spender <= l) {
                    return Err(CodecError::Invalid("allowance entries not strictly sorted"));
                }
                last_spender = Some(spender);
                map.set(spender, value);
            }
            rows.push((account, balance, map));
        }
        Ok(Erc20Delta { rows })
    }
}

impl Codec for Erc721Delta {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u32(
            out,
            u32::try_from(self.tokens.len()).expect("row count exceeds u32"),
        );
        for &(token, owner, approved) in &self.tokens {
            put_u32(out, token);
            put_u32(out, owner);
            put_opt_process(out, approved.map(|a| ProcessId::new(a as usize)));
        }
        put_pair_rows(out, &self.operators);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let count = get_u32(input)? as usize;
        let mut tokens = Vec::with_capacity(count.min(input.len() / 9 + 1));
        let mut last_token = None;
        for _ in 0..count {
            let token = get_u32(input)?;
            if last_token.is_some_and(|l| token <= l) {
                return Err(CodecError::Invalid("delta token rows not strictly sorted"));
            }
            last_token = Some(token);
            let owner = get_u32(input)?;
            let approved =
                get_opt_process(input)?.map(|p| u32::try_from(p.index()).expect("u32-decoded id"));
            tokens.push((token, owner, approved));
        }
        let operators = get_pair_rows(input)?;
        Ok(Erc721Delta { tokens, operators })
    }
}

impl Codec for Erc1155Delta {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u32(
            out,
            u32::try_from(self.balances.len()).expect("row count exceeds u32"),
        );
        for &(type_id, account, value) in &self.balances {
            put_u32(out, type_id);
            put_u32(out, account);
            put_u64(out, value);
        }
        put_pair_rows(out, &self.operators);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let count = get_u32(input)? as usize;
        let mut balances = Vec::with_capacity(count.min(input.len() / 16 + 1));
        let mut last = None;
        for _ in 0..count {
            let type_id = get_u32(input)?;
            let account = get_u32(input)?;
            // Zero values are meaningful here (the cell is now empty),
            // unlike the state encoding's positive-only entries.
            let value = get_u64(input)?;
            if last.is_some_and(|l| (type_id, account) <= l) {
                return Err(CodecError::Invalid(
                    "delta balance rows not strictly sorted",
                ));
            }
            last = Some((type_id, account));
            balances.push((type_id, account, value));
        }
        let operators = get_pair_rows(input)?;
        Ok(Erc1155Delta {
            balances,
            operators,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.encode();
        let mut input = bytes.as_slice();
        let back = T::decode(&mut input).expect("decodes");
        assert_eq!(back, value);
        assert!(input.is_empty(), "decode left trailing bytes");
        // Canonical: re-encoding is byte-identical.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn deltas_round_trip() {
        let mut row = SpenderMap::new();
        row.set(3, 9);
        roundtrip(Erc20Delta {
            rows: vec![(1, 50, row), (4, 0, SpenderMap::new())],
        });
        roundtrip(Erc721Delta {
            tokens: vec![(0, 1, None), (7, 2, Some(3))],
            operators: vec![(1, 2, true), (2, 1, false)],
        });
        roundtrip(Erc1155Delta {
            balances: vec![(0, 1, 5), (0, 2, 0), (1, 0, 7)],
            operators: vec![(0, 3, true)],
        });
        roundtrip(Erc20Delta::default());
        roundtrip(Erc721Delta::default());
        roundtrip(Erc1155Delta::default());
    }

    #[test]
    fn unsorted_delta_rows_rejected() {
        let good = Erc1155Delta {
            balances: vec![(1, 0, 7), (0, 1, 5)], // out of order
            operators: Vec::new(),
        };
        let bytes = good.encode();
        let mut input = bytes.as_slice();
        assert!(matches!(
            Erc1155Delta::decode(&mut input),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn erc20_ops_and_resps_round_trip() {
        roundtrip(Erc20Op::Transfer {
            to: AccountId::new(3),
            value: u64::MAX,
        });
        roundtrip(Erc20Op::TransferFrom {
            from: AccountId::new(0),
            to: AccountId::new(9),
            value: 0,
        });
        roundtrip(Erc20Op::Approve {
            spender: ProcessId::new(7),
            value: 5,
        });
        roundtrip(Erc20Op::BalanceOf {
            account: AccountId::new(1),
        });
        roundtrip(Erc20Op::Allowance {
            account: AccountId::new(1),
            spender: ProcessId::new(2),
        });
        roundtrip(Erc20Op::TotalSupply);
        roundtrip(Erc20Resp::TRUE);
        roundtrip(Erc20Resp::FALSE);
        roundtrip(Erc20Resp::Amount(123_456_789));
    }

    #[test]
    fn erc721_ops_and_resps_round_trip() {
        roundtrip(Erc721Op::Mint {
            to: ProcessId::new(2),
            token: TokenId::new(40),
        });
        roundtrip(Erc721Op::TransferFrom {
            from: ProcessId::new(1),
            to: ProcessId::new(2),
            token: TokenId::new(0),
        });
        roundtrip(Erc721Op::Approve {
            approved: Some(ProcessId::new(3)),
            token: TokenId::new(9),
        });
        roundtrip(Erc721Op::Approve {
            approved: None,
            token: TokenId::new(9),
        });
        roundtrip(Erc721Op::SetApprovalForAll {
            operator: ProcessId::new(5),
            on: true,
        });
        roundtrip(Erc721Op::OwnerOf {
            token: TokenId::new(77),
        });
        roundtrip(Erc721Op::GetApproved {
            token: TokenId::new(77),
        });
        roundtrip(Erc721Resp::TRUE);
        roundtrip(Erc721Resp::Process(None));
        roundtrip(Erc721Resp::Process(Some(ProcessId::new(4))));
    }

    #[test]
    fn erc1155_ops_and_resps_round_trip() {
        roundtrip(Erc1155Op::Transfer {
            from: AccountId::new(0),
            to: AccountId::new(1),
            type_id: TypeId::new(2),
            value: 3,
        });
        roundtrip(Erc1155Op::BatchTransfer {
            from: AccountId::new(0),
            to: AccountId::new(1),
            entries: vec![(TypeId::new(0), 1), (TypeId::new(3), 9)],
        });
        roundtrip(Erc1155Op::BatchTransfer {
            from: AccountId::new(0),
            to: AccountId::new(1),
            entries: Vec::new(),
        });
        roundtrip(Erc1155Op::SetApprovalForAll {
            operator: ProcessId::new(1),
            on: false,
        });
        roundtrip(Erc1155Op::BalanceOf {
            account: AccountId::new(4),
            type_id: TypeId::new(0),
        });
        roundtrip(Erc1155Op::TotalSupply {
            type_id: TypeId::new(1),
        });
        roundtrip(Erc1155Resp::FALSE);
        roundtrip(Erc1155Resp::Amount(42));
    }

    #[test]
    fn states_round_trip() {
        let mut erc20 = Erc20State::with_deployer(5, ProcessId::new(0), 100);
        erc20
            .transfer(ProcessId::new(0), AccountId::new(3), 7)
            .unwrap();
        erc20
            .approve(ProcessId::new(3), ProcessId::new(1), 5)
            .unwrap();
        erc20
            .approve(ProcessId::new(0), ProcessId::new(4), 9)
            .unwrap();
        roundtrip(erc20);

        let mut erc721 = Erc721State::minted_round_robin(6, 50, 10);
        erc721.set_operator(ProcessId::new(1), ProcessId::new(2), true);
        roundtrip(erc721);

        let mut erc1155 = Erc1155State::deploy(4, ProcessId::new(1), &[10, 0, 3]);
        erc1155.set_balance(AccountId::new(2), TypeId::new(0), 4);
        erc1155.set_operator(AccountId::new(2), ProcessId::new(3), true);
        roundtrip(erc1155);
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        let bytes = Erc20State::with_deployer(4, ProcessId::new(0), 10).encode();
        for cut in 0..bytes.len() {
            let mut input = &bytes[..cut];
            assert!(
                Erc20State::decode(&mut input).is_err(),
                "prefix of length {cut} decoded"
            );
        }
    }

    #[test]
    fn non_canonical_payloads_rejected() {
        // A zero allowance entry is representable on the wire but not
        // canonical: decode must refuse it rather than silently drop it.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 2); // n = 2
        put_u64(&mut bytes, 5);
        put_u64(&mut bytes, 0);
        put_u32(&mut bytes, 1); // one allowance row
        put_u32(&mut bytes, 0); // account 0
        put_u32(&mut bytes, 1); // one entry
        put_u32(&mut bytes, 1); // spender 1
        put_u64(&mut bytes, 0); // value 0: not canonical
        let mut input = bytes.as_slice();
        assert_eq!(
            Erc20State::decode(&mut input),
            Err(CodecError::Invalid("zero allowance entry not canonical"))
        );
    }

    #[test]
    fn overflowing_balance_sum_rejected() {
        // Two u64::MAX balances: `from_balances` would panic (debug) or
        // wrap (release) computing the cached supply — decode must
        // reject the payload before that.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 2); // n = 2
        put_u64(&mut bytes, u64::MAX);
        put_u64(&mut bytes, u64::MAX);
        put_u32(&mut bytes, 0); // no allowance rows
        let mut input = bytes.as_slice();
        assert_eq!(
            Erc20State::decode(&mut input),
            Err(CodecError::Invalid("balance sum overflows the supply"))
        );
    }

    #[test]
    fn unsorted_or_duplicate_allowance_rows_rejected() {
        let row = |bytes: &mut Vec<u8>, account: u32, spender: u32| {
            put_u32(bytes, account);
            put_u32(bytes, 1); // one entry
            put_u32(bytes, spender);
            put_u64(bytes, 5);
        };
        // Duplicate rows for account 0.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 3);
        for _ in 0..3 {
            put_u64(&mut bytes, 1);
        }
        put_u32(&mut bytes, 2); // two rows
        row(&mut bytes, 0, 1);
        row(&mut bytes, 0, 2); // duplicate account: not canonical
        let mut input = bytes.as_slice();
        assert_eq!(
            Erc20State::decode(&mut input),
            Err(CodecError::Invalid("allowance rows not strictly sorted"))
        );
        // Unsorted spenders within a row.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 3);
        for _ in 0..3 {
            put_u64(&mut bytes, 1);
        }
        put_u32(&mut bytes, 1); // one row
        put_u32(&mut bytes, 0); // account 0
        put_u32(&mut bytes, 2); // two entries
        put_u32(&mut bytes, 2);
        put_u64(&mut bytes, 5);
        put_u32(&mut bytes, 1); // out of order
        put_u64(&mut bytes, 5);
        let mut input = bytes.as_slice();
        assert_eq!(
            Erc20State::decode(&mut input),
            Err(CodecError::Invalid("allowance entries not strictly sorted"))
        );
        // An empty row is never emitted by the encoder.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 3);
        for _ in 0..3 {
            put_u64(&mut bytes, 1);
        }
        put_u32(&mut bytes, 1); // one row
        put_u32(&mut bytes, 0); // account 0
        put_u32(&mut bytes, 0); // zero entries: not canonical
        let mut input = bytes.as_slice();
        assert_eq!(
            Erc20State::decode(&mut input),
            Err(CodecError::Invalid("empty allowance row not canonical"))
        );
    }

    #[test]
    fn out_of_range_ids_rejected() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 2); // n = 2
        put_u64(&mut bytes, 5);
        put_u64(&mut bytes, 0);
        put_u32(&mut bytes, 1); // one allowance row
        put_u32(&mut bytes, 7); // account 7 out of range
        let mut input = bytes.as_slice();
        assert!(matches!(
            Erc20State::decode(&mut input),
            Err(CodecError::Invalid(_))
        ));
    }
}

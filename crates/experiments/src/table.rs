//! Minimal plain-text table rendering for experiment outputs.

use std::fmt::Write as _;

/// A column-aligned plain-text table.
///
/// # Example
///
/// ```
/// use tokensync_experiments::Table;
///
/// let mut t = Table::new(&["k", "configs", "outcome"]);
/// t.row(&["2", "113", "verified"]);
/// let rendered = t.render();
/// assert!(rendered.contains("verified"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders and prints to stdout with a title line.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["wide-cell", "1"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a armed".get(0..0).unwrap_or("a")));
        assert!(lines[2].starts_with("wide-cell"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_length_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }
}

//! Support library for the experiment binaries (`src/bin/e*.rs`).
//!
//! Each binary regenerates one table or figure of EXPERIMENTS.md; this
//! crate provides the shared plain-text table formatter and workload
//! helpers so the binaries stay small and uniform.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod table;
pub mod workload;

pub use table::Table;

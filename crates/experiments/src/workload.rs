//! Shared workload generation for the experiment binaries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tokensync_net::cmd::TokenCmd;

/// Parameters of a mixed token workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Number of processes/accounts.
    pub n: usize,
    /// Number of commands to generate.
    pub ops: usize,
    /// Fraction of commands that are `transferFrom` (0.0–1.0); the rest
    /// split evenly between `transfer` and `approve`.
    pub transfer_from_ratio: f64,
    /// When `Some(h)`, all `transferFrom`s target account `h` (a hotspot);
    /// otherwise sources are uniform.
    pub hotspot: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

/// Generates `(caller, command)` pairs according to `spec`.
pub fn generate(spec: &WorkloadSpec) -> Vec<(usize, TokenCmd)> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n = spec.n;
    (0..spec.ops)
        .map(|_| {
            let caller = rng.gen_range(0..n);
            let cmd = if rng.gen_bool(spec.transfer_from_ratio) {
                let from = spec.hotspot.unwrap_or_else(|| rng.gen_range(0..n));
                TokenCmd::TransferFrom {
                    from,
                    to: rng.gen_range(0..n),
                    value: rng.gen_range(0..3),
                }
            } else if rng.gen_bool(0.5) {
                TokenCmd::Transfer {
                    to: rng.gen_range(0..n),
                    value: rng.gen_range(0..3),
                }
            } else {
                TokenCmd::Approve {
                    spender: rng.gen_range(0..n),
                    value: rng.gen_range(0..4),
                }
            };
            (caller, cmd)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_zero_generates_no_transfer_from() {
        let spec = WorkloadSpec {
            n: 4,
            ops: 200,
            transfer_from_ratio: 0.0,
            hotspot: None,
            seed: 1,
        };
        assert!(generate(&spec).iter().all(|(_, c)| !c.is_transfer_from()));
    }

    #[test]
    fn hotspot_pins_sources() {
        let spec = WorkloadSpec {
            n: 4,
            ops: 200,
            transfer_from_ratio: 1.0,
            hotspot: Some(2),
            seed: 1,
        };
        for (_, cmd) in generate(&spec) {
            match cmd {
                TokenCmd::TransferFrom { from, .. } => assert_eq!(from, 2),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec {
            n: 4,
            ops: 50,
            transfer_from_ratio: 0.5,
            hotspot: None,
            seed: 9,
        };
        assert_eq!(generate(&spec), generate(&spec));
    }
}

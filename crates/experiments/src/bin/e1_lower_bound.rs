//! **E1 — Theorem 2 (lower bound), Algorithm 1.**
//!
//! Part 1: exhaustive model checking — every interleaving (and crash
//! pattern) of Algorithm 1 for k = 1..4, in both race modes, satisfies
//! agreement, validity and wait-freedom.
//!
//! Part 2: threaded stress — the real (thread-based) `TokenConsensus`
//! object run under contention for larger k; all runs must agree on a
//! valid value.

use std::collections::HashSet;
use std::sync::Arc;

use tokensync_core::setup::sync_state_fixture;
use tokensync_core::shared::SharedErc20;
use tokensync_core::token_consensus::{RaceMode, TokenConsensus};
use tokensync_experiments::Table;
use tokensync_mc::protocols::{Mode, TokenRace};
use tokensync_mc::{Explorer, Outcome};
use tokensync_spec::{AccountId, ProcessId};

fn outcome_str(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Verified => "verified",
        Outcome::Violated(_) => "VIOLATED",
        Outcome::Exhausted => "exhausted",
    }
}

fn main() {
    println!("E1: consensus from a token in a synchronization state (Theorem 2)");

    let mut t = Table::new(&["k", "mode", "configs", "transitions", "outcome"]);
    for k in 1..=4 {
        for (mode, name) in [
            (Mode::Generalized, "generalized"),
            (Mode::Verbatim, "verbatim"),
        ] {
            let protocol = TokenRace::in_sync_state_with_mode(k, mode);
            let report = Explorer::new(&protocol).run();
            t.row_owned(vec![
                k.to_string(),
                name.to_string(),
                report.stats.configs.to_string(),
                report.stats.transitions.to_string(),
                outcome_str(&report.outcome).to_string(),
            ]);
            assert!(
                matches!(report.outcome, Outcome::Verified),
                "k={k} {name}: {:?}",
                report.outcome
            );
        }
    }
    t.print("exhaustive check of Algorithm 1 (all interleavings, all crash patterns)");

    let mut t = Table::new(&["k", "runs", "distinct decisions/run", "violations"]);
    for k in [2usize, 4, 8, 16, 32] {
        let runs = 200;
        let mut violations = 0;
        for round in 0..runs {
            let (state, witness) = sync_state_fixture(k, k + 1, 64 + round as u64);
            let consensus: Arc<TokenConsensus<SharedErc20, usize>> =
                Arc::new(TokenConsensus::with_mode(
                    SharedErc20::from_state(state),
                    witness,
                    AccountId::new(k),
                    RaceMode::Generalized,
                ));
            let mut decisions = Vec::new();
            crossbeam::scope(|s| {
                let handles: Vec<_> = (0..k)
                    .map(|i| {
                        let c = Arc::clone(&consensus);
                        s.spawn(move |_| c.propose(ProcessId::new(i), i))
                    })
                    .collect();
                for h in handles {
                    decisions.push(h.join().expect("proposer panicked"));
                }
            })
            .expect("scope");
            let distinct: HashSet<_> = decisions.iter().copied().collect();
            if distinct.len() != 1 || decisions[0] >= k {
                violations += 1;
            }
        }
        t.row_owned(vec![
            k.to_string(),
            runs.to_string(),
            "1".to_string(),
            violations.to_string(),
        ]);
        assert_eq!(violations, 0, "k={k}");
    }
    t.print("threaded stress of TokenConsensus (agreement + validity)");

    println!("\nresult: CN(T_q) ≥ k for every checked q ∈ S_k — Theorem 2 reproduced.");
}

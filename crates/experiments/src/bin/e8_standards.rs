//! **E8 — Section 6: other token standards.**
//!
//! * ERC777 and ERC721 consensus races exhaustively model-checked (the
//!   paper: "it is immediate to extend our results to ERC777";
//!   "Algorithm 1 can be adapted [to ERC721] … the winner of this race
//!   can then be determined by invoking ownerOf").
//! * Threaded stress of the real adapter objects for larger k.
//! * The ERC1155 operator census and the ERC1363 unbounded-power note.

use std::collections::HashSet;
use std::sync::Arc;

use tokensync_core::standards::erc1155::{Erc1155Token, TypeId};
use tokensync_core::standards::erc721::Erc721Consensus;
use tokensync_core::standards::erc777::Erc777Consensus;
use tokensync_experiments::Table;
use tokensync_mc::protocols::{Erc721Race, Erc777Race};
use tokensync_mc::{Explorer, Outcome};
use tokensync_spec::{AccountId, ProcessId};

fn outcome_str(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Verified => "verified",
        Outcome::Violated(_) => "VIOLATED",
        Outcome::Exhausted => "exhausted",
    }
}

fn main() {
    println!("E8: the Section 6 standards inherit the token's synchronization story");

    // --- exhaustive checks ------------------------------------------------
    let mut t = Table::new(&["standard", "k", "configs", "outcome"]);
    for k in 1..=3 {
        let report = Explorer::new(&Erc777Race::new(k, 2)).run();
        t.row_owned(vec![
            "ERC777".into(),
            k.to_string(),
            report.stats.configs.to_string(),
            outcome_str(&report.outcome).into(),
        ]);
        assert!(matches!(report.outcome, Outcome::Verified));
    }
    for k in 1..=4 {
        let report = Explorer::new(&Erc721Race::new(k)).run();
        t.row_owned(vec![
            "ERC721".into(),
            k.to_string(),
            report.stats.configs.to_string(),
            outcome_str(&report.outcome).into(),
        ]);
        assert!(matches!(report.outcome, Outcome::Verified));
    }
    t.print("exhaustive model checking of the adapted consensus races");

    // --- threaded stress --------------------------------------------------
    let mut t = Table::new(&["standard", "k", "runs", "violations"]);
    for k in [2usize, 4, 8] {
        let mut violations = 0;
        let runs = 100;
        for _ in 0..runs {
            let c: Arc<Erc777Consensus<usize>> = Arc::new(Erc777Consensus::new(k, 16));
            let mut decisions = Vec::new();
            crossbeam::scope(|s| {
                let handles: Vec<_> = (0..k)
                    .map(|i| {
                        let c = Arc::clone(&c);
                        s.spawn(move |_| c.propose(ProcessId::new(i), i))
                    })
                    .collect();
                for h in handles {
                    decisions.push(h.join().expect("proposer"));
                }
            })
            .expect("scope");
            if decisions.iter().collect::<HashSet<_>>().len() != 1 || decisions[0] >= k {
                violations += 1;
            }
        }
        t.row_owned(vec![
            "ERC777".into(),
            k.to_string(),
            runs.to_string(),
            violations.to_string(),
        ]);
        assert_eq!(violations, 0);

        let mut violations = 0;
        for _ in 0..runs {
            let c: Arc<Erc721Consensus<usize>> = Arc::new(Erc721Consensus::new(k));
            let mut decisions = Vec::new();
            crossbeam::scope(|s| {
                let handles: Vec<_> = (0..k)
                    .map(|i| {
                        let c = Arc::clone(&c);
                        s.spawn(move |_| c.propose(ProcessId::new(i), i))
                    })
                    .collect();
                for h in handles {
                    decisions.push(h.join().expect("proposer"));
                }
            })
            .expect("scope");
            if decisions.iter().collect::<HashSet<_>>().len() != 1 || decisions[0] >= k {
                violations += 1;
            }
        }
        t.row_owned(vec![
            "ERC721".into(),
            k.to_string(),
            runs.to_string(),
            violations.to_string(),
        ]);
        assert_eq!(violations, 0);
    }
    t.print("threaded stress of the adapter consensus objects");

    // --- ERC1155 census ---------------------------------------------------
    let mut multi = Erc1155Token::deploy(4, ProcessId::new(0), &[10, 10]);
    multi
        .set_approval_for_all(ProcessId::new(0), ProcessId::new(1), true)
        .expect("ids in range");
    multi
        .set_approval_for_all(ProcessId::new(0), ProcessId::new(2), true)
        .expect("ids in range");
    println!(
        "\nERC1155: operator census upper-bounds the contract at level {} \
         (owner + 2 operators on a funded account); exact bounds remain open, \
         as the paper notes.",
        multi.sync_level()
    );
    multi
        .safe_batch_transfer_from(
            ProcessId::new(0),
            AccountId::new(0),
            AccountId::new(3),
            &[TypeId::new(0), TypeId::new(1)],
            &[10, 10],
        )
        .expect("drain");
    println!(
        "after draining the account its operators go dormant: level {}.",
        multi.sync_level()
    );

    println!(
        "\nERC1363: receiver callbacks embed arbitrary shared objects, so no \
         a-priori consensus number exists (demonstrated in \
         core::standards::erc1363::tests::hooks_can_embed_arbitrary_synchronization)."
    );
}

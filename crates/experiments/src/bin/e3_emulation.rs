//! **E3 — Theorem 4, Algorithm 2: `T|Q_k` from `k`-AT + registers.**
//!
//! Differentially tests the emulation against its sequential
//! specification over long random workloads, checks that every reachable
//! state stays within `Q_k`, and reports how many logical `k`-AT
//! instances (owner-map changes) the run consumed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tokensync_core::emulation::{within_restriction, RestrictedErc20Spec, RestrictedToken};
use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_core::shared::{ConcurrentObject, ConcurrentToken};
use tokensync_experiments::Table;
use tokensync_spec::{AccountId, ObjectType, ProcessId};

fn random_op(rng: &mut StdRng, n: usize) -> Erc20Op {
    match rng.gen_range(0..5) {
        0 => Erc20Op::Transfer {
            to: AccountId::new(rng.gen_range(0..n)),
            value: rng.gen_range(0..4),
        },
        1 => Erc20Op::TransferFrom {
            from: AccountId::new(rng.gen_range(0..n)),
            to: AccountId::new(rng.gen_range(0..n)),
            value: rng.gen_range(0..4),
        },
        2 => Erc20Op::Approve {
            spender: ProcessId::new(rng.gen_range(0..n)),
            value: rng.gen_range(0..4),
        },
        3 => Erc20Op::BalanceOf {
            account: AccountId::new(rng.gen_range(0..n)),
        },
        _ => Erc20Op::Allowance {
            account: AccountId::new(rng.gen_range(0..n)),
            spender: ProcessId::new(rng.gen_range(0..n)),
        },
    }
}

fn main() {
    println!("E3: the restricted token T|Q_k wait-free from k-AT (Theorem 4)");

    let mut t = Table::new(&[
        "k",
        "n",
        "ops",
        "divergences",
        "gate refusals",
        "k-AT instances",
        "max spenders seen",
    ]);
    for (k, n) in [(1usize, 3usize), (2, 4), (3, 5), (4, 6)] {
        let ops = 20_000;
        let initial = Erc20State::with_deployer(n, ProcessId::new(0), 40);
        let spec = RestrictedErc20Spec::new(k, initial.clone());
        let token = RestrictedToken::new(k, initial);
        let mut oracle = spec.initial_state();
        let mut rng = StdRng::seed_from_u64(k as u64 * 1000 + n as u64);
        let mut divergences = 0;
        let mut refusals = 0;
        let mut max_spenders = 0;
        for _ in 0..ops {
            let caller = ProcessId::new(rng.gen_range(0..n));
            let op = random_op(&mut rng, n);
            let expected = spec.apply(&mut oracle, caller, &op);
            let got = token.apply(caller, &op);
            if got != expected {
                divergences += 1;
            }
            if matches!(op, Erc20Op::Approve { .. })
                && got == tokensync_core::erc20::Erc20Resp::FALSE
            {
                refusals += 1;
            }
            assert!(within_restriction(&oracle, k), "left Q_{k}");
            max_spenders = max_spenders.max(tokensync_core::analysis::partition_index(&oracle));
        }
        assert_eq!(divergences, 0);
        assert_eq!(token.state_snapshot(), oracle, "final states must agree");
        t.row_owned(vec![
            k.to_string(),
            n.to_string(),
            ops.to_string(),
            divergences.to_string(),
            refusals.to_string(),
            token.kat_instances().to_string(),
            max_spenders.to_string(),
        ]);
    }
    t.print("emulation vs sequential oracle (random workloads)");
    println!(
        "\nresult: the emulation matches T|Q_k exactly; every reachable state \
         stays within Q_k, so the k-AT substrate (CN = k) suffices — Theorem 4 \
         reproduced."
    );
}

//! **E2 — Theorem 3 (upper bound) and its proof machinery.**
//!
//! * E2a: the commutativity / read-only case analysis (Figure 1a/1b),
//!   checked over every operation pair on an enumerated state universe.
//! * E2b: counterexamples — running the race beyond the state's level
//!   (`k' > k`), or from a state violating `U`, breaks consensus; the
//!   explorer produces the schedules.
//! * E2c: valency analysis — critical configurations of Algorithm 1 and
//!   the nature of their decisive pending steps.

use tokensync_experiments::Table;
use tokensync_mc::commute::{analyze_states, op_menu};
use tokensync_mc::enumerate::enumerate_states;
use tokensync_mc::protocols::{Mode, TokenRace};
use tokensync_mc::valence;
use tokensync_mc::{Explorer, Outcome, Violation};

fn main() {
    println!("E2: the synchronization level of a state cannot be exceeded (Theorem 3)");

    // --- E2a: mechanized case analysis -----------------------------------
    let states: Vec<_> = enumerate_states(2, 2, 2).collect();
    let report = analyze_states(2, &states, &[0, 1, 2]);
    let mut t = Table::new(&["op pair", "instances", "commute", "read-only", "conflict"]);
    for ((a, b), counts) in &report.by_kind {
        if counts.conflict > 0 || !a.contains("balance") && !b.contains("balance") {
            t.row_owned(vec![
                format!("{a} / {b}"),
                counts.total.to_string(),
                counts.commute.to_string(),
                counts.read_only.to_string(),
                counts.conflict.to_string(),
            ]);
        }
    }
    t.print(&format!(
        "E2a: pair classification over {} states × {} ops (n=2, β≤2, α≤2)",
        report.states,
        op_menu(2, &[0, 1, 2]).len()
    ));
    assert!(report.unexplained.is_empty(), "{:#?}", report.unexplained);
    println!(
        "every conflict fits the paper's catalog (same-source withdrawal or \
         approve/spender race): {} unexplained",
        report.unexplained.len()
    );

    // --- E2b: violations beyond the supported level ----------------------
    let mut t = Table::new(&["scenario", "outcome", "violation", "schedule len"]);
    let scenarios: Vec<(&str, TokenRace)> = vec![
        (
            "k=2 state, 3 processes (verbatim)",
            TokenRace::overreach(2, 1, Mode::Verbatim),
        ),
        (
            "k=2 state, 3 processes (generalized)",
            TokenRace::overreach(2, 1, Mode::Generalized),
        ),
        (
            "k=3 state, 4 processes",
            TokenRace::overreach(3, 1, Mode::Generalized),
        ),
        (
            "U violated (allowances 1+1 = balance 2)",
            TokenRace::with_u_violated(),
        ),
        (
            "verbatim, allowance > balance",
            TokenRace::verbatim_oversized(),
        ),
    ];
    for (name, protocol) in scenarios {
        let report = Explorer::new(&protocol).run();
        let (kind, len) = match report.violation() {
            Some(Violation::Disagreement { schedule, .. }) => ("disagreement", schedule.len()),
            Some(Violation::Invalidity { schedule, .. }) => ("invalidity", schedule.len()),
            Some(Violation::NonTermination { schedule, .. }) => ("non-termination", schedule.len()),
            None => ("NONE FOUND", 0),
        };
        assert!(report.violation().is_some(), "{name}: expected a violation");
        t.row_owned(vec![
            name.to_string(),
            "violated".to_string(),
            kind.to_string(),
            len.to_string(),
        ]);
    }
    // The generalized mode *closes* the oversized-allowance gap:
    let fixed = Explorer::new(&TokenRace::generalized_oversized()).run();
    assert!(matches!(fixed.outcome, Outcome::Verified));
    t.row(&["generalized, allowance > balance", "verified", "-", "-"]);
    t.print("E2b: counterexample search");
    println!(
        "note: the verbatim Algorithm 1 additionally requires allowances ≤ balance \
         (the proof's 'sufficient allowances' premise); the generalized race \
         (transfer min(A_i, B), detect allowance decrease) needs only U."
    );

    // --- E2c: valency / critical configurations --------------------------
    let mut t = Table::new(&["k", "configs", "bivalent", "univalent", "critical"]);
    for k in [2usize, 3] {
        let protocol = TokenRace::in_sync_state(k);
        let report = valence::analyze(&protocol);
        t.row_owned(vec![
            k.to_string(),
            report.configs.to_string(),
            report.bivalent.to_string(),
            report.univalent.to_string(),
            report.critical.len().to_string(),
        ]);
    }
    t.print("E2c: valency census of Algorithm 1");

    let protocol = TokenRace::in_sync_state(2);
    let report = valence::analyze(&protocol);
    if let Some(critical) = report.critical.first() {
        println!(
            "\nsample critical configuration (reached by schedule {:?}):",
            critical.schedule
        );
        for (p, step, commits) in &critical.pending {
            println!("  {p} next: {step}  → commits decision {commits}");
        }
        println!(
            "as in Figure 1: the decisive steps are the conflicting token mutations \
             on the shared account."
        );
    }
}

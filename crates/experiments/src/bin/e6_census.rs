//! **E6 — census of the state partition `{Q_k}` and sync states `S_k`.**
//!
//! Exhaustively enumerates small state universes and counts, per level k:
//! the partition class sizes |Q_k|, how many of those states have an
//! exactly determined consensus number (equation (17)), and how many
//! states belong to the paper's S_k (equation (14)).

use tokensync_experiments::Table;
use tokensync_mc::enumerate::census;

fn print_census(n: usize, max_balance: u64, max_allowance: u64) {
    let c = census(n, max_balance, max_allowance);
    let mut t = Table::new(&["k", "|Q_k|", "share", "exact CN", "|S_k|"]);
    for row in &c.rows {
        t.row_owned(vec![
            row.k.to_string(),
            row.q_states.to_string(),
            format!("{:.1}%", 100.0 * row.q_states as f64 / c.total as f64),
            row.exact_states.to_string(),
            row.s_states.to_string(),
        ]);
    }
    t.print(&format!(
        "universe n={n}, balances ≤ {max_balance}, allowances ≤ {max_allowance} ({} states)",
        c.total
    ));
    let sum: usize = c.rows.iter().map(|r| r.q_states).sum();
    assert_eq!(sum, c.total, "Q_k must partition Q");
}

fn main() {
    println!("E6: how the ERC20 state space splits into synchronization levels");
    print_census(2, 2, 2);
    print_census(2, 3, 3);
    print_census(3, 1, 1);
    print_census(3, 2, 1);
    println!(
        "\nreading: synchronization states (S_k) exist at every level, so the \
         Theorem 2 races are always reachable; note the gap between |Q_k| and \
         'exact CN' at the top level of the last universe — states whose \
         spender count is k but whose allowances violate U, where the bounds \
         stay open (equation (15)). Uniform enumeration weights multi-spender \
         states heavily; under realistic traffic (E5) the object spends most \
         of its life at low k, which is the paper's scalability thesis."
    );
}

//! **E5 — the dynamic consensus number (figure).**
//!
//! Runs a random workload over a token and samples the consensus-number
//! bounds after every operation, printing the trajectory as a text series
//! (the paper's central qualitative claim: the synchronization level of
//! the object changes as the state evolves, driven by `approve`s and
//! allowance consumption).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tokensync_core::analysis::SyncMonitor;
use tokensync_core::erc20::Erc20State;
use tokensync_experiments::Table;
use tokensync_spec::{AccountId, ProcessId};

fn main() {
    println!("E5: the consensus number of a live token over time");
    let n = 8;
    let ops = 400;
    let mut state = Erc20State::with_deployer(n, ProcessId::new(0), 200);
    let mut monitor = SyncMonitor::new();
    let mut rng = StdRng::seed_from_u64(2026);
    monitor.observe(&state);

    for _ in 0..ops {
        let caller = ProcessId::new(rng.gen_range(0..n));
        match rng.gen_range(0..10) {
            // Mostly payments, occasionally approvals/revocations — the
            // regime the paper's intro sketches for real token traffic.
            0..=5 => {
                let _ = state.transfer(
                    caller,
                    AccountId::new(rng.gen_range(0..n)),
                    rng.gen_range(0..8),
                );
            }
            6..=7 => {
                let _ = state.approve(
                    caller,
                    ProcessId::new(rng.gen_range(0..n)),
                    rng.gen_range(0..40),
                );
            }
            8 => {
                // revocation
                let _ = state.approve(caller, ProcessId::new(rng.gen_range(0..n)), 0);
            }
            _ => {
                let _ = state.transfer_from(
                    caller,
                    AccountId::new(rng.gen_range(0..n)),
                    AccountId::new(rng.gen_range(0..n)),
                    rng.gen_range(0..8),
                );
            }
        }
        monitor.observe(&state);
    }

    // Print the series downsampled, with a bar for the upper bound.
    let mut t = Table::new(&["op", "CN lower", "CN upper", "hotspot", "level"]);
    for point in monitor.series().iter().step_by(20) {
        let bar = "#".repeat(point.bounds.upper);
        t.row_owned(vec![
            point.op_index.to_string(),
            point.bounds.lower.to_string(),
            point.bounds.upper.to_string(),
            point
                .hotspot
                .map(|a| a.to_string())
                .unwrap_or_else(|| "-".to_string()),
            bar,
        ]);
    }
    t.print("consensus-number trajectory (sampled every 20 ops)");

    let exact = monitor.exact_points();
    let total = monitor.series().len();
    println!(
        "\nmax synchronization level seen : {}",
        monitor.max_level_seen()
    );
    println!(
        "states with exact CN           : {exact}/{total} ({:.1}%)",
        100.0 * exact as f64 / total as f64
    );
    println!(
        "\nreading: a provisioning layer following Section 7 would scale each \
         account's consensus group to the 'CN upper' column — and fall back to \
         plain broadcast whenever it reads 1."
    );
}

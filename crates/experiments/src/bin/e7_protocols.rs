//! **E7 — protocol comparison (figure): global total order vs the
//! Section 7 dynamic protocol vs consensus-free broadcast payments.**
//!
//! Same workloads, same simulated network; measured: messages per
//! committed op, mean commit latency (simulated ticks), and the load of
//! the hottest node (the sequencer bottleneck). Swept over the
//! `transferFrom` share of the workload and a hotspot variant where every
//! `transferFrom` targets one account.

use tokensync_core::erc20::Erc20State;
use tokensync_experiments::workload::{generate, WorkloadSpec};
use tokensync_experiments::Table;
use tokensync_net::dynamic::DynamicNetwork;
use tokensync_net::ordered::OrderedNetwork;
use tokensync_net::payments::PaymentNetwork;
use tokensync_spec::ProcessId;

const N: usize = 8;
const OPS: usize = 160;
const SUPPLY: u64 = 10_000;

fn initial() -> Erc20State {
    // Everyone starts with funds so workloads exercise all accounts.
    Erc20State::from_balances(vec![SUPPLY / N as u64; N])
}

struct RunStats {
    msgs_per_op: f64,
    latency: f64,
    imbalance: f64,
}

fn run_ordered(spec: &WorkloadSpec) -> RunStats {
    let mut net = OrderedNetwork::new(N, initial(), spec.seed);
    for (caller, cmd) in generate(spec) {
        net.submit(caller, cmd);
    }
    net.run_to_quiescence();
    assert!(net.converged());
    RunStats {
        msgs_per_op: net.metrics().sent as f64 / OPS as f64,
        latency: net.mean_latency(),
        imbalance: net.metrics().load_imbalance(),
    }
}

fn run_dynamic(spec: &WorkloadSpec) -> RunStats {
    let mut net = DynamicNetwork::new(N, initial(), spec.seed);
    for (caller, cmd) in generate(spec) {
        net.submit(caller, cmd);
    }
    net.run_to_quiescence();
    assert!(net.converged());
    RunStats {
        msgs_per_op: net.metrics().sent as f64 / OPS as f64,
        latency: net.mean_latency(),
        imbalance: net.metrics().load_imbalance(),
    }
}

fn main() {
    println!("E7: what the dynamic synchronization of Section 7 buys");
    println!("network: n = {N}, {OPS} ops per run, seeded uniform delays 1..16\n");

    let mut t = Table::new(&[
        "tf share",
        "hotspot",
        "protocol",
        "msgs/op",
        "mean latency",
        "max-load/mean",
    ]);
    for ratio in [0.0, 0.25, 0.5, 0.75, 1.0] {
        for hotspot in [None, Some(0)] {
            let spec = WorkloadSpec {
                n: N,
                ops: OPS,
                transfer_from_ratio: ratio,
                hotspot,
                seed: 42,
            };
            let ordered = run_ordered(&spec);
            let dynamic = run_dynamic(&spec);
            for (name, stats) in [("ordered", &ordered), ("dynamic", &dynamic)] {
                t.row_owned(vec![
                    format!("{:.0}%", ratio * 100.0),
                    hotspot
                        .map(|h| format!("a{h}"))
                        .unwrap_or_else(|| "-".into()),
                    name.to_string(),
                    format!("{:.1}", stats.msgs_per_op),
                    format!("{:.1}", stats.latency),
                    format!("{:.2}", stats.imbalance),
                ]);
            }
            // The paper's prediction: without a hotspot the dynamic
            // protocol spreads sequencing across accounts, strictly
            // beating the global sequencer; when every transferFrom hits
            // one account, its spender group *is* a global bottleneck and
            // the two protocols converge (parity, not improvement).
            if hotspot.is_none() && ratio < 1.0 {
                assert!(
                    dynamic.imbalance < ordered.imbalance,
                    "ratio {ratio}: dynamic {0} vs ordered {1}",
                    dynamic.imbalance,
                    ordered.imbalance
                );
            } else {
                assert!(
                    dynamic.imbalance <= ordered.imbalance + 0.25,
                    "ratio {ratio} hotspot {hotspot:?}: dynamic {0} vs ordered {1}",
                    dynamic.imbalance,
                    ordered.imbalance
                );
            }
        }
    }
    t.print("total order vs dynamic synchronization");

    // The CN = 1 reference point: pure payments over reliable broadcast.
    let mut pay = PaymentNetwork::new(N, vec![SUPPLY / N as u64; N], 42);
    let spec = WorkloadSpec {
        n: N,
        ops: OPS,
        transfer_from_ratio: 0.0,
        hotspot: None,
        seed: 42,
    };
    let mut transfers = 0;
    for (caller, cmd) in generate(&spec) {
        if let tokensync_net::cmd::TokenCmd::Transfer { to, value } = cmd {
            pay.submit_transfer(caller, to, value);
            transfers += 1;
        }
    }
    pay.run_to_quiescence();
    assert!(pay.replicas_converged());
    println!(
        "\nreference (broadcast-only asset transfer, CN = 1): {:.1} msgs/op over {} transfers, \
         max-load/mean {:.2}",
        pay.metrics().sent as f64 / transfers as f64,
        transfers,
        pay.metrics().load_imbalance()
    );

    // Sanity: a dynamic run ends with every replica agreeing with a
    // sequential notion of supply.
    let mut net = DynamicNetwork::new(N, initial(), 7);
    net.submit(
        0,
        tokensync_net::cmd::TokenCmd::Transfer { to: 1, value: 5 },
    );
    net.run_to_quiescence();
    assert_eq!(net.total_supply(), SUPPLY / N as u64 * N as u64);
    let _ = ProcessId::new(0);

    println!(
        "\nreading: owner-only workloads (0% tf) commit with no sequencer hop and \
         balanced load under the dynamic protocol; as the transferFrom share \
         grows — especially onto one hot account — its behavior converges toward \
         the totally ordered baseline, exactly the state-dependence the paper \
         proves."
    );
}

//! **E4 — Example 1 of the paper, replayed step by step.**
//!
//! Alice deploys with supply 10; transfers 3 to Bob; Bob approves Charlie
//! for 5; Charlie's transferFrom of 5 fails on Bob's balance; Charlie's
//! transferFrom of 1 to Alice succeeds. The printed states must match
//! q0–q4 of the paper.

use tokensync_core::analysis::consensus_number_bounds;
use tokensync_core::erc20::Erc20Token;
use tokensync_spec::{AccountId, ProcessId};

fn show(token: &Erc20Token, label: &str) {
    let a = |i: usize| AccountId::new(i);
    let state = token.state();
    println!(
        "{label}: balances[aA,aB,aC] = [{}, {}, {}], allowances[aB][C] = {}, {}",
        state.balance(a(0)),
        state.balance(a(1)),
        state.balance(a(2)),
        state.allowance(a(1), ProcessId::new(2)),
        consensus_number_bounds(state),
    );
}

fn main() {
    println!("E4: Example 1 (Alice, Bob, Charlie)\n");
    let alice = ProcessId::new(0);
    let bob = ProcessId::new(1);
    let charlie = ProcessId::new(2);
    let (a_bob, a_alice, a_charlie) = (AccountId::new(1), AccountId::new(0), AccountId::new(2));

    let mut token = Erc20Token::deploy(3, alice, 10);
    show(&token, "q0");
    assert_eq!(token.balance_of(a_alice), 10);

    token.transfer(alice, a_bob, 3).expect("q1 transfer");
    show(&token, "q1");
    assert_eq!((token.balance_of(a_alice), token.balance_of(a_bob)), (7, 3));

    token.approve(bob, charlie, 5).expect("q2 approve");
    show(&token, "q2");
    assert_eq!(token.allowance(a_bob, charlie), 5);

    let err = token
        .transfer_from(charlie, a_bob, a_charlie, 5)
        .expect_err("q3 must fail: Bob's balance is 3 < 5");
    println!("q3: transferFrom(aB, aC, 5) → FALSE ({err}); state unchanged");
    assert_eq!(token.balance_of(a_bob), 3);
    assert_eq!(token.allowance(a_bob, charlie), 5);

    token
        .transfer_from(charlie, a_bob, a_alice, 1)
        .expect("q4 transferFrom");
    show(&token, "q4");
    assert_eq!((token.balance_of(a_alice), token.balance_of(a_bob)), (8, 2));
    assert_eq!(token.allowance(a_bob, charlie), 4);

    println!("\nresult: trace matches the paper exactly (q0 → q4).");
    println!(
        "note the CN column: approving Charlie raised Bob's account to two \
         enabled spenders — the consensus number moved from 1 to 2 mid-run."
    );
}

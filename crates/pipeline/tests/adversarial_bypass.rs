//! Adversarial scheduling tests for the adaptive bypass.
//!
//! The bypass speculates: while the conflict-density EWMA is low, each
//! batch is *probed* ([`Scheduler::batch_commutes`]) and, if certified
//! pairwise-commuting, executed unordered against the object with no
//! wave machinery at all. These tests feed the engine batches built to
//! *defeat* that prediction — a disjoint prefix that looks exactly like
//! the traffic that engages the bypass, followed by a conflicting tail —
//! and demand that:
//!
//! 1. the check always catches the divergence **before** anything
//!    executes (the batch falls back to the scheduled path; the final
//!    state and every per-op response match the sequential oracle);
//! 2. no response is ever emitted twice: the durability sink sees every
//!    commit sequence number exactly once, gap-free;
//! 3. both paths are actually exercised (`bypassed_batches >= 1` and
//!    `bypass_aborts >= 1`), for ERC20, ERC721 and ERC1155 alike.
//!
//! [`Scheduler::batch_commutes`]: tokensync_pipeline::Scheduler::batch_commutes

use proptest::collection::vec;
use proptest::prelude::*;
use tokensync_core::erc20::{Erc20Op, Erc20Spec, Erc20State};
use tokensync_core::shared::{ConcurrentObject, ShardedErc20};
use tokensync_core::standards::erc1155::{
    Erc1155Op, Erc1155Spec, Erc1155State, ShardedErc1155, TypeId,
};
use tokensync_core::standards::erc721::{
    Erc721Op, Erc721Spec, Erc721State, ShardedErc721, TokenId,
};
use tokensync_pipeline::{
    run_script_with_sink, BatchConfig, CommitSink, CommittedOp, PipelineConfig, PipelineStats,
};
use tokensync_spec::{check_linearizable, AccountId, ObjectType, ProcessId};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn a(i: usize) -> AccountId {
    AccountId::new(i)
}

/// A sink that records every committed sequence number, in emission
/// order — double emission or a gap shows up as a mismatch against
/// `0..n`.
#[derive(Default)]
struct RecordingSink {
    seqs: Vec<u64>,
    records: u64,
    seals: u64,
}

impl<T: ConcurrentObject + ?Sized> CommitSink<T> for RecordingSink {
    fn wave_committed(&mut self, _token: &T, entries: &[CommittedOp<T::Op, T::Resp>]) {
        self.records += 1;
        self.seqs.extend(entries.iter().map(|e| e.seq));
    }
    fn batch_sealed(&mut self, _token: &T, _batch: u64) {
        self.seals += 1;
    }
}

/// Runs `script` with the bypass enabled and verifies the full contract:
/// emission uniqueness, replay consistency, linearizability, final state
/// and per-op responses against the submission-order sequential oracle.
fn run_trapped<T, S>(
    object: &T,
    spec: &S,
    script: &[(ProcessId, T::Op)],
    batch: usize,
) -> PipelineStats
where
    T: ConcurrentObject,
    S: ObjectType<Op = T::Op, Resp = T::Resp, State = T::State>,
    T::State: Eq + std::hash::Hash,
    T::Op: PartialEq,
{
    let cfg = PipelineConfig {
        batch: BatchConfig {
            max_ops: batch,
            ..BatchConfig::default()
        },
        ..PipelineConfig::default()
    };
    let mut sink = RecordingSink::default();
    let run = run_script_with_sink(object, script, &cfg, &mut sink);
    assert_eq!(run.stats.ops as usize, script.len());

    // (2) No double emission, no gaps: the sink saw 0..n exactly once,
    // in commit order, across exactly the records the stats counted.
    let expected: Vec<u64> = (0..script.len() as u64).collect();
    assert_eq!(sink.seqs, expected, "sink emission is not gap-free-once");
    assert_eq!(sink.records, run.stats.commit_records);
    assert_eq!(sink.seals, run.stats.batches);

    // (1) The committed linearization is real: responses replay, the
    // history linearizes, and the state matches the sequential oracle.
    let committed = run.log.replay(spec).expect("commit log replays");
    assert_eq!(committed, object.snapshot(), "log diverged from object");
    // The Wing–Gong–Lowe checker is exponential and caps histories at
    // 64 ops; longer scripts are still covered by the replay, state and
    // per-op-response assertions.
    if script.len() <= 64 {
        check_linearizable(spec, &spec.initial_state(), &run.log.to_history())
            .expect("commit log linearizes");
    }
    let mut sequential = spec.initial_state();
    let mut seq_resps = Vec::with_capacity(script.len());
    for (caller, op) in script {
        seq_resps.push(spec.apply(&mut sequential, *caller, op));
    }
    assert_eq!(committed, sequential, "state diverged from oracle");

    // Per-op responses: commit entries permute only within a batch, so
    // match each entry back to its submission index by (caller, op) with
    // a per-batch multiset scan and compare against the oracle response
    // at that index. (Identical (caller, op) pairs are interchangeable:
    // they conflict on the same cells, so the scheduler never reorders
    // them relative to each other.)
    let mut cursor = 0usize;
    for start in (0..script.len()).step_by(batch) {
        let len = batch.min(script.len() - start);
        let mut used = vec![false; len];
        for entry in &run.log.entries()[cursor..cursor + len] {
            let local = (0..len)
                .find(|&i| {
                    !used[i]
                        && script[start + i].0 == entry.caller
                        && script[start + i].1 == entry.op
                })
                .expect("committed op present in its batch");
            used[local] = true;
            assert_eq!(
                entry.resp,
                seq_resps[start + local],
                "op {} response diverged from the oracle",
                start + local
            );
        }
        cursor += len;
    }
    run.stats
}

/// Asserts the trap actually sprung both ways: the disjoint batch rode
/// the bypass, the mispredicted batch was caught by the probe.
fn assert_trap_sprung(stats: &PipelineStats) {
    assert!(
        stats.bypassed_batches >= 1,
        "disjoint batch must engage the bypass, stats: {stats:?}"
    );
    assert!(
        stats.bypass_aborts >= 1,
        "conflicting tail must abort the probe, stats: {stats:?}"
    );
    assert!(
        stats.serial_ops + stats.conflicts > 0,
        "fallback must have taken the scheduled path, stats: {stats:?}"
    );
}

const BATCH: usize = 16;

#[test]
fn erc20_mispredicted_batch_falls_back_to_the_oracle_order() {
    let n = 64;
    let initial = Erc20State::from_balances(vec![100; n]);
    let token = ShardedErc20::from_state(initial.clone());
    let mut script: Vec<(ProcessId, Erc20Op)> = Vec::new();
    // Batch 0: fully owner-disjoint — the bypass bait.
    for i in 0..BATCH {
        script.push((
            p(i),
            Erc20Op::Transfer {
                to: a(32 + i),
                value: 1,
            },
        ));
    }
    // Batch 1: a disjoint prefix wearing the same shape…
    for i in 0..BATCH / 2 {
        script.push((
            p(i),
            Erc20Op::Transfer {
                to: a(48 + i),
                value: 1,
            },
        ));
    }
    // …then a conflicting tail: everyone drains account 16's owner.
    for i in 0..BATCH / 2 {
        script.push((
            p(16),
            Erc20Op::Transfer {
                to: a(17 + i),
                value: 3,
            },
        ));
    }
    let stats = run_trapped(&token, &Erc20Spec::new(initial), &script, BATCH);
    assert_trap_sprung(&stats);
    assert_eq!(stats.bypassed_ops as usize, BATCH);
}

#[test]
fn erc721_mispredicted_batch_falls_back_to_the_oracle_order() {
    let n = 32;
    let mut initial = Erc721State::minted_round_robin(n, 256, n);
    for i in 1..n {
        initial.set_operator(p(0), p(i), true);
    }
    let nft = ShardedErc721::from_state(initial.clone());
    let mut script: Vec<(ProcessId, Erc721Op)> = Vec::new();
    // Batch 0: owner-disjoint token moves — bypassed.
    for i in 0..BATCH {
        script.push((
            p(i),
            Erc721Op::TransferFrom {
                from: p(i),
                to: p((i + 1) % n),
                token: TokenId::new(i),
            },
        ));
    }
    // Batch 1: disjoint prefix, then everyone claims token 0 — the §6
    // race the probe must catch.
    for i in 0..BATCH / 2 {
        script.push((
            p(16 + i),
            Erc721Op::TransferFrom {
                from: p(16 + i),
                to: p((17 + i) % n),
                token: TokenId::new(16 + i),
            },
        ));
    }
    for i in 0..BATCH / 2 {
        script.push((
            p(1 + i),
            Erc721Op::TransferFrom {
                from: p(0),
                to: p(1 + i),
                token: TokenId::new(0),
            },
        ));
    }
    let stats = run_trapped(&nft, &Erc721Spec::new(initial), &script, BATCH);
    assert_trap_sprung(&stats);
    assert_eq!(stats.bypassed_ops as usize, BATCH);
}

#[test]
fn erc1155_mispredicted_batch_falls_back_to_the_oracle_order() {
    let n = 32;
    let mut initial = Erc1155State::deploy(n, p(0), &[0, 0]);
    for i in 0..n {
        for t in 0..2 {
            initial.set_balance(a(i), TypeId::new(t), 50);
        }
    }
    for i in 1..n {
        initial.set_operator(a(0), p(i), true);
    }
    let multi = ShardedErc1155::from_state(initial.clone());
    let mut script: Vec<(ProcessId, Erc1155Op)> = Vec::new();
    // Batch 0: pairwise cell-disjoint batch transfers — bypassed.
    for i in 0..BATCH {
        script.push((
            p(i),
            Erc1155Op::BatchTransfer {
                from: a(i),
                to: a(16 + i),
                entries: vec![(TypeId::new(0), 1), (TypeId::new(1), 2)],
            },
        ));
    }
    // Batch 1: disjoint prefix, then overlapping drains of account 0.
    for i in 0..BATCH / 2 {
        script.push((
            p(16 + i),
            Erc1155Op::BatchTransfer {
                from: a(16 + i),
                to: a(1 + i),
                entries: vec![(TypeId::new(1), 1)],
            },
        ));
    }
    for i in 0..BATCH / 2 {
        script.push((
            p(1 + i),
            Erc1155Op::BatchTransfer {
                from: a(0),
                to: a(1 + i),
                entries: vec![(TypeId::new(i % 2), 2)],
            },
        ));
    }
    let stats = run_trapped(&multi, &Erc1155Spec::new(initial), &script, BATCH);
    assert_trap_sprung(&stats);
    assert_eq!(stats.bypassed_ops as usize, BATCH);
}

#[test]
fn bypass_disengages_under_sustained_contention_and_recovers() {
    // Adversarial traffic shape: contended burst, then disjoint calm.
    // The EWMA must stop probing during the burst (at most a couple of
    // aborts) and re-engage once the density decays.
    let n = 64;
    let mut initial = Erc20State::from_balances(vec![1000; n]);
    for sp in 1..8 {
        initial.set_allowance(a(0), p(sp), 500);
    }
    let token = ShardedErc20::from_state(initial.clone());
    let mut script: Vec<(ProcessId, Erc20Op)> = Vec::new();
    // 8 batches of hot-row traffic.
    for i in 0..8 * BATCH {
        script.push((
            p(1 + (i % 7)),
            Erc20Op::TransferFrom {
                from: a(0),
                to: a(1 + ((i + 1) % 7)),
                value: 1,
            },
        ));
    }
    // 32 batches of disjoint calm: enough for the EWMA to decay back
    // under the threshold and re-engage the bypass.
    for b in 0..32 {
        for i in 0..BATCH {
            script.push((
                p(i),
                Erc20Op::Transfer {
                    to: a(32 + i),
                    value: 1,
                },
            ));
        }
        let _ = b;
    }
    let stats = run_trapped(&token, &Erc20Spec::new(initial), &script, BATCH);
    assert!(
        stats.bypass_aborts <= 2,
        "EWMA must disengage probing under sustained contention, stats: {stats:?}"
    );
    assert!(
        stats.bypassed_batches >= 1,
        "bypass must re-engage after the density decays, stats: {stats:?}"
    );
}

#[test]
fn disabled_bypass_never_engages() {
    let n = 32;
    let initial = Erc20State::from_balances(vec![100; n]);
    let token = ShardedErc20::from_state(initial.clone());
    let script: Vec<(ProcessId, Erc20Op)> = (0..BATCH)
        .map(|i| {
            (
                p(i),
                Erc20Op::Transfer {
                    to: a(16 + i),
                    value: 1,
                },
            )
        })
        .collect();
    let mut cfg = PipelineConfig {
        batch: BatchConfig {
            max_ops: BATCH,
            ..BatchConfig::default()
        },
        ..PipelineConfig::default()
    };
    cfg.bypass.enabled = false;
    let mut sink = RecordingSink::default();
    let run = run_script_with_sink(&token, &script, &cfg, &mut sink);
    assert_eq!(run.stats.bypassed_batches, 0);
    assert_eq!(run.stats.bypass_aborts, 0);
    assert_eq!(run.stats.ops as usize, BATCH);
    run.log
        .replay(&Erc20Spec::new(initial))
        .expect("scheduled path replays");
}

/// One adversarial ERC20 op mix: mostly-disjoint transfers with bursts
/// of hot-row contention, so random scripts flip the bypass on and off.
fn arb_trap_op() -> impl Strategy<Value = (usize, Erc20Op)> {
    // Disjoint moves dominate (repeated arms stand in for weights, which
    // the vendored proptest does not support), so random scripts have
    // long commuting stretches punctured by hot-row bursts.
    fn disjoint() -> impl Strategy<Value = (usize, Erc20Op)> {
        (0..16usize, 1u64..3).prop_map(|(i, value)| {
            (
                i,
                Erc20Op::Transfer {
                    to: AccountId::new(32 + i),
                    value,
                },
            )
        })
    }
    prop_oneof![
        disjoint(),
        disjoint(),
        disjoint(),
        // Hot: everyone drains caller 0's row.
        (1..8usize, 1u64..3).prop_map(|(sp, value)| (
            sp,
            Erc20Op::TransferFrom {
                from: AccountId::new(0),
                to: AccountId::new(sp),
                value
            }
        )),
        (1..8usize, 0u64..5).prop_map(|(sp, value)| (
            0,
            Erc20Op::Approve {
                spender: ProcessId::new(sp),
                value
            }
        )),
    ]
}

proptest! {
    /// Random adversarial mixes: whatever the bypass decides per batch,
    /// the commit log must replay, linearize, match the oracle per-op,
    /// and the sink must see every commit exactly once.
    #[test]
    fn random_trap_scripts_never_diverge(
        ops in vec(arb_trap_op(), 1..120),
        batch in 1usize..24,
    ) {
        let mut initial = Erc20State::from_balances(vec![50; 48]);
        for sp in 1..8 {
            initial.set_allowance(a(0), p(sp), 25);
        }
        let token = ShardedErc20::from_state(initial.clone());
        let script: Vec<(ProcessId, Erc20Op)> =
            ops.into_iter().map(|(c, op)| (p(c), op)).collect();
        run_trapped(&token, &Erc20Spec::new(initial), &script, batch);
    }

    /// Random ERC721 claim races against disjoint movers.
    #[test]
    fn random_nft_trap_scripts_never_diverge(
        ops in vec(
            prop_oneof![
                (0..16usize).prop_map(|i| (i, i, i)),          // own-token move
                (0..16usize).prop_map(|i| (i, i, i)),
                (0..16usize).prop_map(|i| (i, i, i)),
                (1..8usize).prop_map(|c| (c, 0usize, 0usize)), // claim token 0
            ],
            1..80,
        ),
        batch in 1usize..16,
    ) {
        let n = 32;
        let mut initial = Erc721State::minted_round_robin(n, 64, n);
        for i in 1..n {
            initial.set_operator(p(0), p(i), true);
        }
        let nft = ShardedErc721::from_state(initial.clone());
        let script: Vec<(ProcessId, Erc721Op)> = ops
            .into_iter()
            .map(|(caller, from, tok)| (
                p(caller),
                Erc721Op::TransferFrom {
                    from: p(from),
                    to: p(caller),
                    token: TokenId::new(tok),
                },
            ))
            .collect();
        run_trapped(&nft, &Erc721Spec::new(initial), &script, batch);
    }

    /// Random ERC1155 batch-op mixes with overlapping cell sets.
    #[test]
    fn random_multi_trap_scripts_never_diverge(
        ops in vec((0..12usize, 0..12usize, 0..2usize, 1u64..3), 1..80),
        batch in 1usize..16,
    ) {
        let n = 16;
        let mut initial = Erc1155State::deploy(n, p(0), &[0, 0]);
        for i in 0..n {
            for t in 0..2 {
                initial.set_balance(a(i), TypeId::new(t), 30);
            }
        }
        for i in 1..n {
            initial.set_operator(a(0), p(i), true);
        }
        let multi = ShardedErc1155::from_state(initial.clone());
        let script: Vec<(ProcessId, Erc1155Op)> = ops
            .into_iter()
            .map(|(caller, to, t, v)| (
                p(caller),
                Erc1155Op::BatchTransfer {
                    from: a(caller),
                    to: a(to),
                    entries: vec![(TypeId::new(t), v)],
                },
            ))
            .collect();
        run_trapped(&multi, &Erc1155Spec::new(initial), &script, batch);
    }
}

//! Accounting identities of [`PipelineStats`], locked down across the
//! {bypass} × {fusion} config matrix on three contention regimes.
//!
//! The invariants:
//!
//! * `ops == parallel_ops + serial_ops` — every committed op took
//!   exactly one of the two execution routes;
//! * `bypassed_ops <= parallel_ops` and
//!   `bypassed_batches <= batches` — the bypass path is a subset of
//!   the parallel route;
//! * `commit_records` arithmetic: what the engine counted is exactly
//!   what the sink saw; fused, one record per (non-empty) batch;
//!   unfused, one per non-empty wave plus one per non-empty serial
//!   lane, which brackets to `waves <= records <= waves + batches`;
//! * the sink sees every op exactly once (`entries == ops`) and every
//!   batch seal exactly once (`seals == batches`);
//! * with the bypass disabled, every bypass counter is zero;
//! * the committed result is identical across all four configs.

use tokensync_core::erc20::{Erc20Op, Erc20Spec, Erc20State};
use tokensync_core::shared::{ConcurrentObject, ConcurrentToken, ShardedErc20};
use tokensync_pipeline::{
    run_script_with_sink, BatchConfig, BypassConfig, CommitSink, CommittedOp, PipelineConfig,
};
use tokensync_spec::{AccountId, ProcessId};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn a(i: usize) -> AccountId {
    AccountId::new(i)
}

/// Counts exactly what crosses the sink seam.
#[derive(Default)]
struct CountingSink {
    records: u64,
    entries: u64,
    seals: u64,
}

impl<T: ConcurrentObject + ?Sized> CommitSink<T> for CountingSink {
    fn wave_committed(&mut self, _token: &T, entries: &[CommittedOp<T::Op, T::Resp>]) {
        assert!(!entries.is_empty(), "engine must not emit empty records");
        self.records += 1;
        self.entries += entries.len() as u64;
    }
    fn batch_sealed(&mut self, _token: &T, _batch: u64) {
        self.seals += 1;
    }
}

fn cfg(max_ops: usize, bypass: bool, fuse: bool) -> PipelineConfig {
    PipelineConfig {
        batch: BatchConfig {
            max_ops,
            ..BatchConfig::default()
        },
        bypass: BypassConfig {
            enabled: bypass,
            ..BypassConfig::default()
        },
        fuse_waves: fuse,
        ..PipelineConfig::default()
    }
}

/// Owner-disjoint transfers: everything commutes.
fn disjoint_script(n: usize) -> (Erc20State, Vec<(ProcessId, Erc20Op)>) {
    let state = Erc20State::from_balances(vec![1_000; 2 * n]);
    let script = (0..n)
        .map(|i| {
            (
                p(i),
                Erc20Op::Transfer {
                    to: a(n + i),
                    value: 1,
                },
            )
        })
        .collect();
    (state, script)
}

/// A few senders reused: moderate conflict density.
fn mixed_script(n: usize) -> (Erc20State, Vec<(ProcessId, Erc20Op)>) {
    let state = Erc20State::from_balances(vec![1_000; 16]);
    let script = (0..n)
        .map(|i| {
            (
                p(i % 5),
                Erc20Op::Transfer {
                    to: a(5 + (i % 11)),
                    value: 1 + (i as u64 % 3),
                },
            )
        })
        .collect();
    (state, script)
}

/// Spenders hammering one allowance row: almost everything conflicts.
fn hotrow_script(n: usize) -> (Erc20State, Vec<(ProcessId, Erc20Op)>) {
    let mut state = Erc20State::from_balances(vec![10_000; 8]);
    for sp in 1..8 {
        state.set_allowance(a(0), p(sp), 5_000);
    }
    let script = (0..n)
        .map(|i| {
            (
                p(1 + (i % 7)),
                Erc20Op::TransferFrom {
                    from: a(0),
                    to: a(1 + ((i + 1) % 7)),
                    value: 1,
                },
            )
        })
        .collect();
    (state, script)
}

fn check_matrix(name: &str, state: &Erc20State, script: &[(ProcessId, Erc20Op)], max_ops: usize) {
    let expected_batches = script.len().div_ceil(max_ops) as u64;
    let mut final_states = Vec::new();
    for bypass in [false, true] {
        for fuse in [false, true] {
            let case = format!("{name} bypass={bypass} fuse={fuse}");
            let token = ShardedErc20::from_state(state.clone());
            let mut sink = CountingSink::default();
            let run = run_script_with_sink(&token, script, &cfg(max_ops, bypass, fuse), &mut sink);
            let s = run.stats;

            // Route partition.
            assert_eq!(s.ops, script.len() as u64, "{case}: ops");
            assert_eq!(s.ops, s.parallel_ops + s.serial_ops, "{case}: partition");
            assert_eq!(s.batches, expected_batches, "{case}: batches");

            // Bypass is a subset of the parallel route.
            assert!(
                s.bypassed_ops <= s.parallel_ops,
                "{case}: bypass ⊆ parallel"
            );
            assert!(s.bypassed_batches <= s.batches, "{case}: bypass batches");
            if !bypass {
                assert_eq!(
                    (s.bypassed_batches, s.bypassed_ops, s.bypass_aborts),
                    (0, 0, 0),
                    "{case}: bypass off must count nothing"
                );
            }

            // The sink saw exactly what the stats claim.
            assert_eq!(sink.records, s.commit_records, "{case}: records");
            assert_eq!(sink.entries, s.ops, "{case}: entries exactly once");
            assert_eq!(sink.seals, s.batches, "{case}: seals");

            // Record-count arithmetic. Every batch here is non-empty.
            if fuse {
                assert_eq!(s.commit_records, s.batches, "{case}: fused = per batch");
            } else {
                assert!(s.commit_records >= s.waves, "{case}: unfused >= waves");
                assert!(
                    s.commit_records <= s.waves + s.batches,
                    "{case}: unfused <= waves + serial lanes"
                );
            }

            final_states.push((case, token.state_snapshot()));
        }
    }
    // Same input, same committed state, regardless of config.
    let (first_case, first) = &final_states[0];
    for (case, st) in &final_states[1..] {
        assert_eq!(st, first, "{case} diverged from {first_case}");
    }
    // And the whole thing replays against the sequential oracle.
    let token = ShardedErc20::from_state(state.clone());
    let run = run_script_with_sink(
        &token,
        script,
        &cfg(max_ops, true, true),
        &mut CountingSink::default(),
    );
    let replayed = run
        .log
        .replay(&Erc20Spec::new(state.clone()))
        .expect("consistent responses");
    assert_eq!(replayed, token.state_snapshot());
}

#[test]
fn disjoint_regime_identities() {
    let (state, script) = disjoint_script(256);
    check_matrix("disjoint", &state, &script, 64);
}

#[test]
fn mixed_regime_identities() {
    let (state, script) = mixed_script(300);
    check_matrix("mixed", &state, &script, 64);
}

#[test]
fn hotrow_regime_identities() {
    let (state, script) = hotrow_script(256);
    check_matrix("hotrow", &state, &script, 64);
}

#[test]
fn ragged_tail_batch_identities() {
    // A last batch smaller than max_ops must not skew any identity.
    let (state, script) = mixed_script(101);
    check_matrix("ragged", &state, &script, 25);
}

#[test]
fn single_op_batches_identities() {
    let (state, script) = disjoint_script(7);
    check_matrix("unit-batches", &state, &script, 1);
}

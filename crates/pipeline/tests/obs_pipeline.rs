//! The recorder seam end to end: counters agree with [`PipelineStats`],
//! stage histograms fill, sampled batches leave span traces, the
//! spawned engine keeps its queue-depth gauges fresh, and a disabled
//! recorder records nothing.

use std::sync::Arc;
use std::time::Duration;

use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_core::shared::ShardedErc20;
use tokensync_obs::{Registry, Stage};
use tokensync_pipeline::{run_script_observed, BatchConfig, Pipeline, PipelineConfig, PipelineObs};
use tokensync_spec::{AccountId, ProcessId};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn a(i: usize) -> AccountId {
    AccountId::new(i)
}

fn disjoint_script(n: usize) -> (Erc20State, Vec<(ProcessId, Erc20Op)>) {
    let state = Erc20State::from_balances(vec![100; 2 * n]);
    let script = (0..n)
        .map(|i| {
            (
                p(i),
                Erc20Op::Transfer {
                    to: a(n + i),
                    value: 1,
                },
            )
        })
        .collect();
    (state, script)
}

fn small_cfg(max_ops: usize) -> PipelineConfig {
    PipelineConfig {
        batch: BatchConfig {
            max_ops,
            max_wait: Duration::from_millis(1),
            queue_depth: 256,
            intake_shards: 4,
            ..BatchConfig::default()
        },
        ..PipelineConfig::default()
    }
}

#[test]
fn counters_agree_with_pipeline_stats() {
    let (state, script) = disjoint_script(128);
    let token = ShardedErc20::from_state(state);
    let reg = Registry::new();
    let obs = PipelineObs::new(&reg, 4).with_sampling(1, 4096);
    let run = run_script_observed(&token, &script, &small_cfg(16), &mut (), &obs);

    let snap = reg.snapshot();
    assert_eq!(
        snap.counter("tokensync_pipeline_batches_total"),
        run.stats.batches
    );
    assert_eq!(snap.counter("tokensync_pipeline_ops_total"), run.stats.ops);
    assert_eq!(
        snap.counter("tokensync_pipeline_bypass_engaged_total"),
        run.stats.bypassed_batches
    );
    assert_eq!(
        snap.counter("tokensync_pipeline_bypass_aborts_total"),
        run.stats.bypass_aborts
    );

    // One whole-batch latency sample per batch.
    let batch_ns = obs.batch_latency().expect("enabled recorder");
    assert_eq!(batch_ns.count, run.stats.batches);
    assert!(batch_ns.p999 >= batch_ns.p50);

    // Every batch took *some* commit+seal path.
    let commit = obs.stage_latency(Stage::Commit).unwrap();
    let seal = obs.stage_latency(Stage::Seal).unwrap();
    assert_eq!(commit.count, run.stats.batches);
    assert_eq!(seal.count, run.stats.batches);

    // The exposition page carries the whole catalog.
    let page = reg.render_text();
    for name in [
        "tokensync_pipeline_batches_total",
        "tokensync_pipeline_ops_total",
        "tokensync_pipeline_stage_ns{stage=\"execute\",quantile=\"0.99\"}",
        "tokensync_pipeline_batch_ns_count",
        "tokensync_pipeline_queue_depth{shard=\"3\"}",
    ] {
        assert!(page.contains(name), "missing {name} in:\n{page}");
    }
}

#[test]
fn sampled_batches_leave_causally_ordered_spans() {
    let (state, script) = disjoint_script(64);
    let token = ShardedErc20::from_state(state);
    let reg = Registry::new();
    // Sample everything so each batch is traceable.
    let obs = PipelineObs::new(&reg, 1).with_sampling(1, 4096);
    let run = run_script_observed(&token, &script, &small_cfg(16), &mut (), &obs);
    let ring = obs.span_ring().expect("enabled recorder");
    assert_eq!(ring.batches().len() as u64, run.stats.batches);
    for batch in ring.batches() {
        let trace = ring.trace(batch);
        // Disjoint traffic rides the bypass: probe → execute → commit → seal.
        let stages: Vec<Stage> = trace.iter().map(|e| e.stage).collect();
        assert_eq!(
            stages,
            vec![
                Stage::BypassProbe,
                Stage::Execute,
                Stage::Commit,
                Stage::Seal
            ],
            "batch {batch}"
        );
        // Causally linked: each stage starts where the previous ended.
        for pair in trace.windows(2) {
            assert!(pair[0].start_ns + pair[0].dur_ns <= pair[1].start_ns + 1);
        }
        let dump = ring.render_trace(batch);
        assert!(dump.contains("bypass_probe"));
    }
}

#[test]
fn spawned_engine_records_intake_wait_and_queue_depths() {
    let (state, script) = disjoint_script(64);
    let token = Arc::new(ShardedErc20::from_state(state));
    let reg = Registry::new();
    let obs = PipelineObs::new(&reg, 4).with_sampling(1, 4096);
    let (client, handle) =
        Pipeline::spawn_observed(Arc::clone(&token), small_cfg(8), (), obs.clone());
    for (caller, op) in script {
        client.submit(caller, op).expect("engine alive");
    }
    drop(client);
    let (run, ()) = handle.finish();
    assert_eq!(run.stats.ops, 64);

    // Every batch waited on the intake (possibly 0ns) before being cut.
    let wait = obs.stage_latency(Stage::IntakeWait).expect("enabled");
    assert_eq!(wait.count, run.stats.batches);
    // Gauges exist for every shard and read as drained at shutdown.
    let snap = reg.snapshot();
    for shard in 0..4 {
        let key = format!("tokensync_pipeline_queue_depth{{shard=\"{shard}\"}}");
        assert_eq!(snap.gauge(&key), 0, "{key} after drain");
    }
}

#[test]
fn disabled_recorder_is_inert() {
    let (state, script) = disjoint_script(32);
    let token = ShardedErc20::from_state(state);
    let obs = PipelineObs::disabled();
    assert!(!obs.is_enabled());
    let run = run_script_observed(&token, &script, &small_cfg(8), &mut (), &obs);
    assert_eq!(run.stats.ops, 32);
    assert!(obs.span_ring().is_none());
    assert!(obs.batch_latency().is_none());
    assert!(obs.stage_latency(Stage::Execute).is_none());
}

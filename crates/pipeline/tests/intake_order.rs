//! Sharded-intake contracts: per-producer FIFO under backpressure, the
//! bounded-memory guarantee, and blocking-submit wakeups.
//!
//! The intake was resharded from one MPSC channel into per-producer
//! bounded queues; these tests pin the contracts that refactor must
//! preserve:
//!
//! * **Per-producer FIFO**: operations submitted through one client
//!   handle reach batches — and, when they mutually conflict, the
//!   commit log — in submission order, even when many producers race
//!   under backpressure.
//! * **Bounded memory**: the intake never buffers more than
//!   `queue_depth` operations; a full shard makes `try_submit` report
//!   full and `submit` block (and unblock once the engine drains).
//! * **Shutdown**: a dropped batcher fails producers instead of
//!   wedging them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tokensync_core::erc20::{Erc20Op, Erc20Spec, Erc20State};
use tokensync_core::shared::{ConcurrentToken, ShardedErc20};
use tokensync_pipeline::{intake, BatchConfig, Pipeline, PipelineConfig};
use tokensync_spec::{AccountId, ProcessId};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn a(i: usize) -> AccountId {
    AccountId::new(i)
}

#[test]
fn per_producer_fifo_survives_backpressure_stress() {
    // P producers, each submitting K self-conflicting ops (transfers out
    // of the producer's own account — every pair shares the sender
    // balance cell) through a deliberately tiny intake, so producers
    // block on backpressure constantly. Conflicting ops never reorder in
    // the schedule, so each producer's value sequence must come out of
    // the commit log exactly in submission order.
    const P: usize = 8;
    const K: usize = 200;
    let n = 2 * P;
    let initial = Erc20State::from_balances(vec![1_000_000; n]);
    let token = Arc::new(ShardedErc20::from_state(initial.clone()));
    let cfg = PipelineConfig {
        batch: BatchConfig {
            max_ops: 16,
            max_wait: Duration::from_micros(200),
            queue_depth: 8, // shard cap 1 at 8 shards: maximal squeeze
            intake_shards: 8,
            ..BatchConfig::default()
        },
        ..PipelineConfig::default()
    };
    let (client, handle) = Pipeline::spawn(Arc::clone(&token), cfg);
    crossbeam::scope(|s| {
        for t in 0..P {
            let client = client.clone();
            s.spawn(move |_| {
                for i in 0..K {
                    // Sender = the producer's own account; value encodes
                    // the submission index.
                    client
                        .submit(
                            p(t),
                            Erc20Op::Transfer {
                                to: a(P + t),
                                value: i as u64,
                            },
                        )
                        .expect("engine alive");
                }
            });
        }
    })
    .expect("producers panicked");
    drop(client);
    let run = handle.finish();
    assert_eq!(run.stats.ops as usize, P * K, "ops lost in the intake");

    // Extract each producer's committed value sequence.
    let mut per_producer: Vec<Vec<u64>> = vec![Vec::new(); P];
    for entry in run.log.entries() {
        if let Erc20Op::Transfer { value, .. } = entry.op {
            per_producer[entry.caller.index()].push(value);
        }
    }
    for (t, values) in per_producer.iter().enumerate() {
        let expected: Vec<u64> = (0..K as u64).collect();
        assert_eq!(
            values, &expected,
            "producer {t} ops were reordered by the intake"
        );
    }
    // And the log is a real linearization of what the token did.
    let replayed = run
        .log
        .replay(&Erc20Spec::new(initial))
        .expect("responses consistent");
    assert_eq!(replayed, token.state_snapshot());
}

#[test]
fn intake_buffering_is_bounded_by_queue_depth() {
    // Regression pin for the backpressure contract: with no consumer
    // draining, the intake accepts at most queue_depth operations in
    // total — every extra try_submit reports full on every shard.
    let depth = 16;
    let shards = 4;
    let (client, batcher) = intake::<Erc20Op>(BatchConfig {
        max_ops: 1024,
        max_wait: Duration::from_millis(1),
        queue_depth: depth,
        intake_shards: shards,
        ..BatchConfig::default()
    });
    // One handle per shard (clones assign round-robin).
    let handles: Vec<_> = (0..shards - 1).map(|_| client.clone()).collect();
    let all: Vec<_> = std::iter::once(&client).chain(handles.iter()).collect();
    let mut accepted = 0usize;
    for round in 0..depth {
        for h in &all {
            if h.try_submit(p(0), Erc20Op::TotalSupply).unwrap() {
                accepted += 1;
            }
        }
        let _ = round;
    }
    assert_eq!(
        accepted, depth,
        "intake must saturate at exactly queue_depth"
    );
    assert_eq!(batcher.queued(), depth);
    for h in &all {
        assert_eq!(
            h.try_submit(p(0), Erc20Op::TotalSupply).unwrap(),
            false,
            "every shard must report full at the bound"
        );
    }
    drop(batcher);
}

#[test]
fn blocked_submit_unblocks_when_the_consumer_drains() {
    let (client, mut batcher) = intake(BatchConfig {
        max_ops: 2,
        max_wait: Duration::from_millis(1),
        queue_depth: 1, // one shard, cap 1
        intake_shards: 1,
        ..BatchConfig::default()
    });
    client.submit(p(0), Erc20Op::TotalSupply).unwrap();
    let submitted = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&submitted);
    let producer = std::thread::spawn(move || {
        // Shard is full: this blocks until the batcher drains.
        client.submit(p(0), Erc20Op::TotalSupply).unwrap();
        flag.store(true, Ordering::SeqCst);
        drop(client);
    });
    std::thread::sleep(Duration::from_millis(20));
    assert!(
        !submitted.load(Ordering::SeqCst),
        "submit into a full shard must block"
    );
    // Draining frees the slot and wakes the producer.
    let mut got = 0usize;
    while let Some(batch) = batcher.next_batch() {
        got += batch.ops.len();
    }
    producer.join().expect("producer panicked");
    assert!(submitted.load(Ordering::SeqCst));
    assert_eq!(got, 2);
}

#[test]
fn producers_blocked_on_backpressure_fail_fast_on_shutdown() {
    let (client, batcher) = intake(BatchConfig {
        max_ops: 4,
        max_wait: Duration::from_millis(1),
        queue_depth: 1,
        intake_shards: 1,
        ..BatchConfig::default()
    });
    client.submit(p(0), Erc20Op::TotalSupply).unwrap();
    let producer = std::thread::spawn(move || {
        // Blocks on the full shard until the batcher drop closes the
        // intake — must then error out, not wedge.
        client.submit(p(0), Erc20Op::TotalSupply)
    });
    std::thread::sleep(Duration::from_millis(20));
    drop(batcher);
    let result = producer.join().expect("producer panicked");
    assert!(result.is_err(), "shutdown must fail blocked producers");
}

#[test]
fn interleaved_producers_still_linearize_through_the_engine() {
    // Many producers over few shards (handles share shards) with mixed
    // conflicting/commuting traffic: everything must still commit
    // exactly once and replay.
    const P: usize = 6;
    const K: usize = 50;
    let n = 2 * P;
    let initial = Erc20State::from_balances(vec![1000; n]);
    let token = Arc::new(ShardedErc20::from_state(initial.clone()));
    let cfg = PipelineConfig {
        batch: BatchConfig {
            max_ops: 8,
            max_wait: Duration::from_micros(500),
            queue_depth: 12,
            intake_shards: 3,
            ..BatchConfig::default()
        },
        ..PipelineConfig::default()
    };
    let (client, handle) = Pipeline::spawn(Arc::clone(&token), cfg);
    crossbeam::scope(|s| {
        for t in 0..P {
            let client = client.clone();
            s.spawn(move |_| {
                for i in 0..K {
                    let op = if i % 7 == 3 {
                        // Cross traffic into a shared hot account.
                        Erc20Op::Transfer { to: a(0), value: 1 }
                    } else {
                        Erc20Op::Transfer {
                            to: a(P + t),
                            value: i as u64,
                        }
                    };
                    client.submit(p(t), op).expect("engine alive");
                }
            });
        }
    })
    .expect("producers panicked");
    drop(client);
    let run = handle.finish();
    assert_eq!(run.stats.ops as usize, P * K);
    let replayed = run
        .log
        .replay(&Erc20Spec::new(initial))
        .expect("responses consistent");
    assert_eq!(replayed, token.state_snapshot());
    // Per-producer FIFO of the conflicting subsequence (all ops from one
    // producer touch its own balance cell, so order is preserved).
    for t in 0..P {
        let values: Vec<u64> = run
            .log
            .entries()
            .iter()
            .filter(|e| e.caller == p(t))
            .filter_map(|e| match e.op {
                Erc20Op::Transfer { to, value } if to == a(P + t) => Some(value),
                _ => None,
            })
            .collect();
        let expected: Vec<u64> = (0..K as u64).filter(|i| i % 7 != 3).collect();
        assert_eq!(values, expected, "producer {t} reordered");
    }
}
